package anufs

// One benchmark per figure of the paper's evaluation (§7), so
// `go test -bench=.` regenerates every result at quick scale and reports
// the cost of doing so, plus headline microbenchmarks for the claims the
// paper makes about the algorithm itself: O(1) no-I/O lookup (§5), ~2 hash
// probes at half occupancy (§4), cheap delegate rounds, and minimal
// movement on failure (§4).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anufs/internal/core"
	"anufs/internal/experiment"
	"anufs/internal/journal"
	"anufs/internal/sharedisk"
)

// benchExperiment runs one registered experiment per iteration and reports
// headline metrics of the last run as benchmark custom units.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var out *experiment.Output
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiment.RunByID(id, experiment.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range out.Runs {
		s := r.Result.Series.Summarize()
		b.ReportMetric(s.SteadyMean*1000, r.Label+"_steady_ms")
	}
}

// BenchmarkFig6 regenerates Figure 6: four policies on the DFSTrace-like
// workload. Shape: static policies skew, prescient and ANU balance.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: prescient vs ANU closeup (DFSTrace).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: four policies on the synthetic
// heavy-tailed workload.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: prescient vs ANU closeup (synthetic).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10a regenerates Figure 10(a): raw ANU over-tuning.
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10b regenerates Figure 10(b): the three heuristics fix it.
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFig11a regenerates Figure 11(a): thresholding only.
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }

// BenchmarkFig11b regenerates Figure 11(b): top-off only.
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }

// BenchmarkFig11c regenerates Figure 11(c): divergent only.
func BenchmarkFig11c(b *testing.B) { benchExperiment(b, "fig11c") }

// BenchmarkFailureRecovery regenerates extension experiment X2.
func BenchmarkFailureRecovery(b *testing.B) { benchExperiment(b, "failure") }

// BenchmarkAggregatorAblation regenerates extension experiment X3.
func BenchmarkAggregatorAblation(b *testing.B) { benchExperiment(b, "aggregator") }

// BenchmarkMoveCostAblation regenerates extension experiment X5.
func BenchmarkMoveCostAblation(b *testing.B) { benchExperiment(b, "movecost") }

// BenchmarkPairwiseTuning regenerates extension experiment X4.
func BenchmarkPairwiseTuning(b *testing.B) { benchExperiment(b, "pairwise") }

// BenchmarkScaleOut regenerates extension experiment X6.
func BenchmarkScaleOut(b *testing.B) { benchExperiment(b, "scaleout") }

// BenchmarkOnlineUpgrade regenerates extension experiment X7.
func BenchmarkOnlineUpgrade(b *testing.B) { benchExperiment(b, "upgrade") }

// BenchmarkPhaseShift regenerates extension experiment X8.
func BenchmarkPhaseShift(b *testing.B) { benchExperiment(b, "phaseshift") }

// BenchmarkThresholdSweep regenerates extension experiment X9.
func BenchmarkThresholdSweep(b *testing.B) { benchExperiment(b, "threshold") }

// BenchmarkSieveBaseline regenerates extension experiment X10.
func BenchmarkSieveBaseline(b *testing.B) { benchExperiment(b, "sieve") }

// BenchmarkLookup measures the §5 claim directly: locating a file set is a
// handful of hashes with no I/O and no per-file-set state.
func BenchmarkLookup(b *testing.B) {
	for _, n := range []int{5, 20, 80} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			m, err := core.NewMapper(core.Defaults(), ids)
			if err != nil {
				b.Fatal(err)
			}
			names := make([]string, 1024)
			for i := range names {
				names[i] = fmt.Sprintf("fileset-%04d", i)
			}
			probes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, p := m.Locate(names[i&1023])
				probes += p
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
		})
	}
}

// BenchmarkDelegateRound measures one full tuning round.
func BenchmarkDelegateRound(b *testing.B) {
	for _, n := range []int{5, 20, 80} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			m, err := core.NewMapper(core.Defaults(), ids)
			if err != nil {
				b.Fatal(err)
			}
			d := core.NewDelegate(core.Defaults())
			reports := make([]core.LatencyReport, n)
			for i := range reports {
				reports[i] = core.LatencyReport{
					ServerID:    i,
					MeanLatency: float64(1+(i*37)%100) / 1000,
					Requests:    50,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Update(m, reports); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFailureReconfig measures removing and re-adding a server — the
// §4 failure/recovery path whose cost is what "minimal movement" bounds.
func BenchmarkFailureReconfig(b *testing.B) {
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	m, err := core.NewMapper(core.Defaults(), ids)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RemoveServer(3); err != nil {
			b.Fatal(err)
		}
		if err := m.AddServer(3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJournalAppend measures journal append throughput at `writers`
// concurrent flushers. Group commit coalesces concurrent appends into one
// fsync; the per-record-fsync baseline pays one fsync per append — the
// batching win the durability layer exists to capture (the acceptance bar
// is >=2x at 64 writers; in practice it is far higher).
func benchJournalAppend(b *testing.B, writers int, noGroupCommit bool) {
	b.Helper()
	dir := b.TempDir()
	jnl, _, _, err := journal.Open(dir, journal.Options{NoGroupCommit: noGroupCommit})
	if err != nil {
		b.Fatal(err)
	}
	defer jnl.Close()
	im := sharedisk.Image{Version: 2, Records: map[string]sharedisk.Record{
		"/bench": {Size: 4096, Mode: 0o644, ModTime: time.Unix(1700000000, 0), Owner: "bench"},
	}}
	var next int64
	var mu sync.Mutex
	take := func(n int) (int64, int64) { // [lo, hi) slice of b.N
		mu.Lock()
		defer mu.Unlock()
		lo := next
		next += int64(n)
		return lo, next
	}
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	per := (b.N + writers - 1) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := take(per)
			fs := fmt.Sprintf("vol%02d", w)
			for i := lo; i < hi && i < int64(b.N); i++ {
				if err := jnl.LogFlush(fs, im); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "appends/sec")
	}
	if recs := jnl.Counters().Get(journal.CtrRecords); recs > 0 {
		b.ReportMetric(float64(jnl.Counters().Get(journal.CtrFsyncs))/float64(recs), "fsyncs/op")
	}
}

// BenchmarkJournalAppendGroupCommit: 64 concurrent writers sharing fsyncs.
func BenchmarkJournalAppendGroupCommit(b *testing.B) { benchJournalAppend(b, 64, false) }

// BenchmarkJournalAppendPerRecordFsync: the same load, one fsync per record.
func BenchmarkJournalAppendPerRecordFsync(b *testing.B) { benchJournalAppend(b, 64, true) }

// BenchmarkJournalRecover measures replaying a log of n flush entries —
// the restart cost the snapshot/compaction machinery bounds.
func BenchmarkJournalRecover(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			jnl, _, _, err := journal.Open(dir, journal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			im := sharedisk.Image{Version: 2, Records: map[string]sharedisk.Record{
				"/r": {Size: 1, Owner: "bench"},
			}}
			for i := 0; i < n; i++ {
				if err := jnl.LogFlush(fmt.Sprintf("vol%03d", i%32), im); err != nil {
					b.Fatal(err)
				}
			}
			if err := jnl.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := journal.Recover(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDHTBaseline regenerates extension experiment X11.
func BenchmarkDHTBaseline(b *testing.B) { benchExperiment(b, "dht") }

// BenchmarkClosedLoop regenerates extension experiment X12.
func BenchmarkClosedLoop(b *testing.B) { benchExperiment(b, "closedloop") }

// BenchmarkHysteresisAblation regenerates extension experiment X13.
func BenchmarkHysteresisAblation(b *testing.B) { benchExperiment(b, "hysteresis") }

// BenchmarkGammaAblation regenerates extension experiment X14.
func BenchmarkGammaAblation(b *testing.B) { benchExperiment(b, "gamma") }
