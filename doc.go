// Package anufs is a reproduction of "Handling Heterogeneity in Shared-Disk
// File Systems" (Changxun Wu and Randal Burns, SC'03): the ANU — adaptive,
// non-uniform randomization — load-placement and server-provisioning
// algorithm, the shared-disk metadata cluster it manages, the discrete-event
// simulator that evaluates it, and a harness that regenerates every figure
// in the paper's evaluation.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure at quick scale;
// cmd/expall regenerates them at full paper scale.
package anufs
