set terminal pngcairo size 800,500
set output "phaseshift_anu.png"
set title "Temporal heterogeneity: weights redrawn at T/2 (anu)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "phaseshift_anu.csv" using 1:2 with linespoints title "server 0", \
     "phaseshift_anu.csv" using 1:3 with linespoints title "server 1", \
     "phaseshift_anu.csv" using 1:4 with linespoints title "server 2", \
     "phaseshift_anu.csv" using 1:5 with linespoints title "server 3", \
     "phaseshift_anu.csv" using 1:6 with linespoints title "server 4"
