set terminal pngcairo size 800,500
set output "dht_anu.png"
set title "Consistent hashing vs ANU (anu)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "dht_anu.csv" using 1:2 with linespoints title "server 0", \
     "dht_anu.csv" using 1:3 with linespoints title "server 1", \
     "dht_anu.csv" using 1:4 with linespoints title "server 2", \
     "dht_anu.csv" using 1:5 with linespoints title "server 3", \
     "dht_anu.csv" using 1:6 with linespoints title "server 4"
