set terminal pngcairo size 800,500
set output "fig7_prescient.png"
set title "Figure 7: Dynamic Prescient vs. ANU (DFSTrace) (prescient)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig7_prescient.csv" using 1:2 with linespoints title "server 0", \
     "fig7_prescient.csv" using 1:3 with linespoints title "server 1", \
     "fig7_prescient.csv" using 1:4 with linespoints title "server 2", \
     "fig7_prescient.csv" using 1:5 with linespoints title "server 3", \
     "fig7_prescient.csv" using 1:6 with linespoints title "server 4"
