set terminal pngcairo size 800,500
set output "closedloop_anu.png"
set title "Closed-loop clients (blocking metadata requests) (anu)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "closedloop_anu.csv" using 1:2 with linespoints title "server 0", \
     "closedloop_anu.csv" using 1:3 with linespoints title "server 1", \
     "closedloop_anu.csv" using 1:4 with linespoints title "server 2", \
     "closedloop_anu.csv" using 1:5 with linespoints title "server 3", \
     "closedloop_anu.csv" using 1:6 with linespoints title "server 4"
