set terminal pngcairo size 800,500
set output "aggregator_anu-mean.png"
set title "Aggregator robustness (anu-mean)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "aggregator_anu-mean.csv" using 1:2 with linespoints title "server 0", \
     "aggregator_anu-mean.csv" using 1:3 with linespoints title "server 1", \
     "aggregator_anu-mean.csv" using 1:4 with linespoints title "server 2", \
     "aggregator_anu-mean.csv" using 1:5 with linespoints title "server 3", \
     "aggregator_anu-mean.csv" using 1:6 with linespoints title "server 4"
