set terminal pngcairo size 800,500
set output "scaleout_anu-10servers.png"
set title "Scale-out behaviour (anu-10servers)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "scaleout_anu-10servers.csv" using 1:2 with linespoints title "server 0", \
     "scaleout_anu-10servers.csv" using 1:3 with linespoints title "server 1", \
     "scaleout_anu-10servers.csv" using 1:4 with linespoints title "server 2", \
     "scaleout_anu-10servers.csv" using 1:5 with linespoints title "server 3", \
     "scaleout_anu-10servers.csv" using 1:6 with linespoints title "server 4", \
     "scaleout_anu-10servers.csv" using 1:7 with linespoints title "server 5", \
     "scaleout_anu-10servers.csv" using 1:8 with linespoints title "server 6", \
     "scaleout_anu-10servers.csv" using 1:9 with linespoints title "server 7", \
     "scaleout_anu-10servers.csv" using 1:10 with linespoints title "server 8", \
     "scaleout_anu-10servers.csv" using 1:11 with linespoints title "server 9"
