set terminal pngcairo size 800,500
set output "scaleout_anu-20servers.png"
set title "Scale-out behaviour (anu-20servers)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "scaleout_anu-20servers.csv" using 1:2 with linespoints title "server 0", \
     "scaleout_anu-20servers.csv" using 1:3 with linespoints title "server 1", \
     "scaleout_anu-20servers.csv" using 1:4 with linespoints title "server 2", \
     "scaleout_anu-20servers.csv" using 1:5 with linespoints title "server 3", \
     "scaleout_anu-20servers.csv" using 1:6 with linespoints title "server 4", \
     "scaleout_anu-20servers.csv" using 1:7 with linespoints title "server 5", \
     "scaleout_anu-20servers.csv" using 1:8 with linespoints title "server 6", \
     "scaleout_anu-20servers.csv" using 1:9 with linespoints title "server 7", \
     "scaleout_anu-20servers.csv" using 1:10 with linespoints title "server 8", \
     "scaleout_anu-20servers.csv" using 1:11 with linespoints title "server 9", \
     "scaleout_anu-20servers.csv" using 1:12 with linespoints title "server 10", \
     "scaleout_anu-20servers.csv" using 1:13 with linespoints title "server 11", \
     "scaleout_anu-20servers.csv" using 1:14 with linespoints title "server 12", \
     "scaleout_anu-20servers.csv" using 1:15 with linespoints title "server 13", \
     "scaleout_anu-20servers.csv" using 1:16 with linespoints title "server 14", \
     "scaleout_anu-20servers.csv" using 1:17 with linespoints title "server 15", \
     "scaleout_anu-20servers.csv" using 1:18 with linespoints title "server 16", \
     "scaleout_anu-20servers.csv" using 1:19 with linespoints title "server 17", \
     "scaleout_anu-20servers.csv" using 1:20 with linespoints title "server 18", \
     "scaleout_anu-20servers.csv" using 1:21 with linespoints title "server 19"
