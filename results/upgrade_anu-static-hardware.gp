set terminal pngcairo size 800,500
set output "upgrade_anu-static-hardware.png"
set title "Online hardware upgrade (server 0: speed 1 → 9) (anu-static-hardware)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "upgrade_anu-static-hardware.csv" using 1:2 with linespoints title "server 0", \
     "upgrade_anu-static-hardware.csv" using 1:3 with linespoints title "server 1", \
     "upgrade_anu-static-hardware.csv" using 1:4 with linespoints title "server 2", \
     "upgrade_anu-static-hardware.csv" using 1:5 with linespoints title "server 3", \
     "upgrade_anu-static-hardware.csv" using 1:6 with linespoints title "server 4"
