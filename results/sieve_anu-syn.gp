set terminal pngcairo size 800,500
set output "sieve_anu-syn.png"
set title "Capacity-aware static hashing vs adaptive ANU (anu-syn)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "sieve_anu-syn.csv" using 1:2 with linespoints title "server 0", \
     "sieve_anu-syn.csv" using 1:3 with linespoints title "server 1", \
     "sieve_anu-syn.csv" using 1:4 with linespoints title "server 2", \
     "sieve_anu-syn.csv" using 1:5 with linespoints title "server 3", \
     "sieve_anu-syn.csv" using 1:6 with linespoints title "server 4"
