set terminal pngcairo size 800,500
set output "fig11c_anu-divergent.png"
set title "Figure 11(c): divergent only (anu-divergent)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig11c_anu-divergent.csv" using 1:2 with linespoints title "server 0", \
     "fig11c_anu-divergent.csv" using 1:3 with linespoints title "server 1", \
     "fig11c_anu-divergent.csv" using 1:4 with linespoints title "server 2", \
     "fig11c_anu-divergent.csv" using 1:5 with linespoints title "server 3", \
     "fig11c_anu-divergent.csv" using 1:6 with linespoints title "server 4"
