set terminal pngcairo size 800,500
set output "fig9_prescient.png"
set title "Figure 9: Prescient vs. ANU (synthetic) (prescient)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig9_prescient.csv" using 1:2 with linespoints title "server 0", \
     "fig9_prescient.csv" using 1:3 with linespoints title "server 1", \
     "fig9_prescient.csv" using 1:4 with linespoints title "server 2", \
     "fig9_prescient.csv" using 1:5 with linespoints title "server 3", \
     "fig9_prescient.csv" using 1:6 with linespoints title "server 4"
