set terminal pngcairo size 800,500
set output "fig10a_anu-raw.png"
set title "Figure 10(a): initial results exhibit over-tuning (anu-raw)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig10a_anu-raw.csv" using 1:2 with linespoints title "server 0", \
     "fig10a_anu-raw.csv" using 1:3 with linespoints title "server 1", \
     "fig10a_anu-raw.csv" using 1:4 with linespoints title "server 2", \
     "fig10a_anu-raw.csv" using 1:5 with linespoints title "server 3", \
     "fig10a_anu-raw.csv" using 1:6 with linespoints title "server 4"
