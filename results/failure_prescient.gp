set terminal pngcairo size 800,500
set output "failure_prescient.png"
set title "Failure and recovery under ANU (prescient)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "failure_prescient.csv" using 1:2 with linespoints title "server 0", \
     "failure_prescient.csv" using 1:3 with linespoints title "server 1", \
     "failure_prescient.csv" using 1:4 with linespoints title "server 2", \
     "failure_prescient.csv" using 1:5 with linespoints title "server 3", \
     "failure_prescient.csv" using 1:6 with linespoints title "server 4"
