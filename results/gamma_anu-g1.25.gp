set terminal pngcairo size 800,500
set output "gamma_anu-g1.25.png"
set title "ANU scale-clamp Γ ablation (anu-g1.25)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "gamma_anu-g1.25.csv" using 1:2 with linespoints title "server 0", \
     "gamma_anu-g1.25.csv" using 1:3 with linespoints title "server 1", \
     "gamma_anu-g1.25.csv" using 1:4 with linespoints title "server 2", \
     "gamma_anu-g1.25.csv" using 1:5 with linespoints title "server 3", \
     "gamma_anu-g1.25.csv" using 1:6 with linespoints title "server 4"
