set terminal pngcairo size 800,500
set output "hysteresis_prescient-h0.999.png"
set title "Prescient repack hysteresis ablation (prescient-h0.999)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "hysteresis_prescient-h0.999.csv" using 1:2 with linespoints title "server 0", \
     "hysteresis_prescient-h0.999.csv" using 1:3 with linespoints title "server 1", \
     "hysteresis_prescient-h0.999.csv" using 1:4 with linespoints title "server 2", \
     "hysteresis_prescient-h0.999.csv" using 1:5 with linespoints title "server 3", \
     "hysteresis_prescient-h0.999.csv" using 1:6 with linespoints title "server 4"
