set terminal pngcairo size 800,500
set output "threshold_anu-t0.10.png"
set title "Thresholding parameter sweep (anu-t0.10)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "threshold_anu-t0.10.csv" using 1:2 with linespoints title "server 0", \
     "threshold_anu-t0.10.csv" using 1:3 with linespoints title "server 1", \
     "threshold_anu-t0.10.csv" using 1:4 with linespoints title "server 2", \
     "threshold_anu-t0.10.csv" using 1:5 with linespoints title "server 3", \
     "threshold_anu-t0.10.csv" using 1:6 with linespoints title "server 4"
