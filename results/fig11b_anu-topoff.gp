set terminal pngcairo size 800,500
set output "fig11b_anu-topoff.png"
set title "Figure 11(b): top-off only (anu-topoff)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig11b_anu-topoff.csv" using 1:2 with linespoints title "server 0", \
     "fig11b_anu-topoff.csv" using 1:3 with linespoints title "server 1", \
     "fig11b_anu-topoff.csv" using 1:4 with linespoints title "server 2", \
     "fig11b_anu-topoff.csv" using 1:5 with linespoints title "server 3", \
     "fig11b_anu-topoff.csv" using 1:6 with linespoints title "server 4"
