set terminal pngcairo size 800,500
set output "upgrade_anu-failure-only.png"
set title "Online capacity replacement (server 4 fails; server 0 upgraded 1 → 9) (anu-failure-only)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "upgrade_anu-failure-only.csv" using 1:2 with linespoints title "server 0", \
     "upgrade_anu-failure-only.csv" using 1:3 with linespoints title "server 1", \
     "upgrade_anu-failure-only.csv" using 1:4 with linespoints title "server 2", \
     "upgrade_anu-failure-only.csv" using 1:5 with linespoints title "server 3", \
     "upgrade_anu-failure-only.csv" using 1:6 with linespoints title "server 4"
