set terminal pngcairo size 800,500
set output "movecost_anu-move7.5s.png"
set title "Move-cost sensitivity (anu-move7.5s)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "movecost_anu-move7.5s.csv" using 1:2 with linespoints title "server 0", \
     "movecost_anu-move7.5s.csv" using 1:3 with linespoints title "server 1", \
     "movecost_anu-move7.5s.csv" using 1:4 with linespoints title "server 2", \
     "movecost_anu-move7.5s.csv" using 1:5 with linespoints title "server 3", \
     "movecost_anu-move7.5s.csv" using 1:6 with linespoints title "server 4"
