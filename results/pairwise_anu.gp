set terminal pngcairo size 800,500
set output "pairwise_anu.png"
set title "Centralized vs pairwise decentralized tuning (anu)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "pairwise_anu.csv" using 1:2 with linespoints title "server 0", \
     "pairwise_anu.csv" using 1:3 with linespoints title "server 1", \
     "pairwise_anu.csv" using 1:4 with linespoints title "server 2", \
     "pairwise_anu.csv" using 1:5 with linespoints title "server 3", \
     "pairwise_anu.csv" using 1:6 with linespoints title "server 4"
