set terminal pngcairo size 800,500
set output "fig6_prescient.png"
set title "Figure 6: Server latency for DFSTrace workloads (prescient)"
set xlabel "Time (m)"
set ylabel "Latency (ms)"
set datafile separator ","
set key top left
plot "fig6_prescient.csv" using 1:2 with linespoints title "server 0", \
     "fig6_prescient.csv" using 1:3 with linespoints title "server 1", \
     "fig6_prescient.csv" using 1:4 with linespoints title "server 2", \
     "fig6_prescient.csv" using 1:5 with linespoints title "server 3", \
     "fig6_prescient.csv" using 1:6 with linespoints title "server 4"
