// Command anufsgw is the fleet gateway: a single wire-protocol endpoint
// fronting a sharded anufsd fleet. Clients that do not speak the cluster
// map (plain wire.Client users, netcat) connect here; the gateway routes
// every file-set-addressed request to its owning daemon with a
// fleet.Router, transparently absorbing wrong-owner rejections and live
// handoffs. Map reads are answered from the gateway's cache; assign and
// rebalance are forwarded to the authority.
//
// Usage:
//
//	anufsgw -listen :7470 -authority 127.0.0.1:7460 -http :6070
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/obs"
	"anufs/internal/wire"
)

func main() {
	var (
		listen    = flag.String("listen", ":7470", "TCP listen address for wire clients")
		authority = flag.String("authority", "127.0.0.1:7460", "the fleet authority daemon's wire address")
		budget    = flag.Duration("budget", fleet.DefaultRouteBudget, "per-request routing budget (map refetches + retries)")
		httpAddr  = flag.String("http", "", "observability HTTP address (/metrics, /healthz); empty disables")
	)
	flag.Parse()

	reg := obs.New()
	router, err := fleet.NewRouter(fleet.RouterConfig{
		AuthorityAddr: *authority,
		Budget:        *budget,
		Obs:           reg,
	})
	if err != nil {
		log.Fatalf("anufsgw: %v", err)
	}
	defer router.Close()

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("anufsgw: http: %v", err)
		}
		hsrv := &http.Server{Handler: reg.Handler()}
		go func() { _ = hsrv.Serve(hln) }()
		defer hsrv.Close()
		log.Printf("anufsgw: observability HTTP at %s", hln.Addr())
	}

	gw := newGateway(router, *authority)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("anufsgw: %v", err)
	}
	log.Printf("anufsgw: routing for fleet authority %s at %s (map epoch %d)",
		*authority, ln.Addr(), router.Map().Epoch)
	go gw.acceptLoop(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("anufsgw: shutting down")
	ln.Close()
	gw.close()
}

// gateway accepts wire connections and routes each request through the
// fleet router.
type gateway struct {
	router        *fleet.Router
	authorityAddr string

	mu    sync.Mutex
	auth  *wire.Client // lazy connection for authority-only ops
	conns map[net.Conn]struct{}
}

func newGateway(router *fleet.Router, authorityAddr string) *gateway {
	return &gateway{
		router:        router,
		authorityAddr: authorityAddr,
		conns:         map[net.Conn]struct{}{},
	}
}

func (g *gateway) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		go g.serveConn(conn)
	}
}

func (g *gateway) close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for conn := range g.conns {
		conn.Close()
	}
	if g.auth != nil {
		g.auth.Close()
	}
}

func (g *gateway) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp wire.Response) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = enc.Encode(resp)
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var req wire.Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			send(wire.Response{Err: "bad frame: " + err.Error()})
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			send(g.serve(req))
		}()
	}
}

// serve routes one request. Responses keep the caller's request ID even
// when the routed call failed (the router's Forward already restores it;
// error paths set it here).
func (g *gateway) serve(req wire.Request) wire.Response {
	resp := wire.Response{ID: req.ID}
	fail := func(err error) wire.Response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case wire.OpMap:
		cm, err := g.router.Refresh()
		if err != nil && cm == nil {
			return fail(err)
		}
		encoded, err := cm.Encode()
		if err != nil {
			return fail(err)
		}
		resp.Map = encoded
		resp.Epoch = cm.Epoch
		return resp
	case wire.OpMapEpoch:
		cm, _ := g.router.Refresh()
		if cm == nil {
			return fail(errNoMap)
		}
		resp.Epoch = cm.Epoch
		return resp
	case wire.OpSync:
		if err := g.router.Sync(); err != nil {
			return fail(err)
		}
		return resp
	case wire.OpAssign, wire.OpRebalance:
		// Authority-only: forward to the authority daemon verbatim.
		out, err := g.authorityCall(req)
		if err != nil && out.Err == "" {
			return fail(err) // transport failure, no server response
		}
		out.ID = req.ID
		return out // relays the server's Err string when it set one
	}
	if req.FileSet == "" {
		return fail(errNotRoutable)
	}
	out, err := g.router.Forward(req)
	if err != nil && out.Err == "" {
		return fail(err)
	}
	return out
}

// authorityCall forwards one raw request to the authority. A transport
// failure (no server response at all) drops the cached connection and
// retries once; server-reported errors are returned as-is.
func (g *gateway) authorityCall(req wire.Request) (wire.Response, error) {
	for attempt := 0; ; attempt++ {
		g.mu.Lock()
		c := g.auth
		if c == nil {
			var err error
			c, err = wire.Dial(g.authorityAddr)
			if err != nil {
				g.mu.Unlock()
				return wire.Response{}, err
			}
			c.SetTimeout(2 * time.Minute) // rebalances run many handoffs
			g.auth = c
		}
		g.mu.Unlock()
		out, err := c.Call(req)
		if err == nil || out.Err != "" || attempt > 0 {
			return out, err
		}
		g.mu.Lock()
		if g.auth == c {
			g.auth = nil
		}
		g.mu.Unlock()
		c.Close()
	}
}

type gwError string

func (e gwError) Error() string { return string(e) }

const (
	errNoMap       = gwError("anufsgw: no cluster map available")
	errNotRoutable = gwError("anufsgw: operation has no file set to route by (connect to a daemon directly)")
)
