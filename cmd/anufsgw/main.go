// Command anufsgw is the fleet gateway: a wire-protocol endpoint fronting
// a sharded anufsd fleet. Clients that do not speak the cluster map
// (plain wire.Client users, netcat) connect here; the gateway routes
// every file-set-addressed request to its owning daemon over pipelined
// connection pools (internal/sdk), transparently absorbing wrong-owner
// rejections and live handoffs. Namespace mounts broadcast to every
// daemon, global-path ops resolve then route, and lock sessions map to
// per-daemon sessions — so one gateway looks like one logical server.
//
// Gateways are stateless and scale horizontally: run N of them behind any
// TCP load balancer and point each at its peers with -peers, so they
// share cached cluster maps and converge on new epochs without all
// hitting the authority.
//
// Usage:
//
//	anufsgw -listen :7470 -authority 127.0.0.1:7460 -http :6070
//	anufsgw -listen :7471 -authority 127.0.0.1:7460 -peers 127.0.0.1:7470
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/obs"
	"anufs/internal/sdk"
)

func main() {
	var (
		listen    = flag.String("listen", ":7470", "TCP listen address for wire clients")
		authority = flag.String("authority", "127.0.0.1:7460", "the fleet authority daemon's wire address")
		peers     = flag.String("peers", "", "comma-separated wire addresses of peer gateways (shared map cache sources)")
		authStby  = flag.String("authority-standby", "", "standby authority's wire address, consulted for maps when the authority is down")
		budget    = flag.Duration("budget", fleet.DefaultRouteBudget, "per-request routing budget (map refetches + retries)")
		pool      = flag.Int("pool", sdk.DefaultPoolSize, "pipelined connections per daemon")
		timeout   = flag.Duration("timeout", 0, "per-call deadline toward daemons (0 = wire default)")
		httpAddr  = flag.String("http", "", "observability HTTP address (/metrics, /healthz); empty disables")
		nodeName  = flag.String("node", "", `node identity stamped on trace spans and trace-pull answers (default "gw@<listen>")`)
		slowOver  = flag.Duration("slow-trace", 0, "promote traces slower than this into the durable flight recorder (/debug/slow, SIGQUIT); 0 disables")
	)
	flag.Parse()

	var peerAddrs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerAddrs = append(peerAddrs, p)
		}
	}
	if *authStby != "" {
		// The standby refuses map requests until it promotes, so listing it
		// as a trailing peer is free in steady state and makes the promoted
		// authority reachable without restarting gateways.
		peerAddrs = append(peerAddrs, *authStby)
	}

	reg := obs.New()
	node := *nodeName
	if node == "" {
		node = "gw@" + *listen
	}
	reg.SetNode(node)
	reg.Slow.SetThreshold(*slowOver)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintf(os.Stderr, "anufsgw: slow-trace flight recorder (%s):\n", node)
			reg.Slow.WriteTo(os.Stderr)
		}
	}()
	gw, err := sdk.NewGateway(sdk.GatewayConfig{
		Authority: *authority,
		Peers:     peerAddrs,
		Budget:    *budget,
		PoolSize:  *pool,
		Timeout:   *timeout,
		Obs:       reg,
	})
	if err != nil {
		log.Fatalf("anufsgw: %v", err)
	}
	defer gw.Close()

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("anufsgw: http: %v", err)
		}
		hsrv := &http.Server{Handler: reg.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = hsrv.Serve(hln) }()
		defer hsrv.Close()
		log.Printf("anufsgw: observability HTTP at %s", hln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("anufsgw: %v", err)
	}
	log.Printf("anufsgw: routing for fleet authority %s at %s (map epoch %d, %d peers)",
		*authority, ln.Addr(), gw.Router().Map().Epoch, len(peerAddrs))
	go gw.ServeListener(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("anufsgw: shutting down")
	ln.Close()
}
