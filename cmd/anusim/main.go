// Command anusim runs one of the paper's experiments and emits its data:
// per-server latency series as CSV (one file per policy), a gnuplot script
// per policy, a summary table, and an ASCII rendition for the terminal.
//
// Usage:
//
//	anusim -list
//	anusim -experiment fig6 -scale full -outdir results/
//	anusim -experiment fig10a -ascii
//	anusim -experiment fig6 -tuner-log - | head
//
// -tuner-log streams every simulated delegate round as JSON lines — the
// same structured tuner events the live daemon retains in its decision ring
// (anufsctl tunerlog), stamped with simulation time and policy name instead
// of wall-clock time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"anufs/internal/core"
	"anufs/internal/experiment"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/plot"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		expID    = flag.String("experiment", "", "experiment id (see -list)")
		scale    = flag.String("scale", "full", `experiment scale: "full" (paper scale) or "quick"`)
		outdir   = flag.String("outdir", "", "directory for CSV + gnuplot output (omit to skip files)")
		ascii    = flag.Bool("ascii", true, "render ASCII charts to stdout")
		tunerLog = flag.String("tuner-log", "", `stream structured tuner decision events as JSON lines to this file ("-" = stdout)`)
	)
	flag.Parse()

	if *tunerLog != "" {
		closeLog, err := installTunerLog(*tunerLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anusim:", err)
			os.Exit(1)
		}
		defer closeLog()
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-12s %s\n", id, experiment.Describe(id))
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "anusim: -experiment required (use -list to see options)")
		os.Exit(2)
	}
	sc := experiment.Full
	switch *scale {
	case "full":
	case "quick":
		sc = experiment.Quick
	default:
		fmt.Fprintf(os.Stderr, "anusim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	out, err := experiment.RunByID(*expID, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anusim:", err)
		os.Exit(1)
	}
	if err := emit(out, *outdir, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "anusim:", err)
		os.Exit(1)
	}
}

// installTunerLog points placement's tuner-event sink at a JSONL writer:
// every ANU Reconfigure round during the run becomes one obs.TunerEvent
// line, stamped with simulation time and policy name (live daemons stamp
// wall-clock time instead — the streams are diffable).
func installTunerLog(path string) (func(), error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return nil, err
		}
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	var (
		mu  sync.Mutex
		seq uint64
	)
	placement.SetTunerLog(func(policy string, now float64, res core.UpdateResult) {
		ev := obs.EventFromUpdate(res)
		ev.SimTime = now
		ev.Policy = policy
		mu.Lock()
		seq++
		ev.Seq = seq
		_ = enc.Encode(ev)
		mu.Unlock()
	})
	return func() {
		placement.SetTunerLog(nil)
		mu.Lock()
		_ = w.Flush()
		mu.Unlock()
		if f != os.Stdout {
			_ = f.Close()
		}
	}, nil
}

func emit(out *experiment.Output, outdir string, ascii bool) error {
	fmt.Printf("%s — %s\n%s\n\n", out.ID, out.Title, out.Description)
	rows := make([]plot.SummaryRow, 0, len(out.Runs))
	for _, r := range out.Runs {
		rows = append(rows, plot.SummaryRow{
			Label:   r.Label,
			Summary: r.Result.Series.Summarize(),
			Moves:   r.Result.Moves,
		})
	}
	if err := plot.WriteSummaryTable(os.Stdout, rows); err != nil {
		return err
	}
	for _, n := range out.Notes {
		fmt.Println("note:", n)
	}
	fmt.Println()

	for _, r := range out.Runs {
		if ascii {
			fmt.Printf("--- %s / %s ---\n", out.ID, r.Label)
			fmt.Print(plot.ASCII(r.Result.Series, 72, 14))
			fmt.Println()
		}
		if outdir != "" {
			if err := os.MkdirAll(outdir, 0o755); err != nil {
				return err
			}
			base := fmt.Sprintf("%s_%s", out.ID, r.Label)
			csvPath := filepath.Join(outdir, base+".csv")
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			if err := plot.WriteCSV(f, r.Result.Series); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			gp, err := os.Create(filepath.Join(outdir, base+".gp"))
			if err != nil {
				return err
			}
			title := fmt.Sprintf("%s (%s)", out.Title, r.Label)
			if err := plot.WriteGnuplot(gp, title, base+".csv", base+".png", r.Result.Series.Servers()); err != nil {
				gp.Close()
				return err
			}
			if err := gp.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", csvPath)
		}
	}
	return nil
}
