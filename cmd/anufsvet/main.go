// Command anufsvet is the repository's invariant checker: a
// multichecker over the custom analyzers in internal/analysis
// (simdeterminism, journalkinds, wireops, lockdiscipline,
// hotpathalloc, goroutinelife, errcode — plus the implicit
// allowhygiene checks on //anufs:allow annotations).
//
// It runs two ways:
//
//	anufsvet ./...                     # standalone, like staticcheck
//	go vet -vettool=$(which anufsvet) ./...   # as a vet tool (CI)
//
// Standalone mode loads packages (tests included) via `go list -export`
// — once per run, shared across all analyzers — and prints every
// diagnostic; vettool mode speaks the `go vet` unit protocol and shares
// its build cache, including .vetx fact files for the interprocedural
// hot-path analysis. Suppress a diagnostic at the site with a justified
// annotation:
//
//	//anufs:allow <analyzer> <reason...>
//
// Bare, unknown, or unused allows are themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"anufs/internal/analysis"
)

func main() {
	analyzers := analysis.Registry()
	// The vet protocol (-V=full, -flags, unit.cfg) exits the process
	// when it recognizes the arguments; otherwise fall through to
	// standalone mode.
	analysis.VetMain(os.Args[1:], analyzers)

	fs := flag.NewFlagSet("anufsvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	debug := fs.String("debug", "", "debug flags: 't' reports per-analyzer wall time")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anufsvet [packages]\n   or: go vet -vettool=$(which anufsvet) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	pkgs, err := analysis.Load(".", patterns...)
	loadTime := time.Since(loadStart)
	if err != nil {
		fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
		os.Exit(2)
	}
	// Packages arrive in dependency order, facts-only dependencies
	// included, so each unit's interprocedural lookups are already
	// populated when the analyzers reach it.
	store := analysis.NewFactStore()
	stats := &analysis.RunStats{}
	bad := 0
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			analysis.ComputeFacts(pkg, analyzers, store, stats)
			continue
		}
		diags, err := analysis.Run(pkg, analyzers, store, stats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(analysis.Format(pkg.Fset, d))
			bad++
		}
	}
	if *debug == "t" {
		names := make([]string, 0, len(stats.Elapsed))
		for name := range stats.Elapsed {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return stats.Elapsed[names[i]] > stats.Elapsed[names[j]]
		})
		fmt.Fprintf(os.Stderr, "anufsvet: load+typecheck %v (one go list, shared by all analyzers)\n", loadTime.Round(time.Millisecond))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "anufsvet: %-16s %v\n", name, stats.Elapsed[name].Round(time.Millisecond))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "anufsvet: %d invariant violation(s)\n", bad)
		os.Exit(1)
	}
}
