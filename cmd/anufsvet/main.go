// Command anufsvet is the repository's invariant checker: a
// multichecker over the custom analyzers in internal/analysis
// (simdeterminism, journalkinds, wireops, lockdiscipline,
// hotpathalloc).
//
// It runs two ways:
//
//	anufsvet ./...                     # standalone, like staticcheck
//	go vet -vettool=$(which anufsvet) ./...   # as a vet tool (CI)
//
// Standalone mode loads packages (tests included) via `go list -export`
// and prints every diagnostic; vettool mode speaks the `go vet` unit
// protocol and shares its build cache. Suppress a diagnostic at the
// site with a justified annotation:
//
//	//anufs:allow <analyzer> <reason...>
//
// Bare, unknown, or unused allows are themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"anufs/internal/analysis"
)

func main() {
	analyzers := analysis.Registry()
	// The vet protocol (-V=full, -flags, unit.cfg) exits the process
	// when it recognizes the arguments; otherwise fall through to
	// standalone mode.
	analysis.VetMain(os.Args[1:], analyzers)

	fs := flag.NewFlagSet("anufsvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anufsvet [packages]\n   or: go vet -vettool=$(which anufsvet) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(analysis.Format(pkg.Fset, d))
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "anufsvet: %d invariant violation(s)\n", bad)
		os.Exit(1)
	}
}
