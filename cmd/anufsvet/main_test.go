package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the anufsvet binary once into a temp dir.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "anufsvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building anufsvet: %v\n%s", err, out)
	}
	return bin
}

// TestSelfCheckBadFixture runs the multichecker over a known-bad module
// and asserts each planted violation is reported and the exit status is
// nonzero. If an analyzer is weakened to the point of missing its
// fixture, this test fails.
func TestSelfCheckBadFixture(t *testing.T) {
	bin := buildVet(t)
	badmod, err := filepath.Abs("testdata/badmod")
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = badmod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("anufsvet exited 0 on the known-bad fixture; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("anufsvet: want exit code 1, got %v; output:\n%s", err, out)
	}
	got := string(out)
	for _, want := range []string{
		"time.Now reads the wall clock",
		"time.Sleep reads the wall clock",
		"OpStat is never sent by a client Request literal",
		"unbounded loop in goroutine has no shutdown path",
		"branching on err.Error() text is fragile",
		"call to bufalloc.Fresh allocates in hot path Encode: make allocates at bufalloc.go:8",
		"(simdeterminism)",
		"(wireops)",
		"(goroutinelife)",
		"(errcode)",
		"(hotpathalloc)",
		"6 invariant violation(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("anufsvet output missing %q; got:\n%s", want, got)
		}
	}
}

// TestSelfCheckVettoolMode drives the same fixture through `go vet
// -vettool`, exercising the unit-checker protocol end to end (-V=full,
// -flags, unit.cfg handling).
func TestSelfCheckVettoolMode(t *testing.T) {
	bin := buildVet(t)
	badmod, err := filepath.Abs("testdata/badmod")
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = badmod
	// Isolate GOFLAGS so outer -mod flags don't leak into the fixture.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on the known-bad fixture; output:\n%s", out)
	}
	got := string(out)
	for _, want := range []string{
		"time.Now reads the wall clock",
		"OpStat is never sent by a client Request literal",
		"unbounded loop in goroutine has no shutdown path",
		"branching on err.Error() text is fragile",
		// The cross-package hot-path diagnostic only appears if go vet's
		// unit checker carried bufalloc's allocation facts into hotenc's
		// unit via the vetx files — the end-to-end proof of fact plumbing.
		"call to bufalloc.Fresh allocates in hot path Encode: make allocates at bufalloc.go:8",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("go vet -vettool output missing %q; got:\n%s", want, got)
		}
	}
}

// TestCleanTree asserts the repository itself stays free of violations:
// the tree this test ships with must be clean under its own checker.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzing the whole tree is not short")
	}
	bin := buildVet(t)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("anufsvet found violations in the shipped tree:\n%s", out)
	}
}
