// Package wire plants a one-sided op for the anufsvet self-check.
package wire

// Op enumerates protocol operations.
type Op string

const (
	// OpStat is dispatched by the server but never sent by a client.
	OpStat Op = "stat"
)

// Request is one client frame.
type Request struct {
	Op Op
}

func serve(req Request) int {
	switch req.Op {
	case OpStat:
		return 1
	}
	return 0
}
