// Package hotenc is the caller side of the cross-package hot-path
// fixture: a marked-hot function calls an allocating helper from another
// package, which only the exported allocation facts can reveal.
package hotenc

import "anufs/internal/bufalloc"

// Encode is hot but leans on a cross-package allocating callee — the
// hotpathalloc analyzer must flag the call via imported facts (this is
// the end-to-end proof of the vetx fact plumbing in vettool mode).
//
//anufs:hotpath
func Encode(n int) []byte {
	return bufalloc.Fresh(n)
}
