// Package desim is a deliberately bad fixture: the anufsvet self-check
// asserts that the multichecker reports each planted violation.
package desim

import "time"

// WallClock reads the real clock inside the simulator.
func WallClock() int64 {
	return time.Now().UnixNano()
}

// Stall sleeps on the wall clock.
func Stall() {
	time.Sleep(time.Millisecond)
}
