// Package fleet plants goroutine-lifecycle and error-discipline
// violations for the anufsvet self-check.
package fleet

import (
	"errors"
	"strings"
)

type member struct {
	events chan int
}

// Run launches a goroutine whose unbounded loop has no shutdown path —
// the goroutinelife analyzer must flag the loop.
func (m *member) Run() {
	go func() {
		for {
			<-m.events
		}
	}()
}

// transient branches on error text — the errcode analyzer must flag the
// strings.Contains call.
func transient(err error) bool {
	return strings.Contains(err.Error(), "connection closed")
}

var errSentinel = errors.New("fleet: sentinel")
