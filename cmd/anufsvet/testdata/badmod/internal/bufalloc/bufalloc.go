// Package bufalloc is the callee side of the cross-package hot-path
// fixture: its exported helper allocates, and the hotpathalloc fact
// pipeline must carry that summary to the dependent package.
package bufalloc

// Fresh allocates a new buffer on every call.
func Fresh(n int) []byte {
	return make([]byte, n)
}
