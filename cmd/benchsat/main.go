// Command benchsat measures client-layer saturation against an in-process
// fleet daemon: ops/sec and p99 latency versus client count, for three
// transports over the same server —
//
//	blocking   one line-mode connection, one request per round trip
//	           (every client serializes behind a mutex: the pre-sdk shape)
//	pipelined  the sdk's pooled, tagged-frame connections (many in-flight
//	           requests, out-of-order completion)
//	batched    pipelined plus client-side op coalescing (many small writes
//	           per round trip and per journal group commit)
//
// Output is `go test -bench` format so cmd/bench2json converts it to the
// BENCH_sdk.json artifact in CI: one line per mode/client-count with
// ns/op, plus a companion /p99 line carrying the 99th-percentile latency.
//
// With -check, benchsat exits nonzero unless the batched transport reaches
// -min-speedup times the blocking transport's throughput at the highest
// client count — the regression gate for the sdk's reason to exist.
//
// With -trace, benchsat instead compares the pipelined transport with
// tracing off against the same transport with edge trace minting on
// (client registry: per-op trace IDs, sdk-call spans, trace context on
// every request), emitting BenchmarkTrace lines for the BENCH_trace.json
// artifact; -trace-check fails the run when tracing costs more than
// -max-trace-overhead of the untraced throughput.
//
// Usage:
//
//	benchsat -clients 1,8,64 -dur 400ms -check
//	benchsat -trace -trace-check
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/live"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/sdk"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func main() {
	var (
		clientsFlag = flag.String("clients", "1,8,64", "comma-separated client counts")
		dur         = flag.Duration("dur", 400*time.Millisecond, "measurement window per mode/client-count")
		fileSets    = flag.Int("filesets", 4, "file sets the load spreads over")
		poolSize    = flag.Int("pool", sdk.DefaultPoolSize, "sdk connections per daemon")
		batchDelay  = flag.Duration("batch-delay", 200*time.Microsecond, "sdk batch coalescing delay")
		opCost      = flag.Duration("opcost", 100*time.Microsecond, "server-side cost per queued task (models apply + journal commit; a batch is one task)")
		check       = flag.Bool("check", false, "fail unless batched reaches -min-speedup x blocking at the highest client count")
		minSpeedup  = flag.Float64("min-speedup", 5, "required batched/blocking throughput ratio for -check")

		traceMode   = flag.Bool("trace", false, "measure tracing overhead instead: pipelined with tracing off vs on (BenchmarkTrace lines)")
		traceCheck  = flag.Bool("trace-check", false, "with -trace: fail when traced throughput drops below (1 - -max-trace-overhead) x untraced")
		maxOverhead = flag.Float64("max-trace-overhead", 0.05, "tolerated fractional throughput loss from tracing for -trace-check")
	)
	flag.Parse()
	var clients []int
	for _, s := range strings.Split(*clientsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("benchsat: bad -clients %q", *clientsFlag)
		}
		clients = append(clients, n)
	}
	maxClients := clients[len(clients)-1]

	addr, cleanup := startDaemon(*opCost)
	defer cleanup()
	setup, err := sdk.NewClient(sdk.Options{Authority: addr, Timeout: 10 * time.Second, Budget: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, *fileSets)
	for i := range names {
		names[i] = fmt.Sprintf("bench%02d", i)
		if err := setup.CreateFileSet(names[i]); err != nil {
			log.Fatal(err)
		}
	}
	for w := 0; w < maxClients; w++ {
		if err := setup.Create(names[w%len(names)], workerPath(w), sharedisk.Record{Size: 1}); err != nil {
			log.Fatal(err)
		}
	}
	setup.Close()

	// opsPerSec[mode] at the highest client count, for -check.
	final := map[string]float64{}
	modes := []string{"blocking", "pipelined", "batched"}
	benchName := "BenchmarkSat"
	if *traceMode {
		modes = []string{"pipelined", "traced"}
		benchName = "BenchmarkTrace"
	}
	for _, mode := range modes {
		op, teardown := newTransport(mode, addr, *poolSize, *batchDelay, names)
		for _, n := range clients {
			ops, p99 := run(op, n, *dur)
			elapsed := dur.Seconds()
			opsPerSec := float64(ops) / elapsed
			nsPerOp := elapsed * 1e9 / float64(max64(ops, 1))
			fmt.Printf("%s/%s/c%d \t%d\t%.1f ns/op\n", benchName, mode, n, ops, nsPerOp)
			fmt.Printf("%s/%s/c%d/p99 \t1\t%d ns/op\n", benchName, mode, n, p99.Nanoseconds())
			fmt.Fprintf(os.Stderr, "benchsat: %-9s c=%-3d %10.0f ops/sec  p99=%v\n", mode, n, opsPerSec, p99)
			if n == maxClients {
				final[mode] = opsPerSec
			}
		}
		teardown()
	}

	if *traceMode && *traceCheck {
		ratio := final["traced"] / final["pipelined"]
		floor := 1 - *maxOverhead
		fmt.Fprintf(os.Stderr, "benchsat: traced/untraced at c=%d: %.3f (floor %.3f)\n",
			maxClients, ratio, floor)
		if ratio < floor {
			log.Fatalf("benchsat: tracing costs %.1f%% of untraced throughput, budget is %.1f%%",
				(1-ratio)*100, *maxOverhead*100)
		}
	}
	if *check && !*traceMode {
		ratio := final["batched"] / final["blocking"]
		fmt.Fprintf(os.Stderr, "benchsat: batched/blocking at c=%d: %.1fx (floor %.1fx)\n",
			maxClients, ratio, *minSpeedup)
		if ratio < *minSpeedup {
			log.Fatalf("benchsat: batched transport reached only %.1fx blocking throughput, floor is %.1fx", ratio, *minSpeedup)
		}
	}
}

func workerPath(w int) string { return fmt.Sprintf("/w%03d", w) }

func max64(v int64, floor int64) int64 {
	if v < floor {
		return floor
	}
	return v
}

// startDaemon boots one in-process fleet daemon (cluster, wire server,
// member, authority) and returns its wire address.
func startDaemon(opCost time.Duration) (string, func()) {
	disk := sharedisk.NewStore(0)
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour // no background tuning mid-benchmark
	cfg.OpCost = opCost
	cfg.RetryBudget = time.Second
	clus, err := live.NewCluster(cfg, disk, map[int]float64{0: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv := wire.NewServer(clus)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dial := func(a string) (*wire.Client, error) {
		c, err := wire.Dial(a)
		if err != nil {
			return nil, err
		}
		c.SetTimeout(10 * time.Second)
		return c, nil
	}
	auth, err := fleet.NewAuthority(fleet.AuthorityConfig{
		Daemons: []placement.DaemonInfo{{ID: 0, Addr: addr, Speed: 1}},
		Dial:    dial,
	})
	if err != nil {
		log.Fatal(err)
	}
	member, err := fleet.NewMember(fleet.MemberConfig{
		ID:           0,
		Cluster:      clus,
		Disk:         disk,
		Authority:    auth,
		DrainTimeout: 2 * time.Second,
		PollInterval: 20 * time.Millisecond,
		Dial:         dial,
	}, auth.Map())
	if err != nil {
		log.Fatal(err)
	}
	srv.SetFleet(member)
	member.Start()
	return addr, func() {
		member.Stop()
		srv.Close()
		clus.Stop()
	}
}

// newTransport returns the per-worker op for one mode: worker w updates
// its own pre-created record, so the op is a small metadata write that the
// batched transport may coalesce.
func newTransport(mode, addr string, poolSize int, batchDelay time.Duration, names []string) (func(w int) error, func()) {
	rec := sharedisk.Record{Size: 2}
	switch mode {
	case "blocking":
		c, err := wire.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		c.SetTimeout(10 * time.Second)
		var mu sync.Mutex
		return func(w int) error {
			mu.Lock()
			defer mu.Unlock()
			return c.Update(names[w%len(names)], workerPath(w), rec)
		}, func() { c.Close() }
	case "pipelined", "batched", "traced":
		opts := sdk.Options{
			Authority: addr,
			Timeout:   10 * time.Second,
			Budget:    10 * time.Second,
			PoolSize:  poolSize,
		}
		if mode == "batched" {
			opts.BatchDelay = batchDelay
		}
		if mode == "traced" {
			// Edge trace minting on: every op gets a trace ID, an sdk-call
			// span, and trace context on the wire.
			opts.Obs = obs.New()
		}
		c, err := sdk.NewClient(opts)
		if err != nil {
			log.Fatal(err)
		}
		return func(w int) error {
			return c.Update(names[w%len(names)], workerPath(w), rec)
		}, func() { c.Close() }
	}
	log.Fatalf("benchsat: unknown mode %q", mode)
	return nil, nil
}

// run drives n workers against op for the window and returns total
// completed ops and the p99 op latency.
func run(op func(w int) error, n int, window time.Duration) (int64, time.Duration) {
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	lats := make([][]int64, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				if err := op(w); err != nil {
					log.Fatalf("benchsat: worker %d: %v", w, err)
				}
				lats[w] = append(lats[w], time.Since(start).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[(len(all)*99)/100]
	if (len(all)*99)/100 >= len(all) {
		p99 = all[len(all)-1]
	}
	return int64(len(all)), time.Duration(p99)
}
