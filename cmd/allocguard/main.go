// Command allocguard enforces zero-allocation budgets from `go test
// -bench -benchmem` output. It reads benchmark lines from stdin (or from
// a file argument), selects the benchmarks matching -match, drops any
// whose name matches -exempt, and exits nonzero if any selected line
// reports a nonzero allocs/op — or if nothing matched at all, so a
// renamed benchmark cannot silently dodge the guard.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkEncode -benchmem ./internal/wire/ | allocguard
//	allocguard -match '^BenchmarkEncode' -exempt Baseline bench.txt
//
// The defaults fit this repository's hot-path codec benchmarks: every
// BenchmarkEncode* must be allocation-free except the *Baseline
// variants, which measure encoding/json on purpose for comparison.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	match := flag.String("match", "^BenchmarkEncode", "regexp selecting benchmark names to enforce")
	exempt := flag.String("exempt", "Baseline", "regexp of matched names to skip (intentionally allocating comparisons); empty exempts none")
	flag.Parse()

	matchRE, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocguard: bad -match: %v\n", err)
		os.Exit(2)
	}
	var exemptRE *regexp.Regexp
	if *exempt != "" {
		if exemptRE, err = regexp.Compile(*exempt); err != nil {
			fmt.Fprintf(os.Stderr, "allocguard: bad -exempt: %v\n", err)
			os.Exit(2)
		}
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocguard: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	checked, failed := 0, 0
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[len(fields)-1] != "allocs/op" {
			continue
		}
		// Benchmark names carry a -P GOMAXPROCS suffix; match on the bare name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		if !matchRE.MatchString(name) {
			continue
		}
		if exemptRE != nil && exemptRE.MatchString(name) {
			continue
		}
		checked++
		allocs, err := strconv.ParseInt(fields[len(fields)-2], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocguard: unparseable allocs/op in %q\n", line)
			os.Exit(2)
		}
		if allocs != 0 {
			failed++
			fmt.Fprintf(os.Stderr, "allocguard: %s allocates: %d allocs/op (budget is 0)\n", name, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "allocguard: %v\n", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "allocguard: no benchmark lines matched %q — the guard enforced nothing\n", *match)
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("allocguard: %d benchmark(s) allocation-free\n", checked)
}
