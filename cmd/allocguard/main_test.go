package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildGuard(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "allocguard")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building allocguard: %v\n%s", err, out)
	}
	return bin
}

const sample = `goos: linux
BenchmarkEncodeRequestFast-8        5000000   190.7 ns/op    0 B/op   0 allocs/op
BenchmarkEncodeDecodeRequest-8      3000000   318.3 ns/op    0 B/op   0 allocs/op
BenchmarkEncodeRequestJSONBaseline-8 700000  1535 ns/op    624 B/op   3 allocs/op
BenchmarkUnrelatedThing-8           1000000   100 ns/op     48 B/op   1 allocs/op
PASS
`

func run(t *testing.T, bin string, input string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(input)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running allocguard: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestCleanPass: fast benchmarks at 0 allocs/op pass while the Baseline
// and non-matching lines are ignored.
func TestCleanPass(t *testing.T) {
	out, code := run(t, buildGuard(t), sample)
	if code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "2 benchmark(s) allocation-free") {
		t.Errorf("want 2 checked benchmarks, got:\n%s", out)
	}
}

// TestAllocatingFails: a matched benchmark with nonzero allocs/op fails.
func TestAllocatingFails(t *testing.T) {
	bad := sample + "BenchmarkEncodeEntryFrame-8  1000000  300 ns/op  16 B/op  1 allocs/op\n"
	out, code := run(t, buildGuard(t), bad)
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkEncodeEntryFrame allocates: 1 allocs/op") {
		t.Errorf("missing allocation report:\n%s", out)
	}
}

// TestNoMatchFails: matching nothing is itself a failure, so a renamed
// benchmark cannot silently escape enforcement.
func TestNoMatchFails(t *testing.T) {
	out, code := run(t, buildGuard(t), sample, "-match", "^BenchmarkNope")
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no benchmark lines matched") {
		t.Errorf("missing no-match report:\n%s", out)
	}
}
