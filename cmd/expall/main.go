// Command expall runs every registered experiment and writes the complete
// reproduction artifact set: per-run CSVs and gnuplot scripts plus a
// SUMMARY.md with one table per experiment — the data EXPERIMENTS.md is
// built from.
//
// Usage:
//
//	expall -outdir results -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"anufs/internal/experiment"
	"anufs/internal/plot"
)

func main() {
	var (
		outdir = flag.String("outdir", "results", "output directory")
		scale  = flag.String("scale", "full", `"full" or "quick"`)
	)
	flag.Parse()
	sc := experiment.Full
	if *scale == "quick" {
		sc = experiment.Quick
	}
	if err := run(*outdir, sc); err != nil {
		fmt.Fprintln(os.Stderr, "expall:", err)
		os.Exit(1)
	}
}

func run(outdir string, sc experiment.Scale) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	summary, err := os.Create(filepath.Join(outdir, "SUMMARY.md"))
	if err != nil {
		return err
	}
	defer summary.Close()
	fmt.Fprintf(summary, "# anufs experiment summary (scale: %s)\n\n", sc)

	// Experiments are independent and deterministic, so run them across the
	// cores and emit in registry order.
	ids := experiment.IDs()
	type done struct {
		out *experiment.Output
		dur time.Duration
		err error
	}
	results := make([]done, len(ids))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			out, err := experiment.RunByID(id, sc)
			results[i] = done{out: out, dur: time.Since(t0), err: err}
		}(i, id)
	}
	wg.Wait()

	for i, id := range ids {
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", id, results[i].err)
		}
		out := results[i].out
		fmt.Printf("%-12s done in %s\n", id, results[i].dur.Round(time.Millisecond))

		fmt.Fprintf(summary, "## %s — %s\n\n%s\n\n", out.ID, out.Title, out.Description)
		rows := make([]plot.SummaryRow, 0, len(out.Runs))
		for _, r := range out.Runs {
			rows = append(rows, plot.SummaryRow{
				Label:   r.Label,
				Summary: r.Result.Series.Summarize(),
				Moves:   r.Result.Moves,
			})
		}
		if err := plot.WriteSummaryTable(summary, rows); err != nil {
			return err
		}
		for _, n := range out.Notes {
			fmt.Fprintf(summary, "\n- %s", n)
		}
		fmt.Fprintln(summary)
		fmt.Fprintln(summary)

		for _, r := range out.Runs {
			base := fmt.Sprintf("%s_%s", out.ID, r.Label)
			f, err := os.Create(filepath.Join(outdir, base+".csv"))
			if err != nil {
				return err
			}
			if err := plot.WriteCSV(f, r.Result.Series); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			gp, err := os.Create(filepath.Join(outdir, base+".gp"))
			if err != nil {
				return err
			}
			if err := plot.WriteGnuplot(gp, out.Title+" ("+r.Label+")",
				base+".csv", base+".png", r.Result.Series.Servers()); err != nil {
				gp.Close()
				return err
			}
			if err := gp.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("summary written to %s\n", filepath.Join(outdir, "SUMMARY.md"))
	return nil
}
