// Command tracegen generates workload traces in the anufs text format:
// either the DFSTrace-like trace (the paper's trace-driven experiments) or
// the paper's synthetic Poisson workload.
//
// Usage:
//
//	tracegen -kind dfslike -seed 2003 -out dfs.trace
//	tracegen -kind synthetic -filesets 500 -requests 100000 -out syn.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"anufs/internal/trace"
	"anufs/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "dfslike", `"dfslike" or "synthetic"`)
		seed     = flag.Uint64("seed", 2003, "generator seed")
		out      = flag.String("out", "", "output path (default stdout)")
		fileSets = flag.Int("filesets", 0, "override file-set count")
		requests = flag.Int("requests", 0, "override request count")
		duration = flag.Float64("duration", 0, "override duration (seconds)")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "dfslike":
		cfg := trace.DefaultDFSLike(*seed)
		if *fileSets > 0 {
			cfg.FileSets = *fileSets
		}
		if *requests > 0 {
			cfg.Requests = *requests
		}
		if *duration > 0 {
			cfg.Duration = *duration
		}
		tr = trace.GenerateDFSLike(cfg)
	case "synthetic":
		cfg := workload.DefaultSynthetic(*seed)
		if *fileSets > 0 {
			cfg.FileSets = *fileSets
		}
		if *requests > 0 {
			cfg.Requests = *requests
		}
		if *duration > 0 {
			cfg.Duration = *duration
		}
		tr = workload.Generate(cfg)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d requests, %d file sets, %.0f s\n",
		tr.Len(), len(tr.FileSets()), tr.Duration())
}
