package main

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/sdk"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestFleetTraceEndToEnd is the tracing tentpole's acceptance test: one
// batched durable write enters at a gateway, gets rerouted off a stale
// owner mid-flight, lands on the journaling authority daemon, and is
// log-shipped to a standby — and a single fleet trace pull stitches every
// hop of that journey into one timeline:
//
//	gateway edge → route-retry (wrong-owner) → owner queue-wait/apply →
//	journal-commit-wait → standby-ack
//
// all under the one trace ID the gateway handed back to the client.
func TestFleetTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	d0Addr, d1Addr, sAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	d0Dir, sDir := t.TempDir(), t.TempDir()
	roster := fmt.Sprintf("0=%s@1,1=%s@1", d0Addr, d1Addr)
	common := "-filesets 4 -speeds 1 -window 1h -opcost 0 -checkpoint-interval 0"

	// Standby first so the primary's sync-gated appends can ack at once.
	standby := startDaemonArgs(t, fmt.Sprintf(
		"-standby -listen %s -journal-dir %s -node standby %s", sAddr, sDir, common))
	t.Cleanup(func() {
		standby.Process.Kill()
		standby.Wait()
	})
	waitListening(t, sAddr)

	// Daemon 0: fleet authority, journaling, sync-replicating to the
	// standby — the hop where apply, journal commit, and shipping happen.
	for _, args := range []string{
		fmt.Sprintf("-listen %s -fleet 0 -fleet-authority %s -journal-dir %s -replicate-to %s -replicate-sync -sync-timeout 10s %s",
			d0Addr, roster, d0Dir, sAddr, common),
		fmt.Sprintf("-listen %s -fleet 1 -fleet-join %s %s", d1Addr, d0Addr, common),
	} {
		cmd := startDaemonArgs(t, args)
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	waitListening(t, d0Addr)
	waitListening(t, d1Addr)

	// An in-process gateway with its own registry is the traced edge.
	reg := obs.New()
	reg.SetNode("gw")
	gw, err := sdk.NewGateway(sdk.GatewayConfig{Authority: d0Addr, Budget: 15 * time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		t.Fatal(err)
	}
	gwAddr := ln.Addr().String()
	go gw.ServeListener(ln)
	t.Cleanup(func() {
		ln.Close()
		gw.Close()
	})

	// Pick a file set the initial map places on daemon 1.
	ac := dialRetry(t, d0Addr)
	defer ac.Close()
	ac.SetTimeout(15 * time.Second)
	encoded, err := ac.ClusterMap()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := placement.DecodeClusterMap(encoded)
	if err != nil {
		t.Fatal(err)
	}
	fs := ""
	for name, owner := range cm.Assign {
		if owner == 1 {
			fs = name
			break
		}
	}
	if fs == "" {
		t.Fatalf("no file set assigned to daemon 1 in %+v", cm.Assign)
	}

	// Warm the gateway's map cache on that file set, then move it to
	// daemon 0 directly at the authority — NOT through the gateway, so its
	// cache stays stale and the next write must reroute mid-flight.
	wc := dialRetry(t, gwAddr)
	defer wc.Close()
	wc.SetTimeout(15 * time.Second)
	if err := wc.Create(fs, "/warm", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Assign(fs, 0); err != nil {
		t.Fatal(err)
	}

	// The traced request: a durable batch through the stale gateway.
	items := []wire.BatchItem{
		{Op: wire.OpCreate, Path: "/traced-a", Record: &sharedisk.Record{Size: 2}},
		{Op: wire.OpCreate, Path: "/traced-b", Record: &sharedisk.Record{Size: 3}},
	}
	results, err := wc.Batch(fs, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("batch item %d: %s", i, r.Err)
		}
	}
	trace := wc.LastTrace()
	if trace == 0 {
		t.Fatal("gateway returned no trace ID for the batch")
	}

	// Pull the trace from every hop and stitch. The standby absorbs the
	// shipped entries asynchronously of our view, so poll until its ack
	// span shows up (sync replication makes this quick).
	nodes := []fleet.TraceNode{
		{Name: "gw", Addr: gwAddr},
		{Name: "daemon-0", Addr: d0Addr},
		{Name: "daemon-1", Addr: d1Addr},
		{Name: "standby", Addr: sAddr},
	}
	var ft *obs.FleetTrace
	deadline := time.Now().Add(10 * time.Second)
	for {
		ft = obs.Stitch(trace, fleet.PullTrace(trace, nodes, nil))
		if hasSpan(ft, "standby-ack") || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	var sb strings.Builder
	ft.WriteTimeline(&sb)
	t.Logf("stitched timeline:\n%s", sb.String())

	for _, h := range ft.Hops {
		if h.Err != "" {
			t.Fatalf("hop %s failed to answer the trace pull: %s", h.Node, h.Err)
		}
	}
	for _, name := range []string{
		"gateway",             // the edge span, on node gw
		"route-retry",         // the stale-map reroute, on node gw
		"wire",                // the owner's wire handler
		"queue-wait", "apply", // the owner's server queue
		"journal-commit-wait", // the durable group commit
		"standby-ack",         // the standby applied the shipped entries
	} {
		if !hasSpan(ft, name) {
			t.Fatalf("stitched trace %d is missing a %q span:\n%s", trace, name, sb.String())
		}
	}
	// The reroute must name its reason, and the hops must carry the node
	// identities the stitcher keyed on.
	byName := map[string]obs.Span{}
	for _, s := range ft.Spans {
		if s.Trace == trace {
			byName[s.Name] = s
		}
	}
	if rr := byName["route-retry"]; rr.Op != "wrong-owner" || rr.Node != "gw" {
		t.Fatalf("route-retry span = %+v (want reason wrong-owner on node gw)", rr)
	}
	if ga := byName["gateway"]; ga.Node != "gw" || ga.Op != string(wire.OpBatch) {
		t.Fatalf("gateway span = %+v", ga)
	}
	if sa := byName["standby-ack"]; sa.Node != "standby" || sa.Server != 0 {
		t.Fatalf("standby-ack span = %+v (want originating daemon 0 on node standby)", sa)
	}
	if ap := byName["apply"]; ap.Node != "daemon-0" {
		t.Fatalf("apply span ran on %q, want daemon-0 (the post-reroute owner)", ap.Node)
	}
}

func hasSpan(ft *obs.FleetTrace, name string) bool {
	for _, s := range ft.Spans {
		if s.Name == name {
			return true
		}
	}
	return false
}
