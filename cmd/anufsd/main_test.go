package main

import "testing"

func TestParseSpeeds(t *testing.T) {
	m, err := parseSpeeds("1,3,5")
	if err != nil || len(m) != 3 || m[0] != 1 || m[2] != 5 {
		t.Fatalf("parseSpeeds = %v, %v", m, err)
	}
	if _, err := parseSpeeds(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseSpeeds("1,abc"); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := parseSpeeds("1,-2"); err == nil {
		t.Fatal("negative accepted")
	}
	if m, err := parseSpeeds(" 2 , 4 "); err != nil || m[1] != 4 {
		t.Fatalf("whitespace handling: %v, %v", m, err)
	}
}
