package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// fleetState is what -fleet mode resolves to before the cluster starts:
// the authority (when hosted here), the initial cluster map, and the
// authority address joiners keep polling.
type fleetState struct {
	id            int
	auth          *fleet.Authority
	authorityAddr string
	initial       *placement.ClusterMap
}

// assigned lists the file sets the initial map gives this daemon.
func (f *fleetState) assigned() []string { return f.initial.FileSetsOf(f.id) }

// setupFleet resolves the fleet flags. Exactly one of roster (host the
// authority) or join (fetch from an authority) must be set when id >= 0.
// nFileSets seeds the authority's initial map with vol00..vol(n-1).
func setupFleet(id int, roster, join string, nFileSets int) (*fleetState, error) {
	if id < 0 {
		if roster != "" || join != "" {
			return nil, fmt.Errorf("-fleet-authority/-fleet-join need -fleet <id>")
		}
		return nil, nil
	}
	if (roster == "") == (join == "") {
		return nil, fmt.Errorf("fleet mode needs exactly one of -fleet-authority or -fleet-join")
	}
	if roster != "" {
		daemons, err := parseRoster(roster)
		if err != nil {
			return nil, err
		}
		found := false
		for _, d := range daemons {
			if d.ID == id {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("-fleet-authority roster does not include this daemon (id %d)", id)
		}
		names := make([]string, 0, nFileSets)
		for i := 0; i < nFileSets; i++ {
			names = append(names, fmt.Sprintf("vol%02d", i))
		}
		auth, err := fleet.NewAuthority(fleet.AuthorityConfig{Daemons: daemons, FileSets: names})
		if err != nil {
			return nil, err
		}
		return &fleetState{id: id, auth: auth, initial: auth.Map()}, nil
	}
	cm, err := fetchInitialMap(join, 30*time.Second)
	if err != nil {
		return nil, err
	}
	return &fleetState{id: id, authorityAddr: join, initial: cm}, nil
}

// parseRoster parses "id=addr@speed,id=addr@speed,..." — the static fleet
// membership the authority daemon is started with.
func parseRoster(s string) ([]placement.DaemonInfo, error) {
	var out []placement.DaemonInfo
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		at := strings.LastIndexByte(part, '@')
		if eq < 0 || at < eq {
			return nil, fmt.Errorf("bad roster entry %q (want id=addr@speed)", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(part[:eq]))
		if err != nil {
			return nil, fmt.Errorf("bad roster id in %q", part)
		}
		speed, err := strconv.ParseFloat(strings.TrimSpace(part[at+1:]), 64)
		if err != nil || speed <= 0 {
			return nil, fmt.Errorf("bad roster speed in %q", part)
		}
		addr := strings.TrimSpace(part[eq+1 : at])
		if addr == "" {
			return nil, fmt.Errorf("bad roster addr in %q", part)
		}
		out = append(out, placement.DaemonInfo{ID: id, Addr: addr, Speed: speed})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty fleet roster")
	}
	return out, nil
}

// fetchInitialMap polls the authority for the cluster map until it answers
// (joining daemons usually start while the authority is still coming up).
func fetchInitialMap(addr string, patience time.Duration) (*placement.ClusterMap, error) {
	deadline := time.Now().Add(patience)
	backoff := wire.NewBackoff(50*time.Millisecond, time.Second)
	var lastErr error
	for {
		cm, err := fetchMapOnce(addr)
		if err == nil {
			return cm, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet join: no map from %s after %s: %w", addr, patience, lastErr)
		}
		time.Sleep(backoff.Next())
	}
}

func fetchMapOnce(addr string) (*placement.ClusterMap, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)
	encoded, err := c.ClusterMap()
	if err != nil {
		return nil, err
	}
	return placement.DecodeClusterMap(encoded)
}
