package main

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// fleetState is what -fleet mode resolves to before the cluster starts:
// the authority (when hosted here), the initial cluster map, the authority
// address joiners keep heartbeating, and the membership identity this
// daemon advertises.
type fleetState struct {
	id            int
	auth          *fleet.Authority
	authorityAddr string
	standbyAddr   string
	advertise     string // set only in join mode: enables the heartbeat
	speed         float64
	journalDir    string
	fenceAfter    time.Duration
	pollInterval  time.Duration
	initial       *placement.ClusterMap
}

// fleetOptions carries the dynamic-membership knobs from main into
// setupFleet.
type fleetOptions struct {
	advertise  string
	speed      float64
	lease      time.Duration
	journalDir string
	standby    string
	persist    func(*placement.ClusterMap) error
	// persistVolumes journals the volume registry (the __volumes/registry
	// image) the way persist journals the map; resumeVols/resumeVolsVer
	// seed the registry from a recovered image, so quotas survive both an
	// authority restart and a standby promotion.
	persistVolumes func(vols []volume.Info, version uint64) error
	resumeVols     []volume.Info
	resumeVolsVer  uint64
}

// assigned lists the file sets the initial map gives this daemon.
func (f *fleetState) assigned() []string { return f.initial.FileSetsOf(f.id) }

// setupFleet resolves the fleet flags. Exactly one of roster (host the
// authority) or join (register with an authority) must be set when id >= 0.
// nFileSets seeds the authority's initial map with vol00..vol(n-1).
func setupFleet(id int, roster, join string, nFileSets int, opts fleetOptions) (*fleetState, error) {
	if id < 0 {
		if roster != "" || join != "" {
			return nil, fmt.Errorf("-fleet-authority/-fleet-join need -fleet <id>")
		}
		return nil, nil
	}
	if (roster == "") == (join == "") {
		return nil, fmt.Errorf("fleet mode needs exactly one of -fleet-authority or -fleet-join")
	}
	if roster != "" {
		daemons, err := parseRoster(roster)
		if err != nil {
			return nil, err
		}
		found := false
		for _, d := range daemons {
			if d.ID == id {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("-fleet-authority roster does not include this daemon (id %d)", id)
		}
		names := make([]string, 0, nFileSets)
		for i := 0; i < nFileSets; i++ {
			names = append(names, fmt.Sprintf("vol%02d", i))
		}
		auth, err := fleet.NewAuthority(fleet.AuthorityConfig{
			Daemons:              daemons,
			FileSets:             names,
			SelfID:               id,
			Lease:                opts.lease,
			Persist:              opts.persist,
			PersistVolumes:       opts.persistVolumes,
			ResumeVolumes:        opts.resumeVols,
			ResumeVolumesVersion: opts.resumeVolsVer,
		})
		if err != nil {
			return nil, err
		}
		return &fleetState{
			id:         id,
			auth:       auth,
			speed:      opts.speed,
			journalDir: opts.journalDir,
			initial:    auth.Map(),
		}, nil
	}
	cm, err := joinFleet(join, id, opts, 30*time.Second)
	if err != nil {
		return nil, err
	}
	// When the authority runs a liveness lease (-fleet-lease is given to
	// every daemon), heartbeat several times per lease so one dropped probe
	// does not read as death, and self-fence at HALF the lease: the fence
	// must trip strictly before the authority — which declares death after
	// one full lease of silence — can replay our journal and reassign our
	// file sets. A daemon that kept acking past the replay point would be
	// accepting writes the new owner never sees (the clocks only measure
	// local intervals from the same exchange, so half a lease of margin
	// absorbs the probe round trip). The cost of fencing early is a
	// transient availability dip on a false alarm; the cost of fencing
	// late is silent data loss.
	var fence, poll time.Duration
	if opts.lease > 0 {
		fence = opts.lease / 2
		poll = opts.lease / 8
		if poll < 50*time.Millisecond {
			poll = 50 * time.Millisecond
		}
	}
	return &fleetState{
		id:            id,
		authorityAddr: join,
		standbyAddr:   opts.standby,
		advertise:     opts.advertise,
		speed:         opts.speed,
		journalDir:    opts.journalDir,
		fenceAfter:    fence,
		pollInterval:  poll,
		initial:       cm,
	}, nil
}

// resumeFleet rebuilds the fleet authority from a map image a promoted
// standby replayed out of the shipped journal: this process takes over the
// dead primary's daemon ID (its file sets are warm in the same store),
// advertises its own address in the map, and resumes issuing epochs from a
// floor safely above anything the primary could have published.
func resumeFleet(im sharedisk.Image, advertise string, opts fleetOptions) (*fleetState, error) {
	cm, err := fleet.DecodeMapImage(im)
	if err != nil {
		return nil, err
	}
	self := cm.Authority
	patched := *cm
	patched.Daemons = append([]placement.DaemonInfo(nil), cm.Daemons...)
	found := false
	for i := range patched.Daemons {
		if patched.Daemons[i].ID == self {
			patched.Daemons[i].Addr = advertise
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("fleet resume: map (epoch %d) does not contain its authority daemon %d", cm.Epoch, self)
	}
	auth, err := fleet.NewAuthority(fleet.AuthorityConfig{
		Resume:               &patched,
		SelfID:               self,
		EpochFloor:           cm.Epoch + fleet.PromotionEpochJump,
		Lease:                opts.lease,
		Persist:              opts.persist,
		PersistVolumes:       opts.persistVolumes,
		ResumeVolumes:        opts.resumeVols,
		ResumeVolumesVersion: opts.resumeVolsVer,
		AnnounceOnStart:      true,
	})
	if err != nil {
		return nil, err
	}
	return &fleetState{
		id:         self,
		auth:       auth,
		speed:      opts.speed,
		journalDir: opts.journalDir,
		initial:    auth.Map(),
	}, nil
}

// parseRoster parses "id=addr@speed,id=addr@speed,..." — the fleet
// membership the authority daemon is started with (daemons may also join
// later over the wire).
func parseRoster(s string) ([]placement.DaemonInfo, error) {
	var out []placement.DaemonInfo
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		at := strings.LastIndexByte(part, '@')
		if eq < 0 || at < eq {
			return nil, fmt.Errorf("bad roster entry %q (want id=addr@speed)", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(part[:eq]))
		if err != nil {
			return nil, fmt.Errorf("bad roster id in %q", part)
		}
		speed, err := strconv.ParseFloat(strings.TrimSpace(part[at+1:]), 64)
		if err != nil || speed <= 0 {
			return nil, fmt.Errorf("bad roster speed in %q", part)
		}
		addr := strings.TrimSpace(part[eq+1 : at])
		if addr == "" {
			return nil, fmt.Errorf("bad roster addr in %q", part)
		}
		out = append(out, placement.DaemonInfo{ID: id, Addr: addr, Speed: speed})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty fleet roster")
	}
	return out, nil
}

// joinFleet registers this daemon with the authority (idempotent — a
// roster-listed daemon re-joining with the same identity changes nothing)
// and returns the cluster map the join reply carries. It retries until the
// authority answers: joining daemons usually start while the authority is
// still coming up.
func joinFleet(addr string, id int, opts fleetOptions, patience time.Duration) (*placement.ClusterMap, error) {
	deadline := time.Now().Add(patience)
	backoff := wire.NewBackoff(50*time.Millisecond, time.Second)
	var lastErr error
	for {
		cm, err := joinOnce(addr, id, opts)
		if err == nil {
			return cm, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet join: no map from %s after %s: %w", addr, patience, lastErr)
		}
		time.Sleep(backoff.Next())
	}
}

func joinOnce(addr string, id int, opts fleetOptions) (*placement.ClusterMap, error) {
	c, err := wire.DialTimeout(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_, encoded, err := c.Join(id, opts.advertise, opts.speed, opts.journalDir)
	if err != nil {
		return nil, err
	}
	return placement.DecodeClusterMap(encoded)
}

// defaultAdvertise derives a dialable address from the -listen flag when
// -fleet-advertise is not given: a wildcard host becomes loopback, which
// is right for single-host fleets (multi-host deployments must advertise
// explicitly).
func defaultAdvertise(listen string) string {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
