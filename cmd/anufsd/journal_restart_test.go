package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestMain lets this test binary double as the daemon: when ANUFSD_ARGS is
// set, it runs main() with those arguments instead of the tests. The
// restart test uses that to SIGKILL a real anufsd process — a crash no
// in-process test can simulate faithfully.
func TestMain(m *testing.M) {
	if args := os.Getenv("ANUFSD_ARGS"); args != "" {
		os.Args = append([]string{"anufsd"}, strings.Fields(args)...)
		main()
		return
	}
	os.Exit(m.Run())
}

// freeAddr grabs a free localhost port (small race with the daemon binding
// it, acceptable in tests).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches this test binary as anufsd and returns the process.
func startDaemon(t *testing.T, addr, journalDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), fmt.Sprintf(
		"ANUFSD_ARGS=-listen %s -journal-dir %s -filesets 4 -speeds 1,2 -window 1h -opcost 0 -checkpoint-interval 0",
		addr, journalDir))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// dialRetry waits for the daemon to come up.
func dialRetry(t *testing.T, addr string) *wire.Client {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := wire.Dial(addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSIGKILLRestartRecovers is the full crash-durability loop over the
// wire: start anufsd with a journal, write metadata, sync, SIGKILL the
// process, restart it on the same journal, and require every synced record
// back.
func TestSIGKILLRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	journalDir := t.TempDir()
	addr := freeAddr(t)

	daemon := startDaemon(t, addr, journalDir)
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()
	c := dialRetry(t, addr)

	type entry struct {
		fs, path string
		size     int64
	}
	var synced []entry
	for i := 0; i < 4; i++ {
		for k := 0; k < 3; k++ {
			e := entry{fs: fmt.Sprintf("vol%02d", i), path: fmt.Sprintf("/f%d", k), size: int64(100*i + k)}
			if err := c.Create(e.fs, e.path, sharedisk.Record{Size: e.size, Owner: "crashtest"}); err != nil {
				t.Fatal(err)
			}
			synced = append(synced, e)
		}
	}
	// Durability barrier: everything above must survive the SIGKILL.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// Journal counters prove entries were appended and fsynced.
	js, err := c.JournalStats()
	if err != nil {
		t.Fatal(err)
	}
	if js["journal_records_appended"] == 0 || js["journal_fsyncs"] == 0 {
		t.Fatalf("journal counters empty after sync: %v", js)
	}
	// A write after the barrier may or may not survive; it must not be
	// required to.
	_ = c.Create("vol00", "/unsynced", sharedisk.Record{Size: 1})
	c.Close()

	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	daemon.Wait()
	killed = true

	addr2 := freeAddr(t)
	daemon2 := startDaemon(t, addr2, journalDir)
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()
	c2 := dialRetry(t, addr2)
	defer c2.Close()

	for _, e := range synced {
		rec, err := c2.Stat(e.fs, e.path)
		if err != nil {
			t.Fatalf("synced record %s%s lost across SIGKILL: %v", e.fs, e.path, err)
		}
		if rec.Size != e.size || rec.Owner != "crashtest" {
			t.Fatalf("record %s%s recovered wrong: %+v", e.fs, e.path, rec)
		}
	}
	// Recovery stats are exported after restart.
	js2, err := c2.JournalStats()
	if err != nil {
		t.Fatal(err)
	}
	if js2["journal_recovered_entries"] == 0 {
		t.Fatalf("restart reported no recovered entries: %v", js2)
	}
	// The restarted daemon keeps serving writes.
	if err := c2.Create("vol01", "/postrestart", sharedisk.Record{Size: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Sync(); err != nil {
		t.Fatal(err)
	}
}
