package main

import (
	"fmt"
	"net"
	"os/exec"
	"testing"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/placement"
	"anufs/internal/sdk"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func fetchClusterMap(t *testing.T, c *wire.Client) *placement.ClusterMap {
	t.Helper()
	encoded, err := c.ClusterMap()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := placement.DecodeClusterMap(encoded)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestFleetDaemonDeathJournalFailover is the tentpole's process-level
// contract for a dying member: run a three-daemon journaled fleet behind a
// real gateway, push synced writes, SIGKILL a non-authority daemon, and
// require that (a) the authority's heartbeat detector reassigns its file
// sets to survivors, (b) the survivors replay the victim's journal from
// shared disk so ZERO acked writes are lost, and (c) a fourth daemon can
// then join the shrunken fleet live and take load.
func TestFleetDaemonDeathJournalFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	lease := "500ms"

	// Daemon 0 hosts the authority with itself as the only roster entry;
	// daemons 1 and 2 join dynamically — the elastic path, not the static
	// roster.
	common := "-filesets 6 -speeds 1,2 -window 1h -opcost 0 -checkpoint-interval 0 -fsync-interval 1ms"
	cmds := make([]*exec.Cmd, 3)
	cmds[0] = startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 0 -fleet-authority 0=%s@1 -fleet-lease %s -journal-dir %s %s",
		addrs[0], addrs[0], lease, dirs[0], common))
	cmds[1] = startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 1 -fleet-join %s -fleet-speed 2 -fleet-lease %s -journal-dir %s %s",
		addrs[1], addrs[0], lease, dirs[1], common))
	cmds[2] = startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 2 -fleet-join %s -fleet-speed 4 -fleet-lease %s -journal-dir %s %s",
		addrs[2], addrs[0], lease, dirs[2], common))
	for i := range cmds {
		cmd := cmds[i]
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}
	for _, a := range addrs {
		waitListening(t, a)
	}

	ac := dialRetry(t, addrs[0])
	defer ac.Close()
	ac.SetTimeout(30 * time.Second)

	// Both joiners registered?
	deadline := time.Now().Add(10 * time.Second)
	for {
		cm := fetchClusterMap(t, ac)
		if len(cm.Daemons) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiners never registered: map %+v", cm)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Spread the load onto the newcomers.
	if _, err := ac.Rebalance(); err != nil {
		t.Fatalf("rebalance onto joined daemons: %v", err)
	}

	// Real gateway in front of the fleet; all traffic goes through it.
	gw, err := sdk.NewGateway(sdk.GatewayConfig{Authority: addrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.ServeListener(gln)
	gc := dialRetry(t, gln.Addr().String())
	defer gc.Close()
	gc.SetTimeout(30 * time.Second)

	// Synced write workload: everything in acked was covered by a Sync()
	// that returned (checkpointed into every daemon's journal) before the
	// kill.
	type entry struct {
		fs, path string
		size     int64
	}
	var acked []entry
	for round := 0; round < 4; round++ {
		for i := 0; i < 6; i++ {
			e := entry{fs: fmt.Sprintf("vol%02d", i), path: fmt.Sprintf("/r%d", round), size: int64(10*round + i)}
			if err := gc.Create(e.fs, e.path, sharedisk.Record{Size: e.size, Owner: "elastic"}); err != nil {
				t.Fatalf("create %s%s: %v", e.fs, e.path, err)
			}
		}
		if err := gc.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			acked = append(acked, entry{fs: fmt.Sprintf("vol%02d", i), path: fmt.Sprintf("/r%d", round), size: int64(10*round + i)})
		}
	}

	// Pick the non-authority daemon owning the most file sets and murder it.
	cm := fetchClusterMap(t, ac)
	victim, most := -1, 0
	for _, d := range cm.Daemons {
		if d.ID == 0 {
			continue
		}
		if n := len(cm.FileSetsOf(d.ID)); victim == -1 || n > most {
			victim, most = d.ID, n
		}
	}
	if victim == -1 || most == 0 {
		t.Fatalf("no non-authority daemon owns file sets after rebalance: %+v", cm.Assign)
	}
	t.Logf("killing daemon %d (owns %d of 6 file sets)", victim, most)
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmds[victim].Process.Wait()
	killedAt := time.Now()

	// The detector (lease 500ms, startup grace 4x) must reassign every one
	// of the victim's file sets to survivors.
	deadline = time.Now().Add(20 * time.Second)
	for {
		cm = fetchClusterMap(t, ac)
		_, present := cm.Daemon(victim)
		orphans := len(cm.FileSetsOf(victim))
		if !present && orphans == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover incomplete: victim present=%v orphans=%d map %+v", present, orphans, cm.Assign)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Logf("failover completed %s after SIGKILL (map epoch %d)", time.Since(killedAt), cm.Epoch)
	for fs, id := range cm.Assign {
		if id == victim {
			t.Fatalf("%s still assigned to the dead daemon", fs)
		}
	}

	// Zero acked-write loss: every synced record — including those the
	// victim owned — is readable through the gateway, because the new owner
	// replayed the victim's journal before serving.
	for _, e := range acked {
		rec, err := gc.Stat(e.fs, e.path)
		if err != nil {
			t.Fatalf("acked write %s%s lost in failover: %v", e.fs, e.path, err)
		}
		if rec.Size != e.size || rec.Owner != "elastic" {
			t.Fatalf("record %s%s survived wrong: %+v", e.fs, e.path, rec)
		}
	}
	// The fleet serves new writes on the reassigned file sets.
	for i := 0; i < 6; i++ {
		fs := fmt.Sprintf("vol%02d", i)
		if err := gc.Create(fs, "/postfailover", sharedisk.Record{Size: 1}); err != nil {
			t.Fatalf("post-failover create on %s: %v", fs, err)
		}
	}

	// Elasticity both ways: a fourth daemon joins the shrunken fleet live
	// and the next rebalance moves load onto it.
	addr3, dir3 := freeAddr(t), t.TempDir()
	cmd3 := startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 3 -fleet-join %s -fleet-speed 8 -fleet-lease %s -journal-dir %s %s",
		addr3, addrs[0], lease, dir3, common))
	t.Cleanup(func() {
		_ = cmd3.Process.Kill()
		_, _ = cmd3.Process.Wait()
	})
	waitListening(t, addr3)
	deadline = time.Now().Add(10 * time.Second)
	for {
		cm = fetchClusterMap(t, ac)
		if _, ok := cm.Daemon(3); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fourth daemon never joined")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := ac.Rebalance(); err != nil {
		t.Fatalf("rebalance onto the late joiner: %v", err)
	}
	cm = fetchClusterMap(t, ac)
	if n := len(cm.FileSetsOf(3)); n == 0 {
		t.Fatalf("8x-speed late joiner owns nothing after rebalance: %+v", cm.Assign)
	}
	// And the data still reads back through the gateway after the moves.
	for _, e := range acked {
		if _, err := gc.Stat(e.fs, e.path); err != nil {
			t.Fatalf("acked write %s%s lost in post-join rebalance: %v", e.fs, e.path, err)
		}
	}
}

// TestFleetAuthorityFailoverPromotesStandby is the tentpole's other
// process-level contract: the authority daemon journals every cluster map
// and log-ships to a standby; SIGKILL the authority and the standby must
// promote into a full replacement — serving the dead daemon's file sets
// warm AND resuming the authority role at a strictly higher epoch, so
// join/assign/rebalance keep working without a fleet restart.
func TestFleetAuthorityFailoverPromotesStandby(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	aAddr, bAddr, sAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	aDir, bDir, sDir := t.TempDir(), t.TempDir(), t.TempDir()

	common := "-filesets 4 -speeds 1,2 -window 1h -opcost 0 -checkpoint-interval 0 -fsync-interval 1ms"

	// Standby first so the authority's first semi-sync append can ack.
	standby := startDaemonArgs(t, fmt.Sprintf(
		"-standby -listen %s -journal-dir %s -peer-lease 1s %s",
		sAddr, sDir, common))
	t.Cleanup(func() {
		_ = standby.Process.Kill()
		_, _ = standby.Process.Wait()
	})
	waitListening(t, sAddr)

	authority := startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 0 -fleet-authority 0=%s@1 -journal-dir %s -replicate-to %s -replicate-sync -sync-timeout 10s %s",
		aAddr, aAddr, aDir, sAddr, common))
	killed := false
	t.Cleanup(func() {
		if !killed {
			_ = authority.Process.Kill()
			_, _ = authority.Process.Wait()
		}
	})
	waitListening(t, aAddr)

	// A second daemon joins, configured with the standby's address so its
	// heartbeat loop finds the promoted authority later.
	member := startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -fleet 1 -fleet-join %s -fleet-standby %s -fleet-speed 2 -journal-dir %s %s",
		bAddr, aAddr, sAddr, bDir, common))
	t.Cleanup(func() {
		_ = member.Process.Kill()
		_, _ = member.Process.Wait()
	})
	waitListening(t, bAddr)

	ac := dialRetry(t, aAddr)
	defer ac.Close()
	ac.SetTimeout(30 * time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cm := fetchClusterMap(t, ac); len(cm.Daemons) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("joiner never registered with the authority")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Move one file set to daemon 1 so both daemons own data, then write
	// synced records everywhere.
	if _, err := ac.Assign("vol03", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fs := fmt.Sprintf("vol%02d", i)
		if err := ac.Create(fs, "/pre", sharedisk.Record{Size: int64(i), Owner: "authfail"}); err != nil {
			// vol03 lives on daemon 1 now; a direct client gets wrong-owner.
			if _, wrong := wire.IsWrongOwner(err); !wrong {
				t.Fatalf("create %s: %v", fs, err)
			}
			bc := dialRetry(t, bAddr)
			if err := bc.Create(fs, "/pre", sharedisk.Record{Size: int64(i), Owner: "authfail"}); err != nil {
				t.Fatalf("create %s on daemon 1: %v", fs, err)
			}
			bc.Close()
		}
	}
	if err := ac.Sync(); err != nil {
		t.Fatal(err)
	}
	epochBefore, err := ac.MapEpoch()
	if err != nil {
		t.Fatal(err)
	}
	ac.Close()

	// SIGKILL the authority daemon — map journal, file sets, everything.
	if err := authority.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = authority.Process.Wait()
	killed = true
	killedAt := time.Now()

	// The standby promotes (peer-lease 1s), finds the persisted cluster map
	// in its replayed journal, and resumes the authority role at an epoch
	// strictly above everything the dead authority could have published.
	const promotionBound = 20 * time.Second
	var sc *wire.Client
	for {
		cl, err := wire.Dial(sAddr)
		if err == nil {
			cl.SetTimeout(5 * time.Second)
			if _, err := cl.MapEpoch(); err == nil {
				sc = cl
				break
			}
			cl.Close()
		}
		if time.Since(killedAt) > promotionBound {
			t.Fatalf("standby did not promote into an authority within %s", promotionBound)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer sc.Close()
	t.Logf("standby serving the map %s after authority SIGKILL", time.Since(killedAt))

	epochAfter, err := sc.MapEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epochAfter <= epochBefore {
		t.Fatalf("promoted epoch %d not above the dead authority's %d", epochAfter, epochBefore)
	}
	if epochAfter <= epochBefore+fleet.PromotionEpochJump/2 {
		t.Fatalf("promoted epoch %d lacks the promotion jump above %d — stale clients could trust a pre-death map",
			epochAfter, epochBefore)
	}

	// The promoted standby advertises itself as the authority daemon and
	// serves the dead daemon's file sets warm (log shipping carried them).
	cm := fetchClusterMap(t, sc)
	auth, ok := cm.AuthorityDaemon()
	if !ok {
		t.Fatalf("promoted map has no authority daemon: %+v", cm)
	}
	if _, port, _ := net.SplitHostPort(sAddr); port != "" {
		if _, gotPort, _ := net.SplitHostPort(auth.Addr); gotPort != port {
			t.Fatalf("promoted map advertises authority at %s, want the standby's %s", auth.Addr, sAddr)
		}
	}
	for i := 0; i < 3; i++ { // vol00..vol02 were the dead authority's
		fs := fmt.Sprintf("vol%02d", i)
		rec, err := sc.Stat(fs, "/pre")
		if err != nil {
			t.Fatalf("acked write %s/pre lost in authority failover: %v", fs, err)
		}
		if rec.Owner != "authfail" {
			t.Fatalf("record %s/pre survived wrong: %+v", fs, rec)
		}
	}

	// The authority role genuinely moved: reconfiguration works against the
	// promoted standby and keeps the epoch monotonic. vol00 is warm on the
	// promoted standby, so this is a real handoff to the surviving member.
	newEpoch, err := sc.Assign("vol00", 1)
	if err != nil {
		t.Fatalf("assign via promoted authority: %v", err)
	}
	if newEpoch <= epochAfter {
		t.Fatalf("post-promotion assign epoch %d not above %d", newEpoch, epochAfter)
	}

	// The surviving member finds the promoted authority (its -fleet-standby
	// rotation) and converges to the new epoch regime.
	bc := dialRetry(t, bAddr)
	defer bc.Close()
	deadline = time.Now().Add(20 * time.Second)
	for {
		epoch, err := bc.MapEpoch()
		if err == nil && epoch >= newEpoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("surviving member stuck at epoch %d (err %v), promoted authority at %d", epoch, err, newEpoch)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// And its data is still there — including vol00, which the promotion
	// carried warm out of the shipped journal and the assign handed over.
	if rec, err := bc.Stat("vol03", "/pre"); err != nil || rec.Owner != "authfail" {
		t.Fatalf("surviving member lost vol03: %+v, %v", rec, err)
	}
	if rec, err := bc.Stat("vol00", "/pre"); err != nil || rec.Owner != "authfail" {
		t.Fatalf("vol00 handoff from the promoted authority lost data: %+v, %v", rec, err)
	}
}
