package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"anufs/internal/obs"
	"anufs/internal/sharedisk"
)

// startDaemonObs launches the daemon with the observability HTTP endpoint
// enabled and a fast tuning window, so the test sees tuner decisions.
func startDaemonObs(t *testing.T, addr, httpAddr, journalDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), fmt.Sprintf(
		"ANUFSD_ARGS=-listen %s -http %s -journal-dir %s -filesets 4 -speeds 1,4 -window 100ms -opcost 200us -checkpoint-interval 0",
		addr, httpAddr, journalDir))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// httpGet fetches a URL once the endpoint is up, returning the body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatal(rerr)
			}
			return resp.StatusCode, string(body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never succeeded: %v", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestObservabilityEndToEnd scrapes a real daemon over HTTP and the wire:
// drive load through a TCP client, require /metrics to expose per-op
// latency histograms and journal counters, /debug/pprof/ to answer, a full
// request trace (wire → queue → apply → journal fsync) to be retrievable,
// and the tuner decision log to contain structured events — then SIGKILL
// the daemon, as a crash-test client would.
func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	journalDir := t.TempDir()
	addr := freeAddr(t)
	httpAddr := freeAddr(t)

	daemon := startDaemonObs(t, addr, httpAddr, journalDir)
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	c := dialRetry(t, addr)
	defer c.Close()

	// Load: enough traffic across the file sets that every layer records
	// latencies and the tuner sees a non-zero aggregate.
	for i := 0; i < 200; i++ {
		fs := fmt.Sprintf("vol%02d", i%4)
		path := fmt.Sprintf("/f%d", i)
		if err := c.Create(fs, path, sharedisk.Record{Size: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stat(fs, path); err != nil {
			t.Fatal(err)
		}
	}

	// Durability barrier under a known trace: the sync flushes dirty file
	// sets through the journal, so its trace crosses every layer.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	trace := c.LastTrace()
	if trace == 0 {
		t.Fatal("sync response carried no trace ID")
	}
	spans, err := c.Trace(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"wire", "queue-wait", "apply", "journal-commit-wait", "fsync"} {
		if !names[want] {
			t.Fatalf("sync trace %d missing %q span; spans: %+v", trace, want, spans)
		}
	}

	// Tuner decisions: poll a few windows for at least one structured event.
	var events []obs.TunerEvent
	deadline := time.Now().Add(10 * time.Second)
	for len(events) == 0 {
		events, err = c.TunerLog(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no tuner decision events after 10s of load")
		}
		time.Sleep(100 * time.Millisecond)
	}
	ev := events[len(events)-1]
	if ev.Seq == 0 || len(ev.Decisions) == 0 {
		t.Fatalf("malformed tuner event: %+v", ev)
	}
	for _, d := range ev.Decisions {
		if d.Reason == "" {
			t.Fatalf("decision without a reason: %+v", ev)
		}
	}

	// /metrics exposes the whole stack: wire per-op histograms, live
	// per-server histograms and gauges, journal counters.
	base := "http://" + httpAddr
	code, metrics := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`anufs_wire_request_seconds_bucket{op="create",le="`,
		"anufs_wire_requests",
		"anufs_live_latency_seconds_bucket",
		"anufs_live_queue_wait_seconds_bucket",
		"anufs_journal_records_appended",
		"anufs_journal_fsync_seconds_bucket",
		`anufs_server_speed{server="0"}`,
		"anufs_server_share_frac",
		"anufs_wire_open_connections",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q; scrape:\n%s", want, metrics)
		}
	}

	if code, body := httpGet(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := httpGet(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, tl := httpGet(t, base+"/tuner-log")
	if code != 200 {
		t.Fatalf("/tuner-log status %d", code)
	}
	var httpEvents []obs.TunerEvent
	if err := json.Unmarshal([]byte(tl), &httpEvents); err != nil {
		t.Fatalf("/tuner-log not JSON: %v\n%s", err, tl)
	}
	if len(httpEvents) == 0 {
		t.Fatal("/tuner-log empty after events were visible over the wire")
	}
	code, tr := httpGet(t, fmt.Sprintf("%s/trace?trace=%d", base, trace))
	if code != 200 {
		t.Fatalf("/trace status %d", code)
	}
	var httpSpans []obs.Span
	if err := json.Unmarshal([]byte(tr), &httpSpans); err != nil || len(httpSpans) == 0 {
		t.Fatalf("/trace?trace=%d = %d spans, %v", trace, len(httpSpans), err)
	}

	// Crash the daemon SIGKILL-style; the observability surface must not
	// have interfered with durability (covered in depth by the restart
	// test — here we just require a clean kill).
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
}
