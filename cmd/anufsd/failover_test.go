package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// startDaemonArgs launches this test binary as anufsd with explicit flags
// (see TestMain / ANUFSD_ARGS in journal_restart_test.go).
func startDaemonArgs(t *testing.T, args string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "ANUFSD_ARGS="+args)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitListening waits for something to accept TCP on addr (a standby
// refuses wire ops before promotion, so dialRetry's handshake is no probe).
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("nothing listening on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFailoverPromotesStandbyWithoutAckedWriteLoss is the tentpole's
// end-to-end contract: run a primary/standby pair with semi-synchronous
// log shipping, SIGKILL the primary mid-workload, and require (a) the
// standby promotes itself within a bounded window, (b) every write
// acknowledged through the durability barrier survives on the promoted
// standby, and (c) the promoted standby serves new writes.
func TestFailoverPromotesStandbyWithoutAckedWriteLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	pDir, sDir := t.TempDir(), t.TempDir()
	pAddr, sAddr, httpAddr := freeAddr(t), freeAddr(t), freeAddr(t)

	// Standby first, so the primary's very first gated append can ack.
	standby := startDaemonArgs(t, fmt.Sprintf(
		"-standby -listen %s -journal-dir %s -peer-lease 1s -filesets 4 -speeds 1,2 -window 1h -opcost 0 -checkpoint-interval 0",
		sAddr, sDir))
	defer func() {
		standby.Process.Kill()
		standby.Wait()
	}()
	waitListening(t, sAddr)

	primary := startDaemonArgs(t, fmt.Sprintf(
		"-listen %s -journal-dir %s -replicate-to %s -replicate-sync -sync-timeout 10s -http %s -filesets 4 -speeds 1,2 -window 1h -opcost 0 -checkpoint-interval 0",
		pAddr, pDir, sAddr, httpAddr))
	killed := false
	defer func() {
		if !killed {
			primary.Process.Kill()
			primary.Wait()
		}
	}()
	c := dialRetry(t, pAddr)

	// Workload with periodic durability barriers: everything recorded in
	// acked was covered by a Sync() that returned before the kill.
	type entry struct {
		fs, path string
		size     int64
	}
	var acked []entry
	var pending []entry
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			e := entry{fs: fmt.Sprintf("vol%02d", i), path: fmt.Sprintf("/r%d", round), size: int64(10*round + i)}
			if err := c.Create(e.fs, e.path, sharedisk.Record{Size: e.size, Owner: "failover"}); err != nil {
				t.Fatal(err)
			}
			pending = append(pending, e)
		}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, pending...)
		pending = nil
	}

	// The primary's /metrics surface shows the replication pipeline.
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{"anufs_replica_ships", "anufs_replica_acked_seq", "anufs_replica_lag_entries", "anufs_replica_ship_rtt_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("primary /metrics missing %s", want)
		}
	}
	if strings.Contains(metrics, "anufs_replica_sync_degraded") {
		t.Fatal("sync replication degraded during a healthy run")
	}
	c.Close()

	// SIGKILL the primary: no shutdown path, no final checkpoint.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	killed = true
	killedAt := time.Now()

	// The standby must promote and start serving the wire protocol on its
	// own address within a bounded window (peer-lease 1s + watch interval +
	// takeover; 15s is generous for loaded CI, not a tuned bound).
	const promotionBound = 15 * time.Second
	var c2 *wire.Client
	for {
		cl, err := wire.Dial(sAddr)
		if err == nil {
			if _, err := cl.Owner("vol00"); err == nil {
				c2 = cl
				break
			}
			cl.Close()
		}
		if time.Since(killedAt) > promotionBound {
			t.Fatalf("standby did not promote within %s of primary death", promotionBound)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c2.Close()
	t.Logf("standby promoted and serving %s after primary SIGKILL", time.Since(killedAt))

	// Zero acked-write loss: every barrier-covered record is present.
	for _, e := range acked {
		rec, err := c2.Stat(e.fs, e.path)
		if err != nil {
			t.Fatalf("acked record %s%s lost in failover: %v", e.fs, e.path, err)
		}
		if rec.Size != e.size || rec.Owner != "failover" {
			t.Fatalf("record %s%s survived wrong: %+v", e.fs, e.path, rec)
		}
	}

	// The promoted standby is a full primary: it takes and persists writes.
	if err := c2.Create("vol01", "/postpromotion", sharedisk.Record{Size: 7, Owner: "failover"}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Sync(); err != nil {
		t.Fatal(err)
	}
	if rec, err := c2.Stat("vol01", "/postpromotion"); err != nil || rec.Size != 7 {
		t.Fatalf("post-promotion write not served back: %+v, %v", rec, err)
	}
}
