package main

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestFleetRebalanceUnderLoad is the fleet's end-to-end contract: run
// three real anufsd processes sharding nine file sets, keep a routed write
// workload going while file sets are live-handed-off (manual assigns plus
// a full rebalance), and require that
//
//   - every write acknowledged to a client is still readable afterwards
//     (zero acked-write loss),
//   - after the dust settles every file set is served by exactly the
//     daemon the map names — a fenced donor never answers for a file set
//     it gave away (zero misrouted writes), and
//   - all three daemons converge to the authority's final epoch on their
//     own (eager push with the poll loop as backstop).
func TestFleetRebalanceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	roster := fmt.Sprintf("0=%s@1,1=%s@2,2=%s@4", addrs[0], addrs[1], addrs[2])

	common := "-filesets 9 -speeds 1 -window 1h -opcost 0 -checkpoint-interval 0"
	daemons := []*struct{ args string }{
		{fmt.Sprintf("-listen %s -fleet 0 -fleet-authority %s %s", addrs[0], roster, common)},
		{fmt.Sprintf("-listen %s -fleet 1 -fleet-join %s %s", addrs[1], addrs[0], common)},
		{fmt.Sprintf("-listen %s -fleet 2 -fleet-join %s %s", addrs[2], addrs[0], common)},
	}
	for _, d := range daemons {
		cmd := startDaemonArgs(t, d.args)
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}
	for _, a := range addrs {
		waitListening(t, a)
	}

	router, err := fleet.NewRouter(fleet.RouterConfig{
		AuthorityAddr: addrs[0],
		Budget:        20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	var names []string
	for i := 0; i < 9; i++ {
		names = append(names, fmt.Sprintf("vol%02d", i))
	}

	// Writers: each goroutine walks the file sets round-robin, creating
	// records through the router and recording every acknowledged path.
	type acked struct {
		fs, path string
	}
	var (
		mu    sync.Mutex
		got   []acked
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		fails = make(chan error, 64)
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer gets its own router: separate map caches mean
			// some writers are always stale when a handoff lands.
			wr, err := fleet.NewRouter(fleet.RouterConfig{
				AuthorityAddr: addrs[0],
				Budget:        20 * time.Second,
			})
			if err != nil {
				select {
				case fails <- err:
				default:
				}
				return
			}
			defer wr.Close()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				fs := names[(w+seq)%len(names)]
				path := fmt.Sprintf("/w%d-%d", w, seq)
				if err := wr.Create(fs, path, sharedisk.Record{Size: int64(seq)}); err != nil {
					select {
					case fails <- fmt.Errorf("writer %d: create %s%s: %w", w, fs, path, err):
					default:
					}
					return
				}
				mu.Lock()
				got = append(got, acked{fs, path})
				mu.Unlock()
			}
		}(w)
	}

	// Churn the map while the writers run: move every file set by hand,
	// then clear the pins with a full speed-proportional rebalance.
	ac := dialRetry(t, addrs[0])
	defer ac.Close()
	ac.SetTimeout(30 * time.Second)
	for i, fs := range names {
		if _, err := ac.Assign(fs, (i+1)%3); err != nil {
			t.Fatalf("assign %s: %v", fs, err)
		}
		time.Sleep(50 * time.Millisecond) // keep writes flowing between moves
	}
	if _, err := ac.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-fails:
		t.Fatal(err)
	default:
	}
	mu.Lock()
	writes := append([]acked(nil), got...)
	mu.Unlock()
	if len(writes) < 50 {
		t.Fatalf("only %d writes landed during the churn; the workload never overlapped the handoffs", len(writes))
	}

	// Epoch convergence: every daemon reaches the authority's final epoch
	// without being asked.
	finalEpoch, err := ac.MapEpoch()
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*wire.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = dialRetry(t, a)
		defer clients[i].Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for i, c := range clients {
		for {
			epoch, err := c.MapEpoch()
			if err == nil && epoch == finalEpoch {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %d stuck at epoch %d (err %v), authority at %d", i, epoch, err, finalEpoch)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Zero acked-write loss: every acknowledged write is readable through
	// the router.
	if _, err := router.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, w := range writes {
		if _, err := router.Stat(w.fs, w.path); err != nil {
			t.Fatalf("acked write %s%s lost after rebalance: %v", w.fs, w.path, err)
		}
	}

	// Zero misrouting after the fences: each file set answers on exactly
	// the daemon the final map names; every other daemon rejects it with
	// wrong-owner (it fenced its copy) rather than serving stale state.
	cm := router.Map()
	probe := map[string]string{}
	for _, w := range writes {
		probe[w.fs] = w.path // any acked path per file set will do
	}
	for _, fs := range names {
		path, ok := probe[fs]
		if !ok {
			continue
		}
		owner := cm.Assign[fs]
		for i, c := range clients {
			_, err := c.Stat(fs, path)
			if i == owner {
				if err != nil {
					t.Fatalf("owner daemon %d cannot read %s%s: %v", i, fs, path, err)
				}
				continue
			}
			if _, isWrong := wire.IsWrongOwner(err); !isWrong {
				t.Fatalf("daemon %d (not the owner of %s) answered %v instead of wrong-owner", i, fs, err)
			}
		}
	}
	t.Logf("fleet churn survived: %d acked writes, final epoch %d, %s",
		len(writes), finalEpoch, strings.Join(names, " "))
}
