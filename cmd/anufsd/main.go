// Command anufsd runs an ANU-managed metadata cluster as a network daemon:
// a live cluster (goroutine metadata servers over an in-memory shared
// disk) behind the wire TCP protocol. Drive it with cmd/anufsctl.
//
// With -journal-dir the shared disk becomes durable: every file-set
// creation and image flush is write-ahead-logged (group-committed fsyncs),
// state is snapshotted and the log compacted every -snapshot-every entries,
// and on startup the journal is replayed so the daemon resumes from the
// last durable cut — a SIGKILL loses only unflushed (un-synced) cache
// state, never flushed images.
//
// With -http the daemon also serves an observability endpoint: /metrics
// (Prometheus text format: per-op and per-server latency histograms, journal
// and wire counters, per-server gauges), /healthz, /tuner-log, /trace, and
// net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	anufsd -listen :7460 -speeds 1,3,5,7,9 -filesets 16 -window 250ms \
//	       -journal-dir /var/lib/anufs/journal -fsync-interval 2ms \
//	       -snapshot-every 4096 -checkpoint-interval 2s -http :6060
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anufs/internal/journal"
	"anufs/internal/live"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", ":7460", "TCP listen address")
		speeds   = flag.String("speeds", "1,3,5,7,9", "comma-separated relative server speeds")
		fileSets = flag.Int("filesets", 16, "file sets to pre-create (vol00..)")
		window   = flag.Duration("window", 250*time.Millisecond, "delegate tuning interval")
		opCost   = flag.Duration("opcost", 2*time.Millisecond, "metadata op service time at speed 1")

		journalDir = flag.String("journal-dir", "", "write-ahead-log directory; empty = volatile in-memory disk")
		fsyncIval  = flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit gather window before each journal fsync")
		snapEvery  = flag.Int("snapshot-every", 4096, "journal entries between snapshots + log compaction")
		ckptIval   = flag.Duration("checkpoint-interval", 2*time.Second, "background flush of dirty file sets when journaling; 0 disables")
		httpAddr   = flag.String("http", "", "observability HTTP address (/metrics, /healthz, /debug/pprof/); empty disables")
	)
	flag.Parse()

	speedMap, err := parseSpeeds(*speeds)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}

	// One registry for the whole daemon: the journal, the cluster's owner
	// queues, and the wire server all record into it, so a single /metrics
	// scrape (or trace dump) covers the full request path.
	reg := obs.New()

	var (
		disk sharedisk.Disk
		jnl  *journal.Journal
	)
	if *journalDir != "" {
		j, st, info, err := journal.Open(*journalDir, journal.Options{FsyncInterval: *fsyncIval, Obs: reg})
		if err != nil {
			log.Fatalf("anufsd: journal: %v", err)
		}
		jnl = j
		if info.Truncated {
			log.Printf("anufsd: journal had a torn tail (%s@%d); recovered the durable prefix",
				info.TruncatedSegment, info.ValidBytes)
		}
		log.Printf("anufsd: recovered %d file sets (%d journal entries, snapshot seq %d) in %s",
			info.FileSets, info.Entries, info.SnapshotSeq, info.Duration)
		disk = sharedisk.NewDurable(st, j, *snapEvery)
	} else {
		disk = sharedisk.NewStore(0)
	}

	existing := map[string]bool{}
	for _, fs := range disk.FileSets() {
		existing[fs] = true
	}
	for i := 0; i < *fileSets; i++ {
		name := fmt.Sprintf("vol%02d", i)
		if existing[name] {
			continue
		}
		if err := disk.CreateFileSet(name); err != nil {
			log.Fatalf("anufsd: %v", err)
		}
	}

	cfg := live.DefaultConfig()
	cfg.Window = *window
	cfg.OpCost = *opCost
	cfg.Obs = reg
	cluster, err := live.NewCluster(cfg, disk, speedMap)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}

	srv := wire.NewServer(cluster)
	if jnl != nil {
		srv.SetJournalStats(jnl.Counters().Snapshot)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	log.Printf("anufsd: serving %d file sets on %d servers at %s (journal: %s)",
		len(disk.FileSets()), len(speedMap), addr, journalDesc(*journalDir))

	var hsrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("anufsd: http: %v", err)
		}
		hsrv = &http.Server{Handler: reg.Handler()}
		go func() { _ = hsrv.Serve(hln) }()
		log.Printf("anufsd: observability HTTP at %s (/metrics, /healthz, /tuner-log, /trace, /debug/pprof/)",
			hln.Addr())
	}

	// Background checkpointer: bounds the window of metadata lost to a
	// crash to one interval, without clients having to call sync.
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if jnl == nil || *ckptIval <= 0 {
			return
		}
		t := time.NewTicker(*ckptIval)
		defer t.Stop()
		for {
			select {
			case <-stopCkpt:
				return
			case <-t.C:
				if err := cluster.CheckpointAll(); err != nil {
					log.Printf("anufsd: checkpoint: %v", err)
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("anufsd: shutting down")
	close(stopCkpt)
	<-ckptDone
	if hsrv != nil {
		_ = hsrv.Close()
	}
	srv.Close()
	if jnl != nil {
		// Flush everything dirty so a clean shutdown loses nothing, then
		// stop the cluster and seal the journal.
		if err := cluster.CheckpointAll(); err != nil {
			log.Printf("anufsd: final checkpoint: %v", err)
		}
	}
	cluster.Stop()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Printf("anufsd: journal close: %v", err)
		}
	}
}

func journalDesc(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}

func parseSpeeds(s string) (map[int]float64, error) {
	out := map[int]float64{}
	for i, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad speed %q", part)
		}
		out[i] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no speeds given")
	}
	return out, nil
}
