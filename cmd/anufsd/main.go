// Command anufsd runs an ANU-managed metadata cluster as a network daemon:
// a live cluster (goroutine metadata servers over an in-memory shared
// disk) behind the wire TCP protocol. Drive it with cmd/anufsctl.
// Connections start in the newline-delimited line protocol and may upgrade
// to tagged binary frames via an OpHello handshake (internal/sdk dials
// this way), multiplexing many in-flight requests per connection with
// out-of-order completion; old line-mode clients are served unchanged.
//
// With -journal-dir the shared disk becomes durable: every file-set
// creation and image flush is write-ahead-logged (group-committed fsyncs),
// state is snapshotted and the log compacted every -snapshot-every entries,
// and on startup the journal is replayed so the daemon resumes from the
// last durable cut — a SIGKILL loses only unflushed (un-synced) cache
// state, never flushed images.
//
// With -http the daemon also serves an observability endpoint: /metrics
// (Prometheus text format: per-op and per-server latency histograms, journal
// and wire counters, per-server gauges), /healthz, /tuner-log, /trace, and
// net/http/pprof under /debug/pprof/.
//
// With -replicate-to the journal is additionally log-shipped to a standby
// daemon (started with -standby on the same flags), which applies it to a
// warm in-memory store and promotes itself — serving the ordinary wire
// protocol on its own -listen address — when the primary goes silent for
// -peer-lease. -replicate-sync makes writes semi-synchronous: an append is
// acknowledged only once the standby has it durably (degrading to async
// after -sync-timeout rather than blocking writes on a dead standby).
//
// Usage:
//
//	anufsd -listen :7460 -speeds 1,3,5,7,9 -filesets 16 -window 250ms \
//	       -journal-dir /var/lib/anufs/journal -fsync-interval 2ms \
//	       -snapshot-every 4096 -checkpoint-interval 2s -http :6060 \
//	       -replicate-to standby:7461 -replicate-sync
//
//	anufsd -standby -listen :7461 -journal-dir /var/lib/anufs/standby \
//	       -peer-lease 2s -http :6061
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/journal"
	"anufs/internal/live"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/replica"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", ":7460", "TCP listen address")
		speeds   = flag.String("speeds", "1,3,5,7,9", "comma-separated relative server speeds")
		fileSets = flag.Int("filesets", 16, "file sets to pre-create (vol00..)")
		window   = flag.Duration("window", 250*time.Millisecond, "delegate tuning interval")
		opCost   = flag.Duration("opcost", 2*time.Millisecond, "metadata op service time at speed 1")

		journalDir = flag.String("journal-dir", "", "write-ahead-log directory; empty = volatile in-memory disk")
		fsyncIval  = flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit gather window before each journal fsync")
		snapEvery  = flag.Int("snapshot-every", 4096, "journal entries between snapshots + log compaction")
		ckptIval   = flag.Duration("checkpoint-interval", 2*time.Second, "background flush of dirty file sets when journaling; 0 disables")
		httpAddr   = flag.String("http", "", "observability HTTP address (/metrics, /healthz, /debug/pprof/); empty disables")

		replicateTo = flag.String("replicate-to", "", "standby replication address; journal entries are log-shipped there (requires -journal-dir)")
		replSync    = flag.Bool("replicate-sync", false, "semi-synchronous replication: acknowledge writes only after the standby acks")
		syncTimeout = flag.Duration("sync-timeout", replica.DefaultSyncTimeout, "how long a sync write waits for the standby before degrading to async")
		standby     = flag.Bool("standby", false, "run as a warm standby: receive log shipping on -listen, promote on primary silence (requires -journal-dir)")
		peerLease   = flag.Duration("peer-lease", replica.DefaultLease, "standby: how long the primary may go silent before promotion")

		fleetID        = flag.Int("fleet", -1, "this daemon's fleet ID; -1 runs standalone (no sharding)")
		fleetAuthority = flag.String("fleet-authority", "", `host the cluster-map authority with this roster: "id=addr@speed,..." (must include this daemon's -fleet id)`)
		fleetJoin      = flag.String("fleet-join", "", "join a fleet: the authority daemon's wire address")
		fleetSpeed     = flag.Float64("fleet-speed", 1, "relative speed this daemon advertises when joining a fleet")
		fleetLease     = flag.Duration("fleet-lease", 0, "authority: heartbeat lease for dead-daemon detection and journal-aware failover; 0 disables")
		fleetStandby   = flag.String("fleet-standby", "", "standby authority's wire address, tried when the authority stops answering")
		fleetAdvertise = flag.String("fleet-advertise", "", "wire address this daemon advertises to the fleet (default: derived from -listen)")

		nodeName = flag.String("node", "", `node identity stamped on trace spans and trace-pull answers (default "daemon-<fleet id>" or "daemon@<listen>")`)
		slowOver = flag.Duration("slow-trace", 0, "promote traces slower than this into the durable flight recorder (/debug/slow, SIGQUIT); 0 disables")
	)
	flag.Parse()

	speedMap, err := parseSpeeds(*speeds)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	if (*replicateTo != "" || *standby) && *journalDir == "" {
		log.Fatalf("anufsd: replication needs -journal-dir (there is nothing to ship without a journal)")
	}
	if *replicateTo != "" && *standby {
		log.Fatalf("anufsd: -replicate-to and -standby are mutually exclusive (chained standbys are not supported)")
	}

	// One registry for the whole daemon: the journal, the cluster's owner
	// queues, and the wire server all record into it, so a single /metrics
	// scrape (or trace dump) covers the full request path.
	reg := obs.New()
	node := *nodeName
	if node == "" {
		if *fleetID >= 0 {
			node = fmt.Sprintf("daemon-%d", *fleetID)
		} else {
			node = "daemon@" + *listen
		}
	}
	reg.SetNode(node)
	reg.Slow.SetThreshold(*slowOver)

	// SIGQUIT dumps the slow-trace flight recorder to stderr — the incident
	// snapshot for a process about to be killed or already misbehaving.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintf(os.Stderr, "anufsd: slow-trace flight recorder (%s):\n", node)
			reg.Slow.WriteTo(os.Stderr)
		}
	}()

	// Observability HTTP comes up before anything else so a standby (which
	// may sit receiving for hours before promotion) is scrapeable too.
	var hsrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("anufsd: http: %v", err)
		}
		hsrv = &http.Server{Handler: reg.Handler()}
		go func() { _ = hsrv.Serve(hln) }()
		log.Printf("anufsd: observability HTTP at %s (/metrics, /healthz, /tuner-log, /trace, /debug/pprof/)",
			hln.Addr())
	}

	var (
		disk    sharedisk.Disk
		jnl     *journal.Journal
		shipper *replica.Shipper
	)
	role := "primary"
	if *journalDir != "" {
		j, st, info, err := journal.Open(*journalDir, journal.Options{FsyncInterval: *fsyncIval, Obs: reg})
		if err != nil {
			log.Fatalf("anufsd: journal: %v", err)
		}
		jnl = j
		if info.Truncated {
			log.Printf("anufsd: journal had a torn tail (%s@%d); recovered the durable prefix",
				info.TruncatedSegment, info.ValidBytes)
		}
		log.Printf("anufsd: recovered %d file sets (%d journal entries, snapshot seq %d) in %s",
			info.FileSets, info.Entries, info.SnapshotSeq, info.Duration)

		if *standby {
			// Standby mode: receive log shipping until the primary dies,
			// then fall through to ordinary serving on the warm state.
			reg.AddStatus("daemon", func() any { return map[string]string{"role": "standby"} })
			st = runStandby(jnl, st, *listen, *peerLease, *snapEvery, reg, hsrv)
			role = "promoted-primary"
		}
		disk = sharedisk.NewDurable(st, j, *snapEvery)

		if *replicateTo != "" {
			shipper, err = replica.NewShipper(replica.ShipperOptions{
				Addr:        *replicateTo,
				Journal:     jnl,
				Images:      st.Images,
				SyncTimeout: *syncTimeout,
				Obs:         reg,
				DaemonID:    *fleetID,
			})
			if err != nil {
				log.Fatalf("anufsd: replication: %v", err)
			}
			shipper.Start()
			mode := "async"
			if *replSync {
				jnl.SetAckGate(shipper.WaitAcked)
				mode = fmt.Sprintf("semi-sync (degrade after %s)", *syncTimeout)
			}
			log.Printf("anufsd: log-shipping journal to %s, %s", *replicateTo, mode)
		}
	} else {
		disk = sharedisk.NewStore(0)
	}
	reg.AddStatus("daemon", func() any { return map[string]string{"role": role} })

	// Fleet mode changes which file sets this daemon pre-creates: only the
	// ones the cluster map assigns to it. When the daemon journals, the
	// authority persists every committed map through the durable disk —
	// journaled, snapshotted, and log-shipped to a standby authority on the
	// same machinery as file-set metadata.
	var persistMap func(*placement.ClusterMap) error
	var persistVols func([]volume.Info, uint64) error
	if jnl != nil {
		if inst, ok := disk.(sharedisk.Installer); ok {
			persistMap = func(cm *placement.ClusterMap) error {
				im, err := fleet.EncodeMapImage(cm)
				if err != nil {
					return err
				}
				return inst.Install(fleet.MapFileSet, im)
			}
			// The volume registry replicates the same way: journaled as the
			// __volumes/registry pseudo file set, shipped to the standby.
			persistVols = func(vols []volume.Info, version uint64) error {
				im, err := volume.EncodeImage(vols, version)
				if err != nil {
					return err
				}
				return inst.Install(volume.VolumesFileSet, im)
			}
		}
	}
	// A recovered store (authority restart, or a standby about to promote)
	// may hold a replicated registry image: resume it so tenant quotas and
	// weights never reset to defaults across a failover.
	var resumeVols []volume.Info
	var resumeVolsVer uint64
	if im, err := disk.Load(volume.VolumesFileSet); err == nil {
		if vols, ver, derr := volume.DecodeImage(im); derr == nil {
			resumeVols, resumeVolsVer = vols, ver
		} else {
			log.Printf("anufsd: ignoring corrupt %s image: %v", volume.VolumesFileSet, derr)
		}
	}
	advertise := *fleetAdvertise
	if advertise == "" {
		advertise = defaultAdvertise(*listen)
	}
	fopts := fleetOptions{
		advertise:      advertise,
		speed:          *fleetSpeed,
		lease:          *fleetLease,
		journalDir:     *journalDir,
		standby:        *fleetStandby,
		persist:        persistMap,
		persistVolumes: persistVols,
		resumeVols:     resumeVols,
		resumeVolsVer:  resumeVolsVer,
	}
	fl, err := setupFleet(*fleetID, *fleetAuthority, *fleetJoin, *fileSets, fopts)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	if fl != nil && *standby {
		log.Fatalf("anufsd: -fleet and -standby are mutually exclusive")
	}
	if fl == nil && *standby {
		// A promoted standby whose shipped journal carried a cluster map was
		// the authority's standby: resume the authority role here, taking
		// over the dead primary's daemon ID (its file sets are warm in this
		// very store).
		if im, err := disk.Load(fleet.MapFileSet); err == nil {
			fl, err = resumeFleet(im, advertise, fopts)
			if err != nil {
				log.Fatalf("anufsd: fleet resume: %v", err)
			}
			log.Printf("anufsd: resuming fleet authority as daemon %d at map epoch %d",
				fl.id, fl.initial.Epoch)
		}
	}

	names := make([]string, 0, *fileSets)
	if fl != nil {
		names = fl.assigned()
	} else {
		for i := 0; i < *fileSets; i++ {
			names = append(names, fmt.Sprintf("vol%02d", i))
		}
	}
	existing := map[string]bool{}
	for _, fs := range disk.FileSets() {
		existing[fs] = true
	}
	for _, name := range names {
		if existing[name] {
			continue
		}
		if err := disk.CreateFileSet(name); err != nil {
			log.Fatalf("anufsd: %v", err)
		}
	}

	cfg := live.DefaultConfig()
	cfg.Window = *window
	cfg.OpCost = *opCost
	cfg.Obs = reg
	cluster, err := live.NewCluster(cfg, disk, speedMap)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}

	srv := wire.NewServer(cluster)
	if jnl != nil {
		srv.SetJournalStats(jnl.Counters().Snapshot)
	}
	var member *fleet.Member
	if fl != nil {
		member, err = fleet.NewMember(fleet.MemberConfig{
			ID:            fl.id,
			Cluster:       cluster,
			Disk:          disk,
			Authority:     fl.auth,
			AuthorityAddr: fl.authorityAddr,
			StandbyAddr:   fl.standbyAddr,
			Addr:          fl.advertise,
			Speed:         fl.speed,
			JournalDir:    fl.journalDir,
			FenceAfter:    fl.fenceAfter,
			PollInterval:  fl.pollInterval,
			Obs:           reg,
		}, fl.initial)
		if err != nil {
			log.Fatalf("anufsd: fleet: %v", err)
		}
		srv.SetFleet(member)
	}
	// A promoted standby re-binds the address its receiver just released;
	// retry briefly instead of failing the takeover on a lingering socket.
	addr, err := listenRetry(srv, *listen)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	log.Printf("anufsd: serving %d file sets on %d servers at %s (journal: %s)",
		len(disk.FileSets()), len(speedMap), addr, journalDesc(*journalDir))
	if member != nil {
		member.Start()
		role := "member"
		if fl.auth != nil {
			role = "authority"
		}
		log.Printf("anufsd: fleet daemon %d (%s) at map epoch %d with %d assigned file sets",
			fl.id, role, member.CurrentMap().Epoch, len(fl.assigned()))
	}

	// Background checkpointer: bounds the window of metadata lost to a
	// crash to one interval, without clients having to call sync.
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if jnl == nil || *ckptIval <= 0 {
			return
		}
		t := time.NewTicker(*ckptIval)
		defer t.Stop()
		for {
			select {
			case <-stopCkpt:
				return
			case <-t.C:
				if err := cluster.CheckpointAll(); err != nil {
					log.Printf("anufsd: checkpoint: %v", err)
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("anufsd: shutting down")
	close(stopCkpt)
	<-ckptDone
	if hsrv != nil {
		_ = hsrv.Close()
	}
	if member != nil {
		member.Stop()
	}
	srv.Close()
	if shipper != nil {
		shipper.Stop()
	}
	if jnl != nil {
		// Flush everything dirty so a clean shutdown loses nothing, then
		// stop the cluster and seal the journal.
		if err := cluster.CheckpointAll(); err != nil {
			log.Printf("anufsd: final checkpoint: %v", err)
		}
	}
	cluster.Stop()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Printf("anufsd: journal close: %v", err)
		}
	}
}

// runStandby serves log-shipping on the wire listen address until the
// primary's lease lapses, then returns the promoted warm store. On
// SIGINT/SIGTERM before promotion it shuts the standby down and exits.
func runStandby(jnl *journal.Journal, st *sharedisk.Store, listen string, lease time.Duration, snapEvery int, reg *obs.Registry, hsrv *http.Server) *sharedisk.Store {
	recv, err := replica.NewReceiver(replica.ReceiverOptions{
		Journal:       jnl,
		Images:        st.Images(),
		Lease:         lease,
		SnapshotEvery: snapEvery,
		Obs:           reg,
	})
	if err != nil {
		log.Fatalf("anufsd: standby: %v", err)
	}
	addr, err := recv.Listen(listen)
	if err != nil {
		log.Fatalf("anufsd: standby: %v", err)
	}
	log.Printf("anufsd: standby receiving log shipping at %s (promotes after %s of primary silence)", addr, lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-recv.Promoted():
	case <-sig:
		log.Println("anufsd: standby shutting down")
		recv.Stop()
		if hsrv != nil {
			_ = hsrv.Close()
		}
		if err := jnl.Close(); err != nil {
			log.Printf("anufsd: journal close: %v", err)
		}
		os.Exit(0)
	}
	recv.Stop()
	images, applied := recv.State()
	log.Printf("anufsd: primary lease lapsed; promoting with %d file sets warm at sequence %d",
		len(images), applied)
	return sharedisk.NewStoreFromImages(images, 0)
}

// listenRetry binds the wire server, retrying briefly — a promoted standby
// reuses the address its own receiver just released.
func listenRetry(srv *wire.Server, listen string) (string, error) {
	var (
		addr string
		err  error
	)
	for i := 0; i < 50; i++ {
		addr, err = srv.Listen(listen)
		if err == nil {
			return addr, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", err
}

func journalDesc(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}

func parseSpeeds(s string) (map[int]float64, error) {
	out := map[int]float64{}
	for i, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad speed %q", part)
		}
		out[i] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no speeds given")
	}
	return out, nil
}
