// Command anufsd runs an ANU-managed metadata cluster as a network daemon:
// a live cluster (goroutine metadata servers over an in-memory shared
// disk) behind the wire TCP protocol. Drive it with cmd/anufsctl.
//
// Usage:
//
//	anufsd -listen :7460 -speeds 1,3,5,7,9 -filesets 16 -window 250ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", ":7460", "TCP listen address")
		speeds   = flag.String("speeds", "1,3,5,7,9", "comma-separated relative server speeds")
		fileSets = flag.Int("filesets", 16, "file sets to pre-create (vol00..)")
		window   = flag.Duration("window", 250*time.Millisecond, "delegate tuning interval")
		opCost   = flag.Duration("opcost", 2*time.Millisecond, "metadata op service time at speed 1")
	)
	flag.Parse()

	speedMap, err := parseSpeeds(*speeds)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	disk := sharedisk.NewStore(0)
	for i := 0; i < *fileSets; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("vol%02d", i)); err != nil {
			log.Fatalf("anufsd: %v", err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = *window
	cfg.OpCost = *opCost
	cluster, err := live.NewCluster(cfg, disk, speedMap)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	defer cluster.Stop()

	srv := wire.NewServer(cluster)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("anufsd: %v", err)
	}
	defer srv.Close()
	log.Printf("anufsd: serving %d file sets on %d servers at %s", *fileSets, len(speedMap), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("anufsd: shutting down")
}

func parseSpeeds(s string) (map[int]float64, error) {
	out := map[int]float64{}
	for i, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad speed %q", part)
		}
		out[i] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no speeds given")
	}
	return out, nil
}
