// Command bench2json converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result — the format CI uploads
// as an artifact so benchmark history is diffable across runs.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchtime=1x ./internal/obs/ | bench2json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// BenchmarkName-8   123456   12.3 ns/op [  45 B/op   2 allocs/op]
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = &v
			case "allocs/op":
				r.AllocsPerOp = &v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
