package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"anufs/internal/namespace"
	"anufs/internal/placement"
)

// renderMap prints a cluster map as the `anufsctl map` table: the epoch,
// then one row per daemon with the volumes it hosts and its assigned
// file sets. A non-empty volFilter keeps only that volume's file sets
// (daemons left with nothing show "-"). Kept separate from main so the
// output format is pinned by a golden test.
func renderMap(w io.Writer, cm *placement.ClusterMap, volFilter string) error {
	fmt.Fprintf(w, "epoch %d\n", cm.Epoch)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DAEMON\tADDR\tSPEED\tVOLUMES\tFILESETS")
	for _, d := range cm.Daemons {
		var fs []string
		volSet := map[string]bool{}
		for _, name := range cm.FileSetsOf(d.ID) {
			vol := namespace.VolumeOf(name)
			if volFilter != "" && vol != volFilter {
				continue
			}
			fs = append(fs, name)
			volSet[vol] = true
		}
		vols := make([]string, 0, len(volSet))
		for v := range volSet {
			vols = append(vols, v)
		}
		sort.Strings(vols)
		owned, hosted := "-", "-"
		if len(fs) > 0 {
			owned = strings.Join(fs, ",")
			hosted = strings.Join(vols, ",")
		}
		id := fmt.Sprintf("%d", d.ID)
		if d.ID == cm.Authority {
			id += "*" // the map authority (join/leave/assign/rebalance endpoint)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%s\t%s\n", id, d.Addr, d.Speed, hosted, owned)
	}
	return tw.Flush()
}
