package main

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"anufs/internal/placement"
)

// renderMap prints a cluster map as the `anufsctl map` table: the epoch,
// then one row per daemon with its assigned file sets. Kept separate from
// main so the output format is pinned by a golden test.
func renderMap(w io.Writer, cm *placement.ClusterMap) error {
	fmt.Fprintf(w, "epoch %d\n", cm.Epoch)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DAEMON\tADDR\tSPEED\tFILESETS")
	for _, d := range cm.Daemons {
		fs := cm.FileSetsOf(d.ID)
		owned := "-"
		if len(fs) > 0 {
			owned = strings.Join(fs, ",")
		}
		id := fmt.Sprintf("%d", d.ID)
		if d.ID == cm.Authority {
			id += "*" // the map authority (join/leave/assign/rebalance endpoint)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%s\n", id, d.Addr, d.Speed, owned)
	}
	return tw.Flush()
}
