// Command anufsctl is the CLI client for anufsd.
//
// Usage:
//
//	anufsctl [-addr host:7460] mkfs <fileset>
//	anufsctl create <fileset> <path> [size]
//	anufsctl stat   <fileset> <path>
//	anufsctl rm     <fileset> <path>
//	anufsctl ls     <fileset> [prefix]
//	anufsctl owner  <fileset>
//	anufsctl lock   <fileset> <path> [shared|exclusive]
//	anufsctl stats
//	anufsctl sync
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7460", "anufsd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "mkfs":
		need(rest, 1)
		check(c.CreateFileSet(rest[0]))
		fmt.Println("ok")
	case "create":
		need(rest, 2)
		var size int64
		if len(rest) >= 3 {
			size, err = strconv.ParseInt(rest[2], 10, 64)
			if err != nil {
				fatal(err)
			}
		}
		check(c.Create(rest[0], rest[1], sharedisk.Record{Size: size, Owner: "anufsctl"}))
		fmt.Println("ok")
	case "stat":
		need(rest, 2)
		rec, err := c.Stat(rest[0], rest[1])
		check(err)
		fmt.Printf("size=%d mode=%o owner=%s modtime=%s\n", rec.Size, rec.Mode, rec.Owner, rec.ModTime)
	case "rm":
		need(rest, 2)
		check(c.Remove(rest[0], rest[1]))
		fmt.Println("ok")
	case "ls":
		need(rest, 1)
		prefix := "/"
		if len(rest) >= 2 {
			prefix = rest[1]
		}
		paths, err := c.List(rest[0], prefix)
		check(err)
		for _, p := range paths {
			fmt.Println(p)
		}
	case "owner":
		need(rest, 1)
		owner, err := c.Owner(rest[0])
		check(err)
		fmt.Printf("server %d\n", owner)
	case "lock":
		need(rest, 2)
		excl := len(rest) >= 3 && rest[2] == "exclusive"
		sid, err := c.Register()
		check(err)
		check(c.Lock(sid, rest[0], rest[1], excl))
		fmt.Printf("locked (session %d; lock lapses with the session lease)\n", sid)
	case "mount":
		need(rest, 2)
		check(c.Mount(rest[0], rest[1]))
		fmt.Println("ok")
	case "umount":
		need(rest, 1)
		check(c.Unmount(rest[0]))
		fmt.Println("ok")
	case "resolve":
		need(rest, 1)
		fs, rel, err := c.Resolve(rest[0])
		check(err)
		fmt.Printf("fileset=%s rel=%s\n", fs, rel)
	case "pcreate":
		need(rest, 1)
		check(c.PCreate(rest[0], sharedisk.Record{Owner: "anufsctl"}))
		fmt.Println("ok")
	case "pstat":
		need(rest, 1)
		rec, err := c.PStat(rest[0])
		check(err)
		fmt.Printf("size=%d mode=%o owner=%s modtime=%s\n", rec.Size, rec.Mode, rec.Owner, rec.ModTime)
	case "stats":
		stats, err := c.Stats()
		check(err)
		for _, st := range stats {
			fmt.Printf("server %d: speed %g share %5.1f%% owned %d served %d\n",
				st.ID, st.Speed, st.ShareFrac*100, st.Owned, st.Served)
		}
		js, err := c.JournalStats()
		check(err)
		if len(js) > 0 {
			names := make([]string, 0, len(js))
			for name := range js {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("%s %d\n", name, js[name])
			}
		}
	case "sync":
		check(c.Sync())
		fmt.Println("ok")
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anufsctl:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: anufsctl [-addr host:port] <command>
commands:
  mkfs <fileset>
  create <fileset> <path> [size]
  stat <fileset> <path>
  rm <fileset> <path>
  ls <fileset> [prefix]
  owner <fileset>
  lock <fileset> <path> [shared|exclusive]
  mount <prefix> <fileset>
  umount <prefix>
  resolve <global-path>
  pcreate <global-path>
  pstat <global-path>
  stats
  sync`)
	os.Exit(2)
}
