// Command anufsctl is the CLI client for anufsd.
//
// Usage:
//
//	anufsctl [-addr host:7460] mkfs <fileset>
//	anufsctl create <fileset> <path> [size]
//	anufsctl stat   <fileset> <path>
//	anufsctl rm     <fileset> <path>
//	anufsctl ls     <fileset> [prefix]
//	anufsctl owner  <fileset>
//	anufsctl lock   <fileset> <path> [shared|exclusive]
//	anufsctl [-json] stats
//	anufsctl ping [n]
//	anufsctl sync
//	anufsctl [-json] trace [id|last] [n]
//	anufsctl [-json] tunerlog [n]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/metrics"
	"anufs/internal/placement"
	"anufs/internal/sdk"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// dataAPI is the surface shared by a direct wire.Client and a
// fleet.Router: with -fleet, data commands route by the cluster map.
type dataAPI interface {
	CreateFileSet(fileSet string) error
	Create(fileSet, path string, rec sharedisk.Record) error
	Stat(fileSet, path string) (sharedisk.Record, error)
	Remove(fileSet, path string) error
	List(fileSet, prefix string) ([]string, error)
	Sync() error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7460", "anufsd address")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables (stats, trace, tunerlog)")
	fleetMode := flag.Bool("fleet", false, "route data commands through the fleet cluster map (-addr is any fleet daemon; the authority for assign/rebalance); with trace <id>, pull and stitch the trace across the fleet")
	nodesFlag := flag.String("nodes", "", `trace-pull targets for "trace <id> -fleet": comma-separated name=addr (or bare addr) wire addresses; default = every daemon in the cluster map`)
	metricsFlag := flag.String("metrics", "", `observability HTTP addresses for "top": comma-separated name=host:port (or bare host:port)`)
	volFlag := flag.String("volume", "", `with "map": show only this volume's file sets`)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if args[0] == "top" {
		// top speaks HTTP to the nodes' observability endpoints; no wire
		// connection needed.
		targets, err := parseTopTargets(*metricsFlag)
		check(err)
		iters := 0 // forever
		interval := 2 * time.Second
		if len(args) >= 2 {
			v, err := strconv.Atoi(args[1])
			check(err)
			iters = v
		}
		if len(args) >= 3 {
			d, err := time.ParseDuration(args[2])
			check(err)
			interval = d
		}
		runTop(targets, iters, interval)
		return
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	// Generous deadline: rebalance fans out many handoffs, but a CLI must
	// still fail rather than hang on a wedged daemon.
	c.SetTimeout(2 * time.Minute)
	var data dataAPI = c
	if *fleetMode {
		r, err := fleet.NewRouter(fleet.RouterConfig{AuthorityAddr: *addr})
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		data = r
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "mkfs":
		need(rest, 1)
		check(data.CreateFileSet(rest[0]))
		fmt.Println("ok")
	case "create":
		need(rest, 2)
		var size int64
		if len(rest) >= 3 {
			size, err = strconv.ParseInt(rest[2], 10, 64)
			if err != nil {
				fatal(err)
			}
		}
		check(data.Create(rest[0], rest[1], sharedisk.Record{Size: size, Owner: "anufsctl"}))
		fmt.Println("ok")
	case "stat":
		need(rest, 2)
		rec, err := data.Stat(rest[0], rest[1])
		check(err)
		fmt.Printf("size=%d mode=%o owner=%s modtime=%s\n", rec.Size, rec.Mode, rec.Owner, rec.ModTime)
	case "rm":
		need(rest, 2)
		check(data.Remove(rest[0], rest[1]))
		fmt.Println("ok")
	case "ls":
		need(rest, 1)
		prefix := "/"
		if len(rest) >= 2 {
			prefix = rest[1]
		}
		paths, err := data.List(rest[0], prefix)
		check(err)
		for _, p := range paths {
			fmt.Println(p)
		}
	case "map":
		encoded, err := c.ClusterMap()
		check(err)
		cm, err := placement.DecodeClusterMap(encoded)
		check(err)
		if *jsonOut {
			emitJSON(cm)
			return
		}
		check(renderMap(os.Stdout, cm, *volFlag))
	case "map-epoch":
		epoch, err := c.MapEpoch()
		check(err)
		fmt.Printf("epoch %d\n", epoch)
	case "assign":
		need(rest, 2)
		daemon := -1
		if rest[1] != "auto" {
			daemon, err = strconv.Atoi(rest[1])
			check(err)
		}
		epoch, err := c.Assign(rest[0], daemon)
		check(err)
		fmt.Printf("ok (epoch %d)\n", epoch)
	case "rebalance":
		epoch, err := c.Rebalance()
		check(err)
		fmt.Printf("ok (epoch %d)\n", epoch)
	case "leave":
		need(rest, 1)
		daemon, err := strconv.Atoi(rest[0])
		check(err)
		epoch, err := c.Leave(daemon)
		check(err)
		fmt.Printf("ok (epoch %d)\n", epoch)
	case "volume":
		// Volume administration is authority-only: point -addr at the
		// authority daemon (or any daemon when routing via a gateway that
		// forwards these ops).
		need(rest, 1)
		sub, vrest := rest[0], rest[1:]
		switch sub {
		case "create":
			need(vrest, 1)
			epoch, err := c.VolumeCreate(vrest[0])
			check(err)
			fmt.Printf("ok (epoch %d)\n", epoch)
		case "rm":
			need(vrest, 1)
			epoch, err := c.VolumeDelete(vrest[0])
			check(err)
			fmt.Printf("ok (epoch %d)\n", epoch)
		case "ls":
			vols, version, err := c.VolumeList()
			check(err)
			if *jsonOut {
				emitJSON(struct {
					Version uint64        `json:"version"`
					Volumes []volume.Info `json:"volumes"`
				}{version, vols})
				return
			}
			fmt.Printf("registry version %d\n", version)
			tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "VOLUME\tPOLICY\tWEIGHT\tMAX-FILESETS\tOP-RATE")
			for _, v := range vols {
				maxFS, opRate := "-", "-"
				if v.Quota.MaxFileSets > 0 {
					maxFS = strconv.Itoa(v.Quota.MaxFileSets)
				}
				if v.Quota.OpRate > 0 {
					opRate = fmt.Sprintf("%g/s", v.Quota.OpRate)
				}
				fmt.Fprintf(tw, "%s\t%s\t%g\t%s\t%s\n", v.Name, v.Policy, v.Weight, maxFS, opRate)
			}
			check(tw.Flush())
		case "set-quota":
			// volume set-quota <name> <max-filesets> <op-rate> [weight]
			need(vrest, 3)
			maxFS, err := strconv.Atoi(vrest[1])
			check(err)
			opRate, err := strconv.ParseFloat(vrest[2], 64)
			check(err)
			weight := 0.0
			if len(vrest) >= 4 {
				weight, err = strconv.ParseFloat(vrest[3], 64)
				check(err)
			}
			epoch, err := c.VolumeSetQuota(vrest[0], maxFS, opRate, weight)
			check(err)
			fmt.Printf("ok (epoch %d)\n", epoch)
		case "set-policy":
			need(vrest, 2)
			epoch, err := c.VolumeSetPolicy(vrest[0], vrest[1])
			check(err)
			fmt.Printf("ok (epoch %d)\n", epoch)
		default:
			usage()
		}
	case "owner":
		need(rest, 1)
		owner, err := c.Owner(rest[0])
		check(err)
		fmt.Printf("server %d\n", owner)
	case "lock":
		need(rest, 2)
		excl := len(rest) >= 3 && rest[2] == "exclusive"
		sid, err := c.Register()
		check(err)
		check(c.Lock(sid, rest[0], rest[1], excl))
		fmt.Printf("locked (session %d; lock lapses with the session lease)\n", sid)
	case "mount":
		need(rest, 2)
		check(c.Mount(rest[0], rest[1]))
		fmt.Println("ok")
	case "umount":
		need(rest, 1)
		check(c.Unmount(rest[0]))
		fmt.Println("ok")
	case "resolve":
		need(rest, 1)
		fs, rel, err := c.Resolve(rest[0])
		check(err)
		fmt.Printf("fileset=%s rel=%s\n", fs, rel)
	case "pcreate":
		need(rest, 1)
		check(c.PCreate(rest[0], sharedisk.Record{Owner: "anufsctl"}))
		fmt.Println("ok")
	case "pstat":
		need(rest, 1)
		rec, err := c.PStat(rest[0])
		check(err)
		fmt.Printf("size=%d mode=%o owner=%s modtime=%s\n", rec.Size, rec.Mode, rec.Owner, rec.ModTime)
	case "stats":
		stats, err := c.Stats()
		check(err)
		js, err := c.JournalStats()
		check(err)
		ws, conns, err := c.WireStats()
		check(err)
		if *jsonOut {
			emitJSON(struct {
				Servers []wire.ServerStat `json:"servers"`
				Journal map[string]int64  `json:"journal,omitempty"`
				Wire    map[string]int64  `json:"wire,omitempty"`
				Conns   []wire.ConnStat   `json:"conns,omitempty"`
			}{stats, js, ws, conns})
			return
		}
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SERVER\tSPEED\tSHARE\tOWNED\tSERVED")
		for _, st := range stats {
			fmt.Fprintf(tw, "%d\t%g\t%.1f%%\t%d\t%d\n",
				st.ID, st.Speed, st.ShareFrac*100, st.Owned, st.Served)
		}
		check(tw.Flush())
		// Merge the journal and wire counters into one CounterSet so the
		// listing is stable-sorted regardless of which side reported them.
		cs := metrics.NewCounterSet()
		for name, v := range js {
			cs.Set(name, v)
		}
		for name, v := range ws {
			cs.Set(name, v)
		}
		if names := cs.Names(); len(names) > 0 {
			fmt.Println()
			tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "COUNTER\tVALUE")
			for _, name := range names {
				fmt.Fprintf(tw, "%s\t%d\n", name, cs.Get(name))
			}
			check(tw.Flush())
		}
		if len(conns) > 0 {
			fmt.Println()
			tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "CONN\tREQUESTS\tERRORS\tSLOW\tBADFRAMES")
			for _, cn := range conns {
				fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n",
					cn.Remote, cn.Requests, cn.Errors, cn.Slow, cn.BadFrames)
			}
			check(tw.Flush())
		}
	case "ping":
		// Health probe that also reports the negotiated protocol: an sdk
		// dial upgrades to tagged frames when the server speaks them and
		// falls back to the line protocol when it does not.
		n := 3
		if len(rest) >= 1 {
			n, err = strconv.Atoi(rest[0])
			check(err)
		}
		sc, err := sdk.Dial(*addr, sdk.Options{Timeout: 5 * time.Second})
		check(err)
		defer sc.Close()
		proto := "line"
		if sc.Tagged() {
			proto = "tagged-v1"
		}
		for i := 0; i < n; i++ {
			start := time.Now()
			check(sc.Ping())
			fmt.Printf("pong from %s (%s): %s\n", *addr, proto, time.Since(start))
		}
	case "sync":
		check(data.Sync())
		fmt.Println("ok")
	case "trace":
		// "trace" dumps recent spans; "trace <id>" one trace's timeline;
		// "trace last [n]" makes a request first so there is a fresh trace.
		var trace uint64
		n := 64
		if len(rest) >= 1 {
			if rest[0] == "last" {
				// Run a traced sync so the dumped trace crosses the whole
				// stack (wire, queue, apply, journal when enabled).
				check(c.Sync())
				trace = c.LastTrace()
			} else {
				trace, err = strconv.ParseUint(rest[0], 10, 64)
				check(err)
			}
			if len(rest) >= 2 {
				v, err := strconv.Atoi(rest[1])
				check(err)
				n = v
			}
		}
		if *fleetMode && trace != 0 {
			// Stitch the trace across every node instead of dumping one
			// daemon's ring.
			fleetTrace(c, *addr, *nodesFlag, trace, *jsonOut)
			return
		}
		spans, err := c.Trace(trace, n)
		check(err)
		if *jsonOut {
			emitJSON(spans)
			return
		}
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TRACE\tSPAN\tOP\tFILESET\tSERVER\tSTART\tDUR\tERR")
		for _, sp := range spans {
			srv := strconv.Itoa(sp.Server)
			if sp.Server < 0 {
				srv = "-"
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				sp.Trace, sp.Name, sp.Op, sp.FileSet, srv,
				sp.Start.Format("15:04:05.000000"), sp.Dur, sp.Err)
		}
		check(tw.Flush())
	case "tunerlog":
		n := 0
		if len(rest) >= 1 {
			n, err = strconv.Atoi(rest[0])
			check(err)
		}
		events, err := c.TunerLog(n)
		check(err)
		if *jsonOut {
			emitJSON(events)
			return
		}
		for _, ev := range events {
			fmt.Printf("#%d %s aggregate=%.6fs tuned=%v changed=%.1f%%\n",
				ev.Seq, ev.At.Format("15:04:05.000"), ev.Aggregate, ev.Tuned, ev.ChangedFrac*100)
			for _, d := range ev.Decisions {
				fmt.Printf("  server %d: latency=%.6fs factor=%.3f %s share %.1f%% -> %.1f%%\n",
					d.Server, d.Latency, d.Factor, d.Reason, d.OldShare*100, d.NewShare*100)
			}
		}
	default:
		usage()
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}
func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anufsctl:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: anufsctl [-addr host:port] <command>
commands:
  mkfs <fileset>
  create <fileset> <path> [size]
  stat <fileset> <path>
  rm <fileset> <path>
  ls <fileset> [prefix]
  owner <fileset>
  lock <fileset> <path> [shared|exclusive]
  mount <prefix> <fileset>
  umount <prefix>
  resolve <global-path>
  pcreate <global-path>
  pstat <global-path>
  stats            (add -json for machine-readable output)
  ping [n]         round-trip n pings; reports the negotiated protocol (tagged-v1 or line)
  sync
  trace [id|last] [n]   dump request trace spans (one trace, or the n most recent)
  trace <id> -fleet     pull the trace from every node (-nodes name=addr,... adds
                        gateways/standbys) and print one stitched cross-node timeline
  top [iters [ival]]    poll -metrics host:port,... and render per-node/per-op RED rows,
                        per-volume tenant rows (rate, errors, quota denials, p99),
                        replication lag, pool health, and exemplar traces
  tunerlog [n]          dump structured tuner decision events
fleet (daemons started with -fleet; add -fleet here to route data commands by the map):
  map [-volume v]       show the cluster map (epoch, daemons, hosted volumes, assignments)
  map-epoch             show just the map epoch
  assign <fileset> <daemon|auto>   place or live-move a file set (-addr must be the authority)
  rebalance             recompute ANU placement and hand off every mis-placed file set
  leave <daemon>        drain a daemon out of the fleet (its file sets hand off first)
volumes (multi-tenant; -addr must be the authority; file sets are named <volume>/<fileset>):
  volume create <name>
  volume rm <name>                 refused while the volume still owns file sets
  volume ls                        list volumes, policies, weights, quotas (add -json)
  volume set-quota <name> <max-filesets> <op-rate> [weight]   0 = unlimited / keep weight
  volume set-policy <name> <spread|pack>`)
	os.Exit(2)
}
