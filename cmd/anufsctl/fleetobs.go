// Fleet observability commands: "trace <id> -fleet" pulls one trace's
// spans from every node and stitches the cross-node timeline; "top" polls
// /metrics across the fleet and renders per-node, per-op RED rows plus
// replication lag, pool health, and exemplar traces.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// traceNodes builds the trace-pull target list: the -nodes flag
// ("name=addr,..." or bare addresses) wins; otherwise every daemon in the
// cluster map plus the addressed node itself. Standbys and gateways are
// not in the map — name them with -nodes to include their hops.
func traceNodes(c *wire.Client, addr, nodesFlag string) ([]fleet.TraceNode, error) {
	var out []fleet.TraceNode
	seen := map[string]bool{}
	add := func(name, a string) {
		if a == "" || seen[a] {
			return
		}
		seen[a] = true
		out = append(out, fleet.TraceNode{Name: name, Addr: a})
	}
	for _, part := range strings.Split(nodesFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, a, ok := strings.Cut(part, "="); ok {
			add(name, a)
		} else {
			add(part, part)
		}
	}
	if len(out) > 0 {
		return out, nil
	}
	if encoded, err := c.ClusterMap(); err == nil {
		if cm, err := placement.DecodeClusterMap(encoded); err == nil {
			for _, d := range cm.Daemons {
				add(fmt.Sprintf("daemon-%d", d.ID), d.Addr)
			}
		}
	}
	add(addr, addr)
	if len(out) == 0 {
		return nil, fmt.Errorf("no trace-pull targets (pass -nodes name=addr,...)")
	}
	return out, nil
}

// fleetTrace pulls and stitches one trace across the fleet.
func fleetTrace(c *wire.Client, addr, nodesFlag string, trace uint64, jsonOut bool) {
	nodes, err := traceNodes(c, addr, nodesFlag)
	check(err)
	pulled := fleet.PullTrace(trace, nodes, nil)
	ft := obs.Stitch(trace, pulled)
	if jsonOut {
		emitJSON(ft)
		return
	}
	ft.WriteTimeline(os.Stdout)
}

// topTarget is one /metrics endpoint "top" polls.
type topTarget struct {
	name string
	url  string
}

// parseTopTargets parses -metrics: comma-separated "name=host:port" or
// bare "host:port" observability HTTP addresses.
func parseTopTargets(flagVal string) ([]topTarget, error) {
	var out []topTarget
	for _, part := range strings.Split(flagVal, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := part, part
		if n, a, ok := strings.Cut(part, "="); ok {
			name, addr = n, a
		}
		url := addr
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		if !strings.HasSuffix(url, "/metrics") {
			url = strings.TrimSuffix(url, "/") + "/metrics"
		}
		out = append(out, topTarget{name: name, url: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("top needs -metrics host:port[,name=host:port...] (the daemons' -http addresses)")
	}
	return out, nil
}

// scrapeTarget fetches and parses one /metrics endpoint.
func scrapeTarget(t topTarget) (*obs.Scrape, error) {
	cl := &http.Client{Timeout: 3 * time.Second}
	resp, err := cl.Get(t.url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s: HTTP %d", t.url, resp.StatusCode)
	}
	return obs.ParseProm(resp.Body)
}

// opCounts returns per-op request totals for one histogram family.
func opCounts(s *obs.Scrape, hist string) map[string]float64 {
	out := map[string]float64{}
	s.Each(hist+"_count", func(p obs.MetricPoint) {
		out[p.Labels["op"]] += p.Value
	})
	return out
}

// runTop polls every target iters times, interval apart, and renders a
// fleet dashboard per poll: RED rows (rate from count deltas, errors,
// p99 duration) per node and op, the slowest exemplar trace per row, then
// replication lag per peer, pool and gateway health.
func runTop(targets []topTarget, iters int, interval time.Duration) {
	// Previous per-(target, histogram, op) counts for rate computation.
	prev := map[string]map[string]float64{}
	prevErrs := map[string]float64{}
	prevAt := time.Time{}
	for i := 0; iters <= 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		now := time.Now()
		elapsed := now.Sub(prevAt)
		fmt.Printf("--- anufs top @ %s ---\n", now.Format("15:04:05"))
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tOP\tREQS\tRATE\tERRS\tP99\tSLOWEST-TRACE")
		type section struct {
			target topTarget
			scrape *obs.Scrape
		}
		var scrapes []section
		for _, t := range targets {
			s, err := scrapeTarget(t)
			if err != nil {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t(%v)\n", t.name, err)
				continue
			}
			scrapes = append(scrapes, section{t, s})
			errs, _ := s.Value("anufs_wire_errors", nil)
			if v, ok := s.Value("anufs_gw_errors", nil); ok {
				errs += v
			}
			errDelta := errs - prevErrs[t.name]
			prevErrs[t.name] = errs
			for _, hist := range []string{"anufs_wire_request_seconds", "anufs_gw_request_seconds"} {
				counts := opCounts(s, hist)
				ops := make([]string, 0, len(counts))
				for op := range counts {
					ops = append(ops, op)
				}
				sort.Strings(ops)
				for _, op := range ops {
					key := t.name + "|" + hist + "|" + op
					rate := "-"
					if p, ok := prev[key]; ok && elapsed > 0 {
						rate = fmt.Sprintf("%.0f/s", (counts[op]-p["count"])/elapsed.Seconds())
					}
					prev[key] = map[string]float64{"count": counts[op]}
					p99 := "-"
					if q, ok := s.Quantile(hist, map[string]string{"op": op}, 0.99); ok {
						p99 = q.String()
					}
					slow := "-"
					if ex, ok := s.SlowestExemplar(hist, map[string]string{"op": op}); ok {
						slow = fmt.Sprintf("%d (%.1fms)", ex.Trace, ex.Value*1e3)
					}
					fmt.Fprintf(tw, "%s\t%s\t%.0f\t%s\t%.0f\t%s\t%s\n",
						t.name, op, counts[op], rate, errDelta, p99, slow)
					errDelta = 0 // errors are per node, print once
				}
			}
		}
		check(tw.Flush())
		prevAt = now

		// Multi-tenant: per-volume RED rows plus quota denials — the
		// tenant-facing view of the same request stream.
		vtw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		volRows := 0
		for _, sec := range scrapes {
			s := sec.scrape
			for _, vol := range s.LabelValues("anufs_volume_requests", "volume") {
				reqs, _ := s.Value("anufs_volume_requests", map[string]string{"volume": vol})
				errs, _ := s.Value("anufs_volume_errors", map[string]string{"volume": vol})
				denied, _ := s.Value("anufs_volume_quota_denials", map[string]string{"volume": vol})
				key := sec.target.name + "|volume|" + vol
				rate := "-"
				if p, ok := prev[key]; ok && elapsed > 0 {
					rate = fmt.Sprintf("%.0f/s", (reqs-p["count"])/elapsed.Seconds())
				}
				prev[key] = map[string]float64{"count": reqs}
				p99 := "-"
				if q, ok := s.Quantile("anufs_volume_request_seconds", map[string]string{"volume": vol}, 0.99); ok {
					p99 = q.String()
				}
				if volRows == 0 {
					fmt.Fprintln(vtw, "\nVOLUMES\tVOLUME\tREQS\tRATE\tERRS\tQUOTA-DENIED\tP99")
				}
				fmt.Fprintf(vtw, "%s\t%s\t%.0f\t%s\t%.0f\t%.0f\t%s\n",
					sec.target.name, vol, reqs, rate, errs, denied, p99)
				volRows++
			}
		}
		check(vtw.Flush())

		// Replication: per-peer shipping lag and acked sequence.
		repl := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		replRows := 0
		for _, sec := range scrapes {
			for _, peer := range sec.scrape.LabelValues("anufs_replica_lag_entries", "peer") {
				lag, _ := sec.scrape.Value("anufs_replica_lag_entries", map[string]string{"peer": peer})
				acked, _ := sec.scrape.Value("anufs_replica_acked_seq", map[string]string{"peer": peer})
				if replRows == 0 {
					fmt.Fprintln(repl, "\nREPLICATION\tPEER\tLAG\tACKED-SEQ")
				}
				fmt.Fprintf(repl, "%s\t%s\t%.0f\t%.0f\n", sec.target.name, peer, lag, acked)
				replRows++
			}
		}
		check(repl.Flush())

		// Client/gateway health: pool liveness and pipeline depth per
		// daemon, redials, batch fold ratio, map-cache behaviour.
		pool := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		poolRows := 0
		for _, sec := range scrapes {
			s := sec.scrape
			for _, daemon := range s.LabelValues("anufs_sdk_pool_live", "daemon") {
				live, _ := s.Value("anufs_sdk_pool_live", map[string]string{"daemon": daemon})
				infl, _ := s.Value("anufs_sdk_pool_inflight", map[string]string{"daemon": daemon})
				if poolRows == 0 {
					fmt.Fprintln(pool, "\nPOOLS\tDAEMON\tLIVE\tINFLIGHT")
				}
				fmt.Fprintf(pool, "%s\t%s\t%.0f\t%.0f\n", sec.target.name, daemon, live, infl)
				poolRows++
			}
		}
		check(pool.Flush())
		for _, sec := range scrapes {
			s := sec.scrape
			var bits []string
			if v, ok := s.Value("anufs_sdk_pool_redials", nil); ok && v > 0 {
				bits = append(bits, fmt.Sprintf("redials=%.0f", v))
			}
			if v, ok := s.Value("anufs_sdk_pool_health_failures", nil); ok && v > 0 {
				bits = append(bits, fmt.Sprintf("health-failures=%.0f", v))
			}
			if sent, ok := s.Value("anufs_sdk_batches_sent", nil); ok && sent > 0 {
				opsv, _ := s.Value("anufs_sdk_batched_ops", nil)
				bits = append(bits, fmt.Sprintf("batch-fold=%.1fx", opsv/sent))
			}
			if v, ok := s.Value("anufs_fleet_map_fetches", nil); ok {
				hits, _ := s.Value("anufs_fleet_map_peer_hits", nil)
				bits = append(bits, fmt.Sprintf("map-fetches=%.0f (peer-hits=%.0f)", v, hits))
			}
			if v, ok := s.Value("anufs_gw_inflight_requests", nil); ok {
				bits = append(bits, fmt.Sprintf("gw-inflight=%.0f", v))
			}
			if len(bits) > 0 {
				fmt.Printf("%s: %s\n", sec.target.name, strings.Join(bits, "  "))
			}
		}
		fmt.Println()
	}
}
