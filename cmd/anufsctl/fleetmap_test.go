package main

import (
	"strings"
	"testing"

	"anufs/internal/placement"
)

// TestRenderMapGolden pins the `anufsctl map` output format: scripts parse
// this table, so changing it is a breaking change that must show up here.
func TestRenderMapGolden(t *testing.T) {
	cm := &placement.ClusterMap{
		Epoch: 7,
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "10.0.0.1:7460", Speed: 1},
			{ID: 1, Addr: "10.0.0.2:7460", Speed: 2.5},
			{ID: 2, Addr: "10.0.0.3:7460", Speed: 4},
		},
		Assign: map[string]int{
			"vol00":     1,
			"vol01":     2,
			"vol02":     1,
			"vol03":     0,
			"acme/logs": 1,
		},
		Authority: 1,
	}
	var sb strings.Builder
	if err := renderMap(&sb, cm, ""); err != nil {
		t.Fatal(err)
	}
	golden := "epoch 7\n" +
		"DAEMON  ADDR           SPEED  VOLUMES       FILESETS\n" +
		"0       10.0.0.1:7460  1      default       vol03\n" +
		"1*      10.0.0.2:7460  2.5    acme,default  acme/logs,vol00,vol02\n" +
		"2       10.0.0.3:7460  4      default       vol01\n"
	if got := sb.String(); got != golden {
		t.Fatalf("renderMap output drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestRenderMapVolumeFilter keeps only the named volume's file sets;
// daemons that host none of them render as "-".
func TestRenderMapVolumeFilter(t *testing.T) {
	cm := &placement.ClusterMap{
		Epoch: 3,
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "a:1", Speed: 1},
			{ID: 1, Addr: "b:1", Speed: 1},
		},
		Assign: map[string]int{
			"acme/logs": 0,
			"acme/tmp":  0,
			"vol00":     1,
		},
	}
	var sb strings.Builder
	if err := renderMap(&sb, cm, "acme"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "acme/logs,acme/tmp") {
		t.Fatalf("filtered map lost acme's file sets:\n%s", out)
	}
	if strings.Contains(out, "vol00") {
		t.Fatalf("filtered map leaked another volume's file set:\n%s", out)
	}
}

// TestRenderMapEmptyDaemon shows daemons with no file sets as "-".
func TestRenderMapEmptyDaemon(t *testing.T) {
	cm := &placement.ClusterMap{
		Epoch:   1,
		Daemons: []placement.DaemonInfo{{ID: 0, Addr: "a:1", Speed: 1}},
		Assign:  map[string]int{},
	}
	var sb strings.Builder
	if err := renderMap(&sb, cm, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("empty daemon not rendered as '-':\n%s", sb.String())
	}
}
