// Command benchvol measures cross-tenant isolation in the owner queues:
// a victim tenant's p99 create latency, solo and while a noisy tenant
// saturates the same server, under two queue disciplines —
//
//	wfq   weighted fair queueing (per-volume FIFO queues, stride-scheduled
//	      by weight, per-volume depth bound): the multi-tenant default
//	fifo  one global FIFO with a shared depth bound: the pre-volume shape,
//	      where the noisy tenant's backlog stands in front of everyone
//
// Output is `go test -bench` format so cmd/bench2json converts it to the
// BENCH_volume.json artifact in CI: one line per discipline/phase with
// ns/op (mean victim latency), plus a companion /p99 line carrying the
// 99th-percentile latency.
//
// With -check, benchvol exits nonzero unless WFQ holds the victim's
// contended p99 within -max-degradation times its solo p99 — the
// regression gate for the isolation the volume subsystem exists to
// provide. (FIFO is measured for contrast but not gated: it degrades
// unboundedly by design.)
//
// Usage:
//
//	benchvol -samples 60 -check
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func main() {
	var (
		samples = flag.Int("samples", 60, "victim ops measured per phase")
		opCost  = flag.Duration("opcost", 2*time.Millisecond, "server-side cost per queued task")
		depth   = flag.Int("depth", 8, "owner-queue depth bound (per volume under wfq, global under fifo)")
		workers = flag.Int("workers", 24, "noisy-tenant goroutines in the contended phase")
		check   = flag.Bool("check", false, "fail unless wfq contended p99 <= -max-degradation x solo p99")
		maxDeg  = flag.Float64("max-degradation", 3, "tolerated contended/solo victim p99 ratio for -check")
	)
	flag.Parse()

	var wfqRatio float64
	for _, mode := range []string{"wfq", "fifo"} {
		c := newCluster(mode == "wfq", *opCost, *depth)
		solo := victimP99(c, "solo", *samples)
		emit(mode, "solo", solo)

		stop := saturate(c, *workers)
		// Let the noisy tenant's backlog actually fill the queue before
		// measuring: with workers >> depth the push path blocks, so a short
		// grace period is enough.
		time.Sleep(20 * *opCost)
		contended := victimP99(c, "contended", *samples)
		stop()
		c.Stop()
		emit(mode, "contended", contended)

		ratio := float64(contended.p99) / float64(solo.p99)
		fmt.Fprintf(os.Stderr, "benchvol: %-4s victim p99 solo=%v contended=%v (%.1fx)\n",
			mode, solo.p99, contended.p99, ratio)
		if mode == "wfq" {
			wfqRatio = ratio
		}
	}

	if *check {
		fmt.Fprintf(os.Stderr, "benchvol: wfq contended/solo victim p99: %.2fx (ceiling %.1fx)\n",
			wfqRatio, *maxDeg)
		if wfqRatio > *maxDeg {
			log.Fatalf("benchvol: wfq let the victim's p99 degrade %.1fx under a noisy neighbour, ceiling is %.1fx",
				wfqRatio, *maxDeg)
		}
	}
}

// phaseResult is one phase's victim-side latency summary.
type phaseResult struct {
	n    int
	mean time.Duration
	p99  time.Duration
}

func emit(mode, phase string, r phaseResult) {
	fmt.Printf("BenchmarkVolumeIsolation/%s/%s \t%d\t%.1f ns/op\n",
		mode, phase, r.n, float64(r.mean.Nanoseconds()))
	fmt.Printf("BenchmarkVolumeIsolation/%s/%s/p99 \t1\t%d ns/op\n",
		mode, phase, r.p99.Nanoseconds())
}

// newCluster boots a one-server cluster with the hot (noisy) and cold
// (victim) tenants' file sets pre-created. Tuning is parked (Window=hour)
// so the queue discipline is the only variable.
func newCluster(fair bool, opCost time.Duration, depth int) *live.Cluster {
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = opCost
	cfg.QueueDepth = depth
	cfg.FairQueue = fair
	c, err := live.NewCluster(cfg, sharedisk.NewStore(0), map[int]float64{0: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, fs := range []string{"hot/a", "cold/a"} {
		if err := c.CreateFileSet(fs); err != nil {
			log.Fatal(err)
		}
	}
	return c
}

// victimP99 issues n sequential victim-tenant creates and summarizes
// their latency. Paths carry the phase so the two phases never collide.
func victimP99(c *live.Cluster, phase string, n int) phaseResult {
	lats := make([]int64, 0, n)
	var total int64
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := c.Create("cold/a", fmt.Sprintf("/%s-%d", phase, i), sharedisk.Record{Size: 1}); err != nil {
			log.Fatalf("benchvol: victim op: %v", err)
		}
		d := time.Since(start).Nanoseconds()
		lats = append(lats, d)
		total += d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (len(lats) * 99) / 100
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return phaseResult{
		n:    len(lats),
		mean: time.Duration(total / int64(len(lats))),
		p99:  time.Duration(lats[idx]),
	}
}

// saturate floods the hot tenant from workers goroutines until the
// returned stop function is called. Each worker issues sequential ops,
// so choosing workers comfortably above the queue depth keeps the hot
// volume's queue pinned full.
func saturate(c *live.Cluster, workers int) (stop func()) {
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				// Errors are expected at shutdown (queue closed); ignore.
				_ = c.Create("hot/a", fmt.Sprintf("/w%d-%d", w, i), sharedisk.Record{Size: 1})
			}
		}(w)
	}
	return func() {
		done.Store(true)
		wg.Wait()
	}
}
