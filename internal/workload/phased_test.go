package workload

import (
	"math"
	"testing"
)

func phasedCfg() SyntheticConfig {
	return SyntheticConfig{
		Seed:       7,
		FileSets:   50,
		Requests:   40000,
		Duration:   4000,
		WeightSpan: 3,
		Alpha:      0.625,
	}
}

func TestGeneratePhasedShiftsHotSets(t *testing.T) {
	cfg := phasedCfg()
	tr := GeneratePhased(cfg, 2)
	half := cfg.Duration / 2
	// Count requests per file set per phase.
	first := map[string]int{}
	second := map[string]int{}
	for _, r := range tr.Requests {
		if r.At < half {
			first[r.FileSet]++
		} else {
			second[r.FileSet]++
		}
	}
	hottest := func(m map[string]int) (string, int) {
		bestN, best := 0, ""
		for fs, n := range m {
			if n > bestN {
				best, bestN = fs, n
			}
		}
		return best, bestN
	}
	h1, n1 := hottest(first)
	h2, n2 := hottest(second)
	if n1 == 0 || n2 == 0 {
		t.Fatal("a phase has no requests")
	}
	// The phase-1 hot set must cool off substantially in phase 2 (its
	// weight is redrawn). With 3 decades of span, a repeat draw anywhere
	// near the top is vanishingly unlikely.
	ratio := float64(first[h1]) / math.Max(1, float64(second[h1]))
	if h1 == h2 && ratio < 2 {
		t.Fatalf("hot set %s stayed hot across the shift (%d -> %d)", h1, first[h1], second[h1])
	}
}

func TestGeneratePhasedDeterministic(t *testing.T) {
	a := GeneratePhased(phasedCfg(), 3)
	b := GeneratePhased(phasedCfg(), 3)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGeneratePhasedValid(t *testing.T) {
	tr := GeneratePhased(phasedCfg(), 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tr.Len())-40000) > 3000 {
		t.Fatalf("request count %d, want ~40000", tr.Len())
	}
	if tr.Duration() > phasedCfg().Duration {
		t.Fatalf("duration %v exceeds configured", tr.Duration())
	}
}

func TestGeneratePhasedOnePhaseMatchesShape(t *testing.T) {
	// One phase is just a synthetic workload (different seed path, same
	// statistical shape): ~N requests, heavy skew.
	cfg := phasedCfg()
	tr := GeneratePhased(cfg, 1)
	counts := tr.CountByFileSet()
	min, max := math.MaxInt, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 10*min {
		t.Fatalf("phase lacks heavy tail: max %d min %d", max, min)
	}
}

func TestGeneratePhasedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero phases": func() { GeneratePhased(phasedCfg(), 0) },
		"bad config":  func() { GeneratePhased(SyntheticConfig{}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}
