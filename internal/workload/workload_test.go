package workload

import (
	"math"
	"testing"
)

func TestGenerateMatchesPaperScale(t *testing.T) {
	cfg := DefaultSynthetic(1)
	tr := Generate(cfg)
	// Poisson total: expect N ± a few percent.
	if n := tr.Len(); math.Abs(float64(n)-100000) > 3000 {
		t.Fatalf("request count %d, want ~100,000", n)
	}
	if fs := tr.FileSets(); len(fs) < 450 {
		// A handful of minimal-weight file sets may see no arrivals.
		t.Fatalf("%d file sets appeared, want ~500", len(fs))
	}
	if d := tr.Duration(); d > cfg.Duration {
		t.Fatalf("duration %v exceeds configured %v", d, cfg.Duration)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSynthetic(9))
	b := Generate(DefaultSynthetic(9))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestWeightsSpanThreeDecades(t *testing.T) {
	cfg := DefaultSynthetic(1)
	w := Weights(cfg)
	if len(w) != cfg.FileSets {
		t.Fatalf("got %d weights", len(w))
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range w {
		if v < 1 || v >= 1000 {
			t.Fatalf("weight %v outside [1, 1000) = 10^(3x)", v)
		}
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max/min < 100 {
		t.Fatalf("weight spread %v, want >= 100 with 500 draws over 3 decades", max/min)
	}
}

func TestWeightsStableAcrossCalls(t *testing.T) {
	cfg := DefaultSynthetic(4)
	a := Weights(cfg)
	b := Weights(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Weights not deterministic")
		}
	}
}

func TestRequestCountsTrackWeights(t *testing.T) {
	cfg := DefaultSynthetic(2)
	cfg.FileSets = 50
	cfg.Requests = 50000
	tr := Generate(cfg)
	w := Weights(cfg)
	counts := tr.CountByFileSet()
	// The heaviest file set must see far more requests than the lightest.
	heavy, light := 0, 0
	heavyW, lightW := math.Inf(-1), math.Inf(1)
	for i, v := range w {
		if v > heavyW {
			heavyW, heavy = v, i
		}
		if v < lightW {
			lightW, light = v, i
		}
	}
	ch, cl := counts[FileSetName(heavy)], counts[FileSetName(light)]
	if ch <= cl*10 {
		t.Fatalf("heaviest fs got %d requests vs lightest %d; want strong skew", ch, cl)
	}
	// The heavy/light count ratio should roughly match the weight ratio.
	if cl > 0 {
		gotRatio := float64(ch) / float64(cl)
		wantRatio := heavyW / lightW
		if gotRatio < wantRatio/3 || gotRatio > wantRatio*3 {
			t.Fatalf("count ratio %v vs weight ratio %v", gotRatio, wantRatio)
		}
	}
}

func TestBelowPeakLoad(t *testing.T) {
	cfg := DefaultSynthetic(1)
	tr := Generate(cfg)
	var work float64
	for _, r := range tr.Requests {
		work += r.Work
	}
	util := work / (cfg.Duration * 25)
	if util >= 0.5 {
		t.Fatalf("utilization %v — not comfortably below peak load", util)
	}
	if util < 0.15 {
		t.Fatalf("utilization %v — too idle to reproduce the paper's latency regime", util)
	}
}

func TestPoissonInterArrivals(t *testing.T) {
	// For a single file set the gaps must be exponential: mean ≈ 1/λ and
	// CoV ≈ 1.
	cfg := DefaultSynthetic(3)
	cfg.FileSets = 1
	cfg.Requests = 20000
	tr := Generate(cfg)
	var gaps []float64
	for i := 1; i < tr.Len(); i++ {
		gaps = append(gaps, tr.Requests[i].At-tr.Requests[i-1].At)
	}
	mean, sq := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cov := math.Sqrt(sq/float64(len(gaps))) / mean
	wantMean := cfg.Duration / float64(cfg.Requests)
	if math.Abs(mean-wantMean) > 0.1*wantMean {
		t.Fatalf("mean gap %v, want ~%v", mean, wantMean)
	}
	if cov < 0.9 || cov > 1.1 {
		t.Fatalf("gap CoV %v, want ~1 (exponential)", cov)
	}
}

func TestGenerateInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(SyntheticConfig{})
}

func TestFileSetName(t *testing.T) {
	if FileSetName(7) != "sfs007" || FileSetName(499) != "sfs499" {
		t.Fatalf("FileSetName format wrong: %q %q", FileSetName(7), FileSetName(499))
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultSynthetic(1)
	cfg.Requests = 10000
	cfg.FileSets = 100
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
