// Package workload generates the paper's synthetic workload (§7): 100,000
// client requests against 500 file sets over 10,000 seconds. Each file
// set's request process is Poisson with a rate that is stable for the whole
// run, and the per-file-set workload weight is α·10^(3x) with x drawn
// uniformly from [0, 1) — three decades of workload heterogeneity. α is the
// scaling factor the paper tunes "so that the system is below peak load".
package workload

import (
	"fmt"

	"anufs/internal/rng"
	"anufs/internal/trace"
)

// SyntheticConfig parameterizes the generator. Defaults (DefaultSynthetic)
// match the paper.
type SyntheticConfig struct {
	Seed     uint64
	FileSets int     // paper: 500
	Requests int     // approximate total; paper: 100,000
	Duration float64 // seconds; paper: 10,000
	// WeightSpan is the exponent span: weights are 10^(WeightSpan·x).
	// The paper uses 3 (w = 10^(3x)).
	WeightSpan float64
	// Alpha scales per-request service work so the cluster stays below peak
	// load. Work per request is Alpha seconds on a speed-1 server.
	Alpha float64
}

// DefaultSynthetic matches the paper's synthetic experiment. Alpha is
// calibrated for the 5-server (speeds 1,3,5,7,9) cluster: 100,000 × 0.625 s
// / (10,000 s × 25) = 25% aggregate utilization. This is the paper's
// "below peak load" regime with the property its figures rely on: a
// balanced configuration is comfortable on every server, but a
// heterogeneity-blind policy that hands the speed-1 server an equal 1/5 of
// the workload drives it past saturation (ρ ≈ 1.25), so its latency grows
// over the run the way the paper's static-policy curves do — while an
// adaptive policy that sheds the excess sees the backlog drain within a
// few measurement windows.
func DefaultSynthetic(seed uint64) SyntheticConfig {
	return SyntheticConfig{
		Seed:       seed,
		FileSets:   500,
		Requests:   100000,
		Duration:   10000,
		WeightSpan: 3,
		Alpha:      0.625,
	}
}

// Generate produces the synthetic trace. Per file set i, requests arrive by
// a homogeneous Poisson process with rate λᵢ = wᵢ/Σw × N/T, realized as
// exponential inter-arrival gaps, so the total count is N in expectation
// (the paper states the distribution, not an exact count).
func Generate(cfg SyntheticConfig) *trace.Trace {
	if cfg.FileSets < 1 || cfg.Requests < 1 || cfg.Duration <= 0 || cfg.Alpha <= 0 {
		panic(fmt.Sprintf("workload: invalid SyntheticConfig %+v", cfg))
	}
	r := rng.NewStream(cfg.Seed)
	weights := Weights(cfg)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	t := &trace.Trace{Requests: make([]trace.Request, 0, cfg.Requests+cfg.Requests/10)}
	for i, w := range weights {
		name := FileSetName(i)
		rate := w / wsum * float64(cfg.Requests) / cfg.Duration
		if rate <= 0 {
			continue
		}
		fsr := r.Split()
		for at := fsr.Exp(rate); at < cfg.Duration; at += fsr.Exp(rate) {
			t.Requests = append(t.Requests, trace.Request{
				At:      at,
				FileSet: name,
				Work:    cfg.Alpha,
			})
		}
	}
	t.Sort()
	return t
}

// GeneratePhased produces a synthetic trace whose per-file-set weights are
// redrawn independently in each of `phases` equal time slices — the paper's
// "temporal heterogeneity: changing load placement in response to workload
// shifts" (§1). A file set that dominated one phase is usually cold in the
// next, so static placements that fit phase one degrade and adaptive
// placement must re-tune.
func GeneratePhased(cfg SyntheticConfig, phases int) *trace.Trace {
	if phases < 1 {
		panic("workload: phases must be >= 1")
	}
	if cfg.FileSets < 1 || cfg.Requests < 1 || cfg.Duration <= 0 || cfg.Alpha <= 0 {
		panic(fmt.Sprintf("workload: invalid SyntheticConfig %+v", cfg))
	}
	r := rng.NewStream(cfg.Seed ^ 0x50484153) // "PHAS"
	t := &trace.Trace{}
	phaseDur := cfg.Duration / float64(phases)
	reqPerPhase := cfg.Requests / phases
	for p := 0; p < phases; p++ {
		weights := make([]float64, cfg.FileSets)
		wr := rng.NewStream(cfg.Seed + uint64(p)*0x9e3779b97f4a7c15)
		var wsum float64
		for i := range weights {
			weights[i] = wr.LogUniform10(cfg.WeightSpan)
			wsum += weights[i]
		}
		lo := float64(p) * phaseDur
		for i, w := range weights {
			rate := w / wsum * float64(reqPerPhase) / phaseDur
			if rate <= 0 {
				continue
			}
			fsr := r.Split()
			for at := lo + fsr.Exp(rate); at < lo+phaseDur; at += fsr.Exp(rate) {
				t.Requests = append(t.Requests, trace.Request{
					At: at, FileSet: FileSetName(i), Work: cfg.Alpha,
				})
			}
		}
	}
	t.Sort()
	return t
}

// Weights returns the per-file-set workload weights 10^(WeightSpan·x),
// deterministically derived from the seed. The i-th weight corresponds to
// FileSetName(i). Exposed so the prescient baseline and tests can use the
// true weights the generator used.
func Weights(cfg SyntheticConfig) []float64 {
	r := rng.NewStream(cfg.Seed ^ 0x57454947) // decouple from arrival draws
	weights := make([]float64, cfg.FileSets)
	for i := range weights {
		weights[i] = r.LogUniform10(cfg.WeightSpan)
	}
	return weights
}

// FileSetName names the i-th synthetic file set.
func FileSetName(i int) string { return fmt.Sprintf("sfs%03d", i) }
