// Package rng provides deterministic pseudo-random number streams and the
// distributions the simulator and workload generators need.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so we implement the generators from scratch rather than depending on the
// process-global state in math/rand. Every stream is seeded explicitly and
// two streams with different seeds are statistically independent for our
// purposes (splitmix64 seeding of xoshiro256**).
package rng

import "math"

// Stream is a deterministic pseudo-random number stream. It is NOT safe for
// concurrent use; give each goroutine (or each simulated entity) its own
// Stream, derived with Split or NewStream.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used both for seeding xoshiro and as the hash finalizer in hashfam.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns a stream seeded from the given 64-bit seed. Distinct
// seeds yield distinct, well-mixed streams; a zero seed is valid.
func NewStream(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro requires a not-all-zero state; splitmix64 of any seed cannot
	// produce four zero outputs, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives an independent child stream. The parent advances, so
// successive Splits return different children.
func (r *Stream) Split() *Stream {
	return NewStream(r.Uint64() ^ 0x632be59bd9b4e019)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul128(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul128(v, un)
		}
	}
	return int(hi)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	hi = aHi*bHi + w2 + (t >> 32)
	lo |= (t & mask) << 32
	return hi, lo
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For large
// means it uses the PTRS transformed-rejection method; for small means,
// Knuth's product method.
func (r *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: multiply uniforms until the product drops below e^-mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann 1993).
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-logGamma(k+1) {
			return int(k)
		}
	}
}

// logGamma computes ln Γ(x) via the Lanczos approximation (x > 0).
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// LogUniform10 returns 10^(span*x) with x ~ U[0,1). With span = 3 this is the
// paper's synthetic file-set weight distribution w = 10^(3x), spanning three
// decades of workload heterogeneity.
func (r *Stream) LogUniform10(span float64) float64 {
	return math.Pow(10, span*r.Float64())
}

// Zipf returns a value in [0, n) drawn from a Zipf distribution with exponent
// s over ranks 1..n (rank 0 is most popular). It uses inverse-CDF over the
// precomputed table in z; build the table once with NewZipf.
type Zipf struct {
	cdf []float64
	rs  *Stream
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0, drawing
// from stream r. The construction is O(n).
func NewZipf(r *Stream, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rs: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rs.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n indices, calling swap as math/rand does.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Marsaglia polar method).
func (r *Stream) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
