package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds produced %d identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := NewStream(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream produced repeats in first 100 draws: %d unique", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewStream(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling child streams produced identical first value")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewStream(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewStream(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewStream(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("Intn bucket %d count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewStream(13)
	const rate, n = 2.5, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestPoissonSmallMean(t *testing.T) {
	r := NewStream(17)
	const mean, n = 4.0, 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("Poisson(%v) sample mean %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := NewStream(19)
	const mean, n = 200.0, 50000
	sum := 0.0
	sumSq := 0.0
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(mean))
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 1.0 {
		t.Fatalf("Poisson(%v) sample mean %v", mean, gotMean)
	}
	// Poisson variance equals the mean.
	if math.Abs(gotVar-mean) > 8.0 {
		t.Fatalf("Poisson(%v) sample variance %v, want ~%v", mean, gotVar, mean)
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	r := NewStream(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestLogUniform10Range(t *testing.T) {
	r := NewStream(23)
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		v := r.LogUniform10(3)
		if v < 1 || v >= 1000 {
			t.Fatalf("LogUniform10(3) = %v out of [1,1000)", v)
		}
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	// With 100k draws we should explore nearly the full span.
	if min > 1.2 || max < 800 {
		t.Fatalf("LogUniform10(3) span [%v,%v] too narrow", min, max)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewStream(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than ranks 50 (%d) / 99 (%d)",
			counts[0], counts[50], counts[99])
	}
	// Rank-0 frequency should approximate 1/H_100 ~ 0.193.
	got := float64(counts[0]) / 100000
	if math.Abs(got-0.193) > 0.02 {
		t.Fatalf("Zipf rank-0 frequency %v, want ~0.193", got)
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0 ranks) did not panic")
		}
	}()
	NewZipf(NewStream(1), 0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewStream(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewStream(31)
	const mean, sd, n = 10.0, 2.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotSD := math.Sqrt(sumSq/n - gotMean*gotMean)
	if math.Abs(gotMean-mean) > 0.05 || math.Abs(gotSD-sd) > 0.05 {
		t.Fatalf("Normal moments mean=%v sd=%v, want %v/%v", gotMean, gotSD, mean, sd)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewStream(37)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-5, 7)
		if v < -5 || v >= 7 {
			t.Fatalf("Uniform(-5,7) = %v out of range", v)
		}
	}
}

func TestMul128KnownValues(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := NewStream(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := NewStream(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(500)
	}
	_ = sink
}
