// Package lockmgr implements the file/data lock service a Storage Tank
// metadata server provides (paper §2: file servers "grant file/data locks,
// and detect and recover failed clients").
//
// Clients hold leases: a session must be renewed within the lease duration
// or the server declares the client failed and reaps every lock it held —
// the paper's failed-client detection. Locks are granted per
// (file set, path) in shared or exclusive mode and are deliberately
// non-blocking: the server grants or denies immediately and clients retry,
// which keeps the metadata request path short (the property the paper's
// latency metric relies on, §2).
//
// When a file set moves to another server its locks are dropped — the
// shedding server flushes and forgets, and clients re-acquire against the
// new owner. This mirrors the cache semantics of the move protocol.
package lockmgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared locks may be held by many sessions concurrently.
	Shared Mode = iota
	// Exclusive locks conflict with every other holder.
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// SessionID identifies a registered client session.
type SessionID uint64

// Errors returned by the manager.
var (
	ErrUnknownSession = errors.New("lockmgr: unknown or expired session")
	ErrConflict       = errors.New("lockmgr: lock conflict")
	ErrNotHeld        = errors.New("lockmgr: lock not held by session")
)

type resource struct {
	fileSet string
	path    string
}

type lockState struct {
	mode    Mode
	holders map[SessionID]bool
}

type session struct {
	expiry time.Time
	// held tracks this session's locks for O(held) reaping.
	held map[resource]bool
}

// Manager is one server's lock table. Safe for concurrent use.
type Manager struct {
	now   func() time.Time
	lease time.Duration

	mu       sync.Mutex
	nextID   SessionID
	sessions map[SessionID]*session
	locks    map[resource]*lockState
}

// New creates a manager with the given lease duration. now is the clock;
// pass nil for time.Now (tests inject a fake clock).
func New(lease time.Duration, now func() time.Time) *Manager {
	if lease <= 0 {
		panic("lockmgr: lease must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &Manager{
		now:      now,
		lease:    lease,
		nextID:   1,
		sessions: map[SessionID]*session{},
		locks:    map[resource]*lockState{},
	}
}

// Register creates a client session with a fresh lease.
func (m *Manager) Register() SessionID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.sessions[id] = &session{expiry: m.now().Add(m.lease), held: map[resource]bool{}}
	return id
}

// EnsureSession creates a session under an externally allocated ID (or
// renews it if present). A cluster front end that allocates cluster-wide
// client IDs uses this so one client identity is valid at every server it
// talks to.
func (m *Manager) EnsureSession(id SessionID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.liveSession(id); ok {
		s.expiry = m.now().Add(m.lease)
		return
	}
	if id >= m.nextID {
		m.nextID = id + 1
	}
	m.sessions[id] = &session{expiry: m.now().Add(m.lease), held: map[resource]bool{}}
}

// Renew extends a session's lease; the client heartbeat.
func (m *Manager) Renew(id SessionID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.liveSession(id)
	if !ok {
		return ErrUnknownSession
	}
	s.expiry = m.now().Add(m.lease)
	return nil
}

// liveSession returns the session if it exists and has not expired,
// reaping it if it has. Callers hold m.mu.
func (m *Manager) liveSession(id SessionID) (*session, bool) {
	s, ok := m.sessions[id]
	if !ok {
		return nil, false
	}
	if m.now().After(s.expiry) {
		m.reapLocked(id, s)
		return nil, false
	}
	return s, true
}

// reapLocked releases every lock the session holds and forgets it.
func (m *Manager) reapLocked(id SessionID, s *session) {
	for res := range s.held {
		m.releaseLocked(id, res)
	}
	delete(m.sessions, id)
}

func (m *Manager) releaseLocked(id SessionID, res resource) {
	st, ok := m.locks[res]
	if !ok {
		return
	}
	delete(st.holders, id)
	if len(st.holders) == 0 {
		delete(m.locks, res)
	}
}

// Lock attempts to acquire the lock non-blocking. A session re-acquiring a
// lock it already holds in the same mode succeeds idempotently; a shared
// holder requesting exclusive is granted the upgrade only when it is the
// sole holder.
func (m *Manager) Lock(id SessionID, fileSet, path string, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.liveSession(id)
	if !ok {
		return ErrUnknownSession
	}
	res := resource{fileSet, path}
	st, held := m.locks[res]
	if !held {
		m.locks[res] = &lockState{mode: mode, holders: map[SessionID]bool{id: true}}
		s.held[res] = true
		return nil
	}
	switch {
	case st.holders[id] && st.mode == mode:
		return nil // idempotent re-acquire
	case st.holders[id] && mode == Exclusive:
		if len(st.holders) == 1 {
			st.mode = Exclusive // upgrade: sole holder
			return nil
		}
		return fmt.Errorf("%w: upgrade denied, %d other shared holders", ErrConflict, len(st.holders)-1)
	case st.holders[id] && mode == Shared:
		st.mode = Shared // downgrade always succeeds
		return nil
	case st.mode == Shared && mode == Shared:
		st.holders[id] = true
		s.held[res] = true
		return nil
	default:
		return fmt.Errorf("%w: %s held %s by %d session(s)", ErrConflict, path, st.mode, len(st.holders))
	}
}

// Unlock releases a lock the session holds.
func (m *Manager) Unlock(id SessionID, fileSet, path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.liveSession(id)
	if !ok {
		return ErrUnknownSession
	}
	res := resource{fileSet, path}
	if !s.held[res] {
		return ErrNotHeld
	}
	delete(s.held, res)
	m.releaseLocked(id, res)
	return nil
}

// ExpireSessions reaps every session whose lease has lapsed and returns the
// number reaped — the failed-client recovery sweep a server runs
// periodically.
func (m *Manager) ExpireSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	reaped := 0
	for id, s := range m.sessions {
		if now.After(s.expiry) {
			m.reapLocked(id, s)
			reaped++
		}
	}
	return reaped
}

// DropFileSet discards all locks on a file set — called when the file set
// moves to another server; clients re-acquire against the new owner.
func (m *Manager) DropFileSet(fileSet string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped := 0
	for res, st := range m.locks {
		if res.fileSet != fileSet {
			continue
		}
		for id := range st.holders {
			if s, ok := m.sessions[id]; ok {
				delete(s.held, res)
			}
		}
		delete(m.locks, res)
		dropped++
	}
	return dropped
}

// Holders reports the sessions holding a lock and its mode; ok is false
// when the lock is free.
func (m *Manager) Holders(fileSet, path string) (ids []SessionID, mode Mode, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, held := m.locks[resource{fileSet, path}]
	if !held {
		return nil, 0, false
	}
	for id := range st.holders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, st.mode, true
}

// Sessions reports the number of live sessions (expired ones are counted
// until a sweep or access reaps them).
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Locks reports the number of held locks.
func (m *Manager) Locks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}
