package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable clock for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func newMgr() (*Manager, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return New(30*time.Second, clk.now), clk
}

func TestSharedLocksCoexist(t *testing.T) {
	m, _ := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(b, "fs", "/f", Shared); err != nil {
		t.Fatal(err)
	}
	ids, mode, ok := m.Holders("fs", "/f")
	if !ok || mode != Shared || len(ids) != 2 {
		t.Fatalf("Holders = %v %v %v", ids, mode, ok)
	}
}

func TestExclusiveConflicts(t *testing.T) {
	m, _ := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(b, "fs", "/f", Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatalf("excl/excl: %v", err)
	}
	if err := m.Lock(b, "fs", "/f", Shared); !errors.Is(err, ErrConflict) {
		t.Fatalf("excl/shared: %v", err)
	}
	if err := m.Lock(a, "fs", "/g", Exclusive); err != nil {
		t.Fatalf("different path conflicts: %v", err)
	}
	if err := m.Lock(b, "other", "/f", Exclusive); err != nil {
		t.Fatalf("different file set conflicts: %v", err)
	}
}

func TestSharedBlocksExclusive(t *testing.T) {
	m, _ := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(b, "fs", "/f", Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatalf("shared/excl: %v", err)
	}
}

func TestIdempotentReacquire(t *testing.T) {
	m, _ := newMgr()
	a := m.Register()
	for i := 0; i < 3; i++ {
		if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
			t.Fatalf("reacquire %d: %v", i, err)
		}
	}
	if m.Locks() != 1 {
		t.Fatalf("Locks = %d", m.Locks())
	}
}

func TestUpgradeAndDowngrade(t *testing.T) {
	m, _ := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Shared); err != nil {
		t.Fatal(err)
	}
	// Sole shared holder upgrades.
	if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade: %v", err)
	}
	// Downgrade back to shared, let b in, then upgrade must fail.
	if err := m.Lock(a, "fs", "/f", Shared); err != nil {
		t.Fatalf("downgrade: %v", err)
	}
	if err := m.Lock(b, "fs", "/f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(a, "fs", "/f", Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatalf("upgrade with other holders: %v", err)
	}
}

func TestUnlock(t *testing.T) {
	m, _ := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(a, "fs", "/f"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(a, "fs", "/f"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double unlock: %v", err)
	}
	if err := m.Lock(b, "fs", "/f", Exclusive); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
}

func TestLeaseExpiryReapsLocks(t *testing.T) {
	m, clk := newMgr()
	a, b := m.Register(), m.Register()
	if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	clk.advance(31 * time.Second)
	// a's lease lapsed: the failed-client sweep reaps it and frees its lock.
	if n := m.ExpireSessions(); n != 2 {
		t.Fatalf("ExpireSessions reaped %d, want 2 (both leases lapsed)", n)
	}
	if m.Locks() != 0 {
		t.Fatalf("locks not reaped: %d", m.Locks())
	}
	if err := m.Lock(a, "fs", "/f", Shared); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("expired session locked: %v", err)
	}
	_ = b
}

func TestRenewKeepsSessionAlive(t *testing.T) {
	m, clk := newMgr()
	a := m.Register()
	for i := 0; i < 5; i++ {
		clk.advance(20 * time.Second)
		if err := m.Renew(a); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if err := m.Lock(a, "fs", "/f", Shared); err != nil {
		t.Fatalf("lock after renewals: %v", err)
	}
	clk.advance(31 * time.Second)
	if err := m.Renew(a); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("renew after lapse: %v", err)
	}
}

func TestLazyExpiryOnAccess(t *testing.T) {
	m, clk := newMgr()
	a := m.Register()
	if err := m.Lock(a, "fs", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	clk.advance(31 * time.Second)
	b := m.Register()
	// b's lock attempt must succeed: a is expired even without a sweep.
	if err := m.Lock(a, "fs", "/g", Shared); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("expired session used: %v", err)
	}
	if err := m.Lock(b, "fs", "/f", Exclusive); err != nil {
		t.Fatalf("lock against expired holder: %v", err)
	}
}

func TestDropFileSet(t *testing.T) {
	m, _ := newMgr()
	a := m.Register()
	if err := m.Lock(a, "fs1", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(a, "fs2", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	if n := m.DropFileSet("fs1"); n != 1 {
		t.Fatalf("DropFileSet = %d, want 1", n)
	}
	// fs1's lock is gone, fs2's survives; a can re-acquire fs1 elsewhere.
	if _, _, ok := m.Holders("fs1", "/f"); ok {
		t.Fatal("fs1 lock survived the move")
	}
	if _, _, ok := m.Holders("fs2", "/f"); !ok {
		t.Fatal("fs2 lock dropped erroneously")
	}
	if err := m.Lock(a, "fs1", "/f", Exclusive); err != nil {
		t.Fatalf("re-acquire after move: %v", err)
	}
}

func TestUnknownSessionOps(t *testing.T) {
	m, _ := newMgr()
	if err := m.Lock(999, "fs", "/f", Shared); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("unknown session locked")
	}
	if err := m.Unlock(999, "fs", "/f"); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("unknown session unlocked")
	}
	if err := m.Renew(999); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("unknown session renewed")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestNewPanicsOnBadLease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lease accepted")
		}
	}()
	New(0, nil)
}

func TestConcurrentLocking(t *testing.T) {
	m := New(time.Minute, nil)
	var wg sync.WaitGroup
	grants := make([]int, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sid := m.Register()
			for i := 0; i < 200; i++ {
				if err := m.Lock(sid, "fs", "/hot", Exclusive); err == nil {
					grants[g]++
					if err := m.Unlock(sid, "fs", "/hot"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range grants {
		total += n
	}
	if total == 0 {
		t.Fatal("no exclusive grants under contention")
	}
	if m.Locks() != 0 {
		t.Fatalf("locks leaked: %d", m.Locks())
	}
}

func TestEnsureSessionExternalIDs(t *testing.T) {
	m, clk := newMgr()
	m.EnsureSession(100)
	if err := m.Lock(100, "fs", "/f", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Ensure is renew for live sessions.
	clk.advance(20 * time.Second)
	m.EnsureSession(100)
	clk.advance(20 * time.Second)
	if err := m.Lock(100, "fs", "/g", Shared); err != nil {
		t.Fatalf("session lapsed despite EnsureSession renew: %v", err)
	}
	// Internal allocation must not collide with the external ID.
	if id := m.Register(); id == 100 {
		t.Fatal("Register collided with external session ID")
	}
	// Expired external sessions are recreated fresh (locks gone).
	clk.advance(60 * time.Second)
	m.EnsureSession(100)
	if _, _, held := m.Holders("fs", "/f"); held {
		t.Fatal("lock survived session expiry + recreation")
	}
}
