package interval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"anufs/internal/rng"
)

func mustNew(t *testing.T, ids []int, shares []uint64) *Interval {
	t.Helper()
	iv, err := New(ids, shares)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatalf("Validate after New: %v", err)
	}
	return iv
}

func equalIv(t *testing.T, n int) *Interval {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return mustNew(t, ids, EqualShares(n, Half))
}

func TestPartitionsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {1, 2}, {2, 4}, {3, 8}, {4, 8}, {5, 16}, {8, 16}, {9, 32}, {16, 32}, {17, 64},
	}
	for _, c := range cases {
		if got := PartitionsFor(c.n); got != c.want {
			t.Errorf("PartitionsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New with no servers succeeded")
	}
	if _, err := New([]int{0, 1}, []uint64{Half}); err == nil {
		t.Error("New with mismatched lengths succeeded")
	}
	if _, err := New([]int{0, 1}, []uint64{Half, Half}); err == nil {
		t.Error("New with shares summing to Whole succeeded")
	}
	if _, err := New([]int{0, 0}, EqualShares(2, Half)); err == nil {
		t.Error("New with duplicate ids succeeded")
	}
	if _, err := New([]int{-1, 1}, EqualShares(2, Half)); err == nil {
		t.Error("New with negative id succeeded")
	}
}

func TestEqualSharesSumExactly(t *testing.T) {
	for n := 1; n <= 33; n++ {
		shares := EqualShares(n, Half)
		var sum uint64
		for _, s := range shares {
			sum += s
		}
		if sum != Half {
			t.Fatalf("EqualShares(%d) sums to %d, want %d", n, sum, Half)
		}
	}
}

func TestQuantizeSharesExactAndProportional(t *testing.T) {
	w := []float64{1, 3, 5, 7, 9}
	shares := QuantizeShares(w, Half)
	var sum uint64
	for _, s := range shares {
		sum += s
	}
	if sum != Half {
		t.Fatalf("sum %d != Half", sum)
	}
	// Proportional within float64 relative precision at 2^62 scale.
	for i, wi := range w {
		want := wi / 25 * float64(Half)
		if math.Abs(float64(shares[i])-want) > 1e-10*want {
			t.Fatalf("share[%d] = %d, want ~%.0f", i, shares[i], want)
		}
	}
}

func TestQuantizeSharesZeroWeights(t *testing.T) {
	shares := QuantizeShares([]float64{0, 0, 0}, 10)
	var sum uint64
	for _, s := range shares {
		sum += s
	}
	if sum != 10 {
		t.Fatalf("sum %d != 10", sum)
	}
	if shares[0] != 4 || shares[1] != 3 || shares[2] != 3 {
		t.Fatalf("zero-weight split = %v, want [4 3 3]", shares)
	}
}

func TestQuantizeSharesNegativeTreatedAsZero(t *testing.T) {
	shares := QuantizeShares([]float64{-5, 1}, 100)
	if shares[0] != 0 || shares[1] != 100 {
		t.Fatalf("got %v, want [0 100]", shares)
	}
}

func TestQuantizeSharesEmpty(t *testing.T) {
	if got := QuantizeShares(nil, Half); got != nil {
		t.Fatalf("QuantizeShares(nil) = %v, want nil", got)
	}
}

func TestLookupCoversHalf(t *testing.T) {
	iv := equalIv(t, 5)
	r := rng.NewStream(1)
	mapped := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		if iv.OwnerAt(r.Uint64()) != Free {
			mapped++
		}
	}
	frac := float64(mapped) / draws
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("mapped fraction %v, want ~0.5 (half occupancy)", frac)
	}
}

func TestOwnerAtMatchesSegments(t *testing.T) {
	iv := equalIv(t, 3)
	for _, seg := range iv.Segments() {
		if got := iv.OwnerAt(seg.Lo); got != seg.Owner {
			t.Fatalf("OwnerAt(lo=%d) = %d, want %d", seg.Lo, got, seg.Owner)
		}
		if got := iv.OwnerAt(seg.Hi - 1); got != seg.Owner {
			t.Fatalf("OwnerAt(hi-1=%d) = %d, want %d", seg.Hi-1, got, seg.Owner)
		}
		if seg.Hi < Whole {
			if got := iv.OwnerAt(seg.Hi); got == seg.Owner {
				// Only a failure if the next segment isn't the same owner's.
				w := iv.PartitionWidth()
				if seg.Hi%w != 0 {
					t.Fatalf("OwnerAt(hi=%d) = %d, segment should have ended", seg.Hi, got)
				}
			}
		}
	}
}

func TestSharesAccounting(t *testing.T) {
	iv := equalIv(t, 4)
	var sum uint64
	for id, s := range iv.Shares() {
		got, ok := iv.Share(id)
		if !ok || got != s {
			t.Fatalf("Share(%d) = %d,%v; Shares says %d", id, got, ok, s)
		}
		sum += s
	}
	if sum != Half {
		t.Fatalf("shares sum %d != Half", sum)
	}
	if _, ok := iv.Share(999); ok {
		t.Fatal("Share(999) reported ok for unknown server")
	}
}

func TestSetSharesRebalance(t *testing.T) {
	iv := equalIv(t, 5)
	target := map[int]uint64{}
	q := QuantizeShares([]float64{1, 3, 5, 7, 9}, Half)
	for i, s := range q {
		target[i] = s
	}
	if err := iv.SetShares(target); err != nil {
		t.Fatalf("SetShares: %v", err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for id, want := range target {
		if got, _ := iv.Share(id); got != want {
			t.Fatalf("server %d share %d, want %d", id, got, want)
		}
	}
}

func TestSetSharesRejectsBadTargets(t *testing.T) {
	iv := equalIv(t, 3)
	if err := iv.SetShares(map[int]uint64{0: Half}); err == nil {
		t.Error("SetShares with missing servers succeeded")
	}
	if err := iv.SetShares(map[int]uint64{0: Half, 1: 0, 5: 0}); err == nil {
		t.Error("SetShares with unknown server succeeded")
	}
	if err := iv.SetShares(map[int]uint64{0: Half, 1: Half, 2: 0}); err == nil {
		t.Error("SetShares with wrong sum succeeded")
	}
	if err := iv.Validate(); err != nil {
		t.Fatalf("interval corrupted by rejected SetShares: %v", err)
	}
}

func TestSetSharesMovedMassBounded(t *testing.T) {
	iv := equalIv(t, 5)
	before := iv.Clone()
	q := QuantizeShares([]float64{1, 3, 5, 7, 9}, Half)
	target := map[int]uint64{}
	var totalDelta uint64
	for i, s := range q {
		target[i] = s
		cur, _ := iv.Share(i)
		if s > cur {
			totalDelta += s - cur
		} else {
			totalDelta += cur - s
		}
	}
	if err := iv.SetShares(target); err != nil {
		t.Fatal(err)
	}
	changed := ChangedMass(before, iv)
	// Shrunk mass goes free and grown mass comes from free space, so the
	// changed measure is at most the sum of absolute deltas (each unit of
	// delta flips at most one unit of ownership on each side).
	if changed > totalDelta {
		t.Fatalf("changed mass %d exceeds total |delta| %d", changed, totalDelta)
	}
	// And vastly less than a full reshuffle.
	if changed > Half {
		t.Fatalf("changed mass %d exceeds Half — worse than rehash-all", changed)
	}
}

func TestZeroShareServer(t *testing.T) {
	iv := equalIv(t, 2)
	if err := iv.SetShares(map[int]uint64{0: Half, 1: 0}); err != nil {
		t.Fatalf("SetShares to zero: %v", err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if s, _ := iv.Share(1); s != 0 {
		t.Fatalf("server 1 share %d, want 0", s)
	}
	if len(iv.RegionOf(1)) != 0 {
		t.Fatal("zero-share server still has segments")
	}
	// Grow it back.
	if err := iv.SetShares(map[int]uint64{0: Half / 2, 1: Half / 2}); err != nil {
		t.Fatalf("SetShares back: %v", err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddServerRepartitions(t *testing.T) {
	iv := equalIv(t, 2)
	if p := iv.Partitions(); p != 4 {
		t.Fatalf("P = %d, want 4", p)
	}
	if err := iv.AddServer(2, Half/8); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	if p := iv.Partitions(); p != 8 {
		t.Fatalf("P after add = %d, want 8 (2n=6 → next pow2)", p)
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if iv.NumServers() != 3 {
		t.Fatalf("NumServers = %d, want 3", iv.NumServers())
	}
}

func TestAddServerRejectsDuplicates(t *testing.T) {
	iv := equalIv(t, 2)
	if err := iv.AddServer(1, 10); err == nil {
		t.Error("duplicate AddServer succeeded")
	}
	if err := iv.AddServer(-2, 10); err == nil {
		t.Error("negative-id AddServer succeeded")
	}
	if err := iv.AddServer(9, Half+1); err == nil {
		t.Error("oversized-share AddServer succeeded")
	}
}

func TestAddServerMinimalMovement(t *testing.T) {
	iv := equalIv(t, 4)
	before := iv.Clone()
	newShare := Half / 5
	if err := iv.AddServer(4, newShare); err != nil {
		t.Fatal(err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	changed := ChangedMass(before, iv)
	// Existing servers shrink by a total of newShare; the new server claims
	// newShare of (mostly freed) space. Movement should be ~2*newShare, far
	// below a full reshuffle (Half).
	if changed > 2*newShare+uint64(iv.NumServers()) {
		t.Fatalf("add moved %d mass, want <= ~%d", changed, 2*newShare)
	}
}

func TestRemoveServerMinimalMovement(t *testing.T) {
	iv := equalIv(t, 5)
	removedShare, _ := iv.Share(2)
	before := iv.Clone()
	if err := iv.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := iv.Share(2); ok {
		t.Fatal("removed server still present")
	}
	changed := ChangedMass(before, iv)
	if changed > 2*removedShare+uint64(iv.NumServers()) {
		t.Fatalf("remove moved %d mass, want <= ~%d", changed, 2*removedShare)
	}
}

func TestRemoveLastServerFails(t *testing.T) {
	iv := equalIv(t, 1)
	if err := iv.RemoveServer(0); err == nil {
		t.Fatal("removing last server succeeded")
	}
	if err := iv.RemoveServer(7); err == nil {
		t.Fatal("removing unknown server succeeded")
	}
}

func TestSplitMovesNoMass(t *testing.T) {
	iv := equalIv(t, 3)
	before := iv.Clone()
	iv.split()
	if err := iv.Validate(); err != nil {
		t.Fatalf("Validate after split: %v", err)
	}
	if changed := ChangedMass(before, iv); changed != 0 {
		t.Fatalf("split moved %d mass, want 0", changed)
	}
	if iv.Partitions() != 2*before.Partitions() {
		t.Fatalf("P = %d, want %d", iv.Partitions(), 2*before.Partitions())
	}
}

func TestCloneIndependence(t *testing.T) {
	iv := equalIv(t, 3)
	cp := iv.Clone()
	if err := iv.SetShares(map[int]uint64{0: Half, 1: 0, 2: 0}); err != nil {
		t.Fatal(err)
	}
	if s, _ := cp.Share(0); s == Half {
		t.Fatal("mutating original affected clone")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFreePartitionAlwaysAvailable(t *testing.T) {
	// Adversarial shares: one huge, rest tiny — the regime the proof's
	// worst case describes.
	for n := 2; n <= 9; n++ {
		ids := make([]int, n)
		w := make([]float64, n)
		for i := range ids {
			ids[i] = i
			w[i] = 1e-6
		}
		w[0] = 1
		iv := mustNew(t, ids, QuantizeShares(w, Half))
		if iv.FreePartitions() < 1 {
			t.Fatalf("n=%d: no free partition with skewed shares", n)
		}
	}
}

func TestSegmentsSortedAndDisjoint(t *testing.T) {
	iv := equalIv(t, 7)
	segs := iv.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].Lo < segs[i-1].Hi {
			t.Fatalf("segments overlap: %+v then %+v", segs[i-1], segs[i])
		}
	}
	var total uint64
	for _, s := range segs {
		if s.Hi <= s.Lo {
			t.Fatalf("empty or inverted segment %+v", s)
		}
		total += s.Measure()
	}
	if total != Half {
		t.Fatalf("segment mass %d != Half", total)
	}
}

func TestRegionOfConsistent(t *testing.T) {
	iv := equalIv(t, 4)
	for _, id := range iv.Servers() {
		var mass uint64
		for _, seg := range iv.RegionOf(id) {
			if seg.Owner != id {
				t.Fatalf("RegionOf(%d) returned segment owned by %d", id, seg.Owner)
			}
			mass += seg.Measure()
		}
		if want, _ := iv.Share(id); mass != want {
			t.Fatalf("RegionOf(%d) mass %d != share %d", id, mass, want)
		}
	}
	if iv.RegionOf(99) != nil {
		t.Fatal("RegionOf(unknown) non-nil")
	}
}

func TestChangedMassIdentity(t *testing.T) {
	iv := equalIv(t, 5)
	if c := ChangedMass(iv, iv.Clone()); c != 0 {
		t.Fatalf("ChangedMass of identical configs = %d, want 0", c)
	}
}

// Property test: random sequences of rebalances, adds, and removes preserve
// every invariant and keep lookups total over the mapped half.
func TestRandomOperationSequences(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 2 + r.Intn(6)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		iv, err := New(ids, EqualShares(n, Half))
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		nextID := n
		for step := 0; step < 30; step++ {
			switch op := r.Intn(4); {
			case op == 0 && iv.NumServers() > 1: // remove random server
				srv := iv.Servers()
				if err := iv.RemoveServer(srv[r.Intn(len(srv))]); err != nil {
					t.Logf("remove: %v", err)
					return false
				}
			case op == 1 && iv.NumServers() < 40: // add server
				share := uint64(r.Intn(int(Half / uint64(iv.NumServers()+1))))
				if err := iv.AddServer(nextID, share); err != nil {
					t.Logf("add: %v", err)
					return false
				}
				nextID++
			default: // random rebalance
				srv := iv.Servers()
				w := make([]float64, len(srv))
				for i := range w {
					w[i] = r.Float64()
				}
				q := QuantizeShares(w, Half)
				target := map[int]uint64{}
				for i, id := range srv {
					target[id] = q[i]
				}
				if err := iv.SetShares(target); err != nil {
					t.Logf("set: %v", err)
					return false
				}
			}
			if err := iv.Validate(); err != nil {
				t.Logf("step %d: %v", step, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOwnerAt(b *testing.B) {
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	iv, err := New(ids, EqualShares(16, Half))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(1)
	pts := make([]uint64, 1024)
	for i := range pts {
		pts[i] = r.Uint64()
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += iv.OwnerAt(pts[i&1023])
	}
	_ = sink
}

func BenchmarkSetShares(b *testing.B) {
	const n = 16
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	iv, err := New(ids, EqualShares(n, Half))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := make([]float64, n)
		for j := range w {
			w[j] = r.Float64()
		}
		q := QuantizeShares(w, Half)
		target := map[int]uint64{}
		for j, id := range ids {
			target[id] = q[j]
		}
		if err := iv.SetShares(target); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRenderShowsOwnersAndFreeSpace(t *testing.T) {
	iv := equalIv(t, 3)
	out := iv.Render(64)
	for _, want := range []string{"0", "1", "2", ".", "partitions", "server0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	// Half occupancy: roughly half the bar is free dots.
	bar := strings.SplitN(out, "\n", 2)[0]
	dots := strings.Count(bar, ".")
	if dots < 20 || dots > 44 {
		t.Fatalf("free-space dots = %d of 64, want ~32:\n%s", dots, out)
	}
}

func TestRenderTinyWidth(t *testing.T) {
	iv := equalIv(t, 2)
	if out := iv.Render(1); len(out) == 0 {
		t.Fatal("no render output")
	}
}

// Property: QuantizeShares always sums exactly to the requested total and
// preserves weight ordering.
func TestQuantizeSharesProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 1 + r.Intn(12)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64() * 100
		}
		total := uint64(1) << (20 + r.Intn(43))
		q := QuantizeShares(w, total)
		var sum uint64
		for _, s := range q {
			sum += s
		}
		if sum != total {
			return false
		}
		// Strictly larger weight never yields a noticeably smaller share.
		for i := range w {
			for j := range w {
				if w[i] > w[j]*1.01 && q[i]+1 < q[j] && float64(q[j]-q[i]) > 0.02*float64(total) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
