package interval

import (
	"encoding/json"
	"fmt"
)

// The wire form of an Interval. This is the configuration the delegate
// replicates to every server after each reconfiguration (paper §4: "the
// delegate distributes a new mapping of servers to the unit interval to all
// servers. This is the only replicated state needed by our algorithm.") —
// and because it scales with servers, not file sets (§5), it is small
// enough for clients to cache and route with locally.

// wireInterval is the serialized representation: the partition count and
// each owned partition's (index, owner, fill).
type wireInterval struct {
	Version    int             `json:"v"`
	Partitions int             `json:"partitions"`
	Owned      []wirePartition `json:"owned"`
}

type wirePartition struct {
	Index int    `json:"i"`
	Owner int    `json:"o"`
	Fill  uint64 `json:"f"`
}

// MarshalBinary encodes the interval as compact JSON (the wire protocol is
// JSON end to end). The encoding is canonical for a given configuration:
// partitions are emitted in ascending index order.
func (iv *Interval) MarshalBinary() ([]byte, error) {
	w := wireInterval{Version: 1, Partitions: iv.Partitions()}
	for i, p := range iv.parts {
		if p.fill > 0 {
			w.Owned = append(w.Owned, wirePartition{Index: i, Owner: p.owner, Fill: p.fill})
		}
	}
	return json.Marshal(w)
}

// UnmarshalBinary decodes an interval previously encoded with
// MarshalBinary, validating every structural invariant before accepting it.
func (iv *Interval) UnmarshalBinary(data []byte) error {
	var w wireInterval
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("interval: decode: %w", err)
	}
	if w.Version != 1 {
		return fmt.Errorf("interval: unsupported wire version %d", w.Version)
	}
	p := w.Partitions
	if p < 2 || p&(p-1) != 0 {
		return fmt.Errorf("interval: partition count %d not a power of two >= 2", p)
	}
	logP := uint(0)
	for 1<<logP < p {
		logP++
	}
	next := &Interval{
		logP:    logP,
		parts:   make([]partition, p),
		regions: map[int]*region{},
	}
	for i := range next.parts {
		next.parts[i] = partition{owner: Free}
	}
	width := next.PartitionWidth()
	for _, wp := range w.Owned {
		if wp.Index < 0 || wp.Index >= p {
			return fmt.Errorf("interval: partition index %d out of range", wp.Index)
		}
		if wp.Owner < 0 {
			return fmt.Errorf("interval: negative owner %d", wp.Owner)
		}
		if wp.Fill == 0 || wp.Fill > width {
			return fmt.Errorf("interval: partition %d fill %d invalid for width %d", wp.Index, wp.Fill, width)
		}
		if next.parts[wp.Index].fill != 0 {
			return fmt.Errorf("interval: duplicate partition %d", wp.Index)
		}
		next.parts[wp.Index] = partition{owner: wp.Owner, fill: wp.Fill}
		r := next.regions[wp.Owner]
		if r == nil {
			r = &region{partial: -1}
			next.regions[wp.Owner] = r
		}
		if wp.Fill == width {
			r.full = insertSorted(r.full, wp.Index)
		} else {
			if r.partial != -1 {
				return fmt.Errorf("interval: server %d has two partial partitions", wp.Owner)
			}
			r.partial = wp.Index
		}
		r.share += wp.Fill
	}
	if err := next.Validate(); err != nil {
		return fmt.Errorf("interval: decoded configuration invalid: %w", err)
	}
	*iv = *next
	return nil
}
