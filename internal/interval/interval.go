// Package interval manages the unit interval of the ANU algorithm
// (paper §4, Figures 2 and 5).
//
// The unit interval is divided into P equal partitions, P = 2^⌈log₂(2n)⌉ for
// n servers. Each partition is owned by at most one server; the owner's
// segment is anchored at the partition's low end and covers a prefix of the
// partition ("fill"). A server owns some fully-filled partitions plus at
// most one partially-filled partition — its "mapped region" is the union of
// those segments. The total mapped mass is held at exactly half of the
// interval (the half-occupancy invariant), which guarantees a wholly free
// partition is always available for a recovered or newly added server:
//
//	Let w be the partition width and shareᵢ each server's mapped mass, with
//	Σ shareᵢ = P·w/2. The number of partitions a server touches is
//	⌊shareᵢ/w⌋ full partitions plus at most one partial. Summing,
//	touched ≤ Σ⌊shareᵢ/w⌋ + n ≤ P/2 + n ≤ P (since P ≥ 2n), and the bound is
//	strict whenever any server has a partial partition, because the partial
//	mass subtracts at least one whole partition from the full-partition sum.
//	When no server has a partial, touched = P/2 ≤ P-1 for P ≥ 2. Either way
//	at least one partition is wholly free.
//
// All arithmetic is in fixed-point units: the whole interval is [0, Whole)
// with Whole = 2^63, so sums and comparisons are exact and the
// half-occupancy invariant can be asserted with ==, not an epsilon.
//
// Growing and shrinking mapped regions moves the minimum mass: a shrinking
// server first trims its partial segment, then releases whole partitions; a
// growing server first tops up its partial, then claims free partitions.
// Mass that did not change hands keeps its owner, which is what preserves
// server caches across reconfiguration (paper §4, §5).
package interval

import (
	"fmt"
	"sort"
)

// Unit-interval geometry. The interval is [0, Whole) in fixed-point units.
const (
	// UnitBits is the number of fixed-point bits in the unit interval.
	UnitBits = 63
	// Whole is the measure of the entire unit interval.
	Whole uint64 = 1 << UnitBits
	// Half is the mapped mass maintained by the half-occupancy invariant.
	Half uint64 = Whole / 2
)

// Free is the owner value of unmapped space.
const Free = -1

// Segment is a half-open sub-range [Lo, Hi) of the unit interval owned by
// one server (or free space when Owner == Free).
type Segment struct {
	Lo, Hi uint64
	Owner  int
}

// Measure returns the segment's mass.
func (s Segment) Measure() uint64 { return s.Hi - s.Lo }

// partition is one of the P equal sub-regions. fill is the owned prefix
// measure; fill == 0 means the partition is free and owner is Free.
type partition struct {
	owner int
	fill  uint64
}

// region tracks the partitions one server occupies.
type region struct {
	full    []int // indices of fully occupied partitions, kept sorted
	partial int   // index of the at-most-one partial partition, or -1
	share   uint64
}

// Interval is the partitioned unit interval with per-server mapped regions.
// It is not safe for concurrent mutation; the delegate serializes updates
// (paper §4) and read-only lookups after a configuration is published are
// done on immutable snapshots (Clone).
type Interval struct {
	logP    uint // P = 1 << logP
	parts   []partition
	regions map[int]*region
}

// PartitionsFor returns the partition count used for n servers:
// the smallest power of two ≥ 2n (paper §4: re-partition when the server
// count grows past half the partition count).
func PartitionsFor(n int) int {
	if n < 1 {
		n = 1
	}
	p := 2
	for p < 2*n {
		p *= 2
	}
	return p
}

// New builds an interval for the given servers and shares. Shares are in
// fixed-point units and must sum exactly to Half; use QuantizeShares to turn
// arbitrary weights into a valid share vector. Server IDs must be unique and
// non-negative.
func New(serverIDs []int, shares []uint64) (*Interval, error) {
	if len(serverIDs) != len(shares) {
		return nil, fmt.Errorf("interval: %d servers but %d shares", len(serverIDs), len(shares))
	}
	if len(serverIDs) == 0 {
		return nil, fmt.Errorf("interval: no servers")
	}
	var sum uint64
	for _, s := range shares {
		sum += s
	}
	if sum != Half {
		return nil, fmt.Errorf("interval: shares sum to %d, want Half = %d", sum, Half)
	}
	p := PartitionsFor(len(serverIDs))
	logP := uint(0)
	for 1<<logP < p {
		logP++
	}
	iv := &Interval{
		logP:    logP,
		parts:   make([]partition, p),
		regions: make(map[int]*region, len(serverIDs)),
	}
	for i := range iv.parts {
		iv.parts[i] = partition{owner: Free}
	}
	for i, id := range serverIDs {
		if id < 0 {
			return nil, fmt.Errorf("interval: negative server id %d", id)
		}
		if _, dup := iv.regions[id]; dup {
			return nil, fmt.Errorf("interval: duplicate server id %d", id)
		}
		iv.regions[id] = &region{partial: -1}
		if err := iv.grow(id, shares[i]); err != nil {
			return nil, err
		}
	}
	return iv, nil
}

// Partitions reports P, the current partition count.
func (iv *Interval) Partitions() int { return 1 << iv.logP }

// PartitionWidth reports the measure of one partition.
func (iv *Interval) PartitionWidth() uint64 { return Whole >> iv.logP }

// Servers returns the server IDs in ascending order.
func (iv *Interval) Servers() []int {
	ids := make([]int, 0, len(iv.regions))
	for id := range iv.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// NumServers reports the number of servers with mapped regions.
func (iv *Interval) NumServers() int { return len(iv.regions) }

// Share reports a server's mapped mass; ok is false for unknown servers.
func (iv *Interval) Share(id int) (share uint64, ok bool) {
	r, ok := iv.regions[id]
	if !ok {
		return 0, false
	}
	return r.share, true
}

// Shares returns the full id → share map (a copy).
func (iv *Interval) Shares() map[int]uint64 {
	m := make(map[int]uint64, len(iv.regions))
	for id, r := range iv.regions {
		m[id] = r.share
	}
	return m
}

// OwnerAt returns the server owning the given point, or Free if the point
// lies in unmapped space.
func (iv *Interval) OwnerAt(point uint64) int {
	point &= Whole - 1 // confine to [0, Whole)
	w := iv.PartitionWidth()
	idx := point >> (UnitBits - iv.logP)
	if off := point & (w - 1); off < iv.parts[idx].fill {
		return iv.parts[idx].owner
	}
	return Free
}

// Segments returns the owned segments in ascending order. Free space is not
// included; gaps between segments are free.
func (iv *Interval) Segments() []Segment {
	w := iv.PartitionWidth()
	segs := make([]Segment, 0, len(iv.parts))
	for i, p := range iv.parts {
		if p.fill > 0 {
			lo := uint64(i) * w
			segs = append(segs, Segment{Lo: lo, Hi: lo + p.fill, Owner: p.owner})
		}
	}
	return segs
}

// RegionOf returns the segments mapped to one server, ascending.
func (iv *Interval) RegionOf(id int) []Segment {
	r, ok := iv.regions[id]
	if !ok {
		return nil
	}
	w := iv.PartitionWidth()
	idxs := append([]int(nil), r.full...)
	if r.partial >= 0 {
		idxs = append(idxs, r.partial)
	}
	sort.Ints(idxs)
	segs := make([]Segment, 0, len(idxs))
	for _, i := range idxs {
		lo := uint64(i) * w
		segs = append(segs, Segment{Lo: lo, Hi: lo + iv.parts[i].fill, Owner: id})
	}
	return segs
}

// freePartition returns the lowest-index wholly free partition, or -1.
func (iv *Interval) freePartition() int {
	for i, p := range iv.parts {
		if p.fill == 0 {
			return i
		}
	}
	return -1
}

// FreePartitions reports how many partitions are wholly free.
func (iv *Interval) FreePartitions() int {
	n := 0
	for _, p := range iv.parts {
		if p.fill == 0 {
			n++
		}
	}
	return n
}

// grow increases a server's mapped mass by delta, claiming free space:
// first topping up the server's partial partition, then whole free
// partitions, then opening one new partial. It fails only if free space is
// exhausted, which the half-occupancy invariant rules out for valid targets.
func (iv *Interval) grow(id int, delta uint64) error {
	r := iv.regions[id]
	w := iv.PartitionWidth()
	// Top up the existing partial partition first: this mass is adjacent to
	// already-owned mass so claiming it moves only the delta.
	if r.partial >= 0 && delta > 0 {
		room := w - iv.parts[r.partial].fill
		take := min64(room, delta)
		iv.parts[r.partial].fill += take
		r.share += take
		delta -= take
		if iv.parts[r.partial].fill == w {
			r.full = insertSorted(r.full, r.partial)
			r.partial = -1
		}
	}
	// Claim whole free partitions while a full partition's worth remains.
	for delta >= w {
		idx := iv.freePartition()
		if idx < 0 {
			return fmt.Errorf("interval: no free partition while growing server %d", id)
		}
		iv.parts[idx] = partition{owner: id, fill: w}
		r.full = insertSorted(r.full, idx)
		r.share += w
		delta -= w
	}
	// Open one new partial partition for the remainder.
	if delta > 0 {
		idx := iv.freePartition()
		if idx < 0 {
			return fmt.Errorf("interval: no free partition while growing server %d", id)
		}
		iv.parts[idx] = partition{owner: id, fill: delta}
		r.partial = idx
		r.share += delta
	}
	return nil
}

// shrink reduces a server's mapped mass by delta, releasing space: first
// trimming the partial partition, then whole partitions (highest index
// first), then converting one full partition into a partial.
func (iv *Interval) shrink(id int, delta uint64) error {
	r := iv.regions[id]
	if delta > r.share {
		return fmt.Errorf("interval: shrink server %d by %d exceeds share %d", id, delta, r.share)
	}
	w := iv.PartitionWidth()
	if r.partial >= 0 && delta > 0 {
		take := min64(iv.parts[r.partial].fill, delta)
		iv.parts[r.partial].fill -= take
		r.share -= take
		delta -= take
		if iv.parts[r.partial].fill == 0 {
			iv.parts[r.partial].owner = Free
			r.partial = -1
		}
	}
	for delta >= w {
		idx := r.full[len(r.full)-1]
		r.full = r.full[:len(r.full)-1]
		iv.parts[idx] = partition{owner: Free}
		r.share -= w
		delta -= w
	}
	if delta > 0 {
		idx := r.full[len(r.full)-1]
		r.full = r.full[:len(r.full)-1]
		iv.parts[idx].fill = w - delta
		r.partial = idx
		r.share -= delta
	}
	return nil
}

// SetShares atomically retargets every server's mapped mass. The target map
// must contain exactly the current servers and sum to Half. Shrinks are
// applied before grows so free space is available; the relative order is
// deterministic (ascending server ID).
func (iv *Interval) SetShares(target map[int]uint64) error {
	if len(target) != len(iv.regions) {
		return fmt.Errorf("interval: target has %d servers, interval has %d", len(target), len(iv.regions))
	}
	var sum uint64
	for id, s := range target {
		if _, ok := iv.regions[id]; !ok {
			return fmt.Errorf("interval: target names unknown server %d", id)
		}
		sum += s
	}
	if sum != Half {
		return fmt.Errorf("interval: target shares sum to %d, want %d", sum, Half)
	}
	ids := iv.Servers()
	for _, id := range ids {
		if cur := iv.regions[id].share; target[id] < cur {
			if err := iv.shrink(id, cur-target[id]); err != nil {
				return err
			}
		}
	}
	for _, id := range ids {
		if cur := iv.regions[id].share; target[id] > cur {
			if err := iv.grow(id, target[id]-cur); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddServer introduces a new server with the given share, first shrinking
// the existing servers proportionally so the half-occupancy invariant holds,
// and re-partitioning (splitting every partition in two, which moves no
// mass) if the server count would exceed half the partition count
// (paper §4, Figure 5).
func (iv *Interval) AddServer(id int, share uint64) error {
	if _, dup := iv.regions[id]; dup {
		return fmt.Errorf("interval: server %d already present", id)
	}
	if id < 0 {
		return fmt.Errorf("interval: negative server id %d", id)
	}
	if share > Half {
		return fmt.Errorf("interval: share %d exceeds Half", share)
	}
	n := len(iv.regions) + 1
	for iv.Partitions() < 2*n {
		iv.split()
	}
	// Scale existing servers back to make room: target for the existing set
	// is Half - share, distributed proportionally to current shares.
	remaining := Half - share
	target := scaleShares(iv.Shares(), remaining)
	// Apply shrinks only (all existing deltas are ≤ 0 when share > 0).
	ids := iv.Servers()
	for _, sid := range ids {
		if cur := iv.regions[sid].share; target[sid] < cur {
			if err := iv.shrink(sid, cur-target[sid]); err != nil {
				return err
			}
		}
	}
	iv.regions[id] = &region{partial: -1}
	if err := iv.grow(id, share); err != nil {
		return err
	}
	// Proportional quantization may have left a few units to grow on
	// existing servers; settle them.
	for _, sid := range ids {
		if cur := iv.regions[sid].share; target[sid] > cur {
			if err := iv.grow(sid, target[sid]-cur); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveServer removes a server (failure or decommission), freeing its
// region and growing the survivors proportionally to restore half
// occupancy. Only mass belonging to the removed server (plus the survivors'
// growth into it) changes hands — the paper's minimal-movement property.
func (iv *Interval) RemoveServer(id int) error {
	r, ok := iv.regions[id]
	if !ok {
		return fmt.Errorf("interval: unknown server %d", id)
	}
	if len(iv.regions) == 1 {
		return fmt.Errorf("interval: cannot remove last server %d", id)
	}
	if err := iv.shrink(id, r.share); err != nil {
		return err
	}
	delete(iv.regions, id)
	target := scaleShares(iv.Shares(), Half)
	return iv.SetShares(target)
}

// split doubles the partition count. Every owned segment stays at the same
// absolute offsets, so no mass changes owner; a partition with fill f
// becomes child 2k with min(f, w') and child 2k+1 with the remainder, where
// w' is the new width. A server keeps at most one partial partition: a full
// parent yields two full children, and a partial parent yields at most one
// partial child.
func (iv *Interval) split() {
	oldParts := iv.parts
	w2 := iv.PartitionWidth() / 2
	iv.logP++
	iv.parts = make([]partition, len(oldParts)*2)
	for _, r := range iv.regions {
		r.full = r.full[:0]
		r.partial = -1
	}
	for k, p := range oldParts {
		c0, c1 := 2*k, 2*k+1
		iv.parts[c0] = partition{owner: Free}
		iv.parts[c1] = partition{owner: Free}
		if p.fill == 0 {
			continue
		}
		r := iv.regions[p.owner]
		f0 := min64(p.fill, w2)
		f1 := p.fill - f0
		iv.parts[c0] = partition{owner: p.owner, fill: f0}
		if f0 == w2 {
			r.full = insertSorted(r.full, c0)
		} else {
			r.partial = c0
		}
		if f1 > 0 {
			iv.parts[c1] = partition{owner: p.owner, fill: f1}
			if f1 == w2 {
				r.full = insertSorted(r.full, c1)
			} else {
				r.partial = c1
			}
		}
	}
}

// Clone returns an independent deep copy, used to publish immutable
// configuration snapshots to servers.
func (iv *Interval) Clone() *Interval {
	cp := &Interval{
		logP:    iv.logP,
		parts:   append([]partition(nil), iv.parts...),
		regions: make(map[int]*region, len(iv.regions)),
	}
	for id, r := range iv.regions {
		cp.regions[id] = &region{
			full:    append([]int(nil), r.full...),
			partial: r.partial,
			share:   r.share,
		}
	}
	return cp
}

// Validate checks every structural invariant; it is the oracle for the
// property-based tests and is cheap enough to call after each mutation in
// debug builds.
func (iv *Interval) Validate() error {
	w := iv.PartitionWidth()
	if iv.Partitions() < 2*len(iv.regions) {
		return fmt.Errorf("interval: P=%d < 2n=%d", iv.Partitions(), 2*len(iv.regions))
	}
	var total uint64
	ownedBy := make(map[int]map[int]uint64) // server -> partition -> fill
	for i, p := range iv.parts {
		if p.fill > w {
			return fmt.Errorf("partition %d fill %d exceeds width %d", i, p.fill, w)
		}
		if (p.fill == 0) != (p.owner == Free) {
			return fmt.Errorf("partition %d fill/owner mismatch: fill=%d owner=%d", i, p.fill, p.owner)
		}
		if p.fill > 0 {
			if _, ok := iv.regions[p.owner]; !ok {
				return fmt.Errorf("partition %d owned by unknown server %d", i, p.owner)
			}
			if ownedBy[p.owner] == nil {
				ownedBy[p.owner] = map[int]uint64{}
			}
			ownedBy[p.owner][i] = p.fill
			total += p.fill
		}
	}
	if total != Half {
		return fmt.Errorf("total mapped mass %d != Half %d", total, Half)
	}
	for id, r := range iv.regions {
		var share uint64
		partials := 0
		for idx, fill := range ownedBy[id] {
			share += fill
			if fill < w {
				partials++
				if r.partial != idx {
					return fmt.Errorf("server %d partial index %d not tracked (tracked %d)", id, idx, r.partial)
				}
			}
		}
		if partials > 1 {
			return fmt.Errorf("server %d has %d partial partitions", id, partials)
		}
		if share != r.share {
			return fmt.Errorf("server %d cached share %d != actual %d", id, r.share, share)
		}
		for _, idx := range r.full {
			if iv.parts[idx].owner != id || iv.parts[idx].fill != w {
				return fmt.Errorf("server %d full list names partition %d which is not its full partition", id, idx)
			}
		}
		if len(r.full)+partials != len(ownedBy[id]) {
			return fmt.Errorf("server %d tracks %d full + %d partial but owns %d partitions",
				id, len(r.full), partials, len(ownedBy[id]))
		}
	}
	if iv.FreePartitions() < 1 {
		return fmt.Errorf("no wholly free partition (violates recovery guarantee)")
	}
	return nil
}

// ChangedMass returns the measure of points whose owner differs between two
// interval configurations (free space counts as an owner). This is the
// paper's "amount of data movement" in interval terms: the file sets whose
// hash points fall in the changed mass are exactly those that must move.
func ChangedMass(a, b *Interval) uint64 {
	segA := withFreeGaps(a.Segments())
	segB := withFreeGaps(b.Segments())
	var changed uint64
	i, j := 0, 0
	var pos uint64
	for pos < Whole && i < len(segA) && j < len(segB) {
		hi := min64(segA[i].Hi, segB[j].Hi)
		if segA[i].Owner != segB[j].Owner {
			changed += hi - pos
		}
		pos = hi
		if segA[i].Hi == pos {
			i++
		}
		if segB[j].Hi == pos {
			j++
		}
	}
	return changed
}

// withFreeGaps converts an owned-segment list into a complete cover of
// [0, Whole) by inserting Free segments in the gaps.
func withFreeGaps(segs []Segment) []Segment {
	out := make([]Segment, 0, 2*len(segs)+1)
	var pos uint64
	for _, s := range segs {
		if s.Lo > pos {
			out = append(out, Segment{Lo: pos, Hi: s.Lo, Owner: Free})
		}
		out = append(out, s)
		pos = s.Hi
	}
	if pos < Whole {
		out = append(out, Segment{Lo: pos, Hi: Whole, Owner: Free})
	}
	return out
}

// QuantizeShares converts arbitrary non-negative weights into fixed-point
// shares summing exactly to the given total (largest-remainder rounding).
// Weights that are all zero produce equal shares.
func QuantizeShares(weights []float64, total uint64) []uint64 {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var wsum float64
	for _, w := range weights {
		if w > 0 {
			wsum += w
		}
	}
	shares := make([]uint64, n)
	if wsum == 0 {
		// Equal split with remainder spread over the first servers.
		base := total / uint64(n)
		rem := total - base*uint64(n)
		for i := range shares {
			shares[i] = base
			if uint64(i) < rem {
				shares[i]++
			}
		}
		return shares
	}
	type frac struct {
		idx int
		r   float64
	}
	var assigned uint64
	fracs := make([]frac, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := w / wsum * float64(total)
		fl := uint64(exact)
		if fl > total { // float overshoot guard
			fl = total
		}
		shares[i] = fl
		assigned += fl
		fracs[i] = frac{idx: i, r: exact - float64(fl)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].r != fracs[b].r {
			return fracs[a].r > fracs[b].r
		}
		return fracs[a].idx < fracs[b].idx
	})
	// At this scale float64 cannot represent the exact proportional values,
	// so `assigned` may land on either side of total by a small multiple of
	// the relative rounding error. Settle the difference one unit at a time:
	// top up the largest remainders first, trim the smallest first.
	for k := 0; assigned < total; k = (k + 1) % n {
		shares[fracs[k].idx]++
		assigned++
	}
	for k := 0; assigned > total; k = (k + 1) % n {
		if idx := fracs[n-1-k].idx; shares[idx] > 0 {
			shares[idx]--
			assigned--
		}
	}
	return shares
}

// EqualShares returns n equal shares summing exactly to total.
func EqualShares(n int, total uint64) []uint64 {
	return QuantizeShares(make([]float64, n), total)
}

// scaleShares proportionally rescales a share map to a new exact total.
func scaleShares(cur map[int]uint64, total uint64) map[int]uint64 {
	ids := make([]int, 0, len(cur))
	for id := range cur {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	weights := make([]float64, len(ids))
	for i, id := range ids {
		weights[i] = float64(cur[id])
	}
	q := QuantizeShares(weights, total)
	out := make(map[int]uint64, len(ids))
	for i, id := range ids {
		out[id] = q[i]
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// insertSorted inserts v into the sorted slice s.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
