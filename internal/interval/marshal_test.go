package interval

import (
	"testing"

	"anufs/internal/rng"
)

func TestMarshalRoundTrip(t *testing.T) {
	iv := equalIv(t, 5)
	q := QuantizeShares([]float64{1, 3, 5, 7, 9}, Half)
	target := map[int]uint64{}
	for i, s := range q {
		target[i] = s
	}
	if err := iv.SetShares(target); err != nil {
		t.Fatal(err)
	}
	data, err := iv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Interval
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if ChangedMass(iv, &back) != 0 {
		t.Fatal("round trip changed ownership")
	}
	for id, s := range iv.Shares() {
		if got, _ := back.Share(id); got != s {
			t.Fatalf("share of %d: %d != %d", id, got, s)
		}
	}
	if back.Partitions() != iv.Partitions() {
		t.Fatalf("partitions %d != %d", back.Partitions(), iv.Partitions())
	}
}

func TestMarshalDeterministic(t *testing.T) {
	iv := equalIv(t, 3)
	a, err := iv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := iv.Clone().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("marshal not canonical")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	iv := equalIv(t, 3)
	good, err := iv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"garbage":        `nonsense`,
		"bad version":    `{"v":2,"partitions":8,"owned":[]}`,
		"bad partitions": `{"v":1,"partitions":6,"owned":[]}`,
		"oob index":      `{"v":1,"partitions":4,"owned":[{"i":9,"o":0,"f":1}]}`,
		"neg owner":      `{"v":1,"partitions":4,"owned":[{"i":0,"o":-1,"f":1}]}`,
		"zero fill":      `{"v":1,"partitions":4,"owned":[{"i":0,"o":0,"f":0}]}`,
		"huge fill":      `{"v":1,"partitions":4,"owned":[{"i":0,"o":0,"f":18446744073709551615}]}`,
		"dup partition":  `{"v":1,"partitions":4,"owned":[{"i":0,"o":0,"f":1},{"i":0,"o":1,"f":1}]}`,
		// Valid JSON but violates half occupancy.
		"wrong mass": `{"v":1,"partitions":4,"owned":[{"i":0,"o":0,"f":1}]}`,
	}
	for name, in := range cases {
		var back Interval
		if err := back.UnmarshalBinary([]byte(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Sanity: the good encoding still decodes.
	var back Interval
	if err := back.UnmarshalBinary(good); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalSizeScalesWithServers(t *testing.T) {
	// The replicated state must scale with servers, not file sets (§5):
	// the encoding has no per-file-set component at all, and stays small.
	small := equalIv(t, 5)
	big := equalIv(t, 40)
	ds, _ := small.MarshalBinary()
	db, _ := big.MarshalBinary()
	if len(db) > 40*len(ds) {
		t.Fatalf("encoding grew superlinearly: %d -> %d bytes", len(ds), len(db))
	}
	if len(db) > 16*1024 {
		t.Fatalf("40-server mapping is %d bytes — too big to replicate cheaply", len(db))
	}
}

func TestMarshalAfterRandomChurn(t *testing.T) {
	r := rng.NewStream(5)
	iv := equalIv(t, 4)
	next := 4
	for step := 0; step < 20; step++ {
		switch {
		case step%3 == 0 && iv.NumServers() < 12:
			if err := iv.AddServer(next, Half/uint64(8*(iv.NumServers()+1))); err != nil {
				t.Fatal(err)
			}
			next++
		case step%3 == 1 && iv.NumServers() > 2:
			srv := iv.Servers()
			if err := iv.RemoveServer(srv[r.Intn(len(srv))]); err != nil {
				t.Fatal(err)
			}
		default:
			srv := iv.Servers()
			w := make([]float64, len(srv))
			for i := range w {
				w[i] = r.Float64() + 0.01
			}
			q := QuantizeShares(w, Half)
			tgt := map[int]uint64{}
			for i, id := range srv {
				tgt[id] = q[i]
			}
			if err := iv.SetShares(tgt); err != nil {
				t.Fatal(err)
			}
		}
		data, err := iv.MarshalBinary()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		var back Interval
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if ChangedMass(iv, &back) != 0 {
			t.Fatalf("step %d: round trip changed ownership", step)
		}
	}
}
