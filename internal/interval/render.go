package interval

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws the unit interval as a fixed-width ASCII bar: each column
// shows the owner occupying that slice of the interval (digits cycle per
// server, '.' is free space), with partition boundaries marked below. It is
// the textual analogue of the paper's Figures 2–5 and is used by the
// quickstart example and cmd/anusim for debugging placements.
func (iv *Interval) Render(width int) string {
	if width < 8 {
		width = 8
	}
	ids := iv.Servers()
	marker := make(map[int]rune, len(ids))
	for i, id := range ids {
		marker[id] = rune('0' + i%10)
	}
	bar := make([]rune, width)
	for col := 0; col < width; col++ {
		// Sample the midpoint of the column's slice.
		point := uint64((float64(col) + 0.5) / float64(width) * float64(Whole))
		if owner := iv.OwnerAt(point); owner != Free {
			bar[col] = marker[owner]
		} else {
			bar[col] = '.'
		}
	}
	// Partition tick marks.
	ticks := make([]rune, width)
	for i := range ticks {
		ticks[i] = ' '
	}
	p := iv.Partitions()
	for k := 0; k <= p; k++ {
		col := k * width / p
		if col >= width {
			col = width - 1
		}
		ticks[col] = '^'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", string(bar))
	fmt.Fprintf(&b, " %s  (%d partitions)\n", string(ticks), p)
	legend := make([]string, 0, len(ids))
	for _, id := range ids {
		share, _ := iv.Share(id)
		legend = append(legend, fmt.Sprintf("%c=server%d(%.1f%%)", marker[id], id,
			100*float64(share)/float64(Whole)))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, " %s\n", strings.Join(legend, " "))
	return b.String()
}
