package experiment

import (
	"fmt"

	"anufs/internal/cluster"
	"anufs/internal/placement"
	"anufs/internal/workload"
)

func init() {
	register("upgrade", "Online hardware upgrade: ANU exploits a server that got faster mid-run (§1, X7)", upgrade)
	register("phaseshift", "Temporal heterogeneity: workload weights shift mid-run; adaptive vs static (§1, X8)", phaseshift)
	register("threshold", "Thresholding parameter sweep: t ∈ {0.1, 0.25, 0.5, 1.0} (§6, X9)", threshold)
	register("sieve", "Capacity-aware static hashing (SIEVE-style) vs adaptive ANU (§4, X10)", sieve)
	register("dht", "P2P consistent hashing vs ANU on heterogeneous servers (§3, X11)", dht)
}

// upgrade replaces the slowest server's hardware mid-run (speed 1 → 9)
// without restarting anything. The paper claims "future adaptability:
// upgrading hardware while the system is on-line and taking full advantage
// of faster hardware" (§1) — ANU needs no notification because capability
// is only ever observed through latency.
func upgrade(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	// Run the cluster under pressure (~30% nominal aggregate utilization,
	// ~47% on the survivors after the failure): spare capacity is what an
	// upgrade buys.
	for i := range tr.Requests {
		tr.Requests[i].Work *= 1.2
	}
	// Early enough that the post-event period dominates the run — the churn
	// of re-tuning amortizes over the remaining windows at both scales.
	at := tr.Duration() * 0.3
	out := &Output{
		ID:    "upgrade",
		Title: "Online capacity replacement (server 4 fails; server 0 upgraded 1 → 9)",
		Description: fmt.Sprintf("At t=%.0fs the fastest server fails. In one run the speed-1 server is "+
			"simultaneously upgraded to speed 9 in place — the paper's enterprise-hosting scenario (§1): "+
			"hardware redeployed while the system is on-line, exploited with no reconfiguration beyond "+
			"ANU's own tuning.", at),
	}
	for _, upgraded := range []bool{false, true} {
		cfg := clusterConfig()
		cfg.Events = []cluster.Event{{At: at, ServerID: 4, Up: false}}
		if upgraded {
			cfg.Events = append(cfg.Events, cluster.Event{At: at, ServerID: 0, NewSpeed: 9})
		}
		pol := placement.NewANU(anuConfig())
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("upgrade/%v: %w", upgraded, err)
		}
		label := "anu-failure-only"
		if upgraded {
			label = "anu-failure+upgrade"
		}
		out.Runs = append(out.Runs, Run{Label: label, Result: res})
		// Evidence the replaced capacity is used: server 0's request share
		// and the cluster's latency in the final quarter.
		s := res.Series
		served0, servedAll := 0, 0
		for w := s.Windows() * 3 / 4; w < s.Windows(); w++ {
			for _, id := range s.Servers() {
				c := s.Count(id, w)
				servedAll += c
				if id == 0 {
					served0 += c
				}
			}
		}
		frac := 0.0
		if servedAll > 0 {
			frac = float64(served0) / float64(servedAll)
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: server 0 serves %.1f%% of final-quarter requests", label, frac*100))
	}
	return out, nil
}

// phaseshift drives the cluster with a workload whose file-set weights are
// redrawn mid-run: the paper's temporal heterogeneity (§1). A static
// placement fitted to nothing in particular cannot follow the shift; ANU
// re-tunes.
func phaseshift(scale Scale) (*Output, error) {
	wcfg := workload.DefaultSynthetic(2003)
	if scale == Quick {
		fullRate := float64(wcfg.Requests) / wcfg.Duration
		wcfg.FileSets = 60
		wcfg.Requests = 15000
		wcfg.Duration = 2400
		wcfg.Alpha *= fullRate / (float64(wcfg.Requests) / wcfg.Duration)
	}
	tr := workload.GeneratePhased(wcfg, 2)
	cfg := clusterConfig()
	out := &Output{
		ID:          "phaseshift",
		Title:       "Temporal heterogeneity: weights redrawn at T/2",
		Description: "Two workload phases with independent w=10^(3x) draws; the hot file sets change mid-run.",
	}
	for _, pol := range []placement.Policy{
		placement.NewRoundRobin(),
		placement.NewPrescient(cfg.Speeds, tr, cfg.Window),
		placement.NewANU(anuConfig()),
	} {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("phaseshift/%s: %w", pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}
	return out, nil
}

// sieve compares ANU against a SIEVE-style static non-uniform mapping with
// oracle capacity knowledge: capacity-proportional hashing fixes server
// heterogeneity but not workload heterogeneity, which is the gap ANU's
// adaptivity closes (paper §3: hash-based systems "are not sensitive to
// object workload heterogeneity").
func sieve(scale Scale) (*Output, error) {
	cfg := clusterConfig()
	out := &Output{
		ID:    "sieve",
		Title: "Capacity-aware static hashing vs adaptive ANU",
		Description: "Static capacity-proportional regions (oracle speeds, no tuning) vs ANU (no knowledge, " +
			"adaptive), on the fine-grained synthetic workload (500 file sets — workload heterogeneity " +
			"averages out, flattering the static scheme) and on the coarse DFS trace (21 file sets — one " +
			"misplaced hot set is unfixable without adaptation).",
	}
	for _, c := range []struct{ suffix string }{{"syn"}, {"dfs"}} {
		tr := synthTrace(scale)
		if c.suffix == "dfs" {
			tr = dfsTrace(scale)
		}
		for _, mk := range []func() placement.Policy{
			func() placement.Policy { return placement.NewStaticNonUniform(anuConfig(), cfg.Speeds) },
			func() placement.Policy { return placement.NewANU(anuConfig()) },
		} {
			pol := mk()
			res, err := cluster.Run(cfg, tr, pol)
			if err != nil {
				return nil, fmt.Errorf("sieve/%s-%s: %w", pol.Name(), c.suffix, err)
			}
			out.Runs = append(out.Runs, Run{Label: pol.Name() + "-" + c.suffix, Result: res})
		}
	}
	return out, nil
}

// dht reproduces the paper's §3 argument against peer-to-peer hashing:
// consistent hashing (Chord/Pastry-style, with generous virtual nodes)
// balances *counts* but is blind to both server speed and file-set weight,
// so on the heterogeneous cluster it behaves like the uniform statics.
func dht(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{
		ID:          "dht",
		Title:       "Consistent hashing vs ANU",
		Description: "Chord-style ring with 64 virtual nodes per server vs adaptive ANU; speeds 1,3,5,7,9.",
	}
	for _, pol := range []placement.Policy{
		placement.NewConsistentHash(7, 64),
		placement.NewANU(anuConfig()),
	} {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("dht/%s: %w", pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}
	return out, nil
}

// threshold sweeps the paper's t parameter (§6: "the proper choice of t
// depends on workload heterogeneity … fairly large values are necessary").
func threshold(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{
		ID:          "threshold",
		Title:       "Thresholding parameter sweep",
		Description: "ANU (all heuristics) with t ∈ {0.1, 0.25, 0.5, 1.0}: small t over-tunes, large t under-tunes.",
	}
	for _, t := range []float64{0.1, 0.25, 0.5, 1.0} {
		coreCfg := anuConfig()
		coreCfg.Threshold = t
		res, err := cluster.Run(cfg, tr, placement.NewANU(coreCfg))
		if err != nil {
			return nil, fmt.Errorf("threshold/%v: %w", t, err)
		}
		out.Runs = append(out.Runs, Run{Label: fmt.Sprintf("anu-t%.2f", t), Result: res})
	}
	return out, nil
}
