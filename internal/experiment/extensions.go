package experiment

import (
	"fmt"

	"anufs/internal/cluster"
	"anufs/internal/core"
	"anufs/internal/placement"
	"anufs/internal/workload"
)

func init() {
	register("failure", "Failure and recovery: minimal movement and load locality (§4, X2)", failure)
	register("aggregator", "Delegate aggregator robustness: mean vs weighted mean vs median (§4, X3)", aggregator)
	register("movecost", "Sensitivity to file-set move cost (§7 note, X5)", movecost)
	register("pairwise", "Centralized delegate vs pairwise decentralized tuning (§5, X4)", pairwise)
	register("scaleout", "Scale-out: balance quality and shared state vs cluster size (§8, X6)", scaleout)
}

// failure kills the fastest server mid-run and recovers it later, measuring
// both the latency disturbance and — the paper's claim — that movement is
// limited to the failed server's file sets plus the rebalancing deltas,
// never a full re-hash.
func failure(scale Scale) (*Output, error) {
	tr := dfsTrace(scale)
	cfg := clusterConfig()
	dur := tr.Duration()
	downAt := dur * 0.35
	upAt := dur * 0.7
	cfg.Events = []cluster.Event{
		{At: downAt, ServerID: 4, Up: false},
		{At: upAt, ServerID: 4, Up: true},
	}
	out := &Output{
		ID:    "failure",
		Title: "Failure and recovery under ANU",
		Description: fmt.Sprintf("Server 4 (fastest) fails at t=%.0fs and recovers at t=%.0fs; "+
			"survivors grow proportionally, only the victim's file sets re-hash.", downAt, upAt),
	}
	for _, pol := range []placement.Policy{
		placement.NewANU(anuConfig()),
		placement.NewPrescient(cfg.Speeds, tr, cfg.Window),
	} {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("failure/%s: %w", pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}

	// Quantify ANU's minimal-movement property directly on the mapper,
	// against the rehash-everything strawman.
	names := tr.FileSets()
	m, err := core.NewMapper(anuConfig(), []int{0, 1, 2, 3, 4})
	if err != nil {
		return nil, err
	}
	before := m.Clone()
	victimOwned := 0
	for _, n := range names {
		if before.Owner(n) == 4 {
			victimOwned++
		}
	}
	if err := m.RemoveServer(4); err != nil {
		return nil, err
	}
	moved := len(core.Moves(before, m, names))
	out.Notes = append(out.Notes,
		fmt.Sprintf("mapper failure movement: %d of %d file sets moved (victim owned %d); full re-hash would move ~%d",
			moved, len(names), victimOwned, len(names)*4/5))
	return out, nil
}

// aggregator runs ANU under both delegate aggregators; the paper reports
// the system "is robust to the choice of an average".
func aggregator(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{ID: "aggregator", Title: "Aggregator robustness",
		Description: "ANU with mean, weighted-mean and median delegate aggregates."}
	for _, agg := range []core.Aggregator{core.Mean, core.WeightedMean, core.Median} {
		coreCfg := anuConfig()
		coreCfg.Aggregator = agg
		res, err := cluster.Run(cfg, tr, placement.NewANU(coreCfg))
		if err != nil {
			return nil, fmt.Errorf("aggregator/%s: %w", agg, err)
		}
		out.Runs = append(out.Runs, Run{Label: "anu-" + agg.String(), Result: res})
	}
	return out, nil
}

// movecost sweeps the file-set move duration; the paper notes the 5–10 s
// cost is why the system is "relatively conservative in moving data".
func movecost(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	out := &Output{ID: "movecost", Title: "Move-cost sensitivity",
		Description: "ANU with move duration 1 s, 7.5 s (paper's 5–10 s), and 30 s."}
	for _, mt := range []float64{1, 7.5, 30} {
		cfg := clusterConfig()
		cfg.MoveTimeMin, cfg.MoveTimeMax = mt, mt
		res, err := cluster.Run(cfg, tr, placement.NewANU(anuConfig()))
		if err != nil {
			return nil, fmt.Errorf("movecost/%.1f: %w", mt, err)
		}
		out.Runs = append(out.Runs, Run{Label: fmt.Sprintf("anu-move%.1fs", mt), Result: res})
	}
	return out, nil
}

// pairwise compares the centralized delegate against the decentralized
// pairwise variant the paper sketches as future work (§5).
func pairwise(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{ID: "pairwise", Title: "Centralized vs pairwise decentralized tuning",
		Description: "Pairwise exchanges conserve half occupancy without a delegate round."}
	for _, pol := range []placement.Policy{
		placement.NewANU(anuConfig()),
		placement.NewPairwiseANU(anuConfig(), 11),
	} {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("pairwise/%s: %w", pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}
	return out, nil
}

// scaleout grows the cluster (heterogeneous speed ramps) with workload
// scaled proportionally, verifying balance holds and that ANU's replicated
// state scales with servers, not file sets (§5).
func scaleout(scale Scale) (*Output, error) {
	out := &Output{ID: "scaleout", Title: "Scale-out behaviour",
		Description: "Clusters of 5, 10 and 20 servers with speed ramp 1..9; workload scaled with capacity."}
	sizes := []int{5, 10, 20}
	if scale == Quick {
		sizes = []int{5, 10}
	}
	for _, n := range sizes {
		cfg := clusterConfig()
		cfg.Speeds = map[int]float64{}
		var capacity float64
		for i := 0; i < n; i++ {
			sp := 1 + 8*float64(i)/float64(n-1) // ramp 1..9 like the paper's 5-server set
			cfg.Speeds[i] = sp
			capacity += sp
		}
		// Keep aggregate utilization equal to the 5-server runs (capacity
		// 25) by scaling the request rate with capacity; the duration — and
		// therefore the number of adaptation windows — stays fixed.
		wcfg := workload.DefaultSynthetic(2003)
		if scale == Quick {
			fullRate := float64(wcfg.Requests) / wcfg.Duration
			wcfg.FileSets = 60
			wcfg.Requests = 9000
			wcfg.Duration = 1200
			wcfg.Alpha *= fullRate / (float64(wcfg.Requests) / wcfg.Duration)
		}
		wcfg.Requests = int(float64(wcfg.Requests) * capacity / 25.0)
		tr := workload.Generate(wcfg)
		pol := placement.NewANU(anuConfig())
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("scaleout/%d: %w", n, err)
		}
		out.Runs = append(out.Runs, Run{Label: fmt.Sprintf("anu-%dservers", n), Result: res})
		out.Notes = append(out.Notes, fmt.Sprintf(
			"n=%d: partitions=%d, replicated state = %d regions (scales with servers, not the %d file sets)",
			n, pol.Mapper().Partitions(), pol.Mapper().NumServers(), len(tr.FileSets())))
	}
	return out, nil
}
