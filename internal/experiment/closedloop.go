package experiment

import (
	"fmt"

	"anufs/internal/cluster"
	"anufs/internal/placement"
	"anufs/internal/rng"
)

func init() {
	register("closedloop", "Closed-loop clients: throughput under blocking metadata requests (§2, X12)", closedloop)
}

// closedloop drives the cluster with the paper's actual client model:
// closed-loop clients that block on each metadata request ("clients
// acquire metadata prior to data … clients blocked on metadata may leave
// the high bandwidth SAN underutilized", §2). In a closed system queues
// are bounded by the client population, imbalance costs throughput rather
// than unbounded latency, and every file-set move stalls its clients for
// the full 5–10 s move time — which is why the paper tunes conservatively.
func closedloop(scale Scale) (*Output, error) {
	nfs, clients, dur := 200, 300, 4000.0
	if scale == Quick {
		nfs, clients, dur = 40, 80, 1200.0
	}
	r := rng.NewStream(2003)
	weights := map[string]float64{}
	for i := 0; i < nfs; i++ {
		weights[fmt.Sprintf("cfs%03d", i)] = r.LogUniform10(3)
	}
	ccfg := cluster.ClosedConfig{
		Clients:   clients,
		ThinkTime: 0.05,
		Duration:  dur,
		Weights:   weights,
		Work:      0.15,
	}
	cfg := clusterConfig()
	out := &Output{
		ID:    "closedloop",
		Title: "Closed-loop clients (blocking metadata requests)",
		Description: fmt.Sprintf("%d clients, %.0fms think time, heavy-tailed access over %d file sets. "+
			"Columns beyond latency: total completions (throughput).", clients, ccfg.ThinkTime*1000, nfs),
	}
	for _, mk := range []func() placement.Policy{
		func() placement.Policy { return placement.NewRoundRobin() },
		func() placement.Policy { return placement.NewStaticNonUniform(anuConfig(), cfg.Speeds) },
		func() placement.Policy { return placement.NewANU(anuConfig()) },
	} {
		pol := mk()
		res, err := cluster.RunClosed(cfg, ccfg, pol)
		if err != nil {
			return nil, fmt.Errorf("closedloop/%s: %w", pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
		out.Notes = append(out.Notes, fmt.Sprintf("%s: %d completions (throughput %.0f req/s), %d moves",
			pol.Name(), res.Requests, float64(res.Requests)/dur, res.Moves))
	}
	return out, nil
}
