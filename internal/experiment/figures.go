package experiment

import (
	"fmt"

	"anufs/internal/cluster"
	"anufs/internal/core"
	"anufs/internal/placement"
	"anufs/internal/trace"
)

func init() {
	register("fig6", "Server latency for DFSTrace workloads: simple randomization, round-robin, dynamic prescient, ANU", fig6)
	register("fig7", "Dynamic Prescient vs ANU closeup, DFSTrace workloads", fig7)
	register("fig8", "Server latency for synthetic workload: four policies", fig8)
	register("fig9", "Prescient vs ANU closeup, synthetic workload", fig9)
	register("fig10a", "Over-tuning: ANU with no heuristics (oscillates)", fig10a)
	register("fig10b", "Over-tuning solved: ANU with thresholding + top-off + divergent", fig10b)
	register("fig11a", "Thresholding heuristic alone", fig11a)
	register("fig11b", "Top-off heuristic alone", fig11b)
	register("fig11c", "Divergent heuristic alone", fig11c)
}

// fourPolicies runs the paper's comparison set over one trace.
func fourPolicies(id, title, desc string, tr *trace.Trace) (*Output, error) {
	cfg := clusterConfig()
	policies := []placement.Policy{
		placement.NewSimpleRandom(7),
		placement.NewRoundRobin(),
		placement.NewPrescient(cfg.Speeds, tr, cfg.Window),
		placement.NewANU(anuConfig()),
	}
	out := &Output{ID: id, Title: title, Description: desc}
	for _, pol := range policies {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", id, pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}
	return out, nil
}

// twoPolicies runs the prescient-vs-ANU closeup.
func twoPolicies(id, title, desc string, tr *trace.Trace) (*Output, error) {
	cfg := clusterConfig()
	policies := []placement.Policy{
		placement.NewPrescient(cfg.Speeds, tr, cfg.Window),
		placement.NewANU(anuConfig()),
	}
	out := &Output{ID: id, Title: title, Description: desc}
	for _, pol := range policies {
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", id, pol.Name(), err)
		}
		out.Runs = append(out.Runs, Run{Label: pol.Name(), Result: res})
	}
	return out, nil
}

func fig6(scale Scale) (*Output, error) {
	return fourPolicies("fig6", "Figure 6: Server latency for DFSTrace workloads",
		"Static policies skew on heterogeneous servers; prescient and ANU balance.", dfsTrace(scale))
}

func fig7(scale Scale) (*Output, error) {
	out, err := twoPolicies("fig7", "Figure 7: Dynamic Prescient vs. ANU (DFSTrace)",
		"Prescient starts balanced; ANU converges within ~3 sample periods.", dfsTrace(scale))
	if err != nil {
		return nil, err
	}
	// Record the convergence behaviour the paper narrates ("over the first 3
	// sample periods … ANU reaches a good load balance"): compare each
	// policy's first-quarter mean latency with its steady (second-half)
	// mean. Prescient starts balanced, so the two are close; ANU's early
	// mean reflects the transient it tunes away.
	for _, r := range out.Runs {
		s := r.Result.Series
		var earlySum float64
		var earlyN int
		for _, id := range s.Servers() {
			for w := 0; w < s.Windows()/4; w++ {
				c := s.Count(id, w)
				earlySum += s.Mean(id, w) * float64(c)
				earlyN += c
			}
		}
		early := 0.0
		if earlyN > 0 {
			early = earlySum / float64(earlyN)
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: first-quarter mean %.1f ms vs steady mean %.1f ms",
			r.Label, early*1000, s.SteadyOverallMean()*1000))
	}
	return out, nil
}

func fig8(scale Scale) (*Output, error) {
	return fourPolicies("fig8", "Figure 8: Server latency for synthetic workload",
		"500 file sets with w=10^(3x) weights; four policies.", synthTrace(scale))
}

func fig9(scale Scale) (*Output, error) {
	return twoPolicies("fig9", "Figure 9: Prescient vs. ANU (synthetic)",
		"Stable workload: prescient keeps one configuration; ANU converges to comparable balance.", synthTrace(scale))
}

// anuVariant runs ANU with a specific tuning configuration on the synthetic
// workload (the workload the paper uses for the over-tuning study).
func anuVariant(id, title, desc string, scale Scale, tune core.Tuning) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	coreCfg := anuConfig()
	coreCfg.Tuning = tune
	pol := placement.NewANU(coreCfg)
	res, err := cluster.Run(cfg, tr, pol)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	out := &Output{ID: id, Title: title, Description: desc,
		Runs: []Run{{Label: variantLabel(tune), Result: res}}}
	// The over-tuning signature is oscillation on the weakest server
	// (server 0): count large latency reversals.
	osc := res.Series.OscillationScore(0, 0.005)
	out.Notes = append(out.Notes, fmt.Sprintf("server-0 oscillation score: %d; moves: %d", osc, res.Moves))
	return out, nil
}

func variantLabel(t core.Tuning) string {
	switch t {
	case (core.Tuning{}):
		return "anu-raw"
	case (core.Tuning{Thresholding: true}):
		return "anu-thresholding"
	case (core.Tuning{TopOff: true}):
		return "anu-topoff"
	case (core.Tuning{Divergent: true}):
		return "anu-divergent"
	case core.AllTuning():
		return "anu-all"
	default:
		return "anu-custom"
	}
}

func fig10a(scale Scale) (*Output, error) {
	return anuVariant("fig10a", "Figure 10(a): initial results exhibit over-tuning",
		"ANU with no heuristics: the weakest server cyclically acquires and sheds load.",
		scale, core.Tuning{})
}

func fig10b(scale Scale) (*Output, error) {
	return anuVariant("fig10b", "Figure 10(b): three heuristics solve the over-tuning problem",
		"ANU with thresholding, top-off and divergent tuning: stable.",
		scale, core.AllTuning())
}

func fig11a(scale Scale) (*Output, error) {
	return anuVariant("fig11a", "Figure 11(a): thresholding only",
		"Stabilizes moderate servers; the weakest still flaps across the band.",
		scale, core.Tuning{Thresholding: true})
}

func fig11b(scale Scale) (*Output, error) {
	return anuVariant("fig11b", "Figure 11(b): top-off only",
		"The single most effective heuristic: the weakest server settles at idle.",
		scale, core.Tuning{TopOff: true})
}

func fig11c(scale Scale) (*Output, error) {
	return anuVariant("fig11c", "Figure 11(c): divergent only",
		"Reaches balance, more slowly than all three combined.",
		scale, core.Tuning{Divergent: true})
}
