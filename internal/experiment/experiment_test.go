package experiment

import (
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) *Output {
	t.Helper()
	out, err := RunByID(id, Quick)
	if err != nil {
		t.Fatalf("RunByID(%s): %v", id, err)
	}
	if out.ID != id {
		t.Fatalf("output ID %q, want %q", out.ID, id)
	}
	return out
}

func find(t *testing.T, out *Output, label string) Run {
	t.Helper()
	for _, r := range out.Runs {
		if r.Label == label {
			return r
		}
	}
	t.Fatalf("%s: no run labeled %q (have %v)", out.ID, label, labels(out))
	return Run{}
}

func labels(out *Output) []string {
	ls := make([]string, len(out.Runs))
	for i, r := range out.Runs {
		ls[i] = r.Label
	}
	return ls
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"aggregator", "closedloop", "dht", "failure", "fig10a", "fig10b",
		"fig11a", "fig11b", "fig11c", "fig6", "fig7", "fig8", "fig9", "gamma",
		"hysteresis", "movecost", "pairwise", "phaseshift", "scaleout", "sieve",
		"threshold", "upgrade"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if Describe(id) == "" {
			t.Fatalf("experiment %s has no description", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := RunByID("nope", Quick); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("err = %v", err)
	}
}

func TestScaleString(t *testing.T) {
	if Full.String() != "full" || Quick.String() != "quick" {
		t.Fatal("Scale.String mismatch")
	}
}

// Figure 6 shape: static policies leave latency skewed across servers while
// ANU and prescient balance (paper §7: "simple randomization and
// round-robin systems perform poorly because they are static").
func TestFig6Shape(t *testing.T) {
	out := runQuick(t, "fig6")
	if len(out.Runs) != 4 {
		t.Fatalf("fig6 has %d runs, want 4", len(out.Runs))
	}
	rr := find(t, out, "round-robin").Result.Series.SteadyStateCoV()
	sr := find(t, out, "simple-random").Result.Series.SteadyStateCoV()
	anu := find(t, out, "anu").Result.Series.SteadyStateCoV()
	pres := find(t, out, "prescient").Result.Series.SteadyStateCoV()
	if anu >= rr || anu >= sr {
		t.Fatalf("ANU steady CoV %.3f not below static policies (rr %.3f, sr %.3f)", anu, rr, sr)
	}
	if pres >= rr {
		t.Fatalf("prescient CoV %.3f not below round-robin %.3f", pres, rr)
	}
}

// Figure 7 shape: prescient starts balanced; ANU takes a few windows to
// converge, then is comparable.
func TestFig7Shape(t *testing.T) {
	out := runQuick(t, "fig7")
	pres := find(t, out, "prescient").Result.Series
	anu := find(t, out, "anu").Result.Series
	// Prescient is balanced in the first window; ANU typically is not.
	if cov := pres.CoV(0); cov > 1.0 {
		t.Fatalf("prescient first-window CoV %.3f — should start balanced", cov)
	}
	// ANU converges: post-convergence latency comparable to prescient
	// (within a generous factor at quick scale).
	pm, am := pres.SteadyOverallMean(), anu.SteadyOverallMean()
	if am > 6*pm {
		t.Fatalf("ANU steady mean %.4fs vs prescient %.4fs — not comparable", am, pm)
	}
	if len(out.Notes) == 0 {
		t.Fatal("fig7 should note convergence windows")
	}
}

func TestFig8Shape(t *testing.T) {
	out := runQuick(t, "fig8")
	rr := find(t, out, "round-robin").Result.Series.SteadyStateCoV()
	anu := find(t, out, "anu").Result.Series.SteadyStateCoV()
	if anu >= rr {
		t.Fatalf("synthetic: ANU CoV %.3f not below round-robin %.3f", anu, rr)
	}
}

func TestFig9Shape(t *testing.T) {
	out := runQuick(t, "fig9")
	pres := find(t, out, "prescient").Result
	anu := find(t, out, "anu").Result
	pm := pres.Series.SteadyOverallMean()
	am := anu.Series.SteadyOverallMean()
	if am > 6*pm {
		t.Fatalf("ANU steady mean latency %.4f vs prescient %.4f — not comparable", am, pm)
	}
	// The synthetic workload is stable, so prescient barely moves file sets
	// after its initial packing.
	if pres.Moves > anu.Moves*3+30 {
		t.Fatalf("prescient moved %d file sets on a stable workload (ANU %d)", pres.Moves, anu.Moves)
	}
}

// Figure 10 shape: raw ANU oscillates (over-tuning); with the three
// heuristics it is stable and moves far fewer file sets.
func TestFig10OverTuning(t *testing.T) {
	raw := runQuick(t, "fig10a")
	tuned := runQuick(t, "fig10b")
	rawRes := find(t, raw, "anu-raw").Result
	tunedRes := find(t, tuned, "anu-all").Result
	if rawRes.Moves <= tunedRes.Moves {
		t.Fatalf("raw ANU moved %d file sets, tuned %d — over-tuning should move more",
			rawRes.Moves, tunedRes.Moves)
	}
	// Oscillation scores are noisy at quick scale; only compare when the
	// raw run oscillates substantially (it always does at full scale).
	rawOsc := rawRes.Series.OscillationScore(0, 0.005)
	tunedOsc := tunedRes.Series.OscillationScore(0, 0.005)
	if rawOsc >= 5 && tunedOsc > rawOsc {
		t.Fatalf("heuristics increased weakest-server oscillation: raw %d, tuned %d", rawOsc, tunedOsc)
	}
}

// Figure 11 shape: each heuristic alone damps tuning relative to raw (the
// paper shows partial stabilization from each; top-off is the single most
// effective). At quick scale the weaker heuristics can land within noise of
// raw, so allow a margin instead of demanding strict improvement.
func TestFig11Decomposition(t *testing.T) {
	raw := find(t, runQuick(t, "fig10a"), "anu-raw").Result
	moves := map[string]int{}
	for id, label := range map[string]string{
		"fig11a": "anu-thresholding",
		"fig11b": "anu-topoff",
		"fig11c": "anu-divergent",
	} {
		res := find(t, runQuick(t, id), label).Result
		moves[label] = res.Moves
		if float64(res.Moves) > 1.3*float64(raw.Moves) {
			t.Errorf("%s (%s) moved %d file sets, far more than raw's %d", id, label, res.Moves, raw.Moves)
		}
	}
	// Top-off is the single most effective heuristic (§7).
	if moves["anu-topoff"] > moves["anu-thresholding"] && moves["anu-topoff"] > moves["anu-divergent"] {
		t.Errorf("top-off (%d moves) not the most damping heuristic (thresh %d, div %d)",
			moves["anu-topoff"], moves["anu-thresholding"], moves["anu-divergent"])
	}
}

func TestFailureExperiment(t *testing.T) {
	out := runQuick(t, "failure")
	anu := find(t, out, "anu").Result
	if anu.Moves == 0 {
		t.Fatal("failure experiment recorded no movement")
	}
	if len(out.Notes) == 0 || !strings.Contains(out.Notes[0], "full re-hash") {
		t.Fatalf("failure notes missing movement comparison: %v", out.Notes)
	}
}

func TestAggregatorRobustness(t *testing.T) {
	out := runQuick(t, "aggregator")
	if len(out.Runs) != 3 {
		t.Fatalf("aggregator runs = %v", labels(out))
	}
	// Paper: "robust to the choice of an average" — all aggregators land in
	// the same post-convergence latency regime (order of magnitude).
	lo, hi := 1e18, 0.0
	for _, r := range out.Runs {
		m := r.Result.Series.SteadyOverallMean()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if lo == 0 || hi/lo > 10 {
		t.Fatalf("aggregators diverge: steady means span %.4f .. %.4f", lo, hi)
	}
}

func TestMoveCostSweep(t *testing.T) {
	out := runQuick(t, "movecost")
	if len(out.Runs) != 3 {
		t.Fatalf("movecost runs = %v", labels(out))
	}
}

func TestPairwiseComparable(t *testing.T) {
	out := runQuick(t, "pairwise")
	cen := find(t, out, "anu").Result.Series.Summarize()
	dec := find(t, out, "anu-pairwise").Result.Series.Summarize()
	if dec.OverallMeanAll > 5*cen.OverallMeanAll {
		t.Fatalf("pairwise mean %.4f not comparable to centralized %.4f",
			dec.OverallMeanAll, cen.OverallMeanAll)
	}
}

func TestScaleoutStateScalesWithServers(t *testing.T) {
	out := runQuick(t, "scaleout")
	if len(out.Runs) < 2 {
		t.Fatalf("scaleout runs = %v", labels(out))
	}
	for _, n := range out.Notes {
		if !strings.Contains(n, "partitions=") {
			t.Fatalf("scaleout note missing state size: %q", n)
		}
	}
}

func TestSummaryRows(t *testing.T) {
	out := runQuick(t, "fig9")
	rows := out.SummaryRows()
	if len(rows) != len(out.Runs) {
		t.Fatalf("%d rows for %d runs", len(rows), len(out.Runs))
	}
	for _, r := range rows {
		if r.Label == "" {
			t.Fatal("empty row label")
		}
	}
}
