package experiment

import (
	"testing"
)

func TestUpgradeExploitsNewHardware(t *testing.T) {
	out := runQuick(t, "upgrade")
	static := find(t, out, "anu-failure-only").Result
	upgraded := find(t, out, "anu-failure+upgrade").Result
	// After the upgrade, server 0 (now the joint-fastest machine) must
	// serve a meaningful request share in the final quarter; in the
	// unchanged run it serves almost nothing (speed 1 idles under top-off).
	_ = static
	// The benefit of the upgrade shows as latency, not necessarily request
	// share: under top-off an idle-but-fast server gains load only as
	// overloaded servers shed, so its share ramps slowly while the whole
	// cluster's latency drops because the shed load lands well.
	su := finalQuarterMean(upgraded.Series)
	ss := finalQuarterMean(static.Series)
	if su >= ss {
		t.Fatalf("upgraded final-quarter mean %.4fs not below static hardware %.4fs — upgrade unexploited", su, ss)
	}
	if len(out.Notes) != 2 {
		t.Fatalf("missing upgrade notes: %v", out.Notes)
	}
}

func TestPhaseShiftAdaptiveBeatsStatic(t *testing.T) {
	out := runQuick(t, "phaseshift")
	rr := find(t, out, "round-robin").Result.Series
	anu := find(t, out, "anu").Result.Series
	// Second half is the shifted phase: the static policy's imbalance there
	// must exceed the adaptive policy's.
	if anu.SteadyStateCoV() >= rr.SteadyStateCoV() {
		t.Fatalf("post-shift: ANU CoV %.3f not below round-robin %.3f",
			anu.SteadyStateCoV(), rr.SteadyStateCoV())
	}
	// ANU must actually have re-tuned across the shift.
	res := find(t, out, "anu").Result
	shiftWindow := len(res.MovesByWindow) / 2
	moved := 0
	for w := shiftWindow - 1; w < len(res.MovesByWindow) && w >= 0; w++ {
		moved += res.MovesByWindow[w]
	}
	if moved == 0 {
		t.Fatal("ANU moved nothing after the workload shift")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	out := runQuick(t, "threshold")
	if len(out.Runs) != 4 {
		t.Fatalf("threshold runs = %v", labels(out))
	}
	moves := map[string]int{}
	for _, r := range out.Runs {
		moves[r.Label] = r.Result.Moves
	}
	// Tight thresholds tune more aggressively than loose ones.
	if moves["anu-t0.10"] < moves["anu-t1.00"] {
		t.Fatalf("t=0.1 moved %d < t=1.0 moved %d — sweep shape inverted",
			moves["anu-t0.10"], moves["anu-t1.00"])
	}
}

func TestExtendedRegistryComplete(t *testing.T) {
	for _, id := range []string{"upgrade", "phaseshift", "threshold"} {
		found := false
		for _, have := range IDs() {
			if have == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %s not registered", id)
		}
		if Describe(id) == "" {
			t.Fatalf("experiment %s lacks description", id)
		}
	}
}

func TestSieveBaselineShape(t *testing.T) {
	out := runQuick(t, "sieve")
	if len(out.Runs) != 4 {
		t.Fatalf("sieve runs = %v", labels(out))
	}
	// Fine-grained synthetic workload: capacity-aware static hashing is
	// competitive (workload heterogeneity averages out over 500 file sets);
	// ANU must stay within an order of magnitude without any knowledge.
	snuSyn := find(t, out, "static-nonuniform-syn").Result.Series
	anuSyn := find(t, out, "anu-syn").Result.Series
	if anuSyn.SteadyOverallMean() > 10*snuSyn.SteadyOverallMean()+0.05 {
		t.Fatalf("synthetic: ANU steady %.4f ≫ static capacity-aware %.4f",
			anuSyn.SteadyOverallMean(), snuSyn.SteadyOverallMean())
	}
	// Both must beat the uniform statics by a wide margin on the coarse
	// trace: the static scheme's risk shows in its worst window, which
	// adaptation caps. (The max comparison is seed-dependent; assert ANU is
	// not strictly dominated on both metrics.)
	snuDfs := find(t, out, "static-nonuniform-dfs").Result.Series
	anuDfs := find(t, out, "anu-dfs").Result.Series
	if anuDfs.SteadyOverallMean() > 20*snuDfs.SteadyOverallMean()+0.05 &&
		anuDfs.MaxMean() > snuDfs.MaxMean() {
		t.Fatalf("dfs: ANU dominated by static capacity-aware hashing (steady %.4f vs %.4f, max %.4f vs %.4f)",
			anuDfs.SteadyOverallMean(), snuDfs.SteadyOverallMean(), anuDfs.MaxMean(), snuDfs.MaxMean())
	}
}

func TestDHTBlindToHeterogeneity(t *testing.T) {
	out := runQuick(t, "dht")
	ch := find(t, out, "consistent-hash").Result.Series
	anu := find(t, out, "anu").Result.Series
	// Consistent hashing parks ~equal load everywhere, saturating the slow
	// servers just like the uniform statics; ANU must be far better.
	if anu.SteadyOverallMean() >= ch.SteadyOverallMean() {
		t.Fatalf("ANU steady mean %.4f not below consistent hashing %.4f",
			anu.SteadyOverallMean(), ch.SteadyOverallMean())
	}
}

// finalQuarterMean is the request-weighted mean latency over the last
// quarter of the run.
func finalQuarterMean(s interface {
	Count(server, w int) int
	Mean(server, w int) float64
	Windows() int
	Servers() []int
}) float64 {
	var sum float64
	n := 0
	for w := s.Windows() * 3 / 4; w < s.Windows(); w++ {
		for _, id := range s.Servers() {
			c := s.Count(id, w)
			sum += s.Mean(id, w) * float64(c)
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestClosedLoopExperiment(t *testing.T) {
	out := runQuick(t, "closedloop")
	if len(out.Runs) != 3 || len(out.Notes) != 3 {
		t.Fatalf("closedloop runs=%v notes=%v", labels(out), out.Notes)
	}
	for _, r := range out.Runs {
		if r.Result.Requests == 0 {
			t.Fatalf("%s completed nothing", r.Label)
		}
		// Closed loop bounds latency by the client population.
		if r.Result.Series.MaxMean() > 60 {
			t.Fatalf("%s max window mean %.1fs — closed loop should bound queues", r.Label, r.Result.Series.MaxMean())
		}
	}
}

func TestHysteresisAblation(t *testing.T) {
	out := runQuick(t, "hysteresis")
	moves := map[string]int{}
	for _, r := range out.Runs {
		moves[r.Label] = r.Result.Moves
	}
	// Never-repack ≤ default ≤ near-scratch repacking.
	if !(moves["prescient-h0"] <= moves["prescient-h0.8"] && moves["prescient-h0.8"] <= moves["prescient-h0.999"]) {
		t.Fatalf("hysteresis move ordering violated: %v", moves)
	}
	// Scratch repacking must visibly thrash on the stable workload.
	if moves["prescient-h0.999"] < 2*moves["prescient-h0.8"] {
		t.Fatalf("near-scratch repacking moved only %d vs default %d — ablation shows nothing",
			moves["prescient-h0.999"], moves["prescient-h0.8"])
	}
}

func TestGammaAblation(t *testing.T) {
	out := runQuick(t, "gamma")
	if len(out.Runs) != 3 {
		t.Fatalf("gamma runs = %v", labels(out))
	}
	for _, r := range out.Runs {
		if r.Result.Requests == 0 {
			t.Fatalf("%s: no requests", r.Label)
		}
	}
}
