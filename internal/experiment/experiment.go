// Package experiment defines one runnable reproduction per figure of the
// paper's evaluation (§7, Figures 6–11) plus the extension experiments
// DESIGN.md indexes (failure/recovery movement, aggregator robustness,
// move-cost sensitivity, pairwise decentralized tuning, scale-out).
//
// Every experiment is deterministic for a given Scale, so the CSVs written
// by cmd/expall are reproducible byte-for-byte.
package experiment

import (
	"fmt"
	"sort"

	"anufs/internal/cluster"
	"anufs/internal/core"
	"anufs/internal/metrics"
	"anufs/internal/trace"
	"anufs/internal/workload"
)

// Scale selects the experiment size.
type Scale int

const (
	// Full is the paper's scale (112,590-request trace; 100,000-request
	// synthetic workload). Runs take a few seconds each.
	Full Scale = iota
	// Quick is a reduced scale for tests and benchmarks that preserves the
	// qualitative shape (heterogeneity, convergence, over-tuning).
	Quick
)

func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Run is one policy's (or variant's) simulation outcome within an
// experiment.
type Run struct {
	Label  string
	Result *cluster.Result
}

// Output is a completed experiment.
type Output struct {
	ID          string
	Title       string
	Description string
	Runs        []Run
	// Notes carries experiment-specific scalar findings (movement counts,
	// probe statistics, …) destined for EXPERIMENTS.md.
	Notes []string
}

// SummaryRows condenses the runs for tabulation.
func (o *Output) SummaryRows() []SummaryRow {
	rows := make([]SummaryRow, 0, len(o.Runs))
	for _, r := range o.Runs {
		rows = append(rows, SummaryRow{
			Label:   r.Label,
			Summary: r.Result.Series.Summarize(),
			Moves:   r.Result.Moves,
		})
	}
	return rows
}

// SummaryRow mirrors plot.SummaryRow without importing plot (kept decoupled
// so plot can evolve its rendering independently).
type SummaryRow struct {
	Label   string
	Summary metrics.Summary
	Moves   int
}

// Runner executes one experiment at the given scale.
type Runner func(Scale) (*Output, error)

// registry maps experiment IDs to runners, populated by init() in the
// figure and extension files.
var registry = map[string]Runner{}

var descriptions = map[string]string{}

func register(id, description string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = r
	descriptions[id] = description
}

// IDs lists the registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description for an experiment ID.
func Describe(id string) string { return descriptions[id] }

// RunByID executes a registered experiment.
func RunByID(id string, scale Scale) (*Output, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (known: %v)", id, IDs())
	}
	return r(scale)
}

// ---------------------------------------------------------------------------
// Shared workload and cluster construction.

// dfsTrace returns the DFSTrace-like trace for the scale.
func dfsTrace(scale Scale) *trace.Trace {
	cfg := trace.DefaultDFSLike(2003)
	if scale == Quick {
		fullRate := float64(cfg.Requests) / cfg.Duration
		// 20 windows: enough for ANU to converge (≈5 windows) and then show
		// a steady second half.
		cfg.Requests = 15000
		cfg.Duration = 2400
		// Scale MeanWork to keep per-server utilization identical to the
		// full-scale run.
		cfg.MeanWork *= fullRate / (float64(cfg.Requests) / cfg.Duration)
	}
	return trace.GenerateDFSLike(cfg)
}

// synthTrace returns the paper's synthetic workload for the scale.
func synthTrace(scale Scale) *trace.Trace {
	cfg := workload.DefaultSynthetic(2003)
	if scale == Quick {
		fullRate := float64(cfg.Requests) / cfg.Duration
		cfg.FileSets = 60
		cfg.Requests = 9000
		cfg.Duration = 1200
		cfg.Alpha *= fullRate / (float64(cfg.Requests) / cfg.Duration)
	}
	return workload.Generate(cfg)
}

// clusterConfig returns the standard heterogeneous 5-server cluster
// (speeds 1, 3, 5, 7, 9 — paper §7).
func clusterConfig() cluster.Config {
	return cluster.Defaults()
}

// anuConfig returns the paper's final ANU configuration.
func anuConfig() core.Config { return core.Defaults() }
