package experiment

import (
	"fmt"

	"anufs/internal/cluster"
	"anufs/internal/placement"
)

func init() {
	register("hysteresis", "Ablation: prescient repack hysteresis (DESIGN §6 choice, X13)", hysteresis)
	register("gamma", "Ablation: ANU per-round scale clamp Γ (DESIGN §6 choice, X14)", gamma)
}

// hysteresis ablates the stability threshold we added to the prescient
// baseline (DESIGN.md §6): without it, LPT re-packed from scratch every
// window thrashes on Poisson noise, contradicting the paper's observation
// that prescient "retains the same configuration for the duration" on the
// stable synthetic workload.
func hysteresis(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{
		ID:    "hysteresis",
		Title: "Prescient repack hysteresis ablation",
		Description: "Prescient with hysteresis 0 (never repack after init), 0.8 (default: repack on 20% " +
			"improvement), and 0.999 (repack on any improvement — near scratch-LPT-every-window).",
	}
	for _, h := range []float64{0, 0.8, 0.999} {
		pol := placement.NewPrescient(cfg.Speeds, tr, cfg.Window)
		pol.Hysteresis = h
		res, err := cluster.Run(cfg, tr, pol)
		if err != nil {
			return nil, fmt.Errorf("hysteresis/%v: %w", h, err)
		}
		out.Runs = append(out.Runs, Run{Label: fmt.Sprintf("prescient-h%.3g", h), Result: res})
	}
	return out, nil
}

// gamma ablates the per-round scale clamp Γ (factors are clamped to
// [1/Γ, Γ]; DESIGN.md §6 picks 2). Small Γ adapts slowly; large Γ
// over-corrects from one noisy window's latencies.
func gamma(scale Scale) (*Output, error) {
	tr := synthTrace(scale)
	cfg := clusterConfig()
	out := &Output{
		ID:          "gamma",
		Title:       "ANU scale-clamp Γ ablation",
		Description: "ANU (all heuristics) with Γ ∈ {1.25, 2, 4}: adaptation speed vs overshoot.",
	}
	for _, g := range []float64{1.25, 2, 4} {
		coreCfg := anuConfig()
		coreCfg.Gamma = g
		res, err := cluster.Run(cfg, tr, placement.NewANU(coreCfg))
		if err != nil {
			return nil, fmt.Errorf("gamma/%v: %w", g, err)
		}
		out.Runs = append(out.Runs, Run{Label: fmt.Sprintf("anu-g%.3g", g), Result: res})
	}
	return out, nil
}
