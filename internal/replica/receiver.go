package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anufs/internal/election"
	"anufs/internal/journal"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// ErrPromoted is returned to ship requests that arrive after the standby
// has promoted itself — the old primary must not keep replicating into a
// journal that now has a local writer.
var ErrPromoted = errors.New("replica: standby promoted")

// ReceiverOptions parameterizes a Receiver.
type ReceiverOptions struct {
	// Journal is the standby's own journal, opened on its local directory.
	// The receiver is its only writer until promotion.
	Journal *journal.Journal
	// Images is the recovered store state matching the journal's durable
	// sequence (e.g. Store.Images() right after journal.Open). The receiver
	// takes ownership and keeps it warm by applying shipped entries.
	Images map[string]sharedisk.Image
	// Lease is how long the primary may go silent before promotion
	// (default DefaultLease).
	Lease time.Duration
	// StartupGrace is how long a freshly started standby waits for the
	// primary's FIRST contact before the promotion clock starts; once the
	// primary has shipped anything, its lease is on its own traffic.
	// Default 5×Lease. A standby whose primary never appears still
	// promotes — after the grace.
	StartupGrace time.Duration
	// SnapshotEvery compacts the standby journal after this many applied
	// entries, bounding standby restart time (default 4096; negative
	// disables).
	SnapshotEvery int
	// Obs, when set, receives the receiver's counters and applied gauge.
	Obs *obs.Registry
}

func (o ReceiverOptions) withDefaults() ReceiverOptions {
	if o.Lease <= 0 {
		o.Lease = DefaultLease
	}
	if o.StartupGrace <= 0 {
		o.StartupGrace = 5 * o.Lease
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// Receiver is the standby side of log shipping: it listens for ship /
// ship-status requests, persists shipped entries through the standby's own
// journal (mirroring the primary's sequence numbering), applies them to a
// warm in-memory store, and promotes itself when the primary's lease
// lapses. Every other wire op is refused — a standby serves replication
// only, until promotion.
type Receiver struct {
	opts     ReceiverOptions
	elector  *election.Elector
	counters *metrics.CounterSet

	mu        sync.Mutex
	images    map[string]sharedisk.Image
	applied   uint64
	sinceSnap int
	ln        net.Listener
	conns     map[net.Conn]struct{}
	sawShip   bool
	closed    bool

	promoted    chan struct{}
	promoteOnce sync.Once
	stop        chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// NewReceiver creates a standby receiver over a recovered journal + image
// map. Listen starts serving.
func NewReceiver(opts ReceiverOptions) (*Receiver, error) {
	if opts.Journal == nil {
		return nil, errors.New("replica: receiver needs a journal")
	}
	if opts.Images == nil {
		opts.Images = map[string]sharedisk.Image{}
	}
	opts = opts.withDefaults()
	r := &Receiver{
		opts:     opts,
		elector:  election.New(opts.Lease, nil),
		counters: metrics.NewCounterSet(),
		images:   opts.Images,
		applied:  opts.Journal.DurableSeq(),
		conns:    map[net.Conn]struct{}{},
		promoted: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if reg := opts.Obs; reg != nil {
		reg.AddCounters(r.counters.Snapshot)
		reg.AddGauges(func() []obs.Gauge {
			r.mu.Lock()
			applied := r.applied
			r.mu.Unlock()
			return []obs.Gauge{{Name: "replica_applied_seq", Value: float64(applied)}}
		})
		reg.AddStatus("replication", func() any {
			r.mu.Lock()
			applied, sawShip := r.applied, r.sawShip
			r.mu.Unlock()
			mode := "standby"
			if r.isPromoted() {
				mode = "promoted"
			}
			return map[string]any{
				"mode":        mode,
				"applied_seq": applied,
				"saw_primary": sawShip,
				"lease":       r.opts.Lease.String(),
			}
		})
	}
	return r, nil
}

// Listen binds the replication listener and starts the accept loop, the
// standby's self-heartbeat, and the promotion watcher. Returns the bound
// address.
func (r *Receiver) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()

	// The standby is always a live election member. The primary's startup
	// grant must land before the promotion watcher starts: its initial poll
	// reports current state immediately, and a one-member election would
	// make the standby delegate — instant self-promotion at boot.
	r.elector.Heartbeat(StandbyID)
	r.elector.Heartbeat(PrimaryID)
	r.wg.Add(3)
	go r.acceptLoop(ln)
	go r.selfHeartbeat()
	go r.watchPromotion()
	return ln.Addr().String(), nil
}

// Promoted is closed when the standby has taken over as primary.
func (r *Receiver) Promoted() <-chan struct{} { return r.promoted }

// Counters exposes the receiver's counter set (also exported via Obs).
func (r *Receiver) Counters() *metrics.CounterSet { return r.counters }

// State hands back the warm image map and the sequence it reflects. Call
// only after promotion (or Stop): the receiver no longer mutates the map,
// so the caller may adopt it directly into a store.
func (r *Receiver) State() (map[string]sharedisk.Image, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.images, r.applied
}

// Stop halts the listener and every connection. It does not close the
// journal (the caller owns it — promotion keeps using it).
func (r *Receiver) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.mu.Lock()
		r.closed = true
		ln := r.ln
		conns := make([]net.Conn, 0, len(r.conns))
		for c := range r.conns {
			conns = append(conns, c)
		}
		r.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		for _, c := range conns {
			c.Close()
		}
	})
	r.wg.Wait()
}

// selfHeartbeat keeps the standby's own candidacy alive, and grants the
// primary a startup grace: until the primary's first ship (or the grace
// deadline), its lease is renewed on its behalf so a standby that boots
// first does not instantly promote over a primary that is still starting.
func (r *Receiver) selfHeartbeat() {
	defer r.wg.Done()
	graceUntil := time.Now().Add(r.opts.StartupGrace)
	t := time.NewTicker(r.opts.Lease / 4)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.elector.Heartbeat(StandbyID)
			r.mu.Lock()
			saw := r.sawShip
			r.mu.Unlock()
			if !saw && time.Now().Before(graceUntil) {
				r.elector.Heartbeat(PrimaryID)
			}
		}
	}
}

// watchPromotion promotes the standby when it becomes the delegate —
// i.e. when the primary's lease (renewed only by its ship traffic after
// the startup grace) has lapsed.
func (r *Receiver) watchPromotion() {
	defer r.wg.Done()
	ch := r.elector.Watch(r.opts.Lease/4, r.stop)
	for change := range ch {
		if change.OK && change.Delegate == StandbyID {
			r.promote()
			return
		}
	}
}

// promote closes Promoted and tears the replication listener down: from
// here the journal belongs to the daemon's local write path, and any
// straggler ship from the old primary is refused.
func (r *Receiver) promote() {
	r.promoteOnce.Do(func() {
		r.counters.Add("replica_promotions", 1)
		close(r.promoted)
	})
}

func (r *Receiver) isPromoted() bool {
	select {
	case <-r.promoted:
		return true
	default:
		return false
	}
}

func (r *Receiver) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

func (r *Receiver) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		conn.Close()
	}()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	// Snapshot ships carry a full base64 store cut in one frame; allow the
	// same ceiling as a journal frame plus base64+JSON overhead.
	sc.Buffer(make([]byte, 64<<10), 96<<20)
	for sc.Scan() {
		var req wire.Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			r.counters.Add("replica_recv_bad_frames", 1)
			continue
		}
		resp := r.handle(req)
		resp.ID = req.ID
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (r *Receiver) handle(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpShipStatus:
		if r.isPromoted() {
			return wire.Response{Err: ErrPromoted.Error()}
		}
		r.elector.Heartbeat(PrimaryID)
		return wire.Response{AckSeq: r.opts.Journal.DurableSeq()}
	case wire.OpShip:
		if r.isPromoted() {
			return wire.Response{Err: ErrPromoted.Error()}
		}
		r.elector.Heartbeat(PrimaryID)
		r.mu.Lock()
		r.sawShip = true
		r.mu.Unlock()
		if err := r.absorb(req); err != nil {
			r.counters.Add("replica_recv_errors", 1)
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{AckSeq: r.opts.Journal.DurableSeq()}
	case wire.OpTracePull:
		// The standby participates in the fleet tracing plane: its
		// standby-ack spans complete a replicated write's timeline.
		resp := wire.Response{Now: time.Now().UnixNano()}
		if reg := r.opts.Obs; reg != nil {
			resp.Spans = reg.Spans.ByTrace(req.Trace)
			resp.Spans = append(resp.Spans, reg.Slow.ByTrace(req.Trace)...)
			resp.Node = reg.Node()
		}
		return resp
	default:
		return wire.Response{Err: fmt.Sprintf("replica: standby serves replication only (op %q refused until promotion)", req.Op)}
	}
}

// absorb persists one ship request and folds it into the warm image map.
// Entries stamped with an originating trace get a "standby-ack" span
// (Server = the shipping daemon's ID) covering journal append + warm
// apply — durability on the standby IS the ack the primary waits on.
func (r *Receiver) absorb(req wire.Request) error {
	start := time.Now()
	if len(req.Snap) > 0 {
		images, err := journal.DecodeImages(req.Snap)
		if err != nil {
			return fmt.Errorf("replica: shipped snapshot: %w", err)
		}
		if err := r.opts.Journal.InstallSnapshot(req.SnapSeq, images); err != nil {
			return err
		}
		r.mu.Lock()
		if req.SnapSeq > r.applied {
			r.images = images
			r.applied = req.SnapSeq
			r.sinceSnap = 0
		}
		r.mu.Unlock()
		r.counters.Add("replica_recv_snapshots", 1)
		return nil
	}
	if len(req.Entries) == 0 {
		r.counters.Add("replica_recv_heartbeats", 1)
		return nil
	}
	ents := make([]journal.Shipped, len(req.Entries))
	for i, e := range req.Entries {
		ents[i] = journal.Shipped{Seq: e.Seq, Payload: e.Payload}
	}
	// Durable first, then warm state: a crash between the two replays the
	// journal on restart, so the image map can only lag the log, never
	// lead it.
	if err := r.opts.Journal.AppendShipped(ents); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	applied := 0
	for _, e := range ents {
		if e.Seq <= r.applied {
			continue // resume overlap, already applied
		}
		ent, err := journal.DecodeEntry(e.Payload)
		if err != nil {
			// AppendShipped pre-validated every payload; reaching here
			// means memory corruption, not a protocol problem.
			return fmt.Errorf("replica: entry %d: %w", e.Seq, err)
		}
		journal.Apply(r.images, ent)
		r.applied = e.Seq
		applied++
	}
	if reg := r.opts.Obs; reg != nil {
		dur := time.Since(start)
		for i := range req.Entries {
			if tr := req.Entries[i].Trace; tr != 0 {
				reg.Spans.Add(obs.Span{
					Trace: tr, Name: "standby-ack",
					Server: req.Daemon, Start: start, Dur: dur,
				})
			}
		}
	}
	r.counters.Add("replica_recv_ships", 1)
	r.counters.Add("replica_recv_entries", int64(applied))
	r.sinceSnap += applied
	if r.opts.SnapshotEvery > 0 && r.sinceSnap >= r.opts.SnapshotEvery {
		r.sinceSnap = 0
		// Safe under r.mu: Snapshot reads the map via this closure before
		// any other goroutine can mutate it (all mutations hold r.mu).
		if err := r.opts.Journal.Snapshot(func() map[string]sharedisk.Image { return r.images }); err != nil {
			return err
		}
		r.counters.Add("replica_standby_snapshots", 1)
	}
	return nil
}
