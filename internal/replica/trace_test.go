package replica

import (
	"testing"
	"time"

	"anufs/internal/journal"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestShipCarriesTraceToStandbyAck: a traced journal append keeps its
// trace ID through log shipping — the primary records a replica-ship span
// tagged with its daemon ID, the standby a standby-ack span naming the
// originating daemon — and the standby answers trace-pull for it, so a
// fleet-stitched timeline extends to the replication tail.
func TestShipCarriesTraceToStandbyAck(t *testing.T) {
	sObs := obs.New()
	sObs.SetNode("standby")
	recv, addr := startStandby(t, t.TempDir(), ReceiverOptions{Obs: sObs})
	_ = recv

	pObs := obs.New()
	pObs.SetNode("daemon-2")
	jnl, store := openJournal(t, t.TempDir(), journal.Options{})
	defer jnl.Close()

	const trace = 424242
	im := sharedisk.Image{
		Version: 1,
		Records: map[string]sharedisk.Record{"/t": {Size: 1, Owner: "w"}},
	}
	if err := jnl.LogFlushTraced(trace, "fs00", im); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 2, 3) // untraced neighbours ship too

	ship, err := NewShipper(ShipperOptions{
		Addr: addr, Journal: jnl, Images: store.Images,
		Obs: pObs, DaemonID: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()
	waitAcked(t, ship, jnl.DurableSeq())

	var shipSpan obs.Span
	for _, s := range pObs.Spans.ByTrace(trace) {
		if s.Name == "replica-ship" {
			shipSpan = s
		}
	}
	if shipSpan.Trace != trace || shipSpan.Server != 2 {
		t.Fatalf("replica-ship span = %+v (want trace %d from daemon 2)", shipSpan, trace)
	}

	// The standby recorded the ack span and serves it over trace-pull.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)
	spans, node, now, err := c.TracePull(trace)
	if err != nil {
		t.Fatal(err)
	}
	if node != "standby" || now == 0 {
		t.Fatalf("trace-pull identity = %q, now = %d", node, now)
	}
	var ack obs.Span
	for _, s := range spans {
		if s.Name == "standby-ack" {
			ack = s
		}
	}
	if ack.Trace != trace || ack.Server != 2 {
		t.Fatalf("standby-ack span = %+v (want trace %d naming originating daemon 2)", ack, trace)
	}
	if ack.Node != "standby" {
		t.Fatalf("ack span node = %q", ack.Node)
	}
	// An unknown trace must not invent spans.
	if got, _, _, err := c.TracePull(777); err != nil || len(got) != 0 {
		t.Fatalf("unknown trace grew spans: %+v, %v", got, err)
	}
}
