// Package replica is the warm-standby path for an anufs metadata server:
// log-shipping replication of the primary's write-ahead journal to a
// standby daemon, with lease-based promotion when the primary dies.
//
// The paper's failover story (§4, §7) leans on the shared disk: "a flushed
// image is a consistent cut another server can adopt", so a replacement
// server cold-recovers from disk. That bounds durability but not
// availability — recovery replays the whole journal tail before the first
// request is served. This package closes that window: a Shipper on the
// primary tails the journal (internal/journal.Tailer) and streams sealed
// and in-progress segments to a Receiver over the ordinary wire protocol
// (ship / ship-status ops); the standby appends them to its own journal
// under the primary's sequence numbering and applies them to a warm
// in-memory store. Promotion is then a pointer swap, not a replay.
//
// Resume is sequence-based: the standby's durable sequence IS its ack, so
// after any disconnect (or standby restart — ordinary recovery rebuilds
// the ack) the shipper asks ship-status and streams from ack+1. When the
// standby has fallen behind the primary's compaction horizon the shipper
// falls back to a full snapshot cut and re-tails past it.
//
// Replication is semi-synchronous when the journal's ack gate is armed
// with Shipper.WaitAcked: an append is acknowledged once it is durable
// locally AND acked by the standby, degrading to asynchronous (with a
// counter) when the standby is down or slow rather than blocking writes.
//
// Split-brain is explicitly out of scope: promotion is decided by the
// standby's local lease on the primary (renewed by every ship request), so
// a network partition can yield two writers. The deployment must fence the
// old primary (kill it, or cut its clients) — the same assumption the
// paper makes for delegate failover.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"anufs/internal/journal"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// Election member IDs on the standby's elector: the primary (renewed by
// ship traffic) and the standby itself (self-heartbeated). Lowest live ID
// wins, so the standby is delegate exactly when the primary's lease lapsed.
const (
	PrimaryID = 0
	StandbyID = 1
)

// Defaults.
const (
	// DefaultLease is how long the standby waits after the last ship
	// request before promoting itself.
	DefaultLease = 2 * time.Second
	// DefaultHeartbeat is the shipper's idle heartbeat interval; it must be
	// well under the standby's lease so an idle-but-alive primary is never
	// mistaken for a dead one.
	DefaultHeartbeat = 500 * time.Millisecond
	// DefaultSyncTimeout bounds WaitAcked before a sync write degrades to
	// asynchronous replication.
	DefaultSyncTimeout = time.Second
	// DefaultBackoff is the reconnect delay after a failed dial or a broken
	// stream.
	DefaultBackoff = 250 * time.Millisecond

	// Per-ship batch bounds: enough to amortize the round trip, small
	// enough to keep ack latency (and therefore sync write latency) flat.
	maxShipEntries = 512
	maxShipBytes   = 1 << 20
)

// ShipperOptions parameterizes a Shipper.
type ShipperOptions struct {
	// Addr is the standby's replication listener.
	Addr string
	// Journal is the primary's open journal.
	Journal *journal.Journal
	// Images captures the primary's full store cut (e.g. Store.Images) for
	// the snapshot fallback when the standby is behind the compaction
	// horizon. Must deep-copy.
	Images func() map[string]sharedisk.Image
	// Heartbeat is the idle heartbeat interval (default DefaultHeartbeat).
	Heartbeat time.Duration
	// SyncTimeout bounds WaitAcked (default DefaultSyncTimeout).
	SyncTimeout time.Duration
	// Backoff is the reconnect delay (default DefaultBackoff).
	Backoff time.Duration
	// Obs, when set, receives the shipper's counters, lag gauge, and the
	// replica_ship_rtt_seconds / replica_replication_lag_seconds histograms
	// (all labeled peer="<Addr>"), plus "replica-ship" spans for shipped
	// entries whose journal append carried a request trace.
	Obs *obs.Registry
	// DaemonID is this primary's fleet daemon ID, stamped onto ship
	// requests and replica spans so the standby (and the fleet stitcher)
	// know which daemon originated each entry. Use -1 outside a fleet.
	DaemonID int
}

func (o ShipperOptions) withDefaults() ShipperOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.SyncTimeout <= 0 {
		o.SyncTimeout = DefaultSyncTimeout
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	return o
}

// Shipper streams the primary's journal to one standby. Start it after the
// journal is open; arm semi-synchronous replication by installing
// WaitAcked as the journal's ack gate. Safe for concurrent use.
type Shipper struct {
	opts     ShipperOptions
	counters *metrics.CounterSet
	rtt      *obs.Histogram
	lag      *obs.Histogram

	mu      sync.Mutex
	acked   uint64
	ackSig  chan struct{}
	stopped bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewShipper creates a shipper; Start begins streaming.
func NewShipper(opts ShipperOptions) (*Shipper, error) {
	if opts.Addr == "" {
		return nil, errors.New("replica: shipper needs a standby address")
	}
	if opts.Journal == nil {
		return nil, errors.New("replica: shipper needs a journal")
	}
	if opts.Images == nil {
		return nil, errors.New("replica: shipper needs an image capture func")
	}
	s := &Shipper{
		opts:     opts.withDefaults(),
		counters: metrics.NewCounterSet(),
		ackSig:   make(chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if r := s.opts.Obs; r != nil {
		// Every series carries the peer label, so a primary shipping to
		// several standbys (or a fleet scrape aggregating many primaries)
		// keeps per-peer replication lag apart — anufsctl top renders one
		// row per peer from exactly these series.
		peer := fmt.Sprintf("peer=%q", s.opts.Addr)
		s.rtt = r.Hist.Get("replica_ship_rtt_seconds", peer)
		s.lag = r.Hist.Get("replica_replication_lag_seconds", peer)
		r.AddCounters(s.counters.Snapshot)
		r.AddGauges(func() []obs.Gauge {
			durable := s.opts.Journal.DurableSeq()
			acked := s.Acked()
			lag := int64(durable) - int64(acked)
			if lag < 0 {
				lag = 0
			}
			return []obs.Gauge{
				{Name: "replica_lag_entries", Labels: peer, Value: float64(lag)},
				{Name: "replica_acked_seq", Labels: peer, Value: float64(acked)},
			}
		})
		r.AddStatus("replication", func() any {
			durable := s.opts.Journal.DurableSeq()
			acked := s.Acked()
			return map[string]any{
				"mode":        "shipping",
				"standby":     s.opts.Addr,
				"durable_seq": durable,
				"acked_seq":   acked,
				"lag_entries": int64(durable) - int64(acked),
				"degraded":    s.counters.Get("replica_sync_degraded"),
			}
		})
	} else {
		s.rtt = obs.NewHistogram()
		s.lag = obs.NewHistogram()
	}
	return s, nil
}

// Start launches the replication loop.
func (s *Shipper) Start() {
	go s.run()
}

// Stop halts replication and releases every WaitAcked waiter.
func (s *Shipper) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.mu.Lock()
		s.stopped = true
		close(s.ackSig)
		s.ackSig = make(chan struct{})
		s.mu.Unlock()
	})
	<-s.done
}

// Acked reports the highest standby-acknowledged sequence.
func (s *Shipper) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Counters exposes the shipper's counter set (also exported via Obs).
func (s *Shipper) Counters() *metrics.CounterSet { return s.counters }

// WaitAcked blocks until the standby has acknowledged seq, the configured
// SyncTimeout elapses, or the shipper stops. It always returns nil: on
// timeout the write degrades to asynchronous replication (counted in
// replica_sync_degraded) instead of failing — an unreachable standby must
// not take the primary's write path down with it. Install as the journal's
// ack gate (Journal.SetAckGate) for semi-synchronous replication.
func (s *Shipper) WaitAcked(seq uint64) error {
	start := time.Now()
	var timeout <-chan time.Time
	for {
		s.mu.Lock()
		acked, sig, stopped := s.acked, s.ackSig, s.stopped
		s.mu.Unlock()
		if acked >= seq || stopped {
			s.lag.Observe(time.Since(start))
			return nil
		}
		if timeout == nil {
			t := time.NewTimer(s.opts.SyncTimeout)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-sig:
		case <-timeout:
			s.counters.Add("replica_sync_degraded", 1)
			s.lag.Observe(time.Since(start))
			return nil
		case <-s.stop:
			return nil
		}
	}
}

// setAcked advances the ack high-water mark and wakes WaitAcked waiters.
func (s *Shipper) setAcked(seq uint64) {
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
		close(s.ackSig)
		s.ackSig = make(chan struct{})
	}
	s.mu.Unlock()
}

func (s *Shipper) run() {
	defer close(s.done)
	// Reconnects back off exponentially with jitter (shared wire.Backoff
	// policy) from the configured base, so a fleet of shippers that lost the
	// same standby does not re-dial in lockstep; a session that got as far
	// as a successful resume resets the ladder.
	backoff := wire.NewBackoff(s.opts.Backoff, 10*s.opts.Backoff)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		c, err := wire.Dial(s.opts.Addr)
		if err == nil {
			// Snapshot ships can be large; give calls a generous deadline
			// instead of the client default.
			c.SetTimeout(30 * time.Second)
			err = s.stream(c, backoff)
			c.Close()
		}
		if err != nil {
			s.counters.Add("replica_stream_errors", 1)
		}
		select {
		case <-s.stop:
			return
		case <-time.After(backoff.Next()):
			s.counters.Add("replica_reconnects", 1)
		}
	}
}

// stream runs one connection's replication session: resume from the
// standby's ack, then follow the journal until an error or Stop.
func (s *Shipper) stream(c *wire.Client, backoff *wire.Backoff) error {
	ack, err := c.ShipStatus()
	if err != nil {
		return err
	}
	backoff.Reset()
	s.setAcked(ack)
	tailer := s.opts.Journal.NewTailer(ack + 1)
	defer tailer.Close()
	hb := time.NewTicker(s.opts.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-s.stop:
			return nil
		default:
		}
		// Capture the commit signal BEFORE asking the tailer, so a commit
		// that lands between "caught up" and the wait below still wakes us.
		sig := s.opts.Journal.CommitSignal()
		ents, snapshotNeeded, err := tailer.Next(maxShipEntries, maxShipBytes)
		if err != nil {
			return err
		}
		switch {
		case snapshotNeeded:
			seq, cut := s.opts.Journal.CaptureCut(s.opts.Images)
			start := time.Now()
			ack, err := c.ShipSnapshot(seq, journal.EncodeImages(cut))
			if err != nil {
				return err
			}
			s.rtt.Observe(time.Since(start))
			s.counters.Add("replica_snapshots_shipped", 1)
			s.setAcked(ack)
			tailer.Close()
			tailer = s.opts.Journal.NewTailer(seq + 1)
		case len(ents) > 0:
			ship := make([]wire.ShipEntry, len(ents))
			var bytes int64
			for i, e := range ents {
				// Stamp each entry with the request trace that appended it
				// (0 when untraced or past the journal's trace ring), so the
				// standby's apply/ack spans join the originating timeline.
				ship[i] = wire.ShipEntry{Seq: e.Seq, Payload: e.Payload, Trace: s.opts.Journal.TraceOf(e.Seq)}
				bytes += int64(len(e.Payload))
			}
			start := time.Now()
			ack, err := c.Ship(s.opts.DaemonID, ship)
			if err != nil {
				return err
			}
			rtt := time.Since(start)
			s.rtt.ObserveTrace(rtt, firstTrace(ship))
			if s.opts.Obs != nil {
				for i := range ship {
					if ship[i].Trace == 0 {
						continue
					}
					// Server carries the originating daemon ID on replica spans.
					s.opts.Obs.Spans.Add(obs.Span{
						Trace: ship[i].Trace, Name: "replica-ship",
						Server: s.opts.DaemonID, Start: start, Dur: rtt,
					})
				}
			}
			s.counters.Add("replica_ships", 1)
			s.counters.Add("replica_shipped_entries", int64(len(ents)))
			s.counters.Add("replica_shipped_bytes", bytes)
			s.setAcked(ack)
		default:
			// Caught up: sleep until the next commit, or send an empty ship
			// as a lease-renewing heartbeat if the journal stays idle.
			select {
			case <-sig:
			case <-hb.C:
				start := time.Now()
				ack, err := c.Ship(s.opts.DaemonID, nil)
				if err != nil {
					return err
				}
				s.rtt.Observe(time.Since(start))
				s.counters.Add("replica_heartbeats", 1)
				s.setAcked(ack)
			case <-s.stop:
				return nil
			}
		}
	}
}

// firstTrace returns the first non-zero entry trace of a ship batch (the
// exemplar the rtt histogram links to).
func firstTrace(ship []wire.ShipEntry) uint64 {
	for i := range ship {
		if ship[i].Trace != 0 {
			return ship[i].Trace
		}
	}
	return 0
}

// String describes the shipper for logs.
func (s *Shipper) String() string {
	return fmt.Sprintf("replica.Shipper(%s acked=%d)", s.opts.Addr, s.Acked())
}
