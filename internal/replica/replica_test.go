package replica

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"anufs/internal/journal"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// openJournal opens (or recovers) a journal directory for tests.
func openJournal(t testing.TB, dir string, opts journal.Options) (*journal.Journal, *sharedisk.Store) {
	t.Helper()
	jnl, store, _, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatalf("open journal %s: %v", dir, err)
	}
	return jnl, store
}

// appendFlushes journals n flush entries, each a distinct one-record image
// for file set fs (version = prior+i), and returns the store-side images
// func for snapshot capture.
func appendFlushes(t testing.TB, jnl *journal.Journal, fs string, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v := uint64(from + i)
		im := sharedisk.Image{
			Version: v,
			Records: map[string]sharedisk.Record{
				fmt.Sprintf("/f%04d", v): {Size: int64(v), Owner: "w"},
			},
		}
		if err := jnl.LogFlush(fs, im); err != nil {
			t.Fatalf("LogFlush %d: %v", v, err)
		}
	}
}

// startStandby builds a receiver over its own journal dir and listens.
func startStandby(t testing.TB, dir string, opts ReceiverOptions) (*Receiver, string) {
	t.Helper()
	jnl, store := openJournal(t, dir, journal.Options{})
	opts.Journal = jnl
	opts.Images = store.Images()
	recv, err := NewReceiver(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recv.Stop()
		jnl.Close()
	})
	return recv, addr
}

// waitAcked polls until the shipper's ack reaches seq.
func waitAcked(t testing.TB, s *Shipper, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Acked() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("shipper stuck at ack %d, want %d", s.Acked(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// requireStandbyEquals checks the standby's warm state AND its recovered
// journal both match the primary's durable state.
func requireStandbyEquals(t *testing.T, primaryDir string, recv *Receiver) {
	t.Helper()
	pStore, pInfo, err := journal.Recover(primaryDir)
	if err != nil {
		t.Fatalf("recover primary: %v", err)
	}
	warm, applied := recv.State()
	if applied != pInfo.LastSeq {
		t.Fatalf("standby applied %d, primary durable %d", applied, pInfo.LastSeq)
	}
	if !reflect.DeepEqual(warm, pStore.Images()) {
		t.Fatalf("standby warm state diverged:\n standby %+v\n primary %+v", warm, pStore.Images())
	}
}

func TestCatchUpThenLiveStreaming(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()
	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	// Backlog written before the standby exists: the shipper must catch up.
	appendFlushes(t, jnl, "fs00", 1, 20)

	recv, addr := startStandby(t, sDir, ReceiverOptions{})
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()
	waitAcked(t, ship, jnl.DurableSeq())

	// Live tail: entries appended while the stream is up.
	appendFlushes(t, jnl, "fs00", 21, 20)
	waitAcked(t, ship, jnl.DurableSeq())
	requireStandbyEquals(t, pDir, recv)

	if got := ship.Counters().Get("replica_shipped_entries"); got < 41 {
		t.Fatalf("shipped %d entries, want >= 41", got)
	}
}

func TestResumeAfterShipperRestartAndStandbyRestart(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()
	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 1, 10)

	sJnl, sStore := openJournal(t, sDir, journal.Options{})
	recv, err := NewReceiver(ReceiverOptions{Journal: sJnl, Images: sStore.Images()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	waitAcked(t, ship, jnl.DurableSeq())

	// Primary-side stream break: stop the shipper, write more, restart.
	ship.Stop()
	appendFlushes(t, jnl, "fs00", 11, 10)
	ship2, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images})
	if err != nil {
		t.Fatal(err)
	}
	ship2.Start()
	waitAcked(t, ship2, jnl.DurableSeq())
	ship2.Stop()

	// Standby restart: tear the whole receiver down, recover its journal
	// from disk — the durable sequence IS the resume point.
	recv.Stop()
	if err := sJnl.Close(); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 21, 10)
	recv2, addr2 := startStandby(t, sDir, ReceiverOptions{})
	ship3, err := NewShipper(ShipperOptions{Addr: addr2, Journal: jnl, Images: store.Images})
	if err != nil {
		t.Fatal(err)
	}
	ship3.Start()
	defer ship3.Stop()
	waitAcked(t, ship3, jnl.DurableSeq())
	requireStandbyEquals(t, pDir, recv2)
}

func TestSnapshotFallbackWhenStandbyBehindCompaction(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()
	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 1, 10)
	// Compact everything into a snapshot: a standby starting from zero can
	// no longer be served from segments.
	if err := jnl.Snapshot(store.Images); err != nil {
		t.Fatal(err)
	}

	recv, addr := startStandby(t, sDir, ReceiverOptions{})
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()
	waitAcked(t, ship, jnl.DurableSeq())
	if got := ship.Counters().Get("replica_snapshots_shipped"); got == 0 {
		t.Fatal("standby caught up without a snapshot ship")
	}

	// Streaming continues past the snapshot.
	appendFlushes(t, jnl, "fs00", 11, 5)
	waitAcked(t, ship, jnl.DurableSeq())
	requireStandbyEquals(t, pDir, recv)
}

func TestSyncGateWaitsForStandbyAck(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()

	_, addr := startStandby(t, sDir, ReceiverOptions{})
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images, SyncTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()
	jnl.SetAckGate(ship.WaitAcked)

	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 1, 5)
	// Semi-sync: every acked append is already standby-durable.
	if got, want := ship.Acked(), jnl.DurableSeq(); got < want {
		t.Fatalf("append acked before standby ack: acked %d, durable %d", got, want)
	}
	if ship.Counters().Get("replica_sync_degraded") != 0 {
		t.Fatal("sync write degraded with a healthy standby")
	}
}

func TestSyncGateDegradesWhenStandbyUnreachable(t *testing.T) {
	pDir := t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()

	// No listener at this address: replication can never ack.
	ship, err := NewShipper(ShipperOptions{
		Addr: "127.0.0.1:1", Journal: jnl, Images: store.Images,
		SyncTimeout: 20 * time.Millisecond, Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()
	jnl.SetAckGate(ship.WaitAcked)

	done := make(chan error, 1)
	go func() { done <- jnl.LogCreateFileSet("fs00") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded append failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append blocked forever on an unreachable standby")
	}
	if ship.Counters().Get("replica_sync_degraded") == 0 {
		t.Fatal("degrade not counted")
	}
}

func TestPromotionOnPrimarySilence(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	jnl, store := openJournal(t, pDir, journal.Options{})
	defer jnl.Close()
	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	appendFlushes(t, jnl, "fs00", 1, 8)

	recv, addr := startStandby(t, sDir, ReceiverOptions{
		Lease:        200 * time.Millisecond,
		StartupGrace: 10 * time.Second, // primary will appear; grace irrelevant
	})
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ship.Start()
	waitAcked(t, ship, jnl.DurableSeq())

	// The primary is idle but alive: heartbeats must hold promotion off.
	select {
	case <-recv.Promoted():
		t.Fatal("standby promoted under an idle-but-heartbeating primary")
	case <-time.After(600 * time.Millisecond):
	}

	// Primary dies.
	ship.Stop()
	select {
	case <-recv.Promoted():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted after primary went silent")
	}

	// The promoted standby's state is the primary's durable state.
	requireStandbyEquals(t, pDir, recv)

	// Straggler ships from a resurrected primary are refused.
	c, err := wire.Dial(addr)
	if err == nil {
		defer c.Close()
		if _, err := c.ShipStatus(); err == nil {
			t.Fatal("promoted standby accepted ship-status")
		}
	}
}

func TestStandbyPromotesWhenPrimaryNeverAppears(t *testing.T) {
	_, sDir := t.TempDir(), t.TempDir()
	recv, _ := startStandby(t, sDir, ReceiverOptions{
		Lease:        100 * time.Millisecond,
		StartupGrace: 300 * time.Millisecond,
	})
	select {
	case <-recv.Promoted():
		// Promotion must come AFTER the startup grace, not instantly.
	case <-time.After(10 * time.Second):
		t.Fatal("lone standby never promoted")
	}
}

func TestStandbyRefusesClientOps(t *testing.T) {
	_, sDir := t.TempDir(), t.TempDir()
	_, addr := startStandby(t, sDir, ReceiverOptions{})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Owner("fs00"); err == nil {
		t.Fatal("standby served a client op before promotion")
	}
}

func BenchmarkShipThroughput(b *testing.B) {
	pDir, sDir := b.TempDir(), b.TempDir()
	jnl, store := openJournal(b, pDir, journal.Options{})
	defer jnl.Close()
	if err := jnl.LogCreateFileSet("fs00"); err != nil {
		b.Fatal(err)
	}
	_, addr := startStandby(b, sDir, ReceiverOptions{SnapshotEvery: -1})
	ship, err := NewShipper(ShipperOptions{Addr: addr, Journal: jnl, Images: store.Images})
	if err != nil {
		b.Fatal(err)
	}
	ship.Start()
	defer ship.Stop()

	b.ResetTimer()
	appendFlushes(b, jnl, "fs00", 1, b.N)
	waitAcked(b, ship, jnl.DurableSeq())
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}
