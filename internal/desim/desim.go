// Package desim is a from-scratch discrete-event simulation kernel, the
// substitute for the YACSIM toolkit the paper uses (§7). It provides a
// virtual clock, an event heap with deterministic FIFO tie-breaking, and a
// single-server FIFO station model matching the paper's "servers use a
// first-in-first-out queuing discipline".
//
// The kernel is single-threaded by design: determinism is a requirement for
// reproducing the paper's figures, so all concurrency in the simulated
// system is expressed as interleaved events, never goroutines.
package desim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in seconds.
type Time float64

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO), which makes runs
// reproducible regardless of heap internals.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Handle cancels a scheduled event.
type Handle struct{ e *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.e != nil {
		h.e.canceled = true
	}
}

// Sim is the simulation kernel. The zero value is not usable; create with
// New. Sim is not safe for concurrent use.
type Sim struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// New creates an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Pending reports the number of scheduled (possibly canceled) events.
func (s *Sim) Pending() int { return len(s.heap) }

// At schedules fn at absolute time t. Scheduling in the past panics: that
// is always a modeling bug, and silently clamping it would skew latencies.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("desim: scheduling at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return Handle{e: e}
}

// After schedules fn d seconds from now.
func (s *Sim) After(d Time, fn func()) Handle { return s.At(s.now+d, fn) }

// Step runs the next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*event)
		if e.canceled {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t by other events at t still run.
func (s *Sim) RunUntil(t Time) {
	for len(s.heap) > 0 {
		// Peek cheapest.
		e := s.heap[0]
		if e.at > t {
			break
		}
		if !s.Step() {
			break
		}
	}
	if s.now < t {
		s.now = t
	}
}

// Station is a single-server FIFO queue with a speed factor: a job carrying
// `work` seconds of service (calibrated at speed 1) occupies the station
// for work/speed seconds. This models the paper's heterogeneous servers,
// where "if the least powerful server consumes time t to complete a
// metadata request, then the most powerful consumes t/9" (§7).
//
// Service is event-driven: a job's service time is computed when it starts,
// not when it is submitted, so SetSpeed (online hardware changes, §1)
// affects every job that has not yet begun service. The discipline is
// strict FIFO: a job whose readyAt lies in the future holds the head of
// the queue (the server waits for it), matching the move protocol where a
// mid-move file set's requests queue at the new owner.
type Station struct {
	sim   *Sim
	speed float64
	queue []stationJob
	// serving marks the in-service (or head-of-line waiting) job.
	serving bool
	queued  int
	// busyTime accumulates performed service for utilization metrics.
	busyTime Time
}

type stationJob struct {
	readyAt Time
	work    Time
	// wallClock jobs (Block) take `work` seconds regardless of speed.
	wallClock bool
	done      func(start, finish Time)
}

// NewStation creates a station served at the given speed (> 0).
func NewStation(sim *Sim, speed float64) *Station {
	if speed <= 0 {
		panic("desim: station speed must be positive")
	}
	return &Station{sim: sim, speed: speed}
}

// Speed returns the station's speed factor.
func (st *Station) Speed() float64 { return st.speed }

// SetSpeed changes the speed for jobs that begin service from now on; the
// job currently in service keeps its computed finish time.
func (st *Station) SetSpeed(speed float64) {
	if speed <= 0 {
		panic("desim: station speed must be positive")
	}
	st.speed = speed
}

// QueueLen reports the number of jobs submitted but not finished.
func (st *Station) QueueLen() int { return st.queued }

// BusyTime reports the cumulative service time the station has performed.
func (st *Station) BusyTime() Time { return st.busyTime }

// Submit enqueues a job with the given work (seconds at speed 1) that
// becomes eligible to start no earlier than readyAt (use sim.Now() for
// immediately eligible). done, if non-nil, fires at completion with the
// job's start and finish times.
func (st *Station) Submit(readyAt Time, work Time, done func(start, finish Time)) {
	if work < 0 {
		panic("desim: negative work")
	}
	st.queue = append(st.queue, stationJob{readyAt: readyAt, work: work, done: done})
	st.queued++
	st.kick()
}

// Block occupies the station for the given wall-clock duration (unscaled by
// speed) behind the current backlog — e.g. a cache flush before shedding a
// file set.
func (st *Station) Block(d Time) {
	if d < 0 {
		panic("desim: negative block")
	}
	st.queue = append(st.queue, stationJob{readyAt: 0, work: d, wallClock: true})
	st.queued++
	st.kick()
}

// kick starts the head job if the station is free.
func (st *Station) kick() {
	if st.serving || len(st.queue) == 0 {
		return
	}
	j := st.queue[0]
	now := st.sim.Now()
	if j.readyAt > now {
		// FIFO head-of-line wait: the server idles until the job is ready.
		st.serving = true
		st.sim.At(j.readyAt, func() {
			st.serving = false
			st.kick()
		})
		return
	}
	st.queue = st.queue[1:]
	st.serving = true
	service := j.work
	if !j.wallClock {
		service = j.work / Time(st.speed)
	}
	st.busyTime += service
	start := now
	finish := start + service
	st.sim.At(finish, func() {
		st.serving = false
		st.queued--
		if j.done != nil {
			j.done(start, finish)
		}
		st.kick()
	})
}
