package desim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
}

func TestTiesAreFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want ascending schedule order", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1..3", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.RunUntil(10)
	if s.Now() != 10 || s.Pending() != 0 {
		t.Fatalf("after RunUntil(10): now %v pending %d", s.Now(), s.Pending())
	}
}

func TestRunUntilRunsEventsSpawnedAtBoundary(t *testing.T) {
	s := New()
	count := 0
	s.At(2, func() {
		count++
		s.At(2, func() { count++ })
	})
	s.RunUntil(2)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (event spawned at boundary must run)", count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty sim returned true")
	}
}

func TestStationFIFOService(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	var finishes []Time
	// Three jobs of 2s each, all ready at t=0: finish at 2, 4, 6.
	for i := 0; i < 3; i++ {
		st.Submit(0, 2, func(start, finish Time) { finishes = append(finishes, finish) })
	}
	s.Run()
	want := []Time{2, 4, 6}
	for i, f := range finishes {
		if f != want[i] {
			t.Fatalf("finishes %v, want %v", finishes, want)
		}
	}
	if st.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", st.QueueLen())
	}
}

func TestStationSpeedScalesService(t *testing.T) {
	s := New()
	fast := NewStation(s, 9)
	slow := NewStation(s, 1)
	var fastFinish, slowFinish Time
	fast.Submit(0, 9, func(_, f Time) { fastFinish = f })
	slow.Submit(0, 9, func(_, f Time) { slowFinish = f })
	s.Run()
	if fastFinish != 1 || slowFinish != 9 {
		t.Fatalf("fast=%v slow=%v, want 1 and 9 (speed ratio 9, paper §7)", fastFinish, slowFinish)
	}
}

func TestStationReadyAtDelaysStart(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	var start Time
	st.Submit(5, 1, func(st, _ Time) { start = st })
	s.Run()
	if start != 5 {
		t.Fatalf("start %v, want 5 (job not ready before readyAt)", start)
	}
}

func TestStationQueuesBehindBacklog(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	st.Submit(0, 10, nil)
	var start Time
	st.Submit(0, 1, func(b, _ Time) { start = b })
	s.Run()
	if start != 10 {
		t.Fatalf("second job started at %v, want 10 (FIFO behind backlog)", start)
	}
}

func TestStationBlock(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	st.Submit(0, 3, nil)
	st.Block(5) // flush occupies 3..8
	var start Time
	st.Submit(0, 1, func(b, _ Time) { start = b })
	s.Run()
	if start != 8 {
		t.Fatalf("job after block started %v, want 8", start)
	}
}

func TestStationBusyTime(t *testing.T) {
	s := New()
	st := NewStation(s, 2)
	st.Submit(0, 4, nil) // 2s of service
	st.Block(3)          // wall-clock, unscaled
	s.Run()
	if st.BusyTime() != 5 {
		t.Fatalf("BusyTime %v, want 5", st.BusyTime())
	}
}

func TestStationLateSubmitAfterIdle(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	st.Submit(0, 1, nil)
	var start Time
	s.At(100, func() {
		st.Submit(s.Now(), 1, func(b, _ Time) { start = b })
	})
	s.Run()
	if start != 100 {
		t.Fatalf("start %v, want 100 (station idle, no phantom backlog)", start)
	}
}

func TestStationPanics(t *testing.T) {
	s := New()
	for name, fn := range map[string]func(){
		"zero speed":    func() { NewStation(s, 0) },
		"neg setspeed":  func() { NewStation(s, 1).SetSpeed(-1) },
		"negative work": func() { NewStation(s, 1).Submit(0, -1, nil) },
		"neg block":     func() { NewStation(s, 1).Block(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetSpeedAffectsNotYetStartedJobs(t *testing.T) {
	// An upgrade mid-run speeds up every job that has not begun service —
	// including already-queued backlog (the §1 online-upgrade semantics).
	s := New()
	st := NewStation(s, 1)
	var f1, f2, f3 Time
	st.Submit(0, 4, func(_, f Time) { f1 = f }) // starts at 0, speed 1 → 4
	st.Submit(0, 4, func(_, f Time) { f2 = f }) // queued
	st.Submit(0, 4, func(_, f Time) { f3 = f }) // queued
	s.At(1, func() { st.SetSpeed(4) })          // upgrade while job 1 in service
	s.Run()
	// Job 1 keeps its finish (in service); jobs 2 and 3 run at speed 4.
	if f1 != 4 || f2 != 5 || f3 != 6 {
		t.Fatalf("finishes %v, %v, %v; want 4, 5, 6", f1, f2, f3)
	}
}

// Deterministic queueing sanity: D/D/1 with arrival rate < service rate has
// zero queueing delay after the first job.
func TestDD1NoQueueing(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	const service, gap = 1.0, 2.0
	var worstWait Time
	for i := 0; i < 50; i++ {
		arrive := Time(float64(i) * gap)
		s.At(arrive, func() {
			st.Submit(arrive, service, func(begin, _ Time) {
				if w := begin - arrive; w > worstWait {
					worstWait = w
				}
			})
		})
	}
	s.Run()
	if worstWait > 1e-12 {
		t.Fatalf("worst wait %v in underloaded D/D/1, want 0", worstWait)
	}
}

// Saturated queue: arrivals at rate 1, service 2s → latency of job k grows
// linearly; verify the closed form finish_k = 2(k+1).
func TestDD1Saturated(t *testing.T) {
	s := New()
	st := NewStation(s, 1)
	var finishes []Time
	for i := 0; i < 20; i++ {
		arrive := Time(i)
		s.At(arrive, func() {
			st.Submit(arrive, 2, func(_, f Time) { finishes = append(finishes, f) })
		})
	}
	s.Run()
	for k, f := range finishes {
		want := Time(2 * (k + 1))
		if math.Abs(float64(f-want)) > 1e-9 {
			t.Fatalf("job %d finished %v, want %v", k, f, want)
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		s.Run()
	}
}

func BenchmarkStationSubmit(b *testing.B) {
	s := New()
	st := NewStation(s, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(s.Now(), 0.001, nil)
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}
