package desim

import (
	"math"
	"testing"

	"anufs/internal/rng"
)

// The station is the queueing heart of the simulator; validate it against
// closed-form queueing theory so the figures rest on verified physics.

// M/D/1: Poisson arrivals (rate λ), deterministic service s, utilization
// ρ = λs. Pollaczek–Khinchine gives mean queueing delay Wq = ρs / (2(1-ρ)).
func TestMD1AgainstPollaczekKhinchine(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		const service = 1.0
		lambda := rho / service
		sim := New()
		st := NewStation(sim, 1)
		r := rng.NewStream(uint64(1000 * rho))
		const jobs = 200000
		var totalWait float64
		at := Time(0)
		for i := 0; i < jobs; i++ {
			at += Time(r.Exp(lambda))
			arrive := at
			sim.At(arrive, func() {
				st.Submit(arrive, service, func(begin, _ Time) {
					totalWait += float64(begin - arrive)
				})
			})
		}
		sim.Run()
		got := totalWait / jobs
		want := rho * service / (2 * (1 - rho))
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Fatalf("ρ=%v: mean wait %v, Pollaczek–Khinchine predicts %v", rho, got, want)
		}
	}
}

// M/M/1: exponential service with mean s. Mean sojourn T = s / (1-ρ).
func TestMM1Sojourn(t *testing.T) {
	const rho, service = 0.7, 1.0
	lambda := rho / service
	sim := New()
	st := NewStation(sim, 1)
	r := rng.NewStream(99)
	const jobs = 200000
	var totalSojourn float64
	at := Time(0)
	for i := 0; i < jobs; i++ {
		at += Time(r.Exp(lambda))
		arrive := at
		work := Time(r.Exp(1 / service))
		sim.At(arrive, func() {
			st.Submit(arrive, work, func(_, finish Time) {
				totalSojourn += float64(finish - arrive)
			})
		})
	}
	sim.Run()
	got := totalSojourn / jobs
	want := service / (1 - rho)
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("M/M/1 sojourn %v, theory %v", got, want)
	}
}

// Speed scaling: an M/D/1 at speed k with work w behaves exactly like an
// M/D/1 at speed 1 with work w/k — the substitution the heterogeneous
// cluster model relies on.
func TestSpeedEquivalence(t *testing.T) {
	run := func(speed float64, work Time) float64 {
		sim := New()
		st := NewStation(sim, speed)
		r := rng.NewStream(7)
		var total float64
		const jobs = 50000
		at := Time(0)
		for i := 0; i < jobs; i++ {
			at += Time(r.Exp(2.0))
			arrive := at
			sim.At(arrive, func() {
				st.Submit(arrive, work, func(_, finish Time) {
					total += float64(finish - arrive)
				})
			})
		}
		sim.Run()
		return total / jobs
	}
	fast := run(4, 1.0)  // speed 4, work 1 → service 0.25
	slow := run(1, 0.25) // speed 1, work 0.25 → service 0.25
	if math.Abs(fast-slow) > 1e-9 {
		t.Fatalf("speed scaling not exact: %v vs %v", fast, slow)
	}
}

// Utilization accounting: BusyTime/elapsed must equal the offered load.
func TestUtilizationAccounting(t *testing.T) {
	sim := New()
	st := NewStation(sim, 2)
	r := rng.NewStream(13)
	const jobs, lambda, work = 20000, 0.5, 1.0 // service = 0.5 at speed 2 → ρ = 0.25
	at := Time(0)
	for i := 0; i < jobs; i++ {
		at += Time(r.Exp(lambda))
		arrive := at
		sim.At(arrive, func() { st.Submit(arrive, work, nil) })
	}
	sim.Run()
	util := float64(st.BusyTime()) / float64(sim.Now())
	if math.Abs(util-0.25) > 0.02 {
		t.Fatalf("utilization %v, want ~0.25", util)
	}
}
