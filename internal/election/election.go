// Package election implements the delegate election the paper's protocol
// assumes (§4): servers report latencies to "an elected delegate server",
// and "if the delegate fails, the next elected delegate runs the same
// protocol with the same information" — which works because the update
// algorithm is stateless.
//
// The election is lease-based: members heartbeat to stay candidates, and
// the live member with the lowest ID is the delegate. A member that stops
// heartbeating (crash, partition) loses candidacy when its lease lapses,
// and the next-lowest live member takes over. Deterministic lowest-ID
// selection means every observer with the same membership view elects the
// same delegate without additional rounds.
package election

import (
	"sort"
	"sync"
	"time"
)

// Elector tracks candidate leases and answers "who is the delegate?".
// Safe for concurrent use.
type Elector struct {
	lease time.Duration
	now   func() time.Time

	mu     sync.Mutex
	expiry map[int]time.Time
	// maxNow is the furthest clock reading observed; nowLocked clamps the
	// clock to it so a backwards step (NTP slew, VM migration) can never
	// resurrect a member whose lease was already observed as lapsed.
	maxNow time.Time
	// epoch increments whenever the elected delegate changes, so observers
	// can detect failovers (and reset divergent-tuning state, §6).
	epoch        uint64
	lastDelegate int
	hasDelegate  bool
}

// New creates an elector. lease is how long a candidacy survives without a
// heartbeat; now is the clock (nil for time.Now).
func New(lease time.Duration, now func() time.Time) *Elector {
	if lease <= 0 {
		panic("election: lease must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &Elector{lease: lease, now: now, expiry: map[int]time.Time{}}
}

// nowLocked reads the clock, clamped to be monotonically non-decreasing
// across every elector operation. Without the clamp, a delegate whose
// lease lapsed between a Heartbeat and the reap could be returned again
// when the wall clock steps backwards — the expiry it left behind would
// sit in the future once more. Callers hold e.mu.
func (e *Elector) nowLocked() time.Time {
	t := e.now()
	if t.Before(e.maxNow) {
		return e.maxNow
	}
	e.maxNow = t
	return t
}

// Heartbeat joins or renews a member's candidacy.
func (e *Elector) Heartbeat(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expiry[id] = e.nowLocked().Add(e.lease)
}

// Leave withdraws a member immediately (graceful decommission).
func (e *Elector) Leave(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.expiry, id)
}

// reapLocked drops lapsed candidacies. Callers hold e.mu.
func (e *Elector) reapLocked() {
	now := e.nowLocked()
	for id, exp := range e.expiry {
		if now.After(exp) {
			delete(e.expiry, id)
		}
	}
}

// Delegate returns the current delegate (lowest live ID) and an epoch that
// increments on every delegate change. ok is false when no member is live.
func (e *Elector) Delegate() (id int, epoch uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reapLocked()
	best, found := 0, false
	for m := range e.expiry {
		if !found || m < best {
			best, found = m, true
		}
	}
	if !found {
		e.hasDelegate = false
		return 0, e.epoch, false
	}
	if !e.hasDelegate || e.lastDelegate != best {
		e.epoch++
		e.lastDelegate = best
		e.hasDelegate = true
	}
	return best, e.epoch, true
}

// Change is one delegate transition observed by Watch.
type Change struct {
	// Delegate is the new delegate's ID (meaningless when OK is false).
	Delegate int
	// Epoch is the election epoch after the transition.
	Epoch uint64
	// OK is false when no member is live.
	OK bool
}

// Watch polls the election every interval and delivers a Change whenever
// the delegate (or liveness) differs from the last delivery, starting with
// the current state — the promotion hook: a standby watches for the epoch
// where it becomes the delegate and takes over. The channel is closed when
// stop closes. Slow consumers miss intermediate transitions, never the
// latest: delivery retries with the freshest state each tick.
func (e *Elector) Watch(interval time.Duration, stop <-chan struct{}) <-chan Change {
	if interval <= 0 {
		interval = e.lease / 4
	}
	ch := make(chan Change, 1)
	go func() {
		defer close(ch)
		t := time.NewTicker(interval)
		defer t.Stop()
		var last Change
		have := false
		for {
			id, epoch, ok := e.Delegate()
			cur := Change{Delegate: id, Epoch: epoch, OK: ok}
			if !have || cur != last {
				select {
				case ch <- cur:
					last, have = cur, true
				default:
					// Consumer still holds the previous undelivered change;
					// drop it and try again with fresher state next tick.
					select {
					case <-ch:
					default:
					}
				}
			}
			select {
			case <-t.C:
			case <-stop:
				return
			}
		}
	}()
	return ch
}

// Members lists the live members, ascending.
func (e *Elector) Members() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reapLocked()
	out := make([]int, 0, len(e.expiry))
	for id := range e.expiry {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
