// Package election implements the delegate election the paper's protocol
// assumes (§4): servers report latencies to "an elected delegate server",
// and "if the delegate fails, the next elected delegate runs the same
// protocol with the same information" — which works because the update
// algorithm is stateless.
//
// The election is lease-based: members heartbeat to stay candidates, and
// the live member with the lowest ID is the delegate. A member that stops
// heartbeating (crash, partition) loses candidacy when its lease lapses,
// and the next-lowest live member takes over. Deterministic lowest-ID
// selection means every observer with the same membership view elects the
// same delegate without additional rounds.
package election

import (
	"sort"
	"sync"
	"time"
)

// Elector tracks candidate leases and answers "who is the delegate?".
// Safe for concurrent use.
type Elector struct {
	lease time.Duration
	now   func() time.Time

	mu     sync.Mutex
	expiry map[int]time.Time
	// epoch increments whenever the elected delegate changes, so observers
	// can detect failovers (and reset divergent-tuning state, §6).
	epoch        uint64
	lastDelegate int
	hasDelegate  bool
}

// New creates an elector. lease is how long a candidacy survives without a
// heartbeat; now is the clock (nil for time.Now).
func New(lease time.Duration, now func() time.Time) *Elector {
	if lease <= 0 {
		panic("election: lease must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &Elector{lease: lease, now: now, expiry: map[int]time.Time{}}
}

// Heartbeat joins or renews a member's candidacy.
func (e *Elector) Heartbeat(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expiry[id] = e.now().Add(e.lease)
}

// Leave withdraws a member immediately (graceful decommission).
func (e *Elector) Leave(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.expiry, id)
}

// reapLocked drops lapsed candidacies. Callers hold e.mu.
func (e *Elector) reapLocked() {
	now := e.now()
	for id, exp := range e.expiry {
		if now.After(exp) {
			delete(e.expiry, id)
		}
	}
}

// Delegate returns the current delegate (lowest live ID) and an epoch that
// increments on every delegate change. ok is false when no member is live.
func (e *Elector) Delegate() (id int, epoch uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reapLocked()
	best, found := 0, false
	for m := range e.expiry {
		if !found || m < best {
			best, found = m, true
		}
	}
	if !found {
		e.hasDelegate = false
		return 0, e.epoch, false
	}
	if !e.hasDelegate || e.lastDelegate != best {
		e.epoch++
		e.lastDelegate = best
		e.hasDelegate = true
	}
	return best, e.epoch, true
}

// Members lists the live members, ascending.
func (e *Elector) Members() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reapLocked()
	out := make([]int, 0, len(e.expiry))
	for id := range e.expiry {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
