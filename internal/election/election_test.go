package election

import (
	"sync"
	"testing"
	"time"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newElector() (*Elector, *clock) {
	c := &clock{t: time.Unix(0, 0)}
	return New(10*time.Second, c.now), c
}

func TestLowestLiveIDWins(t *testing.T) {
	e, _ := newElector()
	for _, id := range []int{4, 2, 7} {
		e.Heartbeat(id)
	}
	id, _, ok := e.Delegate()
	if !ok || id != 2 {
		t.Fatalf("Delegate = %d, %v; want 2", id, ok)
	}
}

func TestNoMembers(t *testing.T) {
	e, _ := newElector()
	if _, _, ok := e.Delegate(); ok {
		t.Fatal("delegate elected with no members")
	}
}

func TestFailoverOnLeaseLapse(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(0)
	e.Heartbeat(1)
	id, epoch0, _ := e.Delegate()
	if id != 0 {
		t.Fatalf("initial delegate %d", id)
	}
	// Server 1 keeps heartbeating; server 0 goes silent.
	clk.advance(6 * time.Second)
	e.Heartbeat(1)
	clk.advance(6 * time.Second) // 0's lease (10s) lapsed
	id, epoch1, ok := e.Delegate()
	if !ok || id != 1 {
		t.Fatalf("failover delegate = %d, %v; want 1", id, ok)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance on failover: %d -> %d", epoch0, epoch1)
	}
}

func TestLeaveTriggersImmediateFailover(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(0)
	e.Heartbeat(5)
	_, epoch0, _ := e.Delegate()
	e.Leave(0)
	id, epoch1, ok := e.Delegate()
	if !ok || id != 5 || epoch1 <= epoch0 {
		t.Fatalf("after Leave: delegate %d epoch %d->%d ok=%v", id, epoch0, epoch1, ok)
	}
}

func TestEpochStableWithoutChange(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(3)
	_, e1, _ := e.Delegate()
	_, e2, _ := e.Delegate()
	if e1 != e2 {
		t.Fatalf("epoch changed without a delegate change: %d -> %d", e1, e2)
	}
}

func TestRejoinLowerIDTakesOver(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(5)
	if id, _, _ := e.Delegate(); id != 5 {
		t.Fatal("setup")
	}
	e.Heartbeat(1)
	id, _, _ := e.Delegate()
	if id != 1 {
		t.Fatalf("lower ID rejoined but delegate is %d", id)
	}
}

func TestMembersSortedAndReaped(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(9)
	e.Heartbeat(3)
	clk.advance(11 * time.Second)
	e.Heartbeat(6)
	got := e.Members()
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("Members = %v, want [6] (others lapsed)", got)
	}
}

func TestNewPanicsOnBadLease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lease accepted")
		}
	}()
	New(0, nil)
}

func TestConcurrentHeartbeats(t *testing.T) {
	e := New(time.Minute, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Heartbeat(g)
				e.Delegate()
			}
		}()
	}
	wg.Wait()
	if id, _, ok := e.Delegate(); !ok || id != 0 {
		t.Fatalf("delegate %d, %v; want 0", id, ok)
	}
}

func (c *clock) stepBack(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(-d)
}

// TestBackwardsClockCannotResurrectLapsedLease is the regression test for
// the clock clamp: a wall-clock step backwards (NTP, VM migration) between
// electing the failover delegate and the next Delegate() call must not put
// the dead member's stale expiry back in the future and flap the election
// back to it — that reopens the failover window the standby just closed.
func TestBackwardsClockCannotResurrectLapsedLease(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(0) // expiry at t=10s
	clk.advance(6 * time.Second)
	e.Heartbeat(1) // expiry at t=16s
	clk.advance(6 * time.Second)
	// t=12s: 0's lease lapsed; 1 takes over.
	id, epoch1, ok := e.Delegate()
	if !ok || id != 1 {
		t.Fatalf("failover delegate = %d, %v; want 1", id, ok)
	}
	// Wall clock steps back to t=5s, before 0's original expiry. Without
	// the monotonic clamp, 0's reaped candidacy is gone but a heartbeat
	// stamped with the rewound clock would under-expire — and worse, if the
	// reap had not yet run, 0 would look live again. Reconstruct that
	// pre-reap state: heartbeat 0 before the reap observes the lapse.
	e2, clk2 := newElector()
	e2.Heartbeat(0)
	clk2.advance(6 * time.Second)
	e2.Heartbeat(1)
	clk2.advance(6 * time.Second)
	e2.Heartbeat(1) // live member's renewal advances observed time to t=12s
	// No Delegate() call yet — 0's stale expiry (t=10s) is still in the
	// map, unreaped. Clock rewinds to t=5s, putting that expiry back "in
	// the future" by the wall clock; the clamp must keep "now" at t=12s.
	clk2.stepBack(7 * time.Second)
	id, _, ok = e2.Delegate()
	if !ok || id != 1 {
		t.Fatalf("after backwards clock step: delegate = %d, %v; want 1 (0's lease lapsed at the clamped clock)", id, ok)
	}
	// And on the first elector, the already-elected standby must stay
	// elected at the rewound clock.
	clk.stepBack(7 * time.Second)
	id, epoch2, ok := e.Delegate()
	if !ok || id != 1 || epoch2 != epoch1 {
		t.Fatalf("after backwards clock step: delegate = %d epoch %d->%d, %v; want stable 1", id, epoch1, epoch2, ok)
	}
}

// TestBackwardsClockLeaseStillRenewable checks the clamp does not wedge the
// clock: heartbeats after a backwards step still extend leases relative to
// the clamped time.
func TestBackwardsClockLeaseStillRenewable(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(3)
	clk.advance(8 * time.Second)
	e.Delegate()                  // elector observes t=8s; clamp now holds it
	clk.stepBack(5 * time.Second) // wall clock rewinds to t=3s
	e.Heartbeat(3)                // expiry = clamped 8s + 10s = 18s
	clk.advance(12 * time.Second) // wall t=15s < 18s
	if _, _, ok := e.Delegate(); !ok {
		t.Fatal("renewed lease lapsed under clamped clock")
	}
}

// TestWatchDeliversTransitions drives the promotion hook: Watch emits the
// initial state, then a Change when the delegate fails over.
func TestWatchDeliversTransitions(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(0)
	e.Heartbeat(1)
	e.Delegate() // settle epoch
	stop := make(chan struct{})
	defer close(stop)
	ch := e.Watch(time.Millisecond, stop)

	want := func(id int) Change {
		t.Helper()
		select {
		case c, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed early")
			}
			if !c.OK || c.Delegate != id {
				t.Fatalf("watch delivered %+v, want delegate %d", c, id)
			}
			return c
		case <-time.After(5 * time.Second):
			t.Fatalf("no watch delivery for delegate %d", id)
		}
		panic("unreachable")
	}

	first := want(0)
	clk.advance(6 * time.Second)
	e.Heartbeat(1)
	clk.advance(6 * time.Second) // 0 lapses; 1 is next
	second := want(1)
	if second.Epoch <= first.Epoch {
		t.Fatalf("epoch did not advance across watched failover: %d -> %d", first.Epoch, second.Epoch)
	}
}

// TestWatchClosesOnStop verifies stop tears the watcher down.
func TestWatchClosesOnStop(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(0)
	stop := make(chan struct{})
	ch := e.Watch(time.Millisecond, stop)
	<-ch // initial state
	close(stop)
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}
