package election

import (
	"sync"
	"testing"
	"time"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newElector() (*Elector, *clock) {
	c := &clock{t: time.Unix(0, 0)}
	return New(10*time.Second, c.now), c
}

func TestLowestLiveIDWins(t *testing.T) {
	e, _ := newElector()
	for _, id := range []int{4, 2, 7} {
		e.Heartbeat(id)
	}
	id, _, ok := e.Delegate()
	if !ok || id != 2 {
		t.Fatalf("Delegate = %d, %v; want 2", id, ok)
	}
}

func TestNoMembers(t *testing.T) {
	e, _ := newElector()
	if _, _, ok := e.Delegate(); ok {
		t.Fatal("delegate elected with no members")
	}
}

func TestFailoverOnLeaseLapse(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(0)
	e.Heartbeat(1)
	id, epoch0, _ := e.Delegate()
	if id != 0 {
		t.Fatalf("initial delegate %d", id)
	}
	// Server 1 keeps heartbeating; server 0 goes silent.
	clk.advance(6 * time.Second)
	e.Heartbeat(1)
	clk.advance(6 * time.Second) // 0's lease (10s) lapsed
	id, epoch1, ok := e.Delegate()
	if !ok || id != 1 {
		t.Fatalf("failover delegate = %d, %v; want 1", id, ok)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance on failover: %d -> %d", epoch0, epoch1)
	}
}

func TestLeaveTriggersImmediateFailover(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(0)
	e.Heartbeat(5)
	_, epoch0, _ := e.Delegate()
	e.Leave(0)
	id, epoch1, ok := e.Delegate()
	if !ok || id != 5 || epoch1 <= epoch0 {
		t.Fatalf("after Leave: delegate %d epoch %d->%d ok=%v", id, epoch0, epoch1, ok)
	}
}

func TestEpochStableWithoutChange(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(3)
	_, e1, _ := e.Delegate()
	_, e2, _ := e.Delegate()
	if e1 != e2 {
		t.Fatalf("epoch changed without a delegate change: %d -> %d", e1, e2)
	}
}

func TestRejoinLowerIDTakesOver(t *testing.T) {
	e, _ := newElector()
	e.Heartbeat(5)
	if id, _, _ := e.Delegate(); id != 5 {
		t.Fatal("setup")
	}
	e.Heartbeat(1)
	id, _, _ := e.Delegate()
	if id != 1 {
		t.Fatalf("lower ID rejoined but delegate is %d", id)
	}
}

func TestMembersSortedAndReaped(t *testing.T) {
	e, clk := newElector()
	e.Heartbeat(9)
	e.Heartbeat(3)
	clk.advance(11 * time.Second)
	e.Heartbeat(6)
	got := e.Members()
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("Members = %v, want [6] (others lapsed)", got)
	}
}

func TestNewPanicsOnBadLease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lease accepted")
		}
	}()
	New(0, nil)
}

func TestConcurrentHeartbeats(t *testing.T) {
	e := New(time.Minute, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Heartbeat(g)
				e.Delegate()
			}
		}()
	}
	wg.Wait()
	if id, _, ok := e.Delegate(); !ok || id != 0 {
		t.Fatalf("delegate %d, %v; want 0", id, ok)
	}
}
