// Package plot renders the experiment output: CSV files and gnuplot scripts
// matching the paper's figure format (per-server latency vs. time), plus an
// ASCII chart for quick terminal inspection.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"anufs/internal/metrics"
)

// WriteCSV emits a latency series as CSV: one row per window with the time
// in minutes and one column of mean latency (milliseconds) per server —
// exactly the data behind a panel of Figures 6–11.
func WriteCSV(w io.Writer, s *metrics.Series) error {
	servers := s.Servers()
	cols := make([]string, 0, len(servers)+1)
	cols = append(cols, "time_min")
	for _, id := range servers {
		cols = append(cols, fmt.Sprintf("server%d_ms", id))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for win := 0; win < s.Windows(); win++ {
		row := make([]string, 0, len(servers)+1)
		// Stamp each window at its end, like the paper's sampled log.
		tMin := float64(win+1) * s.Window() / 60
		row = append(row, fmt.Sprintf("%.2f", tMin))
		for _, id := range servers {
			row = append(row, fmt.Sprintf("%.3f", s.Mean(id, win)*1000))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteGnuplot emits a gnuplot script that renders the CSV produced by
// WriteCSV in the paper's style (latency in ms vs. time in minutes, one
// line per server).
func WriteGnuplot(w io.Writer, title, csvPath, outPath string, servers []int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "set terminal pngcairo size 800,500\n")
	fmt.Fprintf(&b, "set output %q\n", outPath)
	fmt.Fprintf(&b, "set title %q\n", title)
	fmt.Fprintf(&b, "set xlabel \"Time (m)\"\n")
	fmt.Fprintf(&b, "set ylabel \"Latency (ms)\"\n")
	fmt.Fprintf(&b, "set datafile separator \",\"\n")
	fmt.Fprintf(&b, "set key top left\n")
	fmt.Fprintf(&b, "plot ")
	for i, id := range servers {
		if i > 0 {
			fmt.Fprintf(&b, ", \\\n     ")
		}
		fmt.Fprintf(&b, "%q using 1:%d with linespoints title \"server %d\"", csvPath, i+2, id)
	}
	fmt.Fprintln(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

// ASCII renders the series as a terminal line chart of the given size.
// Each server gets a distinct digit marker; overlapping points show the
// later server. The result mirrors the shape of the paper's figures well
// enough to eyeball convergence and oscillation.
func ASCII(s *metrics.Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	servers := s.Servers()
	wins := s.Windows()
	if wins == 0 || len(servers) == 0 {
		return "(no data)\n"
	}
	maxMs := s.MaxMean() * 1000
	if maxMs <= 0 {
		maxMs = 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, id := range servers {
		marker := rune('0' + si%10)
		for win := 0; win < wins; win++ {
			x := 0
			if wins > 1 {
				x = win * (width - 1) / (wins - 1)
			}
			v := s.Mean(id, win) * 1000
			y := int(math.Round(v / maxMs * float64(height-1)))
			if y > height-1 {
				y = height - 1
			}
			row := height - 1 - y
			grid[row][x] = marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.1f ms ┤%s\n", maxMs, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%11s ┤%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.1f ms └%s\n", 0.0, strings.Repeat("─", width))
	durMin := float64(wins) * s.Window() / 60
	fmt.Fprintf(&b, "%12s 0%smin %.0f\n", "", strings.Repeat(" ", width-8), durMin)
	legend := make([]string, 0, len(servers))
	for si, id := range servers {
		legend = append(legend, fmt.Sprintf("%d=server%d", si%10, id))
	}
	fmt.Fprintf(&b, "%12s %s\n", "", strings.Join(legend, " "))
	return b.String()
}

// SummaryTable renders rows of per-policy summary statistics as an aligned
// text table, the form EXPERIMENTS.md embeds.
type SummaryRow struct {
	Label     string
	Summary   metrics.Summary
	Moves     int
	ExtraCols map[string]string
}

// WriteSummaryTable emits the rows as a Markdown table. Extra columns are
// merged across rows and sorted by name.
func WriteSummaryTable(w io.Writer, rows []SummaryRow) error {
	extraNames := map[string]bool{}
	for _, r := range rows {
		for k := range r.ExtraCols {
			extraNames[k] = true
		}
	}
	extras := make([]string, 0, len(extraNames))
	for k := range extraNames {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	header := []string{"policy", "mean latency (ms)", "steady mean (ms)", "max window (ms)", "steady CoV", "moves"}
	header = append(header, extras...)
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, r := range rows {
		cells := []string{
			r.Label,
			fmt.Sprintf("%.2f", r.Summary.OverallMeanAll*1000),
			fmt.Sprintf("%.2f", r.Summary.SteadyMean*1000),
			fmt.Sprintf("%.2f", r.Summary.MaxMean*1000),
			fmt.Sprintf("%.3f", r.Summary.SteadyCoV),
			fmt.Sprintf("%d", r.Moves),
		}
		for _, k := range extras {
			cells = append(cells, r.ExtraCols[k])
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}
