package plot

import (
	"bytes"
	"strings"
	"testing"

	"anufs/internal/metrics"
)

func sampleSeries() *metrics.Series {
	c := metrics.NewCollector(60)
	c.Observe(0, 30, 0.010)
	c.Observe(1, 30, 0.020)
	c.Observe(0, 90, 0.015)
	c.Observe(1, 90, 0.005)
	return c.Series(2)
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header+2", len(lines))
	}
	if lines[0] != "time_min,server0_ms,server1_ms" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.00,10.000,20.000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "2.00,15.000,5.000") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteGnuplot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGnuplot(&buf, "Fig 6: ANU", "fig6.csv", "fig6.png", []int{0, 1, 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`set output "fig6.png"`,
		`set title "Fig 6: ANU"`,
		`"fig6.csv" using 1:2`,
		`using 1:4 with linespoints title "server 4"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("gnuplot script missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIContainsMarkersAndAxis(t *testing.T) {
	out := ASCII(sampleSeries(), 40, 10)
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "ms") || !strings.Contains(out, "min") {
		t.Fatalf("axes missing:\n%s", out)
	}
	if !strings.Contains(out, "0=server0 1=server1") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestASCIIEmptySeries(t *testing.T) {
	s := metrics.NewCollector(60).Series(0)
	if got := ASCII(s, 40, 10); got != "(no data)\n" {
		t.Fatalf("empty ASCII = %q", got)
	}
}

func TestASCIIClampsTinyDimensions(t *testing.T) {
	out := ASCII(sampleSeries(), 1, 1)
	if len(out) == 0 {
		t.Fatal("no output for tiny dimensions")
	}
}

func TestWriteSummaryTable(t *testing.T) {
	var buf bytes.Buffer
	rows := []SummaryRow{
		{Label: "anu", Summary: metrics.Summary{SteadyCoV: 0.2, MaxMean: 0.08, OverallMeanAll: 0.02, SteadyMean: 0.018}, Moves: 12,
			ExtraCols: map[string]string{"probes": "2.0"}},
		{Label: "prescient", Summary: metrics.Summary{SteadyCoV: 0.1, MaxMean: 0.05, OverallMeanAll: 0.015, SteadyMean: 0.014}, Moves: 3},
	}
	if err := WriteSummaryTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| policy |", "| anu | 20.00 | 18.00 | 80.00 | 0.200 | 12 | 2.0 |", "| prescient | 15.00 | 14.00 | 50.00 | 0.100 | 3 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
