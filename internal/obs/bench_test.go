package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve is the hot-path budget benchmark: Observe sits
// on every request in the wire server, every completion in the live owner
// queues, and every journal batch, so it must stay well under 100ns/op
// (CI gates on this via TestObserveOverheadBudget).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	d := 2 * time.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

// BenchmarkHistogramObserveParallel measures the contended case: every
// worker hammers the same three atomics.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Millisecond
		for pb.Next() {
			h.Observe(d)
			d += 17 * time.Microsecond
		}
	})
}

// BenchmarkQuantile measures the read side over a populated histogram.
func BenchmarkQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

// BenchmarkSpanRingAdd measures trace recording overhead.
func BenchmarkSpanRingAdd(b *testing.B) {
	r := NewSpanRing(8192)
	s := Span{Trace: 1, Name: "queue-wait", Op: "stat", FileSet: "vol00", Server: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(s)
	}
}

// TestObserveOverheadBudget enforces the <100ns/op acceptance bound on the
// histogram hot path. Skipped under the race detector (atomics cost ~10x
// there) and -short; CI runs it in the dedicated bench job.
func TestObserveOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates atomic ops")
	}
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Best of three rounds, to shrug off scheduler noise on shared CI.
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		res := testing.Benchmark(BenchmarkHistogramObserve)
		if ns := time.Duration(res.NsPerOp()); ns < best {
			best = ns
		}
	}
	if best >= 100*time.Nanosecond {
		t.Fatalf("histogram Observe = %v/op, budget is <100ns", best)
	}
}
