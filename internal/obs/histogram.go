package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram. Buckets are log-linear (HdrHistogram
// style): subCount linear sub-buckets per power of two of nanoseconds, so
// any recorded duration lands in a bucket whose width is at most 1/subCount
// of its lower bound. Quantile estimates are therefore within a relative
// error of 1/subCount (12.5%) of the true order statistic — tight enough to
// tell p99 regressions apart, cheap enough (one atomic add on a fixed
// array) to sit on every request path.
const (
	subShift = 3                                 // log2 of sub-buckets per octave
	subCount = 1 << subShift                     // 8
	nBuckets = (64-subShift)*subCount + subCount // identity range + one run per octave
)

// bucketOf maps a nanosecond value to its bucket index.
//
//anufs:hotpath
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < subCount {
		return int(v) // exact buckets for tiny values
	}
	exp := bits.Len64(v) - 1 // floor(log2 v) >= subShift
	mant := int((v >> uint(exp-subShift)) & (subCount - 1))
	return (exp-subShift+1)*subCount + mant
}

// bucketLower returns the smallest nanosecond value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := i/subCount + subShift - 1
	mant := i % subCount
	return int64(subCount+mant) << uint(exp-subShift)
}

// bucketWidth returns the width in nanoseconds of bucket i.
func bucketWidth(i int) int64 {
	if i < subCount {
		return 1
	}
	return int64(1) << uint(i/subCount-1)
}

// Histogram is a fixed-size, lock-free latency histogram. Observe is safe
// for concurrent use from any number of goroutines; readers see a
// near-consistent snapshot (bucket counts are loaded independently, which
// can skew a quantile by at most the handful of observations racing the
// read — irrelevant at the request volumes this instrumentats).
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [nBuckets]atomic.Int64
	// Exemplars: per coarse export bucket, the trace ID and value of the
	// most recent traced observation that landed there. The two cells are
	// stored independently — a racing pair can mismatch trace and value by
	// one observation, which is fine for a debugging pointer.
	exTrace [len(exportBounds) + 1]atomic.Uint64
	exNs    [len(exportBounds) + 1]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample. It sits on every request and has a
// <100ns budget (see the histogram benchmarks), so hotpathalloc keeps
// formatting and allocation out of it.
//
//anufs:hotpath
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(int64(d))].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// ObserveTrace is Observe plus exemplar capture: when the sample belongs
// to a trace, the coarse export bucket it falls in remembers that trace
// ID, so a slow /metrics quantile links to a concrete fleet trace. Same
// hot-path budget as Observe (one extra compare loop over a 24-entry
// array and two atomic stores, no allocation).
//
//anufs:hotpath
func (h *Histogram) ObserveTrace(d time.Duration, trace uint64) {
	h.Observe(d)
	if trace == 0 {
		return
	}
	bi := exportBucketOf(float64(d) / 1e9)
	h.exTrace[bi].Store(trace)
	h.exNs[bi].Store(int64(d))
}

// exportBucketOf returns the index of the coarse export bucket for a
// value in seconds (len(exportBounds) = the +Inf bucket).
//
//anufs:hotpath
func exportBucketOf(sec float64) int {
	for bi := range exportBounds {
		if sec <= exportBounds[bi] {
			return bi
		}
	}
	return len(exportBounds)
}

// Exemplar links one coarse export bucket to the most recent traced
// observation recorded in it.
type Exemplar struct {
	Le    string        `json:"le"` // bucket upper bound (seconds; "+Inf")
	Trace uint64        `json:"trace"`
	Value time.Duration `json:"value"`
}

// Exemplars returns the populated exemplar slots, fastest bucket first.
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for bi := 0; bi <= len(exportBounds); bi++ {
		tr := h.exTrace[bi].Load()
		if tr == 0 {
			continue
		}
		le := "+Inf"
		if bi < len(exportBounds) {
			le = formatBound(exportBounds[bi])
		}
		out = append(out, Exemplar{Le: le, Trace: tr, Value: time.Duration(h.exNs[bi].Load())})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Merge adds other's observations into h. Merge is associative and
// commutative: merging per-shard histograms in any order yields the same
// counts as observing every sample into one histogram.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values.
// The estimate is the midpoint of the bucket holding the order statistic,
// so it is within one bucket width (≤ 1/subCount relative) of the true
// value. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	last := 0
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		last = i
		seen += n
		if seen >= rank {
			return time.Duration(bucketLower(i) + bucketWidth(i)/2)
		}
	}
	// Racing observers can make the loaded total exceed the bucket sums we
	// saw; fall back to the highest populated bucket.
	return time.Duration(bucketLower(last) + bucketWidth(last)/2)
}

// Summary condenses the histogram for human-readable output.
type Summary struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	P999  time.Duration `json:"p999"`
}

// Summarize returns count, sum and the standard quantiles.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// exportBounds is the coarse ladder of upper bounds (seconds) used for
// Prometheus export: the full log-linear resolution stays in memory for
// quantiles, but 500 bucket lines per series would drown a scrape, so
// export folds the fine buckets into this ladder (1µs → 60s, roughly 2.5×
// apart) plus +Inf.
var exportBounds = [...]float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10, 30, 60,
}

// writeProm writes the histogram as Prometheus text-format series named
// name (labels, possibly empty, go inside the braces before "le").
func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	cum := make([]int64, len(exportBounds))
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		total += n
		upper := float64(bucketLower(i)+bucketWidth(i)) / 1e9
		for bi, bound := range exportBounds {
			if upper <= bound {
				cum[bi] += n
				break
			}
		}
	}
	// Make the folded counts cumulative.
	var running int64
	sep := ""
	if labels != "" {
		sep = ","
	}
	for bi, bound := range exportBounds {
		running += cum[bi]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), running)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, braced(labels), h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), total)
	// Exemplars ride along as comment lines: classic text-format parsers
	// skip '#' lines they don't recognize, while anufsctl top reads them
	// to link slow buckets to concrete traces.
	for _, ex := range h.Exemplars() {
		fmt.Fprintf(w, "# exemplar %s_bucket{%s%sle=%q} trace=%d value=%g\n",
			name, labels, sep, ex.Le, ex.Trace, ex.Value.Seconds())
	}
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// braced wraps a non-empty label string in braces (Prometheus series with
// no labels are written bare).
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// HistogramSet is a registry of histograms keyed by metric name and label
// string (e.g. `op="stat"`). Get is cheap but not free (a mutex and a map
// lookup); hot paths should call it once and keep the *Histogram.
type HistogramSet struct {
	mu sync.Mutex
	m  map[histKey]*Histogram
}

type histKey struct{ name, labels string }

// NewHistogramSet creates an empty set.
func NewHistogramSet() *HistogramSet { return &HistogramSet{m: map[histKey]*Histogram{}} }

// Get returns the histogram for (name, labels), creating it on first use.
// labels must be preformatted Prometheus label pairs without braces
// (`op="stat"`), or empty.
func (s *HistogramSet) Get(name, labels string) *Histogram {
	k := histKey{name, labels}
	s.mu.Lock()
	h, ok := s.m[k]
	if !ok {
		h = NewHistogram()
		s.m[k] = h
	}
	s.mu.Unlock()
	return h
}

// Each calls fn for every histogram, ordered by (name, labels).
func (s *HistogramSet) Each(fn func(name, labels string, h *Histogram)) {
	s.mu.Lock()
	keys := make([]histKey, 0, len(s.m))
	hs := make(map[histKey]*Histogram, len(s.m))
	for k, h := range s.m {
		keys = append(keys, k)
		hs[k] = h
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		fn(k.name, k.labels, hs[k])
	}
}

// writeProm writes every histogram in the set in Prometheus text format,
// applying the exporter's "anufs_" namespace prefix.
func (s *HistogramSet) writeProm(w io.Writer) {
	last := ""
	s.Each(func(name, labels string, h *Histogram) {
		full := "anufs_" + name
		if name != last {
			fmt.Fprintf(w, "# TYPE %s histogram\n", full)
			last = name
		}
		h.writeProm(w, full, labels)
	})
}
