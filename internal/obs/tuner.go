package obs

import (
	"sync"
	"time"

	"anufs/internal/core"
	"anufs/internal/interval"
)

// TunerDecision explains what one delegate round did to one server: the
// latency it reported, which heuristic fired (shed-overload, grow-underload,
// within-threshold, convergent, untouched, no-traffic), the scale factor
// applied before renormalization, and the region width before and after
// (as fractions of the unit interval's occupied half).
type TunerDecision struct {
	Server   int     `json:"server"`
	Latency  float64 `json:"latency"`
	Factor   float64 `json:"factor"`
	Reason   string  `json:"reason"`
	OldShare float64 `json:"old_share"`
	NewShare float64 `json:"new_share"`
}

// TunerEvent is one structured delegate round — the paper's §6 heuristics
// made inspectable. Live clusters stamp At; simulator runs stamp SimTime
// (seconds into the trace) and Policy instead, so a paper-replication run
// and the live daemon emit diffable streams.
type TunerEvent struct {
	Seq       uint64    `json:"seq"`
	At        time.Time `json:"at,omitempty"`
	SimTime   float64   `json:"sim_time,omitempty"`
	Policy    string    `json:"policy,omitempty"`
	Aggregate float64   `json:"aggregate"`
	Tuned     bool      `json:"tuned"`
	// ChangedFrac is the fraction of the occupied interval whose owner
	// changed this round — the load-movement cost.
	ChangedFrac float64         `json:"changed_frac"`
	Decisions   []TunerDecision `json:"decisions"`
}

// EventFromUpdate converts a delegate round's UpdateResult into the
// structured event schema. Old and new shares come from the result's
// Before/Targets vectors; rounds that did not rescale carry the current
// shares in both.
func EventFromUpdate(res core.UpdateResult) TunerEvent {
	ev := TunerEvent{
		Aggregate:   res.Aggregate,
		Tuned:       res.Tuned,
		ChangedFrac: float64(res.ChangedMass) / float64(interval.Half),
	}
	for _, d := range res.Decisions {
		ev.Decisions = append(ev.Decisions, TunerDecision{
			Server:   d.ServerID,
			Latency:  d.Latency,
			Factor:   d.Factor,
			Reason:   d.Reason,
			OldShare: float64(res.Before[d.ServerID]) / float64(interval.Half),
			NewShare: float64(res.Targets[d.ServerID]) / float64(interval.Half),
		})
	}
	return ev
}

// TunerRing is a bounded ring of the most recent tuner events. Safe for
// concurrent use; Add assigns monotonically increasing sequence numbers.
type TunerRing struct {
	mu   sync.Mutex
	buf  []TunerEvent
	next int
	full bool
	seq  uint64
}

// NewTunerRing creates a ring holding up to capacity events.
func NewTunerRing(capacity int) *TunerRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &TunerRing{buf: make([]TunerEvent, capacity)}
}

// Add records an event (stamping its Seq) and returns the sequence number.
func (r *TunerRing) Add(ev TunerEvent) uint64 {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return ev.Seq
}

// Snapshot returns up to n of the most recent events, oldest first. n <= 0
// means all retained events.
func (r *TunerRing) Snapshot(n int) []TunerEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]TunerEvent, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
