package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExemplarCapture: a traced observation stamps its coarse export
// bucket with the trace ID; untraced observations never do.
func TestExemplarCapture(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond) // untraced
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("untraced observation produced exemplars: %+v", ex)
	}
	h.ObserveTrace(2*time.Millisecond, 42)
	h.ObserveTrace(800*time.Millisecond, 43)
	h.ObserveTrace(900*time.Millisecond, 0) // trace 0 = untraced
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].Trace != 42 || ex[0].Value != 2*time.Millisecond {
		t.Fatalf("fast exemplar = %+v", ex[0])
	}
	if ex[1].Trace != 43 || ex[1].Le != "1" {
		t.Fatalf("slow exemplar = %+v (800ms belongs in the le=1s bucket)", ex[1])
	}
	// A newer traced observation in the same bucket replaces the old one.
	h.ObserveTrace(2*time.Millisecond, 44)
	if ex := h.Exemplars(); ex[0].Trace != 44 {
		t.Fatalf("exemplar not replaced: %+v", ex[0])
	}
}

// TestParsePromRoundTrip writes a full registry (counters, labeled
// gauges, histograms with exemplars) through WriteMetrics and reads it
// back with ParseProm — the exact loop anufsctl top runs against every
// fleet node's /metrics.
func TestParsePromRoundTrip(t *testing.T) {
	reg := New()
	reg.AddCounters(func() map[string]int64 {
		return map[string]int64{"wire_requests": 12, "sdk_pool_redials": 3}
	})
	reg.AddGauges(func() []Gauge {
		return []Gauge{
			{Name: "replica_lag_entries", Labels: `peer="127.0.0.1:7461"`, Value: 5},
			{Name: "sdk_pool_live", Labels: `daemon="127.0.0.1:7460"`, Value: 4},
		}
	})
	h := reg.Hist.Get("wire_request_seconds", `op="update"`)
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.ObserveTrace(400*time.Millisecond, 77) // the slow outlier, traced

	var sb strings.Builder
	reg.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "# exemplar anufs_wire_request_seconds_bucket") {
		t.Fatalf("no exemplar line emitted:\n%s", sb.String())
	}

	s, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("anufs_wire_requests", nil); !ok || v != 12 {
		t.Fatalf("counter = %v, %v", v, ok)
	}
	if v, ok := s.Value("anufs_replica_lag_entries", map[string]string{"peer": "127.0.0.1:7461"}); !ok || v != 5 {
		t.Fatalf("labeled gauge = %v, %v", v, ok)
	}
	if got := s.LabelValues("anufs_sdk_pool_live", "daemon"); len(got) != 1 || got[0] != "127.0.0.1:7460" {
		t.Fatalf("LabelValues = %v", got)
	}
	if v, ok := s.Value("anufs_wire_request_seconds_count", map[string]string{"op": "update"}); !ok || v != 100 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	// p50 should sit in the low-millisecond bucket, p995 catch the outlier.
	if q, ok := s.Quantile("anufs_wire_request_seconds", map[string]string{"op": "update"}, 0.5); !ok || q > 5*time.Millisecond {
		t.Fatalf("p50 = %v, %v", q, ok)
	}
	if q, ok := s.Quantile("anufs_wire_request_seconds", map[string]string{"op": "update"}, 0.995); !ok || q < 100*time.Millisecond {
		t.Fatalf("p995 = %v, %v (should land in the outlier's bucket)", q, ok)
	}
	ex, ok := s.SlowestExemplar("anufs_wire_request_seconds", map[string]string{"op": "update"})
	if !ok || ex.Trace != 77 {
		t.Fatalf("slowest exemplar = %+v, %v", ex, ok)
	}
	if ex.Value < 0.39 || ex.Value > 0.41 {
		t.Fatalf("exemplar value = %v seconds, want ~0.4", ex.Value)
	}
}

// TestParsePromSkipsGarbage: live scrapes may race a writing daemon; bad
// lines must be skipped, not fatal.
func TestParsePromSkipsGarbage(t *testing.T) {
	in := `anufs_good 1
this is not a metric line at all
anufs_bad{unterminated="x 2
anufs_also_good{op="stat"} 3
# exemplar anufs_x_bucket{le="1"} trace=notanumber value=0.5
# exemplar anufs_x_bucket{le="1"} trace=9 value=0.5
`
	s, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %+v, want 2", s.Points)
	}
	if len(s.Exemplars) != 1 || s.Exemplars[0].Trace != 9 {
		t.Fatalf("exemplars = %+v", s.Exemplars)
	}
}
