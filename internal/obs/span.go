package obs

import (
	"sync"
	"time"
)

// Span is one timestamped segment of a request's journey through the
// daemon: the wire handler, a server queue wait, the store apply, the
// journal group-commit wait, an fsync. Spans sharing a Trace ID belong to
// the same client request.
type Span struct {
	Trace   uint64 `json:"trace"`
	Name    string `json:"name"`
	Op      string `json:"op,omitempty"`
	FileSet string `json:"fileset,omitempty"`
	// Server is the metadata-server ID the span ran on; -1 when the span is
	// not tied to one (wire handling, journal batches).
	Server int           `json:"server"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Err    string        `json:"err,omitempty"`
	// ID identifies this span within the trace (0 = unidentified; legacy
	// spans and leaf spans that nothing parents can stay at 0). Parent is
	// the ID of the causally enclosing span on the upstream hop, carried
	// across processes by the wire trace context.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Node names the process that recorded the span (stamped by the ring's
	// configured node identity when empty). The fleet stitcher keys
	// clock-skew adjustment on it.
	Node string `json:"node,omitempty"`
	// Links are other trace IDs this span is causally tied to — e.g. a
	// client op folded into a batch links to the batch's trace.
	Links []uint64 `json:"links,omitempty"`
}

// SpanRing is a bounded in-memory ring of the most recent spans. Writers
// never block and never allocate beyond the fixed backing array; when the
// ring is full the oldest span is overwritten. Safe for concurrent use.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int // index the next span is written to
	full bool
	node string // default Node stamp for spans added without one
}

// NewSpanRing creates a ring holding up to capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// Add records a span, evicting the oldest if the ring is full. It runs
// once per traced request stage; the ring buffer is preallocated so Add
// never allocates.
//
//anufs:hotpath
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	if s.Node == "" {
		s.Node = r.node
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// SetNode sets the node identity stamped onto spans added without one.
func (r *SpanRing) SetNode(node string) {
	r.mu.Lock()
	r.node = node
	r.mu.Unlock()
}

// Snapshot returns up to n of the most recent spans, oldest first. n <= 0
// means all retained spans.
func (r *SpanRing) Snapshot(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, 0, n)
	// Oldest retained span sits at next when full, at 0 otherwise; we want
	// the newest n in chronological order.
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// ByTrace returns every retained span with the given trace ID, oldest
// first.
func (r *SpanRing) ByTrace(trace uint64) []Span {
	all := r.Snapshot(0)
	out := all[:0]
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
