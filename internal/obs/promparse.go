package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the read side of WriteMetrics: a parser for the subset of
// the Prometheus text format the registry emits (plus its "# exemplar"
// comment lines), so anufsctl top can aggregate /metrics scrapes from
// every node of a fleet without an external client library.

// MetricPoint is one parsed series sample.
type MetricPoint struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ScrapeExemplar is one parsed "# exemplar" comment line: the bucket it
// annotates plus the trace it points at.
type ScrapeExemplar struct {
	Name   string
	Labels map[string]string // includes "le"
	Trace  uint64
	Value  float64 // seconds
}

// Scrape is one parsed /metrics response.
type Scrape struct {
	Points    []MetricPoint
	Exemplars []ScrapeExemplar
}

// ParseProm parses a Prometheus text-format exposition. Lines it cannot
// parse are skipped, not fatal — the caller is polling live daemons and
// a half-written series must not kill the whole scrape.
func ParseProm(r io.Reader) (*Scrape, error) {
	out := &Scrape{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# exemplar "); ok {
				if ex, ok := parseExemplarLine(rest); ok {
					out.Exemplars = append(out.Exemplars, ex)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, labels, ok := parseSeries(fields[0])
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out.Points = append(out.Points, MetricPoint{Name: name, Labels: labels, Value: v})
	}
	return out, sc.Err()
}

func parseExemplarLine(rest string) (ScrapeExemplar, bool) {
	parts := strings.Fields(rest)
	if len(parts) != 3 {
		return ScrapeExemplar{}, false
	}
	name, labels, ok := parseSeries(parts[0])
	if !ok {
		return ScrapeExemplar{}, false
	}
	tr, ok1 := strings.CutPrefix(parts[1], "trace=")
	val, ok2 := strings.CutPrefix(parts[2], "value=")
	if !ok1 || !ok2 {
		return ScrapeExemplar{}, false
	}
	trace, err1 := strconv.ParseUint(tr, 10, 64)
	v, err2 := strconv.ParseFloat(val, 64)
	if err1 != nil || err2 != nil || trace == 0 {
		return ScrapeExemplar{}, false
	}
	return ScrapeExemplar{Name: name, Labels: labels, Trace: trace, Value: v}, true
}

// parseSeries splits `name{k="v",k2="v2"}` into name and label map.
func parseSeries(s string) (string, map[string]string, bool) {
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		return s, nil, s != ""
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, false
	}
	name := s[:brace]
	body := s[brace+1 : len(s)-1]
	labels := map[string]string{}
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return "", nil, false
		}
		key := body[:eq]
		val, rest, ok := scanQuoted(body[eq+1:])
		if !ok {
			return "", nil, false
		}
		labels[key] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return name, labels, name != ""
}

// scanQuoted consumes a leading double-quoted string (with \", \\, \n
// escapes) and returns the unescaped value plus the remainder.
func scanQuoted(s string) (string, string, bool) {
	if len(s) < 2 || s[0] != '"' {
		return "", "", false
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}

// hasLabels reports whether every (k, v) in want is present in got.
func hasLabels(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample of name whose labels include want.
func (s *Scrape) Value(name string, want map[string]string) (float64, bool) {
	for _, p := range s.Points {
		if p.Name == name && hasLabels(p.Labels, want) {
			return p.Value, true
		}
	}
	return 0, false
}

// Each calls fn for every sample of name.
func (s *Scrape) Each(name string, fn func(p MetricPoint)) {
	for _, p := range s.Points {
		if p.Name == name {
			fn(p)
		}
	}
}

// LabelValues returns the distinct values of one label across every
// sample of name, sorted.
func (s *Scrape) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, p := range s.Points {
		if p.Name == name {
			if v, ok := p.Labels[label]; ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Quantile estimates the q-quantile of an exported histogram from its
// cumulative `name_bucket` series matching want (the "le" label is
// ignored in the match). The estimate reports the matched bucket's upper
// bound — conservative, and as tight as the coarse export ladder allows.
func (s *Scrape) Quantile(name string, want map[string]string, q float64) (time.Duration, bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	var bkts []bkt
	for _, p := range s.Points {
		if p.Name != name+"_bucket" || !hasLabels(p.Labels, want) {
			continue
		}
		le := p.Labels["le"]
		bound := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		bkts = append(bkts, bkt{le: bound, cum: p.Value})
	}
	if len(bkts) == 0 {
		return 0, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	total := bkts[len(bkts)-1].cum
	if total <= 0 {
		return 0, true
	}
	rank := q * total
	for _, b := range bkts {
		if b.cum >= rank && !math.IsInf(b.le, 1) {
			return time.Duration(b.le * float64(time.Second)), true
		}
	}
	// Only the +Inf bucket holds the rank: report the last finite bound.
	if len(bkts) >= 2 {
		return time.Duration(bkts[len(bkts)-2].le * float64(time.Second)), true
	}
	return 0, true
}

// SlowestExemplar returns the exemplar with the largest value for name
// whose labels include want.
func (s *Scrape) SlowestExemplar(name string, want map[string]string) (ScrapeExemplar, bool) {
	var best ScrapeExemplar
	found := false
	for _, ex := range s.Exemplars {
		if ex.Name != name+"_bucket" || !hasLabels(ex.Labels, want) {
			continue
		}
		if !found || ex.Value > best.Value {
			best = ex
			found = true
		}
	}
	return best, found
}
