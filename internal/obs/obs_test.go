package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/core"
)

func TestSpanRingEvictionAndOrder(t *testing.T) {
	r := NewSpanRing(4)
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("fresh ring holds %d spans", len(got))
	}
	for i := 1; i <= 6; i++ {
		r.Add(Span{Trace: uint64(i), Name: "s"})
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(i + 3); s.Trace != want {
			t.Fatalf("span %d trace = %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[1].Trace != 6 {
		t.Fatalf("Snapshot(2) = %+v", got)
	}
	r.Add(Span{Trace: 5, Name: "again"})
	by := r.ByTrace(5)
	if len(by) != 2 {
		t.Fatalf("ByTrace(5) found %d spans, want 2", len(by))
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Span{Trace: id})
				_ = r.Snapshot(8)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := len(r.Snapshot(0)); got != 64 {
		t.Fatalf("full ring snapshot = %d spans", got)
	}
}

func TestTunerRingSeq(t *testing.T) {
	r := NewTunerRing(2)
	s1 := r.Add(TunerEvent{Aggregate: 1})
	s2 := r.Add(TunerEvent{Aggregate: 2})
	s3 := r.Add(TunerEvent{Aggregate: 3})
	if s1 != 1 || s2 != 2 || s3 != 3 {
		t.Fatalf("seqs = %d,%d,%d", s1, s2, s3)
	}
	evs := r.Snapshot(0)
	if len(evs) != 2 || evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("snapshot = %+v", evs)
	}
}

func TestEventFromUpdate(t *testing.T) {
	cfg := core.Defaults()
	m, err := core.NewMapper(cfg, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDelegate(cfg)
	// Server 0 far slower than server 1: the delegate sheds from 0.
	res, err := d.Update(m, []core.LatencyReport{
		{ServerID: 0, MeanLatency: 10, Requests: 100},
		{ServerID: 1, MeanLatency: 1, Requests: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := EventFromUpdate(res)
	if !ev.Tuned || ev.ChangedFrac <= 0 {
		t.Fatalf("expected a tuned round: %+v", ev)
	}
	if len(ev.Decisions) != 2 {
		t.Fatalf("decisions = %+v", ev.Decisions)
	}
	var shed TunerDecision
	for _, dec := range ev.Decisions {
		if dec.Server == 0 {
			shed = dec
		}
	}
	if shed.Reason != "shed-overload" || shed.NewShare >= shed.OldShare {
		t.Fatalf("server 0 decision = %+v", shed)
	}
	// Events must round-trip through JSON for the wire op and -tuner-log.
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back TunerEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Decisions[0].Reason == "" {
		t.Fatalf("JSON round-trip lost decisions: %s", b)
	}
}

func TestRegistryMetricsAndHandler(t *testing.T) {
	reg := New()
	if a, b := reg.NextTraceID(), reg.NextTraceID(); a == 0 || a == b {
		t.Fatalf("trace IDs: %d, %d", a, b)
	}
	reg.AddCounters(func() map[string]int64 { return map[string]int64{"journal_fsyncs": 7} })
	reg.AddGauges(func() []Gauge {
		return []Gauge{{Name: "server_speed", Labels: `server="0"`, Value: 3.5}}
	})
	reg.Hist.Get("wire_op_latency_seconds", `op="stat"`).Observe(2 * time.Millisecond)
	reg.Tuner.Add(TunerEvent{Aggregate: 0.5})
	reg.Spans.Add(Span{Trace: 9, Name: "wire", Op: "stat", Server: -1})

	var sb strings.Builder
	reg.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"anufs_journal_fsyncs 7",
		`anufs_server_speed{server="0"} 3.5`,
		`anufs_wire_op_latency_seconds_count{op="stat"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "anufs_journal_fsyncs 7") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/trace?trace=9"); code != 200 || !strings.Contains(body, `"name": "wire"`) {
		t.Fatalf("/trace = %d:\n%s", code, body)
	}
	if code, _ := get("/trace?trace=bogus"); code != 400 {
		t.Fatalf("/trace bogus id = %d, want 400", code)
	}
	if code, body := get("/tuner-log"); code != 200 || !strings.Contains(body, `"aggregate": 0.5`) {
		t.Fatalf("/tuner-log = %d:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestRegistryCountersMerge(t *testing.T) {
	reg := New()
	for i := 0; i < 3; i++ {
		i := i
		reg.AddCounters(func() map[string]int64 {
			return map[string]int64{fmt.Sprintf("src_%d", i): int64(i)}
		})
	}
	got := reg.Counters()
	if len(got) != 3 || got["src_2"] != 2 {
		t.Fatalf("merged counters = %v", got)
	}
}

func TestStatusSourcesAndEndpoint(t *testing.T) {
	reg := New()
	reg.AddStatus("daemon", func() any { return map[string]string{"role": "primary"} })
	reg.AddStatus("replication", func() any { return map[string]any{"mode": "shipping", "lag_entries": 3} })
	// Re-registering a name replaces the source.
	reg.AddStatus("daemon", func() any { return map[string]string{"role": "promoted-primary"} })

	st := reg.Status()
	if d, ok := st["daemon"].(map[string]string); !ok || d["role"] != "promoted-primary" {
		t.Fatalf("daemon status = %+v", st["daemon"])
	}
	if _, ok := st["replication"]; !ok {
		t.Fatalf("replication status missing: %+v", st)
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rep, ok := got["replication"].(map[string]any)
	if !ok || rep["mode"] != "shipping" {
		t.Fatalf("/status replication = %+v", got["replication"])
	}
}
