package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// NodeTrace is one node's answer to a trace-pull: its retained spans for
// the trace plus the clock sample the stitcher uses to estimate skew.
// The fetcher records the remote wall clock (Now) and the local midpoint
// of the pull round trip (PulledAt); if both clocks agreed they would be
// equal, so their difference estimates the remote clock's offset to
// within half the RTT.
type NodeTrace struct {
	Node     string    `json:"node"`
	Addr     string    `json:"addr,omitempty"`
	Now      time.Time `json:"now"`
	PulledAt time.Time `json:"pulled_at"`
	Err      string    `json:"err,omitempty"`
	Spans    []Span    `json:"spans"`
}

// Hop summarizes one node's contribution to a stitched trace.
type Hop struct {
	Node  string        `json:"node"`
	Addr  string        `json:"addr,omitempty"`
	Skew  time.Duration `json:"skew"` // remote clock minus local clock
	Spans int           `json:"spans"`
	Err   string        `json:"err,omitempty"`
}

// FleetTrace is a cross-node timeline assembled by Stitch: every node's
// spans for one trace, de-duplicated, skew-adjusted into the stitching
// node's clock frame, and ordered by adjusted start time.
type FleetTrace struct {
	Trace uint64 `json:"trace"`
	Spans []Span `json:"spans"`
	Hops  []Hop  `json:"hops"`
	// MissingParents lists span IDs referenced as a Parent but present on
	// no pulled node — a hop that was unreachable, or whose ring already
	// evicted the trace.
	MissingParents []uint64 `json:"missing_parents,omitempty"`
	// Links are other trace IDs the spans point at (batch folds): follow
	// them with further pulls to widen the picture.
	Links []uint64 `json:"links,omitempty"`
}

// Stitch merges per-node span pulls into one fleet timeline. Nodes may
// arrive in any order; nodes that failed to answer contribute an errored
// hop; duplicate spans (the same trace pulled twice from one node, or a
// span visible in both the live and slow rings) collapse. Span start
// times are shifted by the per-node skew estimate so cross-node ordering
// is meaningful even when node clocks disagree.
func Stitch(trace uint64, nodes []NodeTrace) *FleetTrace {
	ft := &FleetTrace{Trace: trace}
	type spanKey struct {
		id    uint64
		node  string
		name  string
		start int64
	}
	seen := map[spanKey]bool{}
	ids := map[uint64]bool{}
	links := map[uint64]bool{}
	for _, nt := range nodes {
		skew := time.Duration(0)
		if !nt.Now.IsZero() && !nt.PulledAt.IsZero() {
			skew = nt.Now.Sub(nt.PulledAt)
		}
		hop := Hop{Node: nt.Node, Addr: nt.Addr, Skew: skew, Err: nt.Err}
		for _, s := range nt.Spans {
			if s.Trace != trace && trace != 0 {
				continue
			}
			if s.Node == "" {
				s.Node = nt.Node
			}
			k := spanKey{id: s.ID, node: s.Node, name: s.Name, start: s.Start.UnixNano()}
			if s.ID != 0 {
				// An identified span is unique fleet-wide; dedupe on ID alone.
				k = spanKey{id: s.ID}
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			s.Start = s.Start.Add(-skew)
			if s.ID != 0 {
				ids[s.ID] = true
			}
			for _, l := range s.Links {
				if l != trace {
					links[l] = true
				}
			}
			ft.Spans = append(ft.Spans, s)
			hop.Spans++
		}
		ft.Hops = append(ft.Hops, hop)
	}
	sort.SliceStable(ft.Spans, func(i, j int) bool {
		return ft.Spans[i].Start.Before(ft.Spans[j].Start)
	})
	missing := map[uint64]bool{}
	for _, s := range ft.Spans {
		if s.Parent != 0 && !ids[s.Parent] && !missing[s.Parent] {
			missing[s.Parent] = true
			ft.MissingParents = append(ft.MissingParents, s.Parent)
		}
	}
	sort.Slice(ft.MissingParents, func(i, j int) bool { return ft.MissingParents[i] < ft.MissingParents[j] })
	for l := range links {
		ft.Links = append(ft.Links, l)
	}
	sort.Slice(ft.Links, func(i, j int) bool { return ft.Links[i] < ft.Links[j] })
	return ft
}

// WriteTimeline renders the stitched trace human-readably: one hop
// summary block (with skew and fetch errors), then the spans ordered by
// skew-adjusted start, offset from the earliest span.
func (ft *FleetTrace) WriteTimeline(w io.Writer) {
	fmt.Fprintf(w, "trace %d: %d span(s) across %d hop(s)\n", ft.Trace, len(ft.Spans), len(ft.Hops))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "HOP\tADDR\tSPANS\tCLOCK-SKEW\tERR")
	for _, h := range ft.Hops {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%s\n", h.Node, h.Addr, h.Spans, h.Skew.Round(time.Microsecond), h.Err)
	}
	tw.Flush()
	if len(ft.Spans) == 0 {
		return
	}
	base := ft.Spans[0].Start
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "START\tDUR\tNODE\tSPAN\tOP\tFILESET\tERR")
	for _, s := range ft.Spans {
		extra := s.Err
		if len(s.Links) > 0 {
			extra = fmt.Sprintf("links=%v %s", s.Links, s.Err)
		}
		fmt.Fprintf(tw, "+%v\t%v\t%s\t%s\t%s\t%s\t%s\n",
			s.Start.Sub(base).Round(time.Microsecond), s.Dur.Round(time.Microsecond),
			s.Node, s.Name, s.Op, s.FileSet, extra)
	}
	tw.Flush()
	if len(ft.MissingParents) > 0 {
		fmt.Fprintf(w, "warning: %d parent span(s) missing (unreachable hop or evicted ring): %v\n",
			len(ft.MissingParents), ft.MissingParents)
	}
	for _, h := range ft.Hops {
		if h.Err != "" {
			fmt.Fprintf(w, "warning: hop %s (%s) not pulled: %s\n", h.Node, h.Addr, h.Err)
		}
	}
	if len(ft.Links) > 0 {
		fmt.Fprintf(w, "linked traces (batch folds): %v\n", ft.Links)
	}
}
