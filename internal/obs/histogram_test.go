package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/rng"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and the
	// value one below it to the previous bucket.
	for i := 0; i < nBuckets; i++ {
		lo := bucketLower(i)
		if lo < 0 {
			// Top-of-range buckets above int64 durations are never hit.
			continue
		}
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(bucketLower(%d)=%d) = %d", i, lo, got)
		}
		if i > 0 && lo > 0 {
			if got := bucketOf(lo - 1); got != i-1 {
				t.Fatalf("bucketOf(%d) = %d, want %d", lo-1, got, i-1)
			}
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatal("negative durations must clamp to bucket 0")
	}
}

// TestQuantileErrorBounds draws random latencies, compares histogram
// quantiles against the exact order statistics of a sorted copy, and
// requires the log-linear error bound (one bucket, ≤ 1/subCount relative
// plus the sub-unit bucket width) to hold at every probed quantile.
func TestQuantileErrorBounds(t *testing.T) {
	r := rng.NewStream(42)
	for trial := 0; trial < 3; trial++ {
		h := NewHistogram()
		n := 20000
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform between 1µs and 1s, the operating range of a
			// metadata op: exercises ~20 octaves.
			exp := 3 + r.Float64()*6 // 10^3 .. 10^9 ns
			v := math.Pow(10, exp)
			vals[i] = v
			h.Observe(time.Duration(int64(v)))
		}
		sort.Float64s(vals)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := vals[int(q*float64(n-1))]
			est := float64(h.Quantile(q))
			// One bucket of slack: the estimate is a midpoint, so allow
			// rel error 1/subCount on either side (plus 1ns rounding).
			bound := exact/subCount + 1
			if diff := math.Abs(est - exact); diff > bound {
				t.Fatalf("trial %d q=%g: estimate %g vs exact %g (diff %g > bound %g)",
					trial, q, est, exact, diff, bound)
			}
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
	s := h.Summarize()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	var sb strings.Builder
	h.writeProm(&sb, "x", "")
	if !strings.Contains(sb.String(), `x_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram export:\n%s", sb.String())
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; run
// with -race this is the data-race proof, and the final counts must be
// exact (no lost updates).
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(seed*1000 + int64(i)))
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() { // concurrent reader: quantiles must never panic mid-write
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = h.Quantile(0.99)
			_ = h.Summarize()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perW {
		t.Fatalf("lost updates: count %d, want %d", got, workers*perW)
	}
}

// TestMergeAssociativity checks ((a⊕b)⊕c) == (a⊕(b⊕c)) == observe-all.
func TestMergeAssociativity(t *testing.T) {
	r := rng.NewStream(7)
	mk := func(n int) (*Histogram, []time.Duration) {
		h := NewHistogram()
		ds := make([]time.Duration, n)
		for i := range ds {
			ds[i] = time.Duration(r.Intn(1_000_000_000))
			h.Observe(ds[i])
		}
		return h, ds
	}
	a, da := mk(100)
	b, db := mk(200)
	c, dc := mk(300)

	left := NewHistogram()
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := NewHistogram()
	bc.Merge(b)
	bc.Merge(c)
	right := NewHistogram()
	right.Merge(a)
	right.Merge(bc)

	all := NewHistogram()
	for _, ds := range [][]time.Duration{da, db, dc} {
		for _, d := range ds {
			all.Observe(d)
		}
	}
	for i := 0; i < nBuckets; i++ {
		l, rr, aa := left.buckets[i].Load(), right.buckets[i].Load(), all.buckets[i].Load()
		if l != rr || l != aa {
			t.Fatalf("bucket %d: left %d right %d all %d", i, l, rr, aa)
		}
	}
	if left.Count() != all.Count() || right.Count() != all.Count() {
		t.Fatal("merged counts diverge")
	}
	if left.Sum() != all.Sum() || right.Sum() != all.Sum() {
		t.Fatal("merged sums diverge")
	}
}

func TestHistogramSetAndExport(t *testing.T) {
	s := NewHistogramSet()
	s.Get("op_latency_seconds", `op="stat"`).Observe(2 * time.Millisecond)
	s.Get("op_latency_seconds", `op="create"`).Observe(5 * time.Millisecond)
	if s.Get("op_latency_seconds", `op="stat"`).Count() != 1 {
		t.Fatal("Get did not return the same histogram")
	}
	var sb strings.Builder
	s.writeProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE anufs_op_latency_seconds histogram",
		`anufs_op_latency_seconds_bucket{op="create",le="+Inf"} 1`,
		`anufs_op_latency_seconds_count{op="stat"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 5ms observation (fine-bucket upper bound
	// ~5.24ms) folds into the 0.01s export bound.
	if !strings.Contains(out, `op="create",le="0.01"} 1`) {
		t.Fatalf("create bucket fold wrong:\n%s", out)
	}
}
