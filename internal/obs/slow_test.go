package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowRingThresholdGating(t *testing.T) {
	r := NewSlowRing(4)
	if r.MaybePromote(nil, 1, "update", time.Hour) {
		t.Fatal("zero threshold must disable promotion")
	}
	r.SetThreshold(10 * time.Millisecond)
	if r.MaybePromote(nil, 1, "update", 5*time.Millisecond) {
		t.Fatal("under-budget trace promoted")
	}
	if r.MaybePromote(nil, 0, "update", time.Hour) {
		t.Fatal("untraced (trace 0) request promoted")
	}
	if !r.MaybePromote(nil, 1, "update", 15*time.Millisecond) {
		t.Fatal("over-budget trace not promoted")
	}
	if got := r.Snapshot(); len(got) != 1 || got[0].Trace != 1 || got[0].Dur != 15*time.Millisecond {
		t.Fatalf("snapshot = %+v", got)
	}
}

// TestSlowRingCopiesSpans: promotion must copy the trace's spans out of
// the live ring — that copy is the whole point of the flight recorder,
// surviving after the main ring wraps.
func TestSlowRingCopiesSpans(t *testing.T) {
	src := NewSpanRing(8)
	src.Add(Span{Trace: 42, Name: "wire", Op: "update"})
	src.Add(Span{Trace: 42, Name: "apply"})
	src.Add(Span{Trace: 99, Name: "wire"}) // other trace, not copied

	r := NewSlowRing(4)
	r.SetThreshold(time.Millisecond)
	if !r.MaybePromote(src, 42, "update", 2*time.Millisecond) {
		t.Fatal("promotion failed")
	}
	// Wrap the live ring completely; the slow record must be unaffected.
	for i := 0; i < 16; i++ {
		src.Add(Span{Trace: 1000 + uint64(i)})
	}
	spans := r.ByTrace(42)
	if len(spans) != 2 || spans[0].Name != "wire" || spans[1].Name != "apply" {
		t.Fatalf("retained spans = %+v", spans)
	}
	if r.ByTrace(7777) != nil {
		t.Fatal("ByTrace invented a record for an unpromoted trace")
	}
}

// TestSlowRingUpdateInPlaceAndEviction: re-promoting a retained trace
// (a retried hop, or the same trace crossing two thresholds) updates its
// slot rather than burning a second one; overflow evicts oldest-first.
func TestSlowRingUpdateInPlaceAndEviction(t *testing.T) {
	r := NewSlowRing(2)
	r.SetThreshold(time.Millisecond)
	r.MaybePromote(nil, 1, "stat", 2*time.Millisecond)
	r.MaybePromote(nil, 1, "update", 9*time.Millisecond) // same trace, slower
	if got := r.Snapshot(); len(got) != 1 || got[0].Dur != 9*time.Millisecond || got[0].Op != "update" {
		t.Fatalf("update-in-place snapshot = %+v", got)
	}
	r.MaybePromote(nil, 2, "stat", 3*time.Millisecond)
	r.MaybePromote(nil, 3, "stat", 4*time.Millisecond) // evicts trace 1
	got := r.Snapshot()
	if len(got) != 2 || got[0].Trace != 3 || got[1].Trace != 2 {
		t.Fatalf("post-eviction snapshot = %+v", got)
	}
	if r.ByTrace(1) != nil {
		t.Fatal("evicted trace still retained")
	}

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 trace(s)") || !strings.Contains(out, "trace 3") {
		t.Fatalf("WriteTo output:\n%s", out)
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	src := NewSpanRing(128)
	r := NewSlowRing(8)
	r.SetThreshold(time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := id*1000 + uint64(i%5) + 1
				src.Add(Span{Trace: tr, Name: "wire"})
				r.MaybePromote(src, tr, "update", 2*time.Millisecond)
				_ = r.Snapshot()
				_ = r.ByTrace(tr)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 8 {
		t.Fatalf("full slow ring holds %d records, want 8", got)
	}
}
