package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the daemon's HTTP observability surface:
//
//	/metrics       Prometheus text format (counters, gauges, histograms)
//	/healthz       "ok" (liveness)
//	/status        registered status sources as JSON (role, replication)
//	/tuner-log     recent tuner decision events as JSON
//	/trace         recent request spans as JSON (?trace=ID filters)
//	/debug/slow    slow-trace flight recorder as JSON (newest first)
//	/debug/pprof/  the standard Go profiler endpoints
//
// Mount it on a loopback or otherwise-protected port; it exposes
// operational detail, not user data, but pprof can be made to burn CPU.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Status())
	})
	mux.HandleFunc("/tuner-log", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Tuner.Snapshot(0))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			writeJSON(w, r.Spans.ByTrace(id))
			return
		}
		writeJSON(w, r.Spans.Snapshot(0))
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Slow.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
