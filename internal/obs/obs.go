// Package obs is the shared observability layer for the live anufs stack:
// lock-free log-bucketed latency histograms, a bounded ring of request
// trace spans, a structured tuner decision log, and a Prometheus-text /
// pprof HTTP surface.
//
// One Registry is threaded through the daemon — the wire server, the live
// cluster's owner queues, the journal's group committer — so every layer
// records into the same rings and histogram set and a single /metrics
// scrape (or the wire "trace"/"tuner-log" ops) sees the whole request
// path. The paper's feedback loop runs on one signal (per-server mean
// latency, §4); this package is how we see everything that signal hides:
// tail latency per op, queue wait vs. apply vs. fsync, and why the tuner
// rescaled a region.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge is one exported point-in-time value (per-server share, queue
// depth, ...). Labels is a preformatted Prometheus label string without
// braces (`server="3"`), or empty.
type Gauge struct {
	Name   string
	Labels string
	Value  float64
}

// Registry aggregates every observability source in one process.
type Registry struct {
	// Hist holds the latency histograms (per wire op, per server, journal).
	Hist *HistogramSet
	// Spans retains the most recent request trace spans.
	Spans *SpanRing
	// Tuner retains the most recent tuner decision events.
	Tuner *TunerRing
	// Slow is the flight recorder: traces promoted for exceeding the slow
	// threshold, durable past span-ring wraparound.
	Slow *SlowRing

	traceID atomic.Uint64
	seed    uint64 // random per-process offset making IDs fleet-unique
	node    atomic.Value

	mu       sync.Mutex
	counters []func() map[string]int64
	gauges   []func() []Gauge
	status   map[string]func() any
}

// Default ring capacities: enough history to inspect recent behaviour
// without unbounded growth.
const (
	defaultSpanCap  = 8192
	defaultTunerCap = 1024
	defaultSlowCap  = 128
)

// New creates a registry with default ring capacities.
func New() *Registry {
	r := &Registry{
		Hist:  NewHistogramSet(),
		Spans: NewSpanRing(defaultSpanCap),
		Tuner: NewTunerRing(defaultTunerCap),
		Slow:  NewSlowRing(defaultSlowCap),
	}
	// Offset the ID counter by a random per-process seed so trace IDs
	// minted on different nodes of a fleet don't collide. Each process
	// still mints sequential IDs within its own 2^64 window; crypto/rand
	// failure (no entropy device) degrades to process-local uniqueness.
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		r.seed = binary.LittleEndian.Uint64(b[:])
	}
	return r
}

// NextTraceID mints a fleet-unique request trace ID (never zero — zero
// means "untraced" throughout the stack).
func (r *Registry) NextTraceID() uint64 { return r.nextID() }

// NextSpanID mints an ID for one span so downstream hops can reference it
// as their Parent. Span IDs share the trace-ID space; never zero.
func (r *Registry) NextSpanID() uint64 { return r.nextID() }

func (r *Registry) nextID() uint64 {
	for {
		if id := r.seed + r.traceID.Add(1); id != 0 {
			return id
		}
	}
}

// SetNode names this process for the fleet plane (e.g. "daemon-2",
// "gw@:7101"): responses to trace-pull report it and every span recorded
// without an explicit Node is stamped with it.
func (r *Registry) SetNode(node string) {
	r.node.Store(node)
	r.Spans.SetNode(node)
}

// Node returns the identity set by SetNode ("" if unset).
func (r *Registry) Node() string {
	if v, ok := r.node.Load().(string); ok {
		return v
	}
	return ""
}

// AddCounters registers a counter snapshot source (e.g. the journal's
// CounterSet.Snapshot). Each scrape calls every source; keys are exported
// as counters prefixed with "anufs_".
func (r *Registry) AddCounters(fn func() map[string]int64) {
	r.mu.Lock()
	r.counters = append(r.counters, fn)
	r.mu.Unlock()
}

// AddGauges registers a gauge source (e.g. the cluster's per-server share
// and served totals).
func (r *Registry) AddGauges(fn func() []Gauge) {
	r.mu.Lock()
	r.gauges = append(r.gauges, fn)
	r.mu.Unlock()
}

// AddStatus registers a named status source for the /status endpoint: a
// point-in-time, JSON-marshalable description of one subsystem (role,
// replication state, ...). Registering a name again replaces the source.
func (r *Registry) AddStatus(name string, fn func() any) {
	r.mu.Lock()
	if r.status == nil {
		r.status = map[string]func() any{}
	}
	r.status[name] = fn
	r.mu.Unlock()
}

// Status snapshots every status source into one map.
func (r *Registry) Status() map[string]any {
	r.mu.Lock()
	srcs := make(map[string]func() any, len(r.status))
	for k, fn := range r.status {
		srcs[k] = fn
	}
	r.mu.Unlock()
	out := make(map[string]any, len(srcs))
	for k, fn := range srcs {
		out[k] = fn()
	}
	return out
}

// Counters merges every counter source into one map (later sources win on
// key collisions; sources use distinct prefixes by convention).
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	srcs := append([]func() map[string]int64(nil), r.counters...)
	r.mu.Unlock()
	out := map[string]int64{}
	for _, fn := range srcs {
		for k, v := range fn() {
			out[k] = v
		}
	}
	return out
}

// WriteMetrics renders the whole registry in Prometheus text format:
// counters, gauges, then histograms (with the coarse export ladder).
func (r *Registry) WriteMetrics(w io.Writer) {
	ctrs := r.Counters()
	names := make([]string, 0, len(ctrs))
	for k := range ctrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "# TYPE anufs_%s counter\nanufs_%s %d\n", k, k, ctrs[k])
	}

	r.mu.Lock()
	gsrcs := append([]func() []Gauge(nil), r.gauges...)
	r.mu.Unlock()
	var gs []Gauge
	for _, fn := range gsrcs {
		gs = append(gs, fn()...)
	}
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Name != gs[j].Name {
			return gs[i].Name < gs[j].Name
		}
		return gs[i].Labels < gs[j].Labels
	})
	last := ""
	for _, g := range gs {
		if g.Name != last {
			fmt.Fprintf(w, "# TYPE anufs_%s gauge\n", g.Name)
			last = g.Name
		}
		fmt.Fprintf(w, "anufs_%s%s %g\n", g.Name, braced(g.Labels), g.Value)
	}

	r.Hist.writeProm(w)
}
