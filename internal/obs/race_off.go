//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in (the
// Observe-overhead budget test skips itself under -race).
const raceEnabled = false
