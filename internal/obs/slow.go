package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowTrace is one over-budget request promoted into the flight recorder:
// the root op's identity plus a copy of every span the main ring held for
// that trace at promotion time. The copy makes the record durable — the
// main ring wraps within seconds under load, the slow ring keeps the
// worst requests until pushed out by newer slow ones.
type SlowTrace struct {
	Trace uint64        `json:"trace"`
	Op    string        `json:"op,omitempty"`
	Node  string        `json:"node,omitempty"`
	At    time.Time     `json:"at"`
	Dur   time.Duration `json:"dur"`
	Spans []Span        `json:"spans"`
}

// SlowRing is the slow-trace flight recorder: a bounded ring of traces
// whose root span exceeded the threshold. Promotion is self-gating — a
// zero threshold disables it — so callers hook MaybePromote into the
// request exit path unconditionally. Safe for concurrent use.
type SlowRing struct {
	threshold atomic.Int64 // ns; 0 disables promotion

	mu   sync.Mutex
	buf  []SlowTrace
	next int
	full bool
}

// NewSlowRing creates a recorder retaining up to capacity slow traces.
func NewSlowRing(capacity int) *SlowRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &SlowRing{buf: make([]SlowTrace, capacity)}
}

// SetThreshold sets the promotion budget; requests at or above it are
// recorded. Zero disables the recorder.
func (r *SlowRing) SetThreshold(d time.Duration) { r.threshold.Store(int64(d)) }

// Threshold returns the current promotion budget.
func (r *SlowRing) Threshold() time.Duration { return time.Duration(r.threshold.Load()) }

// MaybePromote records the trace if dur meets the threshold, copying its
// spans out of src. A trace already retained is updated in place (retried
// hops re-promote with more spans) rather than occupying a second slot.
// Returns whether the trace is now retained.
func (r *SlowRing) MaybePromote(src *SpanRing, trace uint64, op string, dur time.Duration) bool {
	th := r.threshold.Load()
	if th <= 0 || int64(dur) < th || trace == 0 {
		return false
	}
	st := SlowTrace{Trace: trace, Op: op, At: time.Now(), Dur: dur}
	if src != nil {
		st.Spans = src.ByTrace(trace)
		// ByTrace aliases Snapshot's backing array it filtered in place;
		// clone so ring writes after promotion can't shear the record.
		st.Spans = append([]Span(nil), st.Spans...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		if r.buf[i].Trace == trace {
			if dur >= r.buf[i].Dur {
				r.buf[i].Dur = dur
				r.buf[i].Op = op
			}
			r.buf[i].Spans = st.Spans
			return true
		}
	}
	r.buf[r.next] = st
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return true
}

// Snapshot returns the retained slow traces, newest first.
func (r *SlowRing) Snapshot() []SlowTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	out := make([]SlowTrace, 0, size)
	for i := 0; i < size; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// ByTrace returns the retained spans for one promoted trace (nil if the
// trace was never promoted or has been evicted).
func (r *SlowRing) ByTrace(trace uint64) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		if r.buf[i].Trace == trace && r.buf[i].Trace != 0 {
			return append([]Span(nil), r.buf[i].Spans...)
		}
	}
	return nil
}

// WriteTo dumps the recorder human-readably (the SIGQUIT handler points
// it at stderr). Implements io.WriterTo.
func (r *SlowRing) WriteTo(w io.Writer) (int64, error) {
	traces := r.Snapshot()
	var n int64
	count := func(c int, err error) error { n += int64(c); return err }
	if err := count(fmt.Fprintf(w, "slow-trace flight recorder: %d trace(s), threshold %v\n", len(traces), r.Threshold())); err != nil {
		return n, err
	}
	for _, t := range traces {
		if err := count(fmt.Fprintf(w, "trace %d op=%s node=%s at=%s dur=%v\n",
			t.Trace, t.Op, t.Node, t.At.Format(time.RFC3339Nano), t.Dur)); err != nil {
			return n, err
		}
		base := t.At
		for _, s := range t.Spans {
			if s.Start.Before(base) {
				base = s.Start
			}
		}
		for _, s := range t.Spans {
			if err := count(fmt.Fprintf(w, "  +%-12v %-10v %-20s op=%-10s node=%-14s fs=%s %s\n",
				s.Start.Sub(base).Round(time.Microsecond), s.Dur.Round(time.Microsecond),
				s.Name, s.Op, s.Node, s.FileSet, s.Err)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
