package obs

import (
	"strings"
	"testing"
	"time"
)

// TestStitchSkewAdjustment feeds the stitcher two hops whose clocks
// disagree by 100ms and checks the remote span is shifted back into the
// local frame: without the adjustment the daemon's span would appear to
// start after it already finished on the gateway's clock.
func TestStitchSkewAdjustment(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	pulled := base.Add(50 * time.Millisecond)
	nodes := []NodeTrace{
		{
			Node: "gw", Now: pulled, PulledAt: pulled, // clocks agree
			Spans: []Span{{Trace: 7, ID: 1, Name: "gateway", Start: base, Dur: 10 * time.Millisecond}},
		},
		{
			Node: "daemon-0",
			// The daemon's clock runs 100ms ahead of the stitching node.
			Now:      pulled.Add(100 * time.Millisecond),
			PulledAt: pulled,
			Spans: []Span{{
				Trace: 7, ID: 2, Parent: 1, Name: "wire",
				Start: base.Add(105 * time.Millisecond), // really base+5ms local
				Dur:   4 * time.Millisecond,
			}},
		},
	}
	ft := Stitch(7, nodes)
	if len(ft.Spans) != 2 {
		t.Fatalf("stitched %d spans, want 2", len(ft.Spans))
	}
	if ft.Spans[0].Name != "gateway" || ft.Spans[1].Name != "wire" {
		t.Fatalf("span order = %s, %s", ft.Spans[0].Name, ft.Spans[1].Name)
	}
	if got, want := ft.Spans[1].Start, base.Add(5*time.Millisecond); !got.Equal(want) {
		t.Fatalf("skew-adjusted start = %v, want %v", got, want)
	}
	var daemonHop Hop
	for _, h := range ft.Hops {
		if h.Node == "daemon-0" {
			daemonHop = h
		}
	}
	if daemonHop.Skew != 100*time.Millisecond {
		t.Fatalf("daemon hop skew = %v, want 100ms", daemonHop.Skew)
	}
	if len(ft.MissingParents) != 0 {
		t.Fatalf("unexpected missing parents: %v", ft.MissingParents)
	}
}

// TestStitchOutOfOrderArrival pulls the downstream hop before the edge
// hop; the timeline must still come out in causal (start-time) order.
func TestStitchOutOfOrderArrival(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := base.Add(time.Second)
	nodes := []NodeTrace{
		{Node: "standby", Now: at, PulledAt: at, Spans: []Span{
			{Trace: 3, ID: 30, Parent: 20, Name: "standby-ack", Start: base.Add(8 * time.Millisecond)},
		}},
		{Node: "daemon-1", Now: at, PulledAt: at, Spans: []Span{
			{Trace: 3, ID: 20, Parent: 10, Name: "apply", Start: base.Add(3 * time.Millisecond)},
		}},
		{Node: "gw", Now: at, PulledAt: at, Spans: []Span{
			{Trace: 3, ID: 10, Name: "gateway", Start: base},
		}},
	}
	ft := Stitch(3, nodes)
	want := []string{"gateway", "apply", "standby-ack"}
	if len(ft.Spans) != len(want) {
		t.Fatalf("stitched %d spans, want %d", len(ft.Spans), len(want))
	}
	for i, name := range want {
		if ft.Spans[i].Name != name {
			t.Fatalf("span %d = %s, want %s", i, ft.Spans[i].Name, name)
		}
	}
}

// TestStitchMissingHop covers the degraded cases: a hop that failed to
// answer contributes an errored hop entry, and a span whose parent lives
// on that hop is reported under MissingParents so the operator knows the
// timeline has a hole rather than trusting it blind.
func TestStitchMissingHop(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := base.Add(time.Second)
	nodes := []NodeTrace{
		{Node: "gw", Addr: "127.0.0.1:1", Err: "dial tcp: connection refused"},
		{Node: "daemon-0", Now: at, PulledAt: at, Spans: []Span{
			{Trace: 9, ID: 2, Parent: 1, Name: "wire", Start: base},
			{Trace: 9, ID: 4, Parent: 2, Name: "apply", Start: base.Add(time.Millisecond)},
		}},
	}
	ft := Stitch(9, nodes)
	if len(ft.Spans) != 2 {
		t.Fatalf("stitched %d spans, want 2", len(ft.Spans))
	}
	if len(ft.MissingParents) != 1 || ft.MissingParents[0] != 1 {
		t.Fatalf("missing parents = %v, want [1]", ft.MissingParents)
	}
	var gwHop Hop
	for _, h := range ft.Hops {
		if h.Node == "gw" {
			gwHop = h
		}
	}
	if gwHop.Err == "" || gwHop.Spans != 0 {
		t.Fatalf("errored hop = %+v", gwHop)
	}
	var sb strings.Builder
	ft.WriteTimeline(&sb)
	out := sb.String()
	for _, want := range []string{"connection refused", "missing", "apply"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestStitchDedupAndLinks: the same identified span pulled from both the
// live ring and the slow ring collapses to one, foreign spans are
// filtered out, and batch-fold links aggregate across spans.
func TestStitchDedupAndLinks(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := base.Add(time.Second)
	dup := Span{Trace: 5, ID: 77, Name: "journal-commit-wait", Start: base, Links: []uint64{111}}
	nodes := []NodeTrace{
		{Node: "daemon-0", Now: at, PulledAt: at, Spans: []Span{
			dup, dup, // live ring + slow ring copies
			{Trace: 6, ID: 78, Name: "wire", Start: base}, // different trace: dropped
			{Trace: 5, ID: 79, Name: "batch-fold", Start: base, Links: []uint64{112, 5}},
		}},
	}
	ft := Stitch(5, nodes)
	if len(ft.Spans) != 2 {
		t.Fatalf("stitched %d spans, want 2 (dedup + trace filter): %+v", len(ft.Spans), ft.Spans)
	}
	if len(ft.Links) != 2 || ft.Links[0] != 111 || ft.Links[1] != 112 {
		t.Fatalf("links = %v, want [111 112] (own trace excluded)", ft.Links)
	}
}
