package metaserver

import (
	"errors"
	"sync"
	"testing"

	"anufs/internal/sharedisk"
)

func newPair(t *testing.T) (*sharedisk.Store, *Server) {
	t.Helper()
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("proj"); err != nil {
		t.Fatal(err)
	}
	srv := New(1, disk)
	if err := srv.Acquire("proj"); err != nil {
		t.Fatal(err)
	}
	return disk, srv
}

func TestAcquireServeOps(t *testing.T) {
	_, srv := newPair(t)
	if !srv.Owns("proj") {
		t.Fatal("Owns false after Acquire")
	}
	if err := srv.Create("proj", "/a.txt", sharedisk.Record{Size: 10, Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	rec, err := srv.Stat("proj", "/a.txt")
	if err != nil || rec.Size != 10 {
		t.Fatalf("Stat = %+v, %v", rec, err)
	}
	if rec.ModTime.IsZero() {
		t.Fatal("Create did not stamp ModTime")
	}
	if err := srv.Update("proj", "/a.txt", sharedisk.Record{Size: 20}); err != nil {
		t.Fatal(err)
	}
	rec, _ = srv.Stat("proj", "/a.txt")
	if rec.Size != 20 {
		t.Fatalf("Update lost: %+v", rec)
	}
	if err := srv.Remove("proj", "/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Stat("proj", "/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat after Remove: %v", err)
	}
}

func TestOpErrors(t *testing.T) {
	_, srv := newPair(t)
	if err := srv.Create("proj", "", sharedisk.Record{}); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := srv.Create("proj", "/a", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Create("proj", "/a", sharedisk.Record{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := srv.Update("proj", "/nope", sharedisk.Record{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := srv.Remove("proj", "/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestNotOwner(t *testing.T) {
	disk, _ := newPair(t)
	other := New(2, disk)
	if err := other.Create("proj", "/b", sharedisk.Record{}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Create on un-owned: %v", err)
	}
	if _, err := other.Stat("proj", "/b"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Stat on un-owned: %v", err)
	}
	if _, err := other.List("proj", "/"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("List on un-owned: %v", err)
	}
	if err := other.Release("proj"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Release on un-owned: %v", err)
	}
	if err := other.Checkpoint("proj"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Checkpoint on un-owned: %v", err)
	}
}

func TestDoubleAcquireRejected(t *testing.T) {
	_, srv := newPair(t)
	if err := srv.Acquire("proj"); err == nil {
		t.Fatal("double acquire succeeded")
	}
}

func TestMoveHandOffPreservesState(t *testing.T) {
	disk, a := newPair(t)
	if err := a.Create("proj", "/x", sharedisk.Record{Size: 7}); err != nil {
		t.Fatal(err)
	}
	// Shed from a, acquire on b — the paper's move protocol.
	if err := a.Release("proj"); err != nil {
		t.Fatal(err)
	}
	if a.Owns("proj") {
		t.Fatal("a still owns after Release")
	}
	if a.DirtyFlushes() != 1 {
		t.Fatalf("DirtyFlushes = %d, want 1", a.DirtyFlushes())
	}
	b := New(2, disk)
	if err := b.Acquire("proj"); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Stat("proj", "/x")
	if err != nil || rec.Size != 7 {
		t.Fatalf("state lost across move: %+v, %v", rec, err)
	}
}

func TestReleaseCleanSkipsFlush(t *testing.T) {
	disk, srv := newPair(t)
	v0, _ := disk.Version("proj")
	if err := srv.Release("proj"); err != nil {
		t.Fatal(err)
	}
	v1, _ := disk.Version("proj")
	if v1 != v0 {
		t.Fatalf("clean release flushed: version %d -> %d", v0, v1)
	}
	if srv.DirtyFlushes() != 0 {
		t.Fatal("clean release counted as dirty flush")
	}
}

func TestCrashLosesUnflushedState(t *testing.T) {
	disk, srv := newPair(t)
	if err := srv.Create("proj", "/lost", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	if srv.Owns("proj") {
		t.Fatal("still owns after crash")
	}
	// Recovery on another server sees the last flushed image (empty).
	b := New(2, disk)
	if err := b.Acquire("proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat("proj", "/lost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unflushed write survived a crash: %v", err)
	}
}

func TestCheckpointBoundsLoss(t *testing.T) {
	disk, srv := newPair(t)
	if err := srv.Create("proj", "/kept", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint("proj"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Create("proj", "/lost", sharedisk.Record{Size: 2}); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	b := New(2, disk)
	if err := b.Acquire("proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat("proj", "/kept"); err != nil {
		t.Fatalf("checkpointed write lost: %v", err)
	}
	if _, err := b.Stat("proj", "/lost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("post-checkpoint write survived crash")
	}
}

func TestCheckpointIdempotentWhenClean(t *testing.T) {
	disk, srv := newPair(t)
	if err := srv.Checkpoint("proj"); err != nil {
		t.Fatal(err)
	}
	v, _ := disk.Version("proj")
	if v != 1 {
		t.Fatalf("clean checkpoint flushed: version %d", v)
	}
}

func TestCheckpointThenReleaseNoStaleFlush(t *testing.T) {
	// Regression guard: Checkpoint must update the cached version, or the
	// release-time flush would be stale-rejected.
	_, srv := newPair(t)
	if err := srv.Create("proj", "/a", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint("proj"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Create("proj", "/b", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Release("proj"); err != nil {
		t.Fatalf("release after checkpoint: %v", err)
	}
}

func TestList(t *testing.T) {
	_, srv := newPair(t)
	for _, p := range []string{"/dir/a", "/dir/b", "/other/c"} {
		if err := srv.Create("proj", p, sharedisk.Record{}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := srv.List("proj", "/dir/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/dir/a" || got[1] != "/dir/b" {
		t.Fatalf("List = %v", got)
	}
	all, _ := srv.List("proj", "/")
	if len(all) != 3 {
		t.Fatalf("List all = %v", all)
	}
}

func TestOwnedSorted(t *testing.T) {
	disk := sharedisk.NewStore(0)
	srv := New(1, disk)
	for _, fs := range []string{"zz", "aa", "mm"} {
		if err := disk.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := srv.Acquire(fs); err != nil {
			t.Fatal(err)
		}
	}
	got := srv.Owned()
	if len(got) != 3 || got[0] != "aa" || got[2] != "zz" {
		t.Fatalf("Owned = %v", got)
	}
}

func TestConcurrentOps(t *testing.T) {
	_, srv := newPair(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				path := "/w" + string(rune('a'+g))
				_ = srv.Create("proj", path, sharedisk.Record{Size: int64(i)})
				_, _ = srv.Stat("proj", path)
				_ = srv.Remove("proj", path)
			}
		}()
	}
	wg.Wait()
}
