// Package metaserver implements a Storage Tank-style metadata server
// (paper §2): it owns a set of file sets, serves metadata reads and writes
// for them out of an in-memory cache, and implements the ownership
// hand-off protocol — acquire (load the image from shared disk), serve,
// release (flush dirty state and drop the cache) — that the load-placement
// layer drives when it moves file sets between servers.
package metaserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"anufs/internal/sharedisk"
)

// ErrNotOwner is returned for operations on a file set this server does not
// currently own; the client should re-resolve the owner from the current
// mapping and retry (paper §5: "when a server sees an unknown unique name,
// it hashes it and routes the request to the appropriate server").
var ErrNotOwner = errors.New("metaserver: not the owner of this file set")

// ErrNotFound is returned for paths that do not exist.
var ErrNotFound = errors.New("metaserver: no such path")

// ErrExists is returned when creating a path that already exists.
var ErrExists = errors.New("metaserver: path exists")

// Server is one metadata server. Safe for concurrent use.
type Server struct {
	id   int
	disk sharedisk.Disk

	mu    sync.Mutex
	owned map[string]*fileSetState

	// DirtyFlushes counts flushes performed on release — observability for
	// the cache-preservation claims.
	dirtyFlushes int
}

type fileSetState struct {
	image sharedisk.Image
	dirty bool
}

// New creates a metadata server bound to the shared disk (the in-memory
// Store, or Durable when flushes must survive a process crash).
func New(id int, disk sharedisk.Disk) *Server {
	return &Server{id: id, disk: disk, owned: map[string]*fileSetState{}}
}

// ID returns the server's cluster ID.
func (s *Server) ID() int { return s.id }

// Owns reports whether the server currently owns the file set.
func (s *Server) Owns(fileSet string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.owned[fileSet]
	return ok
}

// Owned lists the file sets this server currently serves, sorted.
func (s *Server) Owned() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.owned))
	for fs := range s.owned {
		out = append(out, fs)
	}
	sort.Strings(out)
	return out
}

// DirtyFlushes reports how many release-time flushes the server performed.
func (s *Server) DirtyFlushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirtyFlushes
}

// Acquire loads the file set's image from shared disk and begins serving
// it. Acquiring an already-owned file set is an error — it would indicate
// the placement layer double-assigned it.
func (s *Server) Acquire(fileSet string) error {
	im, err := s.disk.Load(fileSet)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.owned[fileSet]; dup {
		return fmt.Errorf("metaserver %d: already own %q", s.id, fileSet)
	}
	s.owned[fileSet] = &fileSetState{image: im}
	return nil
}

// Release flushes the file set if dirty and stops serving it — the shedding
// half of a move (paper §4: "the shedding server flushes its cache with
// respect to shed file sets to create a consistent disk image").
func (s *Server) Release(fileSet string) error {
	s.mu.Lock()
	st, ok := s.owned[fileSet]
	if !ok {
		s.mu.Unlock()
		return ErrNotOwner
	}
	delete(s.owned, fileSet)
	dirty := st.dirty
	im := st.image
	if dirty {
		s.dirtyFlushes++
	}
	s.mu.Unlock()
	if dirty {
		if _, err := s.disk.Flush(fileSet, im); err != nil {
			return err
		}
	}
	return nil
}

// Crash drops all owned file sets WITHOUT flushing — a server failure. The
// images on shared disk remain at their last flushed version, which is what
// a recovering owner adopts.
func (s *Server) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owned = map[string]*fileSetState{}
}

// Checkpoint flushes a file set's dirty state without releasing ownership
// (background cleaning; keeps the window of loss small).
func (s *Server) Checkpoint(fileSet string) error {
	return s.CheckpointTraced(0, fileSet)
}

// tracedFlusher is optionally implemented by disks (sharedisk.Durable)
// that can attribute a flush to the client request trace that forced it.
type tracedFlusher interface {
	FlushTraced(trace uint64, fileSet string, im sharedisk.Image) (uint64, error)
}

// CheckpointTraced is Checkpoint attributed to a request trace (0 =
// untraced): a durable disk journals the flush under that trace so the
// fsync it waits on appears in the request's timeline.
func (s *Server) CheckpointTraced(trace uint64, fileSet string) error {
	s.mu.Lock()
	st, ok := s.owned[fileSet]
	if !ok {
		s.mu.Unlock()
		return ErrNotOwner
	}
	if !st.dirty {
		s.mu.Unlock()
		return nil
	}
	im := st.clone()
	s.mu.Unlock()
	var newV uint64
	var err error
	if tf, ok := s.disk.(tracedFlusher); ok && trace != 0 {
		newV, err = tf.FlushTraced(trace, fileSet, im)
	} else {
		newV, err = s.disk.Flush(fileSet, im)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st2, ok := s.owned[fileSet]; ok && st2 == st {
		st.image.Version = newV
		st.dirty = false
	}
	return nil
}

func (f *fileSetState) clone() sharedisk.Image {
	cp := sharedisk.Image{Version: f.image.Version, Records: make(map[string]sharedisk.Record, len(f.image.Records))}
	for k, v := range f.image.Records {
		cp.Records[k] = v
	}
	return cp
}

// withFileSet runs fn with the file set's state under the lock.
func (s *Server) withFileSet(fileSet string, fn func(*fileSetState) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.owned[fileSet]
	if !ok {
		return ErrNotOwner
	}
	return fn(st)
}

// Create adds a metadata record at path within the file set.
func (s *Server) Create(fileSet, path string, rec sharedisk.Record) error {
	if path == "" {
		return fmt.Errorf("metaserver: empty path")
	}
	return s.withFileSet(fileSet, func(st *fileSetState) error {
		if _, dup := st.image.Records[path]; dup {
			return ErrExists
		}
		if rec.ModTime.IsZero() {
			rec.ModTime = time.Now()
		}
		st.image.Records[path] = rec
		st.dirty = true
		return nil
	})
}

// Stat returns the metadata record at path.
func (s *Server) Stat(fileSet, path string) (sharedisk.Record, error) {
	var rec sharedisk.Record
	err := s.withFileSet(fileSet, func(st *fileSetState) error {
		r, ok := st.image.Records[path]
		if !ok {
			return ErrNotFound
		}
		rec = r
		return nil
	})
	return rec, err
}

// Update overwrites the record at path.
func (s *Server) Update(fileSet, path string, rec sharedisk.Record) error {
	return s.withFileSet(fileSet, func(st *fileSetState) error {
		if _, ok := st.image.Records[path]; !ok {
			return ErrNotFound
		}
		st.image.Records[path] = rec
		st.dirty = true
		return nil
	})
}

// Remove deletes the record at path.
func (s *Server) Remove(fileSet, path string) error {
	return s.withFileSet(fileSet, func(st *fileSetState) error {
		if _, ok := st.image.Records[path]; !ok {
			return ErrNotFound
		}
		delete(st.image.Records, path)
		st.dirty = true
		return nil
	})
}

// List returns the paths under the given prefix, sorted.
func (s *Server) List(fileSet, prefix string) ([]string, error) {
	var out []string
	err := s.withFileSet(fileSet, func(st *fileSetState) error {
		for p := range st.image.Records {
			if strings.HasPrefix(p, prefix) {
				out = append(out, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
