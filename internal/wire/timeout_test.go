package wire

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestCallTimesOutOnStalledServer is the regression test for per-call
// deadlines: a listener that accepts and then never responds used to block
// every caller forever; now the call fails after Client.SetTimeout.
func TestCallTimesOutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // hold the conn open, read nothing, answer nothing
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = c.Stat("vol00", "/a")
	if err == nil {
		t.Fatal("call against a stalled server returned nil")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", d)
	}
	// The abandoned call must not leak its pending entry.
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries leaked after timeout", n)
	}
	// The client is still usable for its next (also timed-out) call.
	if _, err := c.Stat("vol00", "/b"); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("second call err = %v", err)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestNegativeTimeoutDisablesDeadline checks the opt-out: a negative
// timeout waits indefinitely (here: until the response arrives late).
func TestNegativeTimeoutDisablesDeadline(t *testing.T) {
	c, _ := startServer(t, 1)
	c.SetTimeout(-1)
	if err := c.CreateFileSet("volx"); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffGrowsJittersAndResets(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second)
	prevMax := time.Duration(0)
	for i := 0; i < 6; i++ {
		d := b.Next()
		step := 100 * time.Millisecond << i
		if step > time.Second {
			step = time.Second
		}
		lo, hi := step-step/4, step+step/4
		if d < lo || d > hi {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, d, lo, hi)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	b.Reset()
	if d := b.Next(); d > 125*time.Millisecond {
		t.Fatalf("after Reset, delay %v did not return to base", d)
	}
	// Zero-value Backoff is usable with defaults.
	var zb Backoff
	if d := zb.Next(); d <= 0 {
		t.Fatalf("zero-value backoff returned %v", d)
	}
}
