package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/core"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
)

// Client is a connection to a wire server. It multiplexes concurrent
// requests over one TCP connection, correlating responses by ID. Safe for
// concurrent use.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *json.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error
	done    chan struct{}

	// lastTrace remembers the most recent server-echoed trace ID, so a
	// caller can fetch the span timeline of the call it just made.
	lastTrace atomic.Uint64

	// timeout bounds each call's wait for a response (SetTimeout): 0 means
	// DefaultCallTimeout, negative disables the deadline.
	timeout atomic.Int64
}

// DefaultCallTimeout bounds how long a call waits for its response when
// SetTimeout has not been called — a hung or wedged server must not block
// every caller forever.
const DefaultCallTimeout = 5 * time.Second

// SetTimeout overrides the per-call response deadline: 0 restores
// DefaultCallTimeout, a negative duration disables the deadline entirely
// (bulk transfers like snapshot shipping set their own, longer budget).
// Safe to call concurrently with in-flight calls; it applies to calls
// started after it.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		nextID:  1,
		pending: map[uint64]chan Response{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// DialTimeout connects to a wire server with a bound on BOTH the TCP
// connect and, as the initial per-call deadline, every call (override with
// SetTimeout). Control-plane paths that must stay responsive with a dead
// peer in the fleet — map publishes, membership heartbeats, failure-time
// takeovers — dial this way: a blackholed address costs d, not the OS
// connect timeout. The client is born with its deadline armed, which is
// what the wireops deadline rule checks for.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		nextID:  1,
		pending: map[uint64]chan Response{},
		done:    make(chan struct{}),
	}
	c.SetTimeout(d)
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			continue // skip garbage frames; the call times out with conn close
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
	// Connection gone: fail everything pending.
	c.mu.Lock()
	c.err = ErrConnClosed
	for id, ch := range c.pending {
		ch <- Response{ID: id, Err: c.err.Error()}
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// call sends a request and waits for its response.
func (c *Client) call(req Request) (Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return Response{}, c.err
	}
	req.ID = c.nextID
	c.nextID++
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := c.enc.Encode(req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, fmt.Errorf("%w: %w", ErrSendFailed, err)
	}
	d := time.Duration(c.timeout.Load())
	if d == 0 {
		d = DefaultCallTimeout
	}
	var resp Response
	if d < 0 {
		resp = <-ch
	} else {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case resp = <-ch:
		case <-timer.C:
			// Abandon the call: readLoop's send into the (buffered) channel
			// cannot block, and deleting the pending entry keeps the map from
			// accumulating abandoned IDs.
			c.mu.Lock()
			delete(c.pending, req.ID)
			c.mu.Unlock()
			return Response{}, fmt.Errorf("wire: %s call %w after %v", req.Op, ErrTimedOut, d)
		}
	}
	if resp.Trace != 0 {
		c.lastTrace.Store(resp.Trace)
	}
	return resp, ResponseError(resp)
}

// ResponseError maps a server-reported error string back to the typed
// error vocabulary: wrong-owner and arriving rejections cross the wire as
// strings and are rebuilt here (carrying Response.Epoch), so callers can
// switch on them without string matching. Every client that decodes raw
// responses — wire.Client, the sdk's pipelined connections — shares this
// mapping, which is what keeps the fleet router's retry discipline
// working no matter which transport carried the frame. Nil when the
// response carries no error.
func ResponseError(resp Response) error {
	if resp.Err == "" {
		return nil
	}
	if strings.HasPrefix(resp.Err, wrongOwnerMsg) {
		return &WrongOwnerError{Epoch: resp.Epoch}
	}
	// Response.Code is authoritative. Peers that predate the typed codes
	// send Code == "" — only then do the message-prefix fallbacks apply
	// (matching resp.Err is fine: it is a string field of the protocol,
	// not an error's message).
	if resp.Code == CodeArriving || resp.Code == "" && strings.HasPrefix(resp.Err, arrivingMsg) {
		return fmt.Errorf("%w (server: %s)", ErrArriving, resp.Err)
	}
	if resp.Code == "" && strings.HasPrefix(resp.Err, UnplacedMsg) {
		return &CodedError{Code: CodeUnplaced, Err: errors.New(resp.Err)}
	}
	if resp.Code != "" {
		return &CodedError{Code: resp.Code, Err: errors.New(resp.Err)}
	}
	return errors.New(resp.Err)
}

// Call sends a raw request (the ID is assigned by the client) and returns
// the raw response — the pass-through the fleet gateway uses to forward
// frames without enumerating every op. The response is returned even when
// err is non-nil, so forwarders can relay server-side error strings.
func (c *Client) Call(req Request) (Response, error) {
	return c.call(req)
}

// LastTrace returns the trace ID the server assigned to this client's most
// recently completed request (0 before any traced call) — pass it to Trace
// to fetch that request's span timeline.
func (c *Client) LastTrace() uint64 { return c.lastTrace.Load() }

// Trace fetches request trace spans: those of one trace when trace != 0,
// otherwise the n most recent across all traces (n <= 0 means all
// retained).
func (c *Client) Trace(trace uint64, n int) ([]obs.Span, error) {
	resp, err := c.call(Request{Op: OpTrace, Trace: trace, Count: n})
	return resp.Spans, err
}

// TracePull fetches one trace's spans from the server's live ring and
// slow-trace flight recorder, plus the node's identity and wall clock
// (UnixNano at reply time) — the per-node half of the fleet stitcher.
func (c *Client) TracePull(trace uint64) ([]obs.Span, string, int64, error) {
	resp, err := c.call(Request{Op: OpTracePull, Trace: trace})
	return resp.Spans, resp.Node, resp.Now, err
}

// TunerLog fetches the n most recent structured tuner decision events
// (n <= 0 means all retained).
func (c *Client) TunerLog(n int) ([]obs.TunerEvent, error) {
	resp, err := c.call(Request{Op: OpTunerLog, Count: n})
	return resp.Tuner, err
}

// WireStats fetches the wire server's own counters and the per-connection
// breakdown.
func (c *Client) WireStats() (map[string]int64, []ConnStat, error) {
	resp, err := c.call(Request{Op: OpStats})
	return resp.Wire, resp.Conns, err
}

// ClosedConnStats fetches the retained aggregate of connections that have
// disconnected (their live entries are reaped on close): the folded
// counters and how many connections they cover.
func (c *Client) ClosedConnStats() (*ConnStat, int64, error) {
	resp, err := c.call(Request{Op: OpStats})
	return resp.Closed, resp.ClosedConns, err
}

// Ship delivers replicated journal entries to a standby (nil/empty entries
// is a liveness heartbeat) and returns the standby's durable ack sequence.
func (c *Client) Ship(daemon int, entries []ShipEntry) (uint64, error) {
	resp, err := c.call(Request{Op: OpShip, Daemon: daemon, Entries: entries})
	return resp.AckSeq, err
}

// ShipSnapshot delivers a full encoded store cut covering sequences 1..seq
// to a standby that has fallen behind the primary's compaction horizon.
func (c *Client) ShipSnapshot(seq uint64, snap []byte) (uint64, error) {
	resp, err := c.call(Request{Op: OpShip, SnapSeq: seq, Snap: snap})
	return resp.AckSeq, err
}

// ShipStatus asks a standby how far it has durably applied — the
// sequence-based resume point for log shipping.
func (c *Client) ShipStatus() (uint64, error) {
	resp, err := c.call(Request{Op: OpShipStatus})
	return resp.AckSeq, err
}

// CreateFileSet initializes a new file set cluster-wide.
func (c *Client) CreateFileSet(fileSet string) error {
	_, err := c.call(Request{Op: OpCreateFileSet, FileSet: fileSet})
	return err
}

// Create adds a metadata record.
func (c *Client) Create(fileSet, path string, rec sharedisk.Record) error {
	_, err := c.call(Request{Op: OpCreate, FileSet: fileSet, Path: path, Record: &rec})
	return err
}

// Stat reads a metadata record.
func (c *Client) Stat(fileSet, path string) (sharedisk.Record, error) {
	resp, err := c.call(Request{Op: OpStat, FileSet: fileSet, Path: path})
	if err != nil {
		return sharedisk.Record{}, err
	}
	if resp.Record == nil {
		return sharedisk.Record{}, errors.New("wire: stat returned no record")
	}
	return *resp.Record, nil
}

// Update overwrites a metadata record.
func (c *Client) Update(fileSet, path string, rec sharedisk.Record) error {
	_, err := c.call(Request{Op: OpUpdate, FileSet: fileSet, Path: path, Record: &rec})
	return err
}

// Remove deletes a metadata record.
func (c *Client) Remove(fileSet, path string) error {
	_, err := c.call(Request{Op: OpRemove, FileSet: fileSet, Path: path})
	return err
}

// List returns paths under a prefix.
func (c *Client) List(fileSet, prefix string) ([]string, error) {
	resp, err := c.call(Request{Op: OpList, FileSet: fileSet, Path: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// Owner reports the server currently responsible for the file set.
func (c *Client) Owner(fileSet string) (int, error) {
	resp, err := c.call(Request{Op: OpOwner, FileSet: fileSet})
	return resp.Owner, err
}

// Register obtains a lock-session ID.
func (c *Client) Register() (uint64, error) {
	resp, err := c.call(Request{Op: OpRegister})
	return resp.Client, err
}

// Lock acquires a lock (non-blocking; exclusive when excl is true).
func (c *Client) Lock(client uint64, fileSet, path string, excl bool) error {
	_, err := c.call(Request{Op: OpLock, Client: client, FileSet: fileSet, Path: path, Exclusive: excl})
	return err
}

// Unlock releases a lock.
func (c *Client) Unlock(client uint64, fileSet, path string) error {
	_, err := c.call(Request{Op: OpUnlock, Client: client, FileSet: fileSet, Path: path})
	return err
}

// Renew heartbeats the lock session.
func (c *Client) Renew(client uint64) error {
	_, err := c.call(Request{Op: OpRenew, Client: client})
	return err
}

// Stats fetches per-server placement statistics.
func (c *Client) Stats() ([]ServerStat, error) {
	resp, err := c.call(Request{Op: OpStats})
	return resp.Stats, err
}

// JournalStats fetches the journal counters; nil when the daemon runs
// without a journal.
func (c *Client) JournalStats() (map[string]int64, error) {
	resp, err := c.call(Request{Op: OpStats})
	return resp.Journal, err
}

// Ping round-trips a no-op — the liveness probe connection pools use for
// health checks.
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Batch applies items (create/update/remove/stat) in one round trip; the
// server folds each file set's items into a single owner-queue task.
// Items naming no file set inherit fileSet. With durable, the server
// checkpoints every touched file set before acking — the whole batch
// rides one journal group commit. Results are index-aligned with items;
// err reports transport or whole-batch failures only (per-item errors are
// in the results).
func (c *Client) Batch(fileSet string, durable bool, items []BatchItem) ([]BatchResult, error) {
	resp, err := c.call(Request{Op: OpBatch, FileSet: fileSet, Durable: durable, Batch: items})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(items) {
		return nil, fmt.Errorf("wire: batch of %d items got %d results", len(items), len(resp.Results))
	}
	return resp.Results, nil
}

// Sync checkpoints every file set to shared disk — the client-side
// durability barrier (fsync for metadata). When it returns nil, all writes
// acknowledged before the call survive a daemon crash, provided the daemon
// journals (-journal-dir).
func (c *Client) Sync() error {
	_, err := c.call(Request{Op: OpSync})
	return err
}

// Mount binds a global-namespace subtree to a file set.
func (c *Client) Mount(prefix, fileSet string) error {
	_, err := c.call(Request{Op: OpMount, Prefix: prefix, FileSet: fileSet})
	return err
}

// Unmount removes a mount point.
func (c *Client) Unmount(prefix string) error {
	_, err := c.call(Request{Op: OpUnmount, Prefix: prefix})
	return err
}

// Resolve maps a global path to (file set, relative path).
func (c *Client) Resolve(path string) (fileSet, rel string, err error) {
	resp, err := c.call(Request{Op: OpResolve, Path: path})
	return resp.FileSet, resp.Rel, err
}

// PCreate creates a record addressed by global path.
func (c *Client) PCreate(path string, rec sharedisk.Record) error {
	_, err := c.call(Request{Op: OpPCreate, Path: path, Record: &rec})
	return err
}

// PStat reads a record addressed by global path.
func (c *Client) PStat(path string) (sharedisk.Record, error) {
	resp, err := c.call(Request{Op: OpPStat, Path: path})
	if err != nil {
		return sharedisk.Record{}, err
	}
	if resp.Record == nil {
		return sharedisk.Record{}, errors.New("wire: pstat returned no record")
	}
	return *resp.Record, nil
}

// PRemove deletes a record addressed by global path.
func (c *Client) PRemove(path string) error {
	_, err := c.call(Request{Op: OpPRemove, Path: path})
	return err
}

// ClusterMap fetches the daemon's current encoded cluster map
// (placement.DecodeClusterMap parses it). Only fleet-mode daemons serve it.
func (c *Client) ClusterMap() ([]byte, error) {
	resp, err := c.call(Request{Op: OpMap})
	return resp.Map, err
}

// MapEpoch fetches just the daemon's cluster-map epoch — the cheap probe a
// fleet member polls to notice a newer map.
func (c *Client) MapEpoch() (uint64, error) {
	resp, err := c.call(Request{Op: OpMapEpoch})
	return resp.Epoch, err
}

// Adopt delivers a donated file set to its new owner during a handoff:
// snap is the donor's encoded image cut (journal.EncodeImages) and mapData
// the encoded cluster map of the epoch the handoff runs under, so the
// recipient converges to the new epoch in the same frame.
func (c *Client) Adopt(epoch uint64, fileSet string, snap, mapData []byte) error {
	_, err := c.call(Request{Op: OpAdopt, Epoch: epoch, FileSet: fileSet, Snap: snap, Map: mapData})
	return err
}

// Handoff tells a donor daemon to donate a file set to the daemon at addr,
// under the (already published) cluster map mapData with the given epoch.
func (c *Client) Handoff(epoch uint64, fileSet, addr string, mapData []byte) error {
	_, err := c.call(Request{Op: OpHandoff, Epoch: epoch, FileSet: fileSet, Addr: addr, Map: mapData})
	return err
}

// Assign pins a file set to a daemon (authority daemons only) and returns
// the epoch of the resulting map. Moving an owned file set triggers a live
// handoff.
func (c *Client) Assign(fileSet string, daemon int) (uint64, error) {
	resp, err := c.call(Request{Op: OpAssign, FileSet: fileSet, Daemon: daemon})
	return resp.Epoch, err
}

// Rebalance recomputes the whole assignment from the ANU mapper (authority
// daemons only), clearing manual pins, and returns the new epoch.
func (c *Client) Rebalance() (uint64, error) {
	resp, err := c.call(Request{Op: OpRebalance})
	return resp.Epoch, err
}

// Join registers a daemon with the fleet authority at runtime: id is the
// daemon's fleet ID, addr its dialable wire address, speed its relative
// speed (> 0), and journalDir its journal directory on the shared disk
// (empty = volatile; its state cannot be replayed if it dies). Idempotent:
// re-joining with the same identity refreshes the membership record. The
// reply is the new map's epoch and encoded bytes.
func (c *Client) Join(id int, addr string, speed float64, journalDir string) (uint64, []byte, error) {
	resp, err := c.call(Request{Op: OpJoin, Daemon: id, Addr: addr, Speed: speed, JournalDir: journalDir})
	return resp.Epoch, resp.Map, err
}

// Leave gracefully decommissions a daemon (authority daemons only): its
// file sets are handed off to the remaining daemons before it is dropped
// from the map. Returns the epoch of the map without the daemon.
func (c *Client) Leave(id int) (uint64, error) {
	resp, err := c.call(Request{Op: OpLeave, Daemon: id})
	return resp.Epoch, err
}

// Heartbeat renews a member's liveness lease at the authority and doubles
// as the member's epoch probe (the reply carries the authority's current
// epoch). addr/speed/journalDir keep the authority's membership record
// fresh — a roster-started daemon's journal dir reaches the authority this
// way, which is what makes its journal replayable on failover.
func (c *Client) Heartbeat(id int, addr string, speed float64, journalDir string) (uint64, error) {
	resp, err := c.call(Request{Op: OpHeartbeat, Daemon: id, Addr: addr, Speed: speed, JournalDir: journalDir})
	return resp.Epoch, err
}

// Takeover tells a daemon to adopt the listed file sets from a daemon the
// authority has declared dead: the recipient replays the victim's journal
// directory (read-only) up to its durable boundary, installs the replayed
// images, and serves the file sets under the candidate map (encoded in
// mapData at the given epoch). An empty journalDir adopts the file sets
// empty — the victim ran volatile, so there is nothing to replay.
func (c *Client) Takeover(epoch uint64, fileSets []string, journalDir string, mapData []byte) error {
	_, err := c.call(Request{Op: OpTakeover, Epoch: epoch, FileSets: fileSets, JournalDir: journalDir, Map: mapData})
	return err
}

// VolumeCreate registers a tenant volume with default config (unlimited
// quota, spread placement, unit WFQ weight). Authority daemons only; the
// reply carries the epoch whose publish distributed the new registry.
func (c *Client) VolumeCreate(name string) (uint64, error) {
	resp, err := c.call(Request{Op: OpVolumeCreate, Volume: name})
	return resp.Epoch, err
}

// VolumeDelete removes an empty volume (authority daemons only). Volumes
// that still own file sets are refused.
func (c *Client) VolumeDelete(name string) (uint64, error) {
	resp, err := c.call(Request{Op: OpVolumeDelete, Volume: name})
	return resp.Epoch, err
}

// VolumeList returns every volume's durable config and the registry
// version it was cut at.
func (c *Client) VolumeList() ([]volume.Info, uint64, error) {
	resp, err := c.call(Request{Op: OpVolumeList})
	return resp.Volumes, resp.VolumesVersion, err
}

// VolumeSetQuota updates a volume's quotas and WFQ weight: maxFileSets
// caps how many file sets the tenant may own (0 = unlimited), opRate caps
// its sustained ops/sec at each owning daemon (0 = unlimited), and weight
// (> 0 to change, 0 keeps the current value) is its weighted-fair-queueing
// share in the owner queues.
func (c *Client) VolumeSetQuota(name string, maxFileSets int, opRate, weight float64) (uint64, error) {
	resp, err := c.call(Request{
		Op: OpVolumeSetQuota, Volume: name,
		MaxFileSets: maxFileSets, OpRate: opRate, Weight: weight,
	})
	return resp.Epoch, err
}

// VolumeSetPolicy flips a volume's placement policy ("spread" or "pack").
func (c *Client) VolumeSetPolicy(name, policy string) (uint64, error) {
	resp, err := c.call(Request{Op: OpVolumeSetPolicy, Volume: name, Policy: policy})
	return resp.Epoch, err
}

// Mapping fetches the cluster's replicated routing configuration and
// reconstructs a local router: Owner() on the result agrees with the
// cluster until the next reconfiguration, letting clients route requests
// to the right server without a directory lookup (paper §5).
func (c *Client) Mapping() (*core.Mapper, error) {
	resp, err := c.call(Request{Op: OpMapping})
	if err != nil {
		return nil, err
	}
	return core.RouterFromConfig(resp.Mapping)
}
