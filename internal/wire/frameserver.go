package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"sync"
)

// FrameServer drives one server-side connection through the protocol: it
// starts in line mode (one JSON request per line), answers an OpHello by
// upgrading the connection to the tagged-frame protocol, and from then on
// demultiplexes frames — each request runs on its own goroutine and its
// response carries the request's tag, so completions are out of order.
//
// It is the protocol loop shared by wire.Server and the sdk gateway:
// Handle is the only required hook and is called concurrently.
type FrameServer struct {
	// Handle serves one decoded request; called concurrently.
	Handle func(Request) Response
	// OnBadFrame, if set, is called once per undecodable frame (accounting).
	OnBadFrame func()
	// OnInflight, if set, observes admissions (+1) and completions (-1) —
	// the hook behind in-flight gauges and pipeline-depth histograms.
	OnInflight func(delta int64)
}

// Line-mode limits, matching the client reader: lines above maxLineBytes
// lose framing and drop the connection.
const (
	lineBufBytes = 64 << 10
	maxLineBytes = 1 << 20
)

var errLineTooLong = errors.New("wire: request line exceeds 1MiB")

// Serve reads the connection until it closes, first in line mode and —
// after a successful hello — in tagged mode. It blocks until every
// in-flight request has completed.
func (f *FrameServer) Serve(conn net.Conn) {
	br := bufio.NewReaderSize(conn, lineBufBytes)
	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp Response) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = enc.Encode(resp) // write errors surface as reader EOF
	}
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	first := true
	for {
		line, err := readLine(br)
		if err != nil {
			return // EOF, connection error, or oversized line
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			f.badFrame()
			send(Response{Err: "bad frame: " + err.Error()})
			continue
		}
		switch req.Op {
		case OpHello:
			// Negotiation must be the first exchange: a hello after other
			// requests could interleave line responses with frames.
			resp := Response{ID: req.ID}
			switch {
			case !first:
				resp.Err = "wire: hello must be the first request on a connection"
			case req.Proto != TaggedProtoV1:
				resp.Err = "wire: unsupported tagged protocol version"
			default:
				resp.Proto = TaggedProtoV1
				// Grant the intersection of offered and supported capability
				// bits (trace context, ...). Old clients offer none and old
				// servers grant none; either way both sides degrade cleanly.
				resp.Caps = req.Caps & SupportedCaps
			}
			send(resp)
			if resp.Err == "" {
				f.serveTagged(conn, br, &reqWG)
				return
			}
		default:
			reqWG.Add(1)
			f.inflight(1)
			go func(req Request) {
				defer reqWG.Done()
				send(f.Handle(req))
				f.inflight(-1)
			}(req)
		}
		first = false
	}
}

// serveTagged is the per-connection demux loop after the hello upgrade:
// read a frame, decode, dispatch on a goroutine, answer under the tag the
// request carried. Any framing error drops the connection — once byte
// boundaries are lost there is nothing to resynchronize on.
func (f *FrameServer) serveTagged(conn net.Conn, br *bufio.Reader, reqWG *sync.WaitGroup) {
	var writeMu sync.Mutex
	var encBuf []byte // reused response encode buffer, guarded by writeMu
	bw := bufio.NewWriterSize(conn, lineBufBytes)
	fw := NewFrameWriter(bw)
	sendTagged := func(tag uint64, resp Response) {
		writeMu.Lock()
		defer writeMu.Unlock()
		payload, ok := AppendResponse(encBuf[:0], &resp)
		if ok {
			encBuf = payload
		} else {
			var err error
			payload, err = json.Marshal(resp)
			if err != nil {
				payload = []byte(`{"err":"wire: unencodable response"}`)
			}
		}
		if fw.WriteFrame(FrameResponse, tag, payload) == nil {
			_ = bw.Flush()
		}
	}
	fr := NewFrameReader(br)
	var dec Decoder
	var req Request // reused across frames so the fast decoder can reuse its strings
	for {
		kind, tag, payload, err := fr.ReadFrame()
		if err != nil {
			if errors.Is(err, ErrBadFrameHeader) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrBadFrameKind) {
				f.badFrame()
			}
			return
		}
		if kind != FrameRequest {
			f.badFrame()
			return
		}
		if !dec.DecodeRequest(payload, &req) {
			req = Request{}
			if err := json.Unmarshal(payload, &req); err != nil {
				// Framing is intact (the length field delimited the payload);
				// answer the tag and keep the connection.
				f.badFrame()
				sendTagged(tag, Response{Err: "bad frame: " + err.Error()})
				continue
			}
		}
		dispatched := req
		if dispatched.Record == &dec.rec {
			// The fast decoder's Record lives in its scratch, which the next
			// frame overwrites; the handler goroutine gets its own copy.
			rec := *dispatched.Record
			dispatched.Record = &rec
		}
		reqWG.Add(1)
		f.inflight(1)
		go func(tag uint64, req Request) {
			defer reqWG.Done()
			sendTagged(tag, f.Handle(req))
			f.inflight(-1)
		}(tag, dispatched)
	}
}

func (f *FrameServer) badFrame() {
	if f.OnBadFrame != nil {
		f.OnBadFrame()
	}
}

func (f *FrameServer) inflight(d int64) {
	if f.OnInflight != nil {
		f.OnInflight(d)
	}
}

// readLine reads one newline-terminated line with a hard size cap, so a
// client cannot make the server buffer an unbounded line.
func readLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > maxLineBytes {
			return nil, errLineTooLong
		}
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, err
		}
	}
}
