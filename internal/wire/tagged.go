package wire

import (
	"errors"
	"io"
)

// This file is the tagged-frame protocol extension: a binary framing that
// lets one connection carry many in-flight requests with out-of-order
// completion. The line protocol stays the wire's lingua franca — every
// connection starts in line mode, and a client that wants pipelining sends
// an OpHello first (HelloRequest). A server that understands it answers
// with Response.Proto = TaggedProtoV1 and both ends switch to frames; an
// old server answers "unknown op" and the client stays in line mode, so
// old clients and old servers interoperate with new ones unchanged.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       2     magic "aF"
//	2       1     protocol version (TaggedProtoV1)
//	3       1     kind (FrameRequest | FrameResponse)
//	4       4     payload length (bytes; <= MaxFramePayload)
//	8       8     tag (correlates a response to its request)
//	16      n     payload (JSON-encoded Request or Response)
//
// The payload stays JSON: the framing buys correlation-by-tag and
// length-delimited reads (no per-byte newline scanning); the encoding
// stays debuggable. Tags are chosen by the sender of a request and echoed
// verbatim by the responder — they are per-connection, not global.

// TaggedProtoV1 is the protocol version negotiated by OpHello.
const TaggedProtoV1 = 1

// Frame kinds.
const (
	FrameRequest  byte = 1
	FrameResponse byte = 2
)

// FrameHeaderSize is the fixed header length preceding every payload.
const FrameHeaderSize = 16

// MaxFramePayload caps one frame's payload — larger than any legitimate
// request (snapshot ships stay on line mode today), small enough that a
// hostile length field cannot make the server allocate gigabytes.
const MaxFramePayload = 16 << 20

const (
	frameMagic0 = 'a'
	frameMagic1 = 'F'
)

// Frame decode errors. Sentinels, not fmt-built: the decode path is a
// hot path and the caller drops the connection on any of them anyway.
var (
	ErrBadFrameHeader = errors.New("wire: bad frame header")
	ErrFrameTooLarge  = errors.New("wire: frame payload exceeds MaxFramePayload")
	ErrBadFrameKind   = errors.New("wire: unknown frame kind")
)

// HelloRequest is the line-mode request a client sends first on a
// connection to negotiate the tagged protocol. The server answers with
// Response.Proto = TaggedProtoV1 on success; any error response means the
// peer does not speak frames and the connection stays in line mode. The
// request offers this build's capability bits (trace context, ...); the
// server grants the intersection in Response.Caps — an old server leaves
// it zero and everything it implies simply stays off.
func HelloRequest() Request {
	return Request{Op: OpHello, Proto: TaggedProtoV1, Caps: SupportedCaps}
}

// PutFrameHeader writes a frame header into dst, which must be at least
// FrameHeaderSize bytes. n is the payload length that follows.
//
//anufs:hotpath
func PutFrameHeader(dst []byte, kind byte, tag uint64, n int) {
	_ = dst[FrameHeaderSize-1]
	dst[0] = frameMagic0
	dst[1] = frameMagic1
	dst[2] = TaggedProtoV1
	dst[3] = kind
	dst[4] = byte(n >> 24)
	dst[5] = byte(n >> 16)
	dst[6] = byte(n >> 8)
	dst[7] = byte(n)
	dst[8] = byte(tag >> 56)
	dst[9] = byte(tag >> 48)
	dst[10] = byte(tag >> 40)
	dst[11] = byte(tag >> 32)
	dst[12] = byte(tag >> 24)
	dst[13] = byte(tag >> 16)
	dst[14] = byte(tag >> 8)
	dst[15] = byte(tag)
}

// ParseFrameHeader decodes a frame header: kind, tag, and payload length.
// It rejects bad magic or version, unknown kinds, and oversized lengths —
// the caller must drop the connection on error, since framing is lost.
//
//anufs:hotpath
func ParseFrameHeader(hdr []byte) (kind byte, tag uint64, n int, err error) {
	if len(hdr) < FrameHeaderSize {
		return 0, 0, 0, ErrBadFrameHeader
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 || hdr[2] != TaggedProtoV1 {
		return 0, 0, 0, ErrBadFrameHeader
	}
	kind = hdr[3]
	if kind != FrameRequest && kind != FrameResponse {
		return 0, 0, 0, ErrBadFrameKind
	}
	n = int(uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7]))
	if n > MaxFramePayload {
		return 0, 0, 0, ErrFrameTooLarge
	}
	tag = uint64(hdr[8])<<56 | uint64(hdr[9])<<48 | uint64(hdr[10])<<40 | uint64(hdr[11])<<32 |
		uint64(hdr[12])<<24 | uint64(hdr[13])<<16 | uint64(hdr[14])<<8 | uint64(hdr[15])
	return kind, tag, n, nil
}

// FrameWriter writes tagged frames. Not safe for concurrent use; callers
// serialize writes (one writer mutex per connection).
type FrameWriter struct {
	w   io.Writer
	hdr [FrameHeaderSize]byte
}

// NewFrameWriter wraps w (typically a *bufio.Writer the caller flushes).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// WriteFrame writes one frame. The header buffer is reused across calls,
// so a frame write allocates nothing beyond what w does.
//
//anufs:hotpath
func (fw *FrameWriter) WriteFrame(kind byte, tag uint64, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	PutFrameHeader(fw.hdr[:], kind, tag, len(payload))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// FrameReader reads tagged frames, reusing one payload buffer across
// reads: the returned payload is only valid until the next ReadFrame.
type FrameReader struct {
	r   io.Reader
	hdr [FrameHeaderSize]byte
	buf []byte
}

// NewFrameReader wraps r (typically a *bufio.Reader).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadFrame reads one frame. On any error the stream's framing must be
// considered lost and the connection dropped. The payload slice aliases
// the reader's internal buffer — decode it before the next call.
//
//anufs:hotpath
func (fr *FrameReader) ReadFrame() (kind byte, tag uint64, payload []byte, err error) {
	if _, err = io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	kind, tag, n, err := ParseFrameHeader(fr.hdr[:])
	if err != nil {
		return 0, 0, nil, err
	}
	if n > cap(fr.buf) {
		fr.grow(n)
	}
	payload = fr.buf[:n]
	if _, err = io.ReadFull(fr.r, payload); err != nil {
		return 0, 0, nil, err
	}
	return kind, tag, payload, nil
}

// grow replaces the payload buffer. Off the hot path by design: steady
// state reuses one buffer sized by the largest frame seen.
func (fr *FrameReader) grow(n int) {
	fr.buf = make([]byte, n)
}
