package wire

import (
	"math/rand"
	"time"
)

// Backoff produces exponentially growing, jittered retry delays — the
// shared reconnect policy for everything that re-dials a wire peer
// (replica.Shipper, fleet.Router). Jitter (±25%) keeps a fleet of clients
// that lost the same daemon from re-dialing in lockstep.
//
// A Backoff is cheap (two durations and a cursor) and NOT safe for
// concurrent use; give each retry loop its own.
type Backoff struct {
	// Base is the first delay; Max caps the growth. NewBackoff fills
	// defaults for zero values.
	Base, Max time.Duration
	cur       time.Duration
}

// DefaultBackoffBase and DefaultBackoffMax are the zero-value defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// NewBackoff returns a backoff starting at base and doubling up to max
// (zero values take the defaults; max below base is raised to base).
func NewBackoff(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max}
}

// Next returns the next delay: the current step jittered by ±25%, after
// which the step doubles (capped at Max).
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Base
		if b.cur <= 0 {
			b.cur = DefaultBackoffBase
		}
	}
	d := b.cur
	b.cur *= 2
	max := b.Max
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if b.cur > max {
		b.cur = max
	}
	// Jitter in [0.75d, 1.25d).
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Reset returns the backoff to its base step — call after a successful
// round trip so the next failure starts the ladder over.
func (b *Backoff) Reset() { b.cur = 0 }
