package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"anufs/internal/live"
	"anufs/internal/lockmgr"
	"anufs/internal/namespace"
	"anufs/internal/sharedisk"
)

// Server exposes a live.Cluster over TCP. One goroutine per connection
// reads frames; each request is served on its own goroutine so a slow
// metadata operation does not head-of-line-block the connection's other
// requests (responses are correlated by ID, not order).
type Server struct {
	cluster *live.Cluster
	ns      *namespace.Table

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
	// journalStats, when set, supplies journal counters for OpStats.
	journalStats func() map[string]int64
}

// NewServer wraps a cluster. The caller retains ownership of the cluster
// (Close does not stop it).
func NewServer(c *live.Cluster) *Server {
	return &Server{cluster: c, ns: namespace.New(), conns: map[net.Conn]struct{}{}}
}

// SetJournalStats registers a source of journal counters to include in
// stats replies (anufsd passes the journal's CounterSet snapshot). Call
// before Listen.
func (s *Server) SetJournalStats(fn func() map[string]int64) {
	s.mu.Lock()
	s.journalStats = fn
	s.mu.Unlock()
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port)
// and returns the bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.handlers.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.handlers.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp Response) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = enc.Encode(resp) // write errors surface as reader EOF
	}
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(Response{Err: "bad frame: " + err.Error()})
			continue
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			send(s.handle(req))
		}()
	}
}

func (s *Server) handle(req Request) Response {
	resp := Response{ID: req.ID}
	fail := func(err error) Response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case OpCreateFileSet:
		if err := s.cluster.CreateFileSet(req.FileSet); err != nil {
			return fail(err)
		}
	case OpCreate:
		rec := sharedisk.Record{}
		if req.Record != nil {
			rec = *req.Record
		}
		if err := s.cluster.Create(req.FileSet, req.Path, rec); err != nil {
			return fail(err)
		}
	case OpStat:
		rec, err := s.cluster.Stat(req.FileSet, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Record = &rec
	case OpUpdate:
		if req.Record == nil {
			return fail(errors.New("wire: update needs a record"))
		}
		if err := s.cluster.Update(req.FileSet, req.Path, *req.Record); err != nil {
			return fail(err)
		}
	case OpRemove:
		if err := s.cluster.Remove(req.FileSet, req.Path); err != nil {
			return fail(err)
		}
	case OpList:
		paths, err := s.cluster.List(req.FileSet, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Paths = paths
	case OpOwner:
		resp.Owner = s.cluster.Owner(req.FileSet)
	case OpRegister:
		resp.Client = uint64(s.cluster.RegisterClient())
	case OpLock:
		mode := lockmgr.Shared
		if req.Exclusive {
			mode = lockmgr.Exclusive
		}
		if err := s.cluster.Lock(lockmgr.SessionID(req.Client), req.FileSet, req.Path, mode); err != nil {
			return fail(err)
		}
	case OpUnlock:
		if err := s.cluster.Unlock(lockmgr.SessionID(req.Client), req.FileSet, req.Path); err != nil {
			return fail(err)
		}
	case OpRenew:
		s.cluster.RenewClient(lockmgr.SessionID(req.Client))
	case OpStats:
		for _, st := range s.cluster.Stats() {
			resp.Stats = append(resp.Stats, ServerStat{
				ID:        st.ID,
				Speed:     st.Speed,
				ShareFrac: st.ShareFrac,
				Served:    st.Served,
				Owned:     len(st.Owned),
			})
		}
		s.mu.Lock()
		js := s.journalStats
		s.mu.Unlock()
		if js != nil {
			resp.Journal = js()
		}
	case OpSync:
		if err := s.cluster.CheckpointAll(); err != nil {
			return fail(err)
		}
	case OpMount:
		if err := s.ns.Mount(req.Prefix, req.FileSet); err != nil {
			return fail(err)
		}
	case OpUnmount:
		if err := s.ns.Unmount(req.Prefix); err != nil {
			return fail(err)
		}
	case OpResolve:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.FileSet, resp.Rel = fs, rel
	case OpPCreate:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		rec := sharedisk.Record{}
		if req.Record != nil {
			rec = *req.Record
		}
		if err := s.cluster.Create(fs, rel, rec); err != nil {
			return fail(err)
		}
	case OpPStat:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		rec, err := s.cluster.Stat(fs, rel)
		if err != nil {
			return fail(err)
		}
		resp.Record = &rec
	case OpPRemove:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		if err := s.cluster.Remove(fs, rel); err != nil {
			return fail(err)
		}
	case OpMapping:
		data, err := s.cluster.MappingConfig()
		if err != nil {
			return fail(err)
		}
		resp.Mapping = data
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}
