package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/live"
	"anufs/internal/lockmgr"
	"anufs/internal/metrics"
	"anufs/internal/namespace"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
)

// Wire server counter names, exported via the obs registry and OpStats.
const (
	CtrRequests   = "wire_requests"
	CtrErrors     = "wire_errors"
	CtrSlow       = "wire_slow_requests"
	CtrBadFrames  = "wire_bad_frames"
	CtrBatches    = "wire_batches"
	CtrBatchItems = "wire_batch_items"
)

// DefaultSlowThreshold classifies a request as slow for the
// wire_slow_requests counter; override with SetSlowThreshold.
const DefaultSlowThreshold = 500 * time.Millisecond

// connState is one connection's request accounting (see ConnStat).
type connState struct {
	remote    string
	requests  atomic.Int64
	errors    atomic.Int64
	slow      atomic.Int64
	badFrames atomic.Int64
	// inflight counts requests admitted but not yet answered on this
	// connection — with the tagged protocol one connection carries many.
	inflight atomic.Int64
}

// Server exposes a live.Cluster over TCP. One goroutine per connection
// reads frames; each request is served on its own goroutine so a slow
// metadata operation does not head-of-line-block the connection's other
// requests (responses are correlated by ID, not order).
//
// Every request is traced: the server mints a trace ID (unless the client
// supplied one), times the handler into a per-op latency histogram, emits a
// "wire" span, and echoes the ID in the response so the client can fetch
// the request's full span timeline with OpTrace.
type Server struct {
	cluster *live.Cluster
	ns      *namespace.Table
	obs     *obs.Registry

	counters *metrics.CounterSet
	slow     time.Duration
	// histDepth observes the connection's pipeline depth at each
	// admission and histBatch the item count of each OpBatch. Both encode
	// a unitless count as nanoseconds (obs histograms observe durations):
	// bucket boundaries read directly as counts.
	histDepth *obs.Histogram
	histBatch *obs.Histogram

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	handlers sync.WaitGroup
	// closedAgg folds the accounting of disconnected connections (whose
	// conns entries are reaped on close) into one retained aggregate, so
	// per-connection totals survive connection churn with O(1) state.
	closedAgg   ConnStat
	closedConns int64
	// journalStats, when set, supplies journal counters for OpStats.
	journalStats func() map[string]int64
	// fleet, when set, fences file-set ops against the cluster map and
	// serves the fleet ops (SetFleet).
	fleet FleetHandler
	// volStats is the per-tenant RED accounting for file-set-addressed
	// requests, keyed by the volume of the request's file set (the prefix
	// of its qualified ID). Exposed as labeled gauges on /metrics and as a
	// latency histogram labeled volume=... — one scrape answers "which
	// tenant is hot and which tenant is being throttled".
	volStats map[string]*volStat
}

// volStat is one volume's request accounting.
type volStat struct {
	requests     int64
	errors       int64
	quotaDenials int64
}

// NewServer wraps a cluster. The caller retains ownership of the cluster
// (Close does not stop it). The server records into the cluster's obs
// registry, so one /metrics scrape covers the wire layer, the owner
// queues, and (when the daemon shares the registry) the journal.
func NewServer(c *live.Cluster) *Server {
	s := &Server{
		cluster:  c,
		ns:       namespace.New(),
		obs:      c.Obs(),
		counters: metrics.NewCounterSet(),
		slow:     DefaultSlowThreshold,
		conns:    map[net.Conn]*connState{},
		volStats: map[string]*volStat{},
	}
	s.histDepth = s.obs.Hist.Get("wire_pipeline_depth", "")
	s.histBatch = s.obs.Hist.Get("wire_batch_items", "")
	s.obs.AddCounters(s.counters.Snapshot)
	s.obs.AddGauges(func() []obs.Gauge {
		s.mu.Lock()
		n, nc := len(s.conns), s.closedConns
		var inflight int64
		for _, cs := range s.conns {
			inflight += cs.inflight.Load()
		}
		s.mu.Unlock()
		return []obs.Gauge{
			{Name: "wire_open_connections", Value: float64(n)},
			{Name: "wire_closed_connections", Value: float64(nc)},
			{Name: "wire_inflight_requests", Value: float64(inflight)},
		}
	})
	s.obs.AddGauges(func() []obs.Gauge {
		s.mu.Lock()
		defer s.mu.Unlock()
		vols := make([]string, 0, len(s.volStats))
		for v := range s.volStats {
			vols = append(vols, v)
		}
		sort.Strings(vols)
		out := make([]obs.Gauge, 0, 3*len(vols))
		for _, v := range vols {
			vs := s.volStats[v]
			label := fmt.Sprintf("volume=%q", v)
			out = append(out,
				obs.Gauge{Name: "volume_requests", Labels: label, Value: float64(vs.requests)},
				obs.Gauge{Name: "volume_errors", Labels: label, Value: float64(vs.errors)},
				obs.Gauge{Name: "volume_quota_denials", Labels: label, Value: float64(vs.quotaDenials)},
			)
		}
		return out
	})
	return s
}

// SetSlowThreshold overrides the latency above which a request counts as
// slow. Call before Listen.
func (s *Server) SetSlowThreshold(d time.Duration) {
	s.mu.Lock()
	s.slow = d
	s.mu.Unlock()
}

// SetJournalStats registers a source of journal counters to include in
// stats replies (anufsd passes the journal's CounterSet snapshot). Call
// before Listen.
func (s *Server) SetJournalStats(fn func() map[string]int64) {
	s.mu.Lock()
	s.journalStats = fn
	s.mu.Unlock()
}

// SetFleet puts the server in fleet mode: every file-set-addressed
// operation passes h.Gate before dispatch (wrong-owner fencing), and the
// fleet ops (map/map-epoch/adopt/handoff/assign/rebalance) dispatch to
// h.Fleet. Call before Listen.
func (s *Server) SetFleet(h FleetHandler) {
	s.mu.Lock()
	s.fleet = h
	s.mu.Unlock()
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port)
// and returns the bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.handlers.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.handlers.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		cs := &connState{remote: conn.RemoteAddr().String()}
		s.conns[conn] = cs
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.serveConn(conn, cs)
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
}

func (s *Server) serveConn(conn net.Conn, cs *connState) {
	defer s.handlers.Done()
	defer func() {
		conn.Close()
		// Reap the per-connection entry but keep its totals: fold them into
		// the closed-connection aggregate under the same lock, so stats
		// never double-count a connection mid-teardown and the map stays
		// bounded by the number of LIVE connections.
		s.mu.Lock()
		delete(s.conns, conn)
		s.closedConns++
		s.closedAgg.Requests += cs.requests.Load()
		s.closedAgg.Errors += cs.errors.Load()
		s.closedAgg.Slow += cs.slow.Load()
		s.closedAgg.BadFrames += cs.badFrames.Load()
		s.mu.Unlock()
	}()
	fs := &FrameServer{
		Handle: func(req Request) Response { return s.serve(cs, req) },
		OnBadFrame: func() {
			s.counters.Add(CtrBadFrames, 1)
			cs.badFrames.Add(1)
		},
		OnInflight: func(d int64) {
			n := cs.inflight.Add(d)
			if d > 0 {
				s.histDepth.Observe(time.Duration(n))
			}
		},
	}
	fs.Serve(conn)
}

// serve instruments one request around handle: per-op latency histogram,
// request/error/slow counters (global and per connection), and — except for
// the observability ops themselves — a trace ID and a "wire" span.
func (s *Server) serve(cs *connState, req Request) Response {
	start := time.Now()
	// OpTrace/OpTunerLog/OpTracePull inspect traces rather than participate
	// in them (they reuse the Trace field to address the target trace).
	observer := req.Op == OpTrace || req.Op == OpTunerLog || req.Op == OpTracePull
	var trace uint64
	if !observer {
		trace = req.Trace
		if trace == 0 {
			trace = s.obs.NextTraceID()
		}
	}
	resp := s.handle(trace, req)
	dur := time.Since(start)
	op := string(req.Op)
	s.obs.Hist.Get("wire_request_seconds", fmt.Sprintf("op=%q", op)).ObserveTrace(dur, trace)
	s.counters.Add(CtrRequests, 1)
	cs.requests.Add(1)
	if resp.Err != "" {
		s.counters.Add(CtrErrors, 1)
		cs.errors.Add(1)
	}
	if req.FileSet != "" {
		// Per-tenant RED: rate and errors by volume (latency rides the
		// histogram below). Quota denials are broken out — they are the
		// throttle working, not the tenant failing.
		vol := namespace.VolumeOf(req.FileSet)
		s.obs.Hist.Get("volume_request_seconds", fmt.Sprintf("volume=%q", vol)).Observe(dur)
		s.mu.Lock()
		vs := s.volStats[vol]
		if vs == nil {
			vs = &volStat{}
			s.volStats[vol] = vs
		}
		vs.requests++
		if resp.Err != "" {
			vs.errors++
			if resp.Code == CodeQuotaExceeded {
				vs.quotaDenials++
			}
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	slow := s.slow
	s.mu.Unlock()
	if dur >= slow {
		s.counters.Add(CtrSlow, 1)
		cs.slow.Add(1)
	}
	if !observer {
		resp.Trace = trace
		// The wire span carries the propagated context: its Parent is the
		// upstream hop's span ID (a gateway or sdk client), and its own ID
		// lets further hops parent under it.
		s.obs.Spans.Add(obs.Span{
			Trace: trace, Name: "wire", Op: op, FileSet: req.FileSet,
			Server: -1, Start: start, Dur: dur, Err: resp.Err,
			ID: s.obs.NextSpanID(), Parent: req.Parent,
		})
		// Over-budget requests go to the flight recorder now that every
		// span of the trace this node will record is in the ring.
		s.obs.Slow.MaybePromote(s.obs.Spans, trace, op, dur)
	}
	return resp
}

// connStats snapshots per-connection accounting, sorted by remote address.
func (s *Server) connStats() []ConnStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ConnStat, 0, len(s.conns))
	for _, cs := range s.conns {
		out = append(out, ConnStat{
			Remote:    cs.remote,
			Requests:  cs.requests.Load(),
			Errors:    cs.errors.Load(),
			Slow:      cs.slow.Load(),
			BadFrames: cs.badFrames.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Remote < out[j].Remote })
	return out
}

func (s *Server) handle(trace uint64, req Request) Response {
	resp := Response{ID: req.ID}
	fail := func(err error) Response {
		resp.Err = err.Error()
		return resp
	}
	s.mu.Lock()
	fleet := s.fleet
	s.mu.Unlock()
	switch req.Op {
	case OpMap, OpMapEpoch, OpAdopt, OpHandoff, OpAssign, OpRebalance,
		OpJoin, OpLeave, OpHeartbeat, OpTakeover,
		OpVolumeCreate, OpVolumeDelete, OpVolumeList, OpVolumeSetQuota, OpVolumeSetPolicy:
		if fleet == nil {
			return fail(errors.New("wire: not in fleet mode (start anufsd with -fleet)"))
		}
		r := fleet.Fleet(req)
		r.ID = req.ID
		return r
	}
	if fleet != nil && gatedOp(req.Op) {
		release, err := fleet.Gate(req.Op, req.FileSet)
		if err != nil {
			// A wrong-owner rejection carries the rejecting daemon's epoch so
			// the client knows how fresh a map it needs before retrying; a
			// coded rejection (quota-exceeded) carries its machine-readable
			// code so the client can branch without string matching.
			if epoch, ok := IsWrongOwner(err); ok {
				resp.Epoch = epoch
			}
			resp.Code = ErrorCode(err)
			return fail(err)
		}
		defer release()
	}
	// Metadata operations go through the traced view, so queue-wait/apply
	// (and, for sync, journal) spans land under this request's trace.
	v := s.cluster.WithTrace(trace)
	switch req.Op {
	case OpPing:
		// Liveness no-op: connection pools health-check with it.
	case OpBatch:
		// Batches gate per touched file set inside handleBatch (the
		// generic gate above is single-file-set).
		return s.handleBatch(trace, fleet, req)
	case OpCreateFileSet:
		if err := s.cluster.CreateFileSet(req.FileSet); err != nil {
			return fail(err)
		}
	case OpCreate:
		rec := sharedisk.Record{}
		if req.Record != nil {
			rec = *req.Record
		}
		if err := v.Create(req.FileSet, req.Path, rec); err != nil {
			return fail(err)
		}
	case OpStat:
		rec, err := v.Stat(req.FileSet, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Record = &rec
	case OpUpdate:
		if req.Record == nil {
			return fail(errors.New("wire: update needs a record"))
		}
		if err := v.Update(req.FileSet, req.Path, *req.Record); err != nil {
			return fail(err)
		}
	case OpRemove:
		if err := v.Remove(req.FileSet, req.Path); err != nil {
			return fail(err)
		}
	case OpList:
		paths, err := v.List(req.FileSet, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Paths = paths
	case OpOwner:
		resp.Owner = s.cluster.Owner(req.FileSet)
	case OpRegister:
		resp.Client = uint64(s.cluster.RegisterClient())
	case OpLock:
		mode := lockmgr.Shared
		if req.Exclusive {
			mode = lockmgr.Exclusive
		}
		if err := s.cluster.Lock(lockmgr.SessionID(req.Client), req.FileSet, req.Path, mode); err != nil {
			return fail(err)
		}
	case OpUnlock:
		if err := s.cluster.Unlock(lockmgr.SessionID(req.Client), req.FileSet, req.Path); err != nil {
			return fail(err)
		}
	case OpRenew:
		s.cluster.RenewClient(lockmgr.SessionID(req.Client))
	case OpStats:
		for _, st := range s.cluster.Stats() {
			resp.Stats = append(resp.Stats, ServerStat{
				ID:        st.ID,
				Speed:     st.Speed,
				ShareFrac: st.ShareFrac,
				Served:    st.Served,
				Owned:     len(st.Owned),
			})
		}
		s.mu.Lock()
		js := s.journalStats
		s.mu.Unlock()
		if js != nil {
			resp.Journal = js()
		}
		resp.Wire = s.counters.Snapshot()
		resp.Conns = s.connStats()
		s.mu.Lock()
		if s.closedConns > 0 {
			agg := s.closedAgg
			resp.Closed, resp.ClosedConns = &agg, s.closedConns
		}
		s.mu.Unlock()
	case OpSync:
		if err := v.CheckpointAll(); err != nil {
			return fail(err)
		}
	case OpTrace:
		if req.Trace != 0 {
			resp.Spans = s.obs.Spans.ByTrace(req.Trace)
		} else {
			resp.Spans = s.obs.Spans.Snapshot(req.Count)
		}
	case OpTracePull:
		// The fleet stitcher's per-node pull: live ring plus flight
		// recorder (it dedupes), with identity and clock for skew.
		resp.Spans = s.obs.Spans.ByTrace(req.Trace)
		resp.Spans = append(resp.Spans, s.obs.Slow.ByTrace(req.Trace)...)
		resp.Node = s.obs.Node()
		resp.Now = time.Now().UnixNano()
	case OpTunerLog:
		resp.Tuner = s.obs.Tuner.Snapshot(req.Count)
	case OpMount:
		if err := s.ns.Mount(req.Prefix, req.FileSet); err != nil {
			return fail(err)
		}
	case OpUnmount:
		if err := s.ns.Unmount(req.Prefix); err != nil {
			return fail(err)
		}
	case OpResolve:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.FileSet, resp.Rel = fs, rel
	case OpPCreate:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		rec := sharedisk.Record{}
		if req.Record != nil {
			rec = *req.Record
		}
		if err := v.Create(fs, rel, rec); err != nil {
			return fail(err)
		}
	case OpPStat:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		rec, err := v.Stat(fs, rel)
		if err != nil {
			return fail(err)
		}
		resp.Record = &rec
	case OpPRemove:
		fs, rel, err := s.ns.Resolve(req.Path)
		if err != nil {
			return fail(err)
		}
		if err := v.Remove(fs, rel); err != nil {
			return fail(err)
		}
	case OpMapping:
		data, err := s.cluster.MappingConfig()
		if err != nil {
			return fail(err)
		}
		resp.Mapping = data
	case OpShip, OpShipStatus:
		// Replication ops land on standby daemons (internal/replica); a
		// serving cluster refuses them so a misconfigured -replicate-to
		// pointing at a live primary fails loudly instead of wedging.
		return fail(errors.New("wire: not a standby (replication ops need a -standby daemon)"))
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}

// handleBatch serves OpBatch: validate, gate every touched file set (in
// fleet mode), then apply each file set's items as ONE owner-queue task —
// the server-side half of client batching. Admission is all-or-nothing: a
// single wrong-owner file set rejects the whole batch before anything is
// applied, so the client retries the batch intact after a map refetch and
// no partially-admitted batch can be acknowledged.
func (s *Server) handleBatch(trace uint64, fleet FleetHandler, req Request) Response {
	resp := Response{ID: req.ID}
	fail := func(err error) Response {
		resp.Err = err.Error()
		return resp
	}
	n := len(req.Batch)
	if n == 0 {
		return fail(errors.New("wire: empty batch"))
	}
	if n > MaxBatchItems {
		return fail(fmt.Errorf("wire: batch of %d items exceeds the limit of %d", n, MaxBatchItems))
	}
	// Group items by file set, preserving first-appearance order so
	// gating is deterministic.
	var order []string
	groups := map[string][]int{}
	for i := range req.Batch {
		it := &req.Batch[i]
		if !BatchableOp(it.Op) {
			return fail(fmt.Errorf("wire: op %q is not batchable", it.Op))
		}
		fs := it.FileSet
		if fs == "" {
			fs = req.FileSet
		}
		if fs == "" {
			return fail(errors.New("wire: batch item names no file set"))
		}
		if _, seen := groups[fs]; !seen {
			order = append(order, fs)
		}
		groups[fs] = append(groups[fs], i)
	}
	if fleet != nil {
		var releases []func()
		defer func() {
			for _, r := range releases {
				r()
			}
		}()
		for _, fs := range order {
			release, err := fleet.Gate(OpBatch, fs)
			if err != nil {
				if epoch, ok := IsWrongOwner(err); ok {
					resp.Epoch = epoch
				}
				resp.Code = ErrorCode(err)
				return fail(err)
			}
			releases = append(releases, release)
		}
	}
	v := s.cluster.WithTrace(trace)
	results := make([]BatchResult, n)
	for _, fs := range order {
		idx := groups[fs]
		ops := make([]live.BatchOp, len(idx))
		for j, i := range idx {
			it := req.Batch[i]
			ops[j] = live.BatchOp{Kind: string(it.Op), Path: it.Path}
			if it.Record != nil {
				ops[j].Rec = *it.Record
			}
		}
		outs, err := v.Batch(fs, ops)
		if err != nil {
			// Routing-level failure (file set mid-move past the retry
			// budget): every item of this file set fails; others proceed.
			for _, i := range idx {
				results[i] = BatchResult{Err: err.Error()}
			}
			continue
		}
		for j, i := range idx {
			if outs[j].Err != nil {
				results[i].Err = outs[j].Err.Error()
			}
			results[i].Record = outs[j].Rec
		}
	}
	if req.Durable {
		// One checkpoint per touched file set: concurrent batches fold
		// into the journal's group commit, so N batches cost ~1 fsync.
		for _, fs := range order {
			if err := v.Checkpoint(fs); err != nil {
				return fail(fmt.Errorf("wire: batch checkpoint of %q: %w", fs, err))
			}
		}
	}
	s.counters.Add(CtrBatches, 1)
	s.counters.Add(CtrBatchItems, int64(n))
	s.histBatch.Observe(time.Duration(n))
	s.linkFoldedItems(trace, req, results)
	resp.Results = results
	return resp
}

// linkFoldedItems preserves per-op traces across client-side batch
// folding: each folded item that carried its own trace ID gets a
// "batch-fold" span on ITS trace linking to the enclosing batch's trace,
// and the batch's trace gets one span linking back to every folded item.
// Either trace ID then leads the fleet stitcher to the other.
func (s *Server) linkFoldedItems(trace uint64, req Request, results []BatchResult) {
	var itemTraces []uint64
	now := time.Now()
	for i := range req.Batch {
		it := &req.Batch[i]
		if it.Trace == 0 || it.Trace == trace {
			continue
		}
		fs := it.FileSet
		if fs == "" {
			fs = req.FileSet
		}
		errStr := ""
		if i < len(results) {
			errStr = results[i].Err
		}
		s.obs.Spans.Add(obs.Span{
			Trace: it.Trace, Name: "batch-fold", Op: string(it.Op), FileSet: fs,
			Server: -1, Start: now, Err: errStr, Links: []uint64{trace},
		})
		itemTraces = append(itemTraces, it.Trace)
	}
	if len(itemTraces) > 0 {
		s.obs.Spans.Add(obs.Span{
			Trace: trace, Name: "batch-fold", Op: string(OpBatch), FileSet: req.FileSet,
			Server: -1, Start: now, Links: itemTraces,
		})
	}
}
