package wire

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

// TestRequestTracing drives typed operations and checks the full span
// pipeline: the server mints a trace ID, echoes it, and the trace's
// timeline (wire → queue-wait → apply) is retrievable over the wire.
func TestRequestTracing(t *testing.T) {
	c, cl := startServer(t, 2)
	if err := c.Create("fs00", "/traced", sharedisk.Record{Size: 7}); err != nil {
		t.Fatal(err)
	}
	trace := c.LastTrace()
	if trace == 0 {
		t.Fatal("server did not echo a trace ID")
	}
	spans, err := c.Trace(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Fatalf("span from wrong trace: %+v", sp)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"wire", "queue-wait", "apply"} {
		if !names[want] {
			t.Fatalf("trace %d missing %q span; got %v", trace, want, names)
		}
	}
	// The per-op histogram recorded the request.
	h := cl.Obs().Hist.Get("wire_request_seconds", `op="create"`)
	if h.Summarize().Count == 0 {
		t.Fatal("create latency histogram empty")
	}
	// Snapshot mode (trace 0) returns recent spans across traces.
	recent, err := c.Trace(0, 4)
	if err != nil || len(recent) == 0 {
		t.Fatalf("Trace(0, 4) = %d spans, %v", len(recent), err)
	}
}

// TestConnCounters feeds a malformed frame, a failing request, and a good
// request through one raw connection, then checks that both the aggregate
// wire counters and the per-connection breakdown account for all three —
// the details the server used to drop silently.
func TestConnCounters(t *testing.T) {
	c, _ := startServer(t, 1)
	addr := c.conn.RemoteAddr().String()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	sc := bufio.NewScanner(raw)
	send := func(line string) Response {
		if _, err := raw.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no response to %q: %v", line, sc.Err())
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("bad response to %q: %v", line, err)
		}
		return resp
	}

	if resp := send(`{"id":1,`); !strings.HasPrefix(resp.Err, "bad frame") {
		t.Fatalf("malformed frame answered %+v", resp)
	}
	if resp := send(`{"id":2,"op":"stat","fileset":"fs00","path":"/missing"}`); resp.Err == "" {
		t.Fatal("stat of missing path succeeded")
	}
	if resp := send(`{"id":3,"op":"owner","fileset":"fs00"}`); resp.Err != "" {
		t.Fatalf("owner failed: %s", resp.Err)
	}

	ws, conns, err := c.WireStats()
	if err != nil {
		t.Fatal(err)
	}
	if ws[CtrBadFrames] < 1 {
		t.Fatalf("bad frame not counted: %v", ws)
	}
	if ws[CtrErrors] < 1 {
		t.Fatalf("request error not counted: %v", ws)
	}
	if ws[CtrRequests] < 2 {
		t.Fatalf("requests not counted: %v", ws)
	}
	// The raw connection's own row must carry its bad frame and error.
	local := raw.LocalAddr().String()
	var row *ConnStat
	for i := range conns {
		if conns[i].Remote == local {
			row = &conns[i]
		}
	}
	if row == nil {
		t.Fatalf("no ConnStat for %s in %+v", local, conns)
	}
	if row.BadFrames != 1 || row.Errors != 1 || row.Requests != 2 {
		t.Fatalf("per-conn accounting wrong: %+v", *row)
	}
}

// TestSlowRequestCounter lowers the slow threshold to zero so every request
// counts as slow.
func TestSlowRequestCounter(t *testing.T) {
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cl)
	srv.SetSlowThreshold(0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Stop()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Owner("fs00"); err != nil {
		t.Fatal(err)
	}
	ws, _, err := c.WireStats()
	if err != nil {
		t.Fatal(err)
	}
	if ws[CtrSlow] < 1 {
		t.Fatalf("zero threshold counted no slow requests: %v", ws)
	}
}
