package wire

import (
	"errors"
	"fmt"
	"testing"
)

// TestQuotaExceededCoding pins the machine-readable error vocabulary
// tenants script against: a quota rejection stays typed through wrapping
// on the server side and through the Response.Code round trip on the
// client side — never through string matching.
func TestQuotaExceededCoding(t *testing.T) {
	base := errors.New(`fleet: volume "acme" at its file-set quota (4 of 4)`)
	err := QuotaExceeded(base)
	if !IsQuotaExceeded(err) {
		t.Fatal("QuotaExceeded error not recognized by IsQuotaExceeded")
	}
	if ErrorCode(err) != CodeQuotaExceeded {
		t.Fatalf("ErrorCode = %q, want %q", ErrorCode(err), CodeQuotaExceeded)
	}
	// Wrapping (as routers and retries do) must not strip the code.
	wrapped := fmt.Errorf("route attempt 2: %w", err)
	if !IsQuotaExceeded(wrapped) {
		t.Fatal("wrapping stripped the quota-exceeded code")
	}
	if err.Error() != base.Error() {
		t.Fatalf("coded error changed the message: %q", err.Error())
	}
	// Ordinary errors carry no code.
	if IsQuotaExceeded(base) || ErrorCode(base) != "" {
		t.Fatal("uncoded error reported a code")
	}
}

// TestQuotaExceededSurvivesResponseRoundTrip: the server stamps
// Response.Code from the error chain; ResponseError rebuilds the typed
// error on the far side, exactly as both the wire and sdk clients decode
// responses.
func TestQuotaExceededSurvivesResponseRoundTrip(t *testing.T) {
	server := QuotaExceeded(errors.New(`fleet: volume "acme" over its op-rate quota (50 ops/s per daemon)`))
	resp := Response{Err: server.Error(), Code: ErrorCode(server)}
	client := ResponseError(resp)
	if client == nil {
		t.Fatal("ResponseError dropped the error")
	}
	if !IsQuotaExceeded(client) {
		t.Fatalf("decoded error lost its code: %v", client)
	}
	if client.Error() != server.Error() {
		t.Fatalf("message drifted across the wire: %q vs %q", client.Error(), server.Error())
	}
	// A response without a code decodes to an untyped error.
	if IsQuotaExceeded(ResponseError(Response{Err: "boom"})) {
		t.Fatal("uncoded response decoded as quota-exceeded")
	}
}
