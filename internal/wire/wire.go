// Package wire puts the live ANU cluster on the network: a small
// newline-delimited JSON protocol over TCP, a server that fronts a
// live.Cluster, and a client with typed methods for every metadata and
// lock operation.
//
// In the paper's architecture (§2) clients obtain metadata and locks from
// the file servers over the LAN and then go straight to shared disks for
// data; this package is that metadata/lock path. The protocol is
// deliberately plain — one JSON request per line, one JSON response per
// line, correlated by ID — so it can be driven with netcat when debugging.
package wire

import (
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
)

// Op enumerates protocol operations.
type Op string

// Protocol operations.
const (
	OpCreateFileSet Op = "create-fileset"
	OpCreate        Op = "create"
	OpStat          Op = "stat"
	OpUpdate        Op = "update"
	OpRemove        Op = "remove"
	OpList          Op = "list"
	OpOwner         Op = "owner"
	OpRegister      Op = "register"
	OpLock          Op = "lock"
	OpUnlock        Op = "unlock"
	OpRenew         Op = "renew"
	OpStats         Op = "stats"
	// Namespace operations: the global-path view of the cluster. Mount
	// binds a namespace subtree to a file set; the P-prefixed ops address
	// records by global path and resolve through the mount table
	// server-side (paper §2: a file set is a subtree of the global
	// namespace).
	OpMount   Op = "mount"
	OpUnmount Op = "unmount"
	OpResolve Op = "resolve"
	OpPCreate Op = "pcreate"
	OpPStat   Op = "pstat"
	OpPRemove Op = "premove"
	// OpMapping fetches the replicated routing configuration (paper §5):
	// clients cache it and resolve file-set owners locally.
	OpMapping Op = "mapping"
	// OpSync checkpoints every file set to shared disk — the durability
	// barrier: once it returns without error, all earlier metadata writes
	// are flushed (and journaled, when the daemon runs with -journal-dir).
	OpSync Op = "sync"
	// OpTrace dumps request trace spans: the spans of one trace (Request.
	// Trace set) or the most recent Count spans across all traces.
	OpTrace Op = "trace"
	// OpTracePull is OpTrace's fleet-facing sibling: it returns one trace's
	// spans from this node's live ring AND its slow-trace flight recorder,
	// plus the node's identity and wall clock (Response.Node/Now) so the
	// cross-node stitcher can annotate clock skew. Served by daemons,
	// gateways, and standby receivers.
	OpTracePull Op = "trace-pull"
	// OpTunerLog dumps the most recent Count structured tuner decision
	// events (all retained when Count is 0).
	OpTunerLog Op = "tuner-log"
	// Replication operations, served by standby daemons (internal/replica):
	// OpShip delivers a batch of journal entries (or a full snapshot cut)
	// from the primary; an empty ship is a liveness heartbeat renewing the
	// primary's lease. OpShipStatus asks the standby how far it has durably
	// applied — the sequence-based resume point after a reconnect. Both
	// reply with AckSeq; a non-standby server rejects them.
	OpShip       Op = "ship"
	OpShipStatus Op = "ship-status"
	// Fleet operations (internal/fleet): OpMap fetches the encoded
	// epoch-numbered cluster map; OpMapEpoch fetches just the epoch (cheap
	// staleness probe). OpAdopt delivers a donated file set's image to its
	// new owner during a handoff; OpHandoff tells a donor daemon to donate a
	// file set to another daemon; OpAssign pins a file set to a daemon and
	// OpRebalance recomputes the whole assignment — both are authority-only.
	OpMap       Op = "map"
	OpMapEpoch  Op = "map-epoch"
	OpAdopt     Op = "adopt"
	OpHandoff   Op = "handoff"
	OpAssign    Op = "assign"
	OpRebalance Op = "rebalance"
	// Fleet membership operations (authority-only except OpTakeover).
	// OpJoin registers a daemon with the authority at runtime — no fleet
	// restart; the reply carries the new map. OpLeave gracefully
	// decommissions a daemon: the authority hands its file sets off to the
	// remaining daemons first. OpHeartbeat renews a member's liveness lease
	// at the authority (and doubles as the cheap epoch probe: the reply
	// carries the authority's current epoch). OpTakeover is the failover op
	// the authority sends to a file set's NEW owner after declaring the old
	// one dead: the recipient replays the victim's journal tail from shared
	// disk before adopting, so acked writes survive the victim's kill -9.
	OpJoin      Op = "join"
	OpLeave     Op = "leave"
	OpHeartbeat Op = "heartbeat"
	OpTakeover  Op = "takeover"
	// Volume (multi-tenant) operations — authority-only, forwarded through
	// the fleet dispatch like OpAssign. OpVolumeCreate registers a tenant;
	// OpVolumeDelete removes an empty one; OpVolumeList returns every
	// volume's config plus the registry version; OpVolumeSetQuota updates a
	// tenant's file-set/op-rate quota and WFQ weight; OpVolumeSetPolicy
	// flips its placement policy between spread and pack. Every mutation
	// bumps the cluster-map epoch so the new registry rides the existing
	// publish/adopt pipeline to all members.
	OpVolumeCreate    Op = "volume-create"
	OpVolumeDelete    Op = "volume-delete"
	OpVolumeList      Op = "volume-list"
	OpVolumeSetQuota  Op = "volume-set-quota"
	OpVolumeSetPolicy Op = "volume-set-policy"
	// Tagged-protocol operations (internal/sdk is the primary client).
	// OpHello, sent as the first request on a connection, negotiates the
	// tagged-frame protocol (see tagged.go); OpPing is the no-op liveness
	// probe connection pools use for health checks; OpBatch applies many
	// small metadata writes in one frame — the server folds each file
	// set's items into a single owner-queue task (live.Cluster.Batch), so
	// a batch pays one queue wait and, with Request.Durable, one journal
	// group commit instead of one per item.
	OpHello Op = "hello"
	OpPing  Op = "ping"
	OpBatch Op = "batch"
)

// Capability bits negotiated via OpHello (Request.Caps offered by the
// client, Response.Caps the intersection the server accepted). They ride
// the existing hello exchange: old servers simply echo no caps and old
// clients offer none, so every mix of versions interoperates.
const (
	// CapTraceContext: the peer understands distributed trace context —
	// Request.Trace/Parent carried end to end (and inside tagged-frame
	// payloads), Response.Trace echoed, OpTracePull served.
	CapTraceContext uint64 = 1 << 0
)

// SupportedCaps is the capability set this build negotiates.
const SupportedCaps = CapTraceContext

// MaxBatchItems caps one OpBatch request — enough to amortize the
// round-trip and the owner-queue hop, small enough that one batch cannot
// monopolize a server's queue.
const MaxBatchItems = 1024

// BatchableOp reports whether an op may appear as an OpBatch item. Only
// the single-record metadata ops qualify: everything else has semantics
// (locks, namespace, fleet) that do not fold into a batch.
func BatchableOp(op Op) bool {
	switch op {
	case OpCreate, OpStat, OpUpdate, OpRemove:
		return true
	}
	return false
}

// BatchItem is one operation inside an OpBatch request. FileSet may be
// empty when the enclosing Request.FileSet names it (the common case: a
// client-side batcher coalesces per file set).
type BatchItem struct {
	Op      Op                `json:"op"`
	FileSet string            `json:"fileset,omitempty"`
	Path    string            `json:"path,omitempty"`
	Record  *sharedisk.Record `json:"record,omitempty"`
	// Trace is the folded-in op's own trace ID when the client minted one
	// before coalescing: the server emits a link span tying it to the
	// enclosing batch's trace so neither side of the fold loses the story.
	Trace uint64 `json:"trace,omitempty"`
}

// BatchResult is the per-item outcome of an OpBatch, index-aligned with
// the request's items. Record answers OpStat items.
type BatchResult struct {
	Err    string            `json:"err,omitempty"`
	Record *sharedisk.Record `json:"record,omitempty"`
}

// ShipEntry is one replicated journal entry: the primary's sequence and the
// raw entry payload (Payload is base64 in JSON). Trace, when non-zero, is
// the trace ID of the request that appended the entry, so the standby's
// apply/ack spans join the originating request's fleet timeline.
type ShipEntry struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
	Trace   uint64 `json:"trace,omitempty"`
}

// Request is one client frame.
type Request struct {
	ID      uint64            `json:"id"`
	Op      Op                `json:"op"`
	FileSet string            `json:"fileset,omitempty"`
	Path    string            `json:"path,omitempty"`
	Record  *sharedisk.Record `json:"record,omitempty"`
	// Client is the lock-session ID for lock/unlock/renew.
	Client uint64 `json:"client,omitempty"`
	// Exclusive selects the lock mode for OpLock.
	Exclusive bool `json:"exclusive,omitempty"`
	// Prefix is the mount prefix for namespace operations; Path carries the
	// global path for the P-prefixed ops.
	Prefix string `json:"prefix,omitempty"`
	// Trace selects the trace to dump for OpTrace/OpTracePull. For every
	// other op it is the caller-supplied trace ID; the server mints one
	// when zero and echoes it in Response.Trace. Parent is the span ID of
	// the sender's enclosing span (the distributed trace context's second
	// half): the receiving hop parents its own spans under it.
	Trace  uint64 `json:"trace,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Caps offers capability bits on OpHello (see CapTraceContext).
	Caps uint64 `json:"caps,omitempty"`
	// Count bounds how many entries OpTrace/OpTunerLog return (0 = all
	// retained).
	Count int `json:"count,omitempty"`
	// Entries carries replicated journal entries for OpShip (empty = pure
	// heartbeat). Snap/SnapSeq instead carry a full encoded store cut when
	// the standby has fallen behind the primary's compaction horizon.
	Entries []ShipEntry `json:"entries,omitempty"`
	Snap    []byte      `json:"snap,omitempty"`
	SnapSeq uint64      `json:"snap_seq,omitempty"`
	// Fleet fields. Epoch is the cluster-map epoch the sender acted under
	// (OpAdopt/OpHandoff). Addr is the recipient daemon's address for
	// OpHandoff. Daemon is the target daemon ID for OpAssign. Map carries an
	// encoded cluster map (placement.ClusterMap) inline on OpAdopt/OpHandoff
	// so the receiving daemon converges to the new epoch in the same frame
	// that needs it — no window where the recipient rejects its own adoption
	// as wrong-owner. Snap is reused by OpAdopt for the donated image.
	Epoch  uint64 `json:"epoch,omitempty"`
	Addr   string `json:"addr,omitempty"`
	Daemon int    `json:"daemon,omitempty"`
	Map    []byte `json:"map,omitempty"`
	// Membership fields. Speed is the joining daemon's relative speed
	// (OpJoin/OpHeartbeat); JournalDir is its journal directory on the
	// shared disk — what a surviving daemon replays when this daemon dies
	// (OpJoin/OpHeartbeat report it, OpTakeover carries the victim's).
	// FileSets lists the file sets one OpTakeover moves to the recipient.
	Speed      float64  `json:"speed,omitempty"`
	JournalDir string   `json:"journal_dir,omitempty"`
	FileSets   []string `json:"filesets,omitempty"`
	// Volume fields. Volume names the tenant for the OpVolume* ops;
	// MaxFileSets/OpRate/Weight carry OpVolumeSetQuota's limits and Policy
	// carries OpVolumeSetPolicy's choice. Volumes/VolumesVersion piggyback
	// the authority's registry snapshot on OpAdopt map pushes so members
	// learn quota and weight changes on the same frame as the epoch that
	// carries them.
	Volume         string        `json:"volume,omitempty"`
	MaxFileSets    int           `json:"max_filesets,omitempty"`
	OpRate         float64       `json:"op_rate,omitempty"`
	Weight         float64       `json:"weight,omitempty"`
	Policy         string        `json:"policy,omitempty"`
	Volumes        []volume.Info `json:"volumes,omitempty"`
	VolumesVersion uint64        `json:"volumes_version,omitempty"`
	// Proto is the protocol version offered by OpHello (TaggedProtoV1).
	Proto int `json:"proto,omitempty"`
	// Batch carries the items of an OpBatch; Durable asks the server to
	// checkpoint each touched file set after applying the batch, so the
	// whole batch rides one journal group commit before it is acked.
	Batch   []BatchItem `json:"batch,omitempty"`
	Durable bool        `json:"durable,omitempty"`
}

// ConnStat is the per-connection request/error accounting included in
// OpStats replies — the detail the server previously dropped on the floor
// when a connection sent malformed or failing requests.
type ConnStat struct {
	Remote    string `json:"remote"`
	Requests  int64  `json:"requests"`
	Errors    int64  `json:"errors"`
	Slow      int64  `json:"slow"`
	BadFrames int64  `json:"bad_frames"`
}

// ServerStat mirrors live.ServerStats for the stats reply.
type ServerStat struct {
	ID        int     `json:"id"`
	Speed     float64 `json:"speed"`
	ShareFrac float64 `json:"share_frac"`
	Served    int64   `json:"served"`
	Owned     int     `json:"owned"`
}

// Response is one server frame.
type Response struct {
	ID  uint64 `json:"id"`
	Err string `json:"err,omitempty"`
	// Code is a machine-readable classification of Err for the errors
	// client control flow keys on (CodeJoinFirst, CodeDialRecipient) —
	// rewording Err must never change a caller's behavior. Empty for
	// errors no client branches on.
	Code   string            `json:"code,omitempty"`
	Record *sharedisk.Record `json:"record,omitempty"`
	Paths  []string          `json:"paths,omitempty"`
	Owner  int               `json:"owner,omitempty"`
	Client uint64            `json:"client,omitempty"`
	Stats  []ServerStat      `json:"stats,omitempty"`
	// FileSet and Rel answer OpResolve.
	FileSet string `json:"fileset,omitempty"`
	Rel     string `json:"rel,omitempty"`
	// Mapping answers OpMapping (JSON is base64-encoded for []byte).
	Mapping []byte `json:"mapping,omitempty"`
	// Journal carries the journal counters (records appended, bytes,
	// fsyncs, batch sizes, recovery time, ...) in OpStats replies when the
	// server runs over a durable store; nil otherwise.
	Journal map[string]int64 `json:"journal,omitempty"`
	// Trace echoes the request's trace ID (server-minted when the request
	// carried none) so clients can fetch the request's span timeline later.
	Trace uint64 `json:"trace,omitempty"`
	// Spans answers OpTrace; Tuner answers OpTunerLog.
	Spans []obs.Span       `json:"spans,omitempty"`
	Tuner []obs.TunerEvent `json:"tuner,omitempty"`
	// Wire and Conns carry the wire server's own counters (requests,
	// errors, slow requests, bad frames) and per-connection breakdown in
	// OpStats replies. Closed aggregates the accounting of connections that
	// have since disconnected (their per-connection entries are reaped), so
	// totals survive millions of short-lived connections without growing a
	// map; ClosedConns counts how many connections it folds together.
	Wire        map[string]int64 `json:"wire,omitempty"`
	Conns       []ConnStat       `json:"conns,omitempty"`
	Closed      *ConnStat        `json:"closed,omitempty"`
	ClosedConns int64            `json:"closed_conns,omitempty"`
	// AckSeq answers OpShip/OpShipStatus: the standby's durable sequence.
	AckSeq uint64 `json:"ack_seq,omitempty"`
	// Epoch answers OpMapEpoch/OpAssign/OpRebalance, and rides along every
	// wrong-owner rejection so a stale client knows which epoch it must at
	// least reach before retrying. Map answers OpMap.
	Epoch uint64 `json:"epoch,omitempty"`
	Map   []byte `json:"map,omitempty"`
	// Proto answers OpHello: the protocol version the server accepted.
	// Caps is the capability intersection the server granted.
	Proto int    `json:"proto,omitempty"`
	Caps  uint64 `json:"caps,omitempty"`
	// Node and Now answer OpTracePull: the responding process's identity
	// and wall clock (UnixNano) at reply time, feeding the stitcher's
	// per-hop clock-skew estimate.
	Node string `json:"node,omitempty"`
	Now  int64  `json:"now,omitempty"`
	// Results answers OpBatch, index-aligned with Request.Batch.
	Results []BatchResult `json:"results,omitempty"`
	// Volumes answers OpVolumeList (and rides OpMap/OpJoin replies so a
	// member refreshing its map also refreshes tenant configs);
	// VolumesVersion is the registry version the snapshot was cut at.
	Volumes        []volume.Info `json:"volumes,omitempty"`
	VolumesVersion uint64        `json:"volumes_version,omitempty"`
}
