package wire

import (
	"fmt"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func benchCluster(b *testing.B) (*Client, func()) {
	b.Helper()
	disk := sharedisk.NewStore(0)
	for i := 0; i < 8; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			b.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 5})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	return client, func() {
		client.Close()
		srv.Close()
		cl.Stop()
	}
}

// BenchmarkWireRoundTrip measures one metadata request over the full stack:
// TCP framing, routing hash, server goroutine, reply.
func BenchmarkWireRoundTrip(b *testing.B) {
	c, cleanup := benchCluster(b)
	defer cleanup()
	if err := c.Create("fs00", "/bench", sharedisk.Record{Size: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat("fs00", "/bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWirePipelined measures throughput with many requests in flight
// on one connection.
func BenchmarkWirePipelined(b *testing.B) {
	c, cleanup := benchCluster(b)
	defer cleanup()
	if err := c.Create("fs00", "/bench", sharedisk.Record{Size: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Stat("fs00", "/bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMappingFetch measures fetching + reconstructing the replicated
// routing configuration (what a client pays to refresh its router).
func BenchmarkMappingFetch(b *testing.B) {
	c, cleanup := benchCluster(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Mapping(); err != nil {
			b.Fatal(err)
		}
	}
}
