package wire

// Hand-rolled JSON codec for the hot request/response paths. The wire
// protocol stays plain JSON — debuggable with netcat, interoperable with
// every old peer — but the common metadata/lock frames no longer pay
// encoding/json's reflection and allocation: AppendRequest/AppendResponse
// emit into a caller-reused buffer and Decoder reads frames in place,
// reusing its scratch Record and the target struct's strings.
//
// The codec is deliberately partial. It handles exactly the fields the
// hot ops (create/stat/update/remove/lock/unlock/renew/batchless ping)
// use; anything else — ship entries, snapshots, cluster maps, volume
// registries, floats, escaped strings, non-compact framing — makes it
// bail (return false) and the caller falls back to encoding/json. The
// fallback is the compatibility story: the fast path only ever has to be
// right about the JSON it produces itself, because foreign encodings that
// deviate land in encoding/json, which is authoritative.
//
// Every encoded document the fast path produces is byte-identical to
// json.Marshal's output for the same value (same field order, same
// omitempty behavior, same RFC 3339 time rendering), which is both the
// interop guarantee and the property the tests pin.

import (
	"math"
	"strconv"
	"time"

	"anufs/internal/sharedisk"
)

// zeroRFC3339 is how encoding/json renders the zero time.Time.
const zeroRFC3339 = "0001-01-01T00:00:00Z"

// AppendRequest appends r's JSON encoding to dst and reports whether the
// fast path could represent it. On false the returned slice is dst
// truncated back to its original length and the caller must fall back to
// encoding/json.
//
//anufs:hotpath
func AppendRequest(dst []byte, r *Request) ([]byte, bool) {
	orig := len(dst)
	if len(r.Entries) != 0 || r.Snap != nil || r.SnapSeq != 0 || r.Map != nil ||
		r.Speed != 0 || len(r.FileSets) != 0 || r.Volume != "" || r.MaxFileSets != 0 ||
		r.OpRate != 0 || r.Weight != 0 || r.Policy != "" || len(r.Volumes) != 0 ||
		r.VolumesVersion != 0 || len(r.Batch) != 0 {
		return dst, false
	}
	ok := true
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, r.ID, 10)
	// op carries no omitempty: always emitted, like encoding/json.
	if dst, ok = appendKeyString(dst, `,"op":`, string(r.Op)); !ok {
		return dst[:orig], false
	}
	if r.FileSet != "" {
		if dst, ok = appendKeyString(dst, `,"fileset":`, r.FileSet); !ok {
			return dst[:orig], false
		}
	}
	if r.Path != "" {
		if dst, ok = appendKeyString(dst, `,"path":`, r.Path); !ok {
			return dst[:orig], false
		}
	}
	if r.Record != nil {
		if dst, ok = appendRecord(dst, `,"record":`, r.Record); !ok {
			return dst[:orig], false
		}
	}
	if r.Client != 0 {
		dst = append(dst, `,"client":`...)
		dst = strconv.AppendUint(dst, r.Client, 10)
	}
	if r.Exclusive {
		dst = append(dst, `,"exclusive":true`...)
	}
	if r.Prefix != "" {
		if dst, ok = appendKeyString(dst, `,"prefix":`, r.Prefix); !ok {
			return dst[:orig], false
		}
	}
	if r.Trace != 0 {
		dst = append(dst, `,"trace":`...)
		dst = strconv.AppendUint(dst, r.Trace, 10)
	}
	if r.Parent != 0 {
		dst = append(dst, `,"parent":`...)
		dst = strconv.AppendUint(dst, r.Parent, 10)
	}
	if r.Caps != 0 {
		dst = append(dst, `,"caps":`...)
		dst = strconv.AppendUint(dst, r.Caps, 10)
	}
	if r.Count != 0 {
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, int64(r.Count), 10)
	}
	if r.Epoch != 0 {
		dst = append(dst, `,"epoch":`...)
		dst = strconv.AppendUint(dst, r.Epoch, 10)
	}
	if r.Addr != "" {
		if dst, ok = appendKeyString(dst, `,"addr":`, r.Addr); !ok {
			return dst[:orig], false
		}
	}
	if r.Daemon != 0 {
		dst = append(dst, `,"daemon":`...)
		dst = strconv.AppendInt(dst, int64(r.Daemon), 10)
	}
	if r.JournalDir != "" {
		if dst, ok = appendKeyString(dst, `,"journal_dir":`, r.JournalDir); !ok {
			return dst[:orig], false
		}
	}
	if r.Proto != 0 {
		dst = append(dst, `,"proto":`...)
		dst = strconv.AppendInt(dst, int64(r.Proto), 10)
	}
	if r.Durable {
		dst = append(dst, `,"durable":true`...)
	}
	dst = append(dst, '}')
	return dst, true
}

// AppendResponse appends r's JSON encoding to dst and reports whether the
// fast path could represent it; see AppendRequest.
//
//anufs:hotpath
func AppendResponse(dst []byte, r *Response) ([]byte, bool) {
	orig := len(dst)
	if len(r.Paths) != 0 || len(r.Stats) != 0 || r.Mapping != nil || r.Journal != nil ||
		len(r.Spans) != 0 || len(r.Tuner) != 0 || r.Wire != nil || len(r.Conns) != 0 ||
		r.Closed != nil || r.ClosedConns != 0 || r.Map != nil || r.Node != "" ||
		r.Now != 0 || len(r.Results) != 0 || len(r.Volumes) != 0 || r.VolumesVersion != 0 {
		return dst, false
	}
	ok := true
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, r.ID, 10)
	if r.Err != "" {
		if dst, ok = appendKeyString(dst, `,"err":`, r.Err); !ok {
			return dst[:orig], false
		}
	}
	if r.Code != "" {
		if dst, ok = appendKeyString(dst, `,"code":`, r.Code); !ok {
			return dst[:orig], false
		}
	}
	if r.Record != nil {
		if dst, ok = appendRecord(dst, `,"record":`, r.Record); !ok {
			return dst[:orig], false
		}
	}
	if r.Owner != 0 {
		dst = append(dst, `,"owner":`...)
		dst = strconv.AppendInt(dst, int64(r.Owner), 10)
	}
	if r.Client != 0 {
		dst = append(dst, `,"client":`...)
		dst = strconv.AppendUint(dst, r.Client, 10)
	}
	if r.FileSet != "" {
		if dst, ok = appendKeyString(dst, `,"fileset":`, r.FileSet); !ok {
			return dst[:orig], false
		}
	}
	if r.Rel != "" {
		if dst, ok = appendKeyString(dst, `,"rel":`, r.Rel); !ok {
			return dst[:orig], false
		}
	}
	if r.Trace != 0 {
		dst = append(dst, `,"trace":`...)
		dst = strconv.AppendUint(dst, r.Trace, 10)
	}
	if r.AckSeq != 0 {
		dst = append(dst, `,"ack_seq":`...)
		dst = strconv.AppendUint(dst, r.AckSeq, 10)
	}
	if r.Epoch != 0 {
		dst = append(dst, `,"epoch":`...)
		dst = strconv.AppendUint(dst, r.Epoch, 10)
	}
	if r.Proto != 0 {
		dst = append(dst, `,"proto":`...)
		dst = strconv.AppendInt(dst, int64(r.Proto), 10)
	}
	if r.Caps != 0 {
		dst = append(dst, `,"caps":`...)
		dst = strconv.AppendUint(dst, r.Caps, 10)
	}
	dst = append(dst, '}')
	return dst, true
}

// appendKeyString appends `<key>"<s>"`, bailing on any byte encoding/json
// would escape (control chars, quote, backslash, the HTML set, and
// anything non-ASCII — the latter keeps  /  handling out of the
// hot path entirely).
func appendKeyString(dst []byte, key, s string) ([]byte, bool) {
	dst = append(dst, key...)
	return appendString(dst, s)
}

func appendString(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return dst, false
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	dst = append(dst, '"')
	return dst, true
}

// appendRecord emits a sharedisk.Record exactly as encoding/json does:
// every field, names unmangled (the struct carries no tags), time in
// RFC 3339 with nanoseconds.
func appendRecord(dst []byte, key string, rec *sharedisk.Record) ([]byte, bool) {
	if y := rec.ModTime.Year(); y < 0 || y >= 10000 {
		return dst, false // json cannot encode these years either
	}
	dst = append(dst, key...)
	dst = append(dst, `{"Size":`...)
	dst = strconv.AppendInt(dst, rec.Size, 10)
	dst = append(dst, `,"Mode":`...)
	dst = strconv.AppendUint(dst, uint64(rec.Mode), 10)
	dst = append(dst, `,"ModTime":"`...)
	dst = rec.ModTime.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","Owner":`...)
	var ok bool
	if dst, ok = appendString(dst, rec.Owner); !ok {
		return dst, false
	}
	dst = append(dst, '}')
	return dst, true
}

// Decoder decodes request/response frames on the fast path. The zero
// value is ready. A Decoder is not safe for concurrent use, and a Record
// it decodes points into its scratch: it is only valid until the next
// Decode call, so a caller that retains the struct (hands it to another
// goroutine, buffers it) must copy the Record first.
type Decoder struct {
	rec sharedisk.Record
}

// Request field bits for zeroing unseen fields after a decode.
const (
	reqID = 1 << iota
	reqOp
	reqFileSet
	reqPath
	reqRecord
	reqClient
	reqExclusive
	reqPrefix
	reqTrace
	reqParent
	reqCaps
	reqCount
	reqEpoch
	reqAddr
	reqDaemon
	reqJournalDir
	reqProto
	reqDurable
)

// DecodeRequest decodes one compact JSON request into r, reusing r's
// strings and the Decoder's scratch Record, and reports whether the fast
// path could handle the payload. On false, r is garbage and the caller
// must reset it and fall back to encoding/json. Fields absent from the
// payload are zeroed, so a reused r never leaks a previous frame's
// fields.
//
//anufs:hotpath
func (d *Decoder) DecodeRequest(data []byte, r *Request) bool {
	s := jsonScan{b: data}
	if !s.eat('{') {
		return false
	}
	var seen uint32
	ok := true
	for !s.eat('}') {
		if seen != 0 && !s.eat(',') {
			return false
		}
		key, kok := s.str()
		if !kok || !s.eat(':') {
			return false
		}
		switch string(key) {
		case "id":
			r.ID, ok = s.u64()
			seen |= reqID
		case "op":
			var b []byte
			if b, ok = s.str(); ok {
				setString((*string)(&r.Op), b)
			}
			seen |= reqOp
		case "fileset":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.FileSet, b)
			}
			seen |= reqFileSet
		case "path":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Path, b)
			}
			seen |= reqPath
		case "record":
			ok = decodeRecord(&s, &d.rec)
			r.Record = &d.rec
			seen |= reqRecord
		case "client":
			r.Client, ok = s.u64()
			seen |= reqClient
		case "exclusive":
			r.Exclusive, ok = s.boolean()
			seen |= reqExclusive
		case "prefix":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Prefix, b)
			}
			seen |= reqPrefix
		case "trace":
			r.Trace, ok = s.u64()
			seen |= reqTrace
		case "parent":
			r.Parent, ok = s.u64()
			seen |= reqParent
		case "caps":
			r.Caps, ok = s.u64()
			seen |= reqCaps
		case "count":
			var v int64
			v, ok = s.i64()
			r.Count = int(v)
			seen |= reqCount
		case "epoch":
			r.Epoch, ok = s.u64()
			seen |= reqEpoch
		case "addr":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Addr, b)
			}
			seen |= reqAddr
		case "daemon":
			var v int64
			v, ok = s.i64()
			r.Daemon = int(v)
			seen |= reqDaemon
		case "journal_dir":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.JournalDir, b)
			}
			seen |= reqJournalDir
		case "proto":
			var v int64
			v, ok = s.i64()
			r.Proto = int(v)
			seen |= reqProto
		case "durable":
			r.Durable, ok = s.boolean()
			seen |= reqDurable
		default:
			return false // a slow-path field (or foreign key): fall back
		}
		if !ok {
			return false
		}
	}
	if !s.end() {
		return false
	}
	if seen&reqID == 0 {
		r.ID = 0
	}
	if seen&reqOp == 0 {
		r.Op = ""
	}
	if seen&reqFileSet == 0 {
		r.FileSet = ""
	}
	if seen&reqPath == 0 {
		r.Path = ""
	}
	if seen&reqRecord == 0 {
		r.Record = nil
	}
	if seen&reqClient == 0 {
		r.Client = 0
	}
	if seen&reqExclusive == 0 {
		r.Exclusive = false
	}
	if seen&reqPrefix == 0 {
		r.Prefix = ""
	}
	if seen&reqTrace == 0 {
		r.Trace = 0
	}
	if seen&reqParent == 0 {
		r.Parent = 0
	}
	if seen&reqCaps == 0 {
		r.Caps = 0
	}
	if seen&reqCount == 0 {
		r.Count = 0
	}
	if seen&reqEpoch == 0 {
		r.Epoch = 0
	}
	if seen&reqAddr == 0 {
		r.Addr = ""
	}
	if seen&reqDaemon == 0 {
		r.Daemon = 0
	}
	if seen&reqJournalDir == 0 {
		r.JournalDir = ""
	}
	if seen&reqProto == 0 {
		r.Proto = 0
	}
	if seen&reqDurable == 0 {
		r.Durable = false
	}
	// Slow-path fields can never arrive through the fast decoder; zero
	// them so a reused struct sheds whatever a fallback decode left.
	r.Entries = nil
	r.Snap = nil
	r.SnapSeq = 0
	r.Map = nil
	r.Speed = 0
	r.FileSets = nil
	r.Volume = ""
	r.MaxFileSets = 0
	r.OpRate = 0
	r.Weight = 0
	r.Policy = ""
	r.Volumes = nil
	r.VolumesVersion = 0
	r.Batch = nil
	return true
}

// Response field bits.
const (
	respID = 1 << iota
	respErr
	respCode
	respRecord
	respOwner
	respClient
	respFileSet
	respRel
	respTrace
	respAckSeq
	respEpoch
	respProto
	respCaps
)

// DecodeResponse is DecodeRequest's response-side twin.
//
//anufs:hotpath
func (d *Decoder) DecodeResponse(data []byte, r *Response) bool {
	s := jsonScan{b: data}
	if !s.eat('{') {
		return false
	}
	var seen uint32
	ok := true
	for !s.eat('}') {
		if seen != 0 && !s.eat(',') {
			return false
		}
		key, kok := s.str()
		if !kok || !s.eat(':') {
			return false
		}
		switch string(key) {
		case "id":
			r.ID, ok = s.u64()
			seen |= respID
		case "err":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Err, b)
			}
			seen |= respErr
		case "code":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Code, b)
			}
			seen |= respCode
		case "record":
			ok = decodeRecord(&s, &d.rec)
			r.Record = &d.rec
			seen |= respRecord
		case "owner":
			var v int64
			v, ok = s.i64()
			r.Owner = int(v)
			seen |= respOwner
		case "client":
			r.Client, ok = s.u64()
			seen |= respClient
		case "fileset":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.FileSet, b)
			}
			seen |= respFileSet
		case "rel":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&r.Rel, b)
			}
			seen |= respRel
		case "trace":
			r.Trace, ok = s.u64()
			seen |= respTrace
		case "ack_seq":
			r.AckSeq, ok = s.u64()
			seen |= respAckSeq
		case "epoch":
			r.Epoch, ok = s.u64()
			seen |= respEpoch
		case "proto":
			var v int64
			v, ok = s.i64()
			r.Proto = int(v)
			seen |= respProto
		case "caps":
			r.Caps, ok = s.u64()
			seen |= respCaps
		default:
			return false
		}
		if !ok {
			return false
		}
	}
	if !s.end() {
		return false
	}
	if seen&respID == 0 {
		r.ID = 0
	}
	if seen&respErr == 0 {
		r.Err = ""
	}
	if seen&respCode == 0 {
		r.Code = ""
	}
	if seen&respRecord == 0 {
		r.Record = nil
	}
	if seen&respOwner == 0 {
		r.Owner = 0
	}
	if seen&respClient == 0 {
		r.Client = 0
	}
	if seen&respFileSet == 0 {
		r.FileSet = ""
	}
	if seen&respRel == 0 {
		r.Rel = ""
	}
	if seen&respTrace == 0 {
		r.Trace = 0
	}
	if seen&respAckSeq == 0 {
		r.AckSeq = 0
	}
	if seen&respEpoch == 0 {
		r.Epoch = 0
	}
	if seen&respProto == 0 {
		r.Proto = 0
	}
	if seen&respCaps == 0 {
		r.Caps = 0
	}
	r.Paths = nil
	r.Stats = nil
	r.Mapping = nil
	r.Journal = nil
	r.Spans = nil
	r.Tuner = nil
	r.Wire = nil
	r.Conns = nil
	r.Closed = nil
	r.ClosedConns = 0
	r.Map = nil
	r.Node = ""
	r.Now = 0
	r.Results = nil
	r.Volumes = nil
	r.VolumesVersion = 0
	return true
}

// decodeRecord parses a Record object, zeroing unseen fields.
func decodeRecord(s *jsonScan, rec *sharedisk.Record) bool {
	if !s.eat('{') {
		return false
	}
	var seen uint8
	ok := true
	for !s.eat('}') {
		if seen != 0 && !s.eat(',') {
			return false
		}
		key, kok := s.str()
		if !kok || !s.eat(':') {
			return false
		}
		switch string(key) {
		case "Size":
			rec.Size, ok = s.i64()
			seen |= 1
		case "Mode":
			var v uint64
			v, ok = s.u64()
			if v > math.MaxUint32 {
				return false
			}
			rec.Mode = uint32(v)
			seen |= 2
		case "ModTime":
			var b []byte
			if b, ok = s.str(); ok {
				rec.ModTime, ok = parseTimeRFC3339(b)
			}
			seen |= 4
		case "Owner":
			var b []byte
			if b, ok = s.str(); ok {
				setString(&rec.Owner, b)
			}
			seen |= 8
		default:
			return false
		}
		if !ok {
			return false
		}
	}
	if seen&1 == 0 {
		rec.Size = 0
	}
	if seen&2 == 0 {
		rec.Mode = 0
	}
	if seen&4 == 0 {
		rec.ModTime = time.Time{}
	}
	if seen&8 == 0 {
		rec.Owner = ""
	}
	return true
}

// parseTimeRFC3339 parses the times our encoder emits: RFC 3339 UTC
// ("...Z"), nanosecond fraction with trailing zeros trimmed. Offsets
// other than Z bail — rebuilding a FixedZone would allocate, and no
// encoder in the fleet produces one.
func parseTimeRFC3339(b []byte) (time.Time, bool) {
	if string(b) == zeroRFC3339 {
		return time.Time{}, true
	}
	// "2006-01-02T15:04:05Z" is the 20-byte minimum.
	if len(b) < 20 || b[len(b)-1] != 'Z' {
		return time.Time{}, false
	}
	if b[4] != '-' || b[7] != '-' || b[10] != 'T' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	year, ok1 := atoiFixed(b[0:4])
	month, ok2 := atoiFixed(b[5:7])
	day, ok3 := atoiFixed(b[8:10])
	hour, ok4 := atoiFixed(b[11:13])
	min, ok5 := atoiFixed(b[14:16])
	sec, ok6 := atoiFixed(b[17:19])
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	ns := 0
	if frac := b[19 : len(b)-1]; len(frac) > 0 {
		if frac[0] != '.' || len(frac) > 10 {
			return time.Time{}, false
		}
		scale := 1_000_000_000
		for _, c := range frac[1:] {
			if c < '0' || c > '9' {
				return time.Time{}, false
			}
			ns = ns*10 + int(c-'0')
			scale /= 10
		}
		ns *= scale
	}
	return time.Date(year, time.Month(month), day, hour, min, sec, ns, time.UTC), true
}

// atoiFixed parses a fixed-width run of ASCII digits.
func atoiFixed(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// setString assigns only when the value changed, so a struct decoded
// into repeatedly (one per connection) converges to zero allocations
// for its string fields.
func setString(dst *string, b []byte) {
	if *dst != string(b) {
		*dst = string(b)
	}
}

// jsonScan is a cursor over one compact JSON document (the shape
// json.Marshal and AppendRequest/AppendResponse emit: no interior
// whitespace). Anything else makes a method report false and the decode
// falls back to encoding/json.
type jsonScan struct {
	b []byte
	i int
}

// eat consumes c if it is next.
func (s *jsonScan) eat(c byte) bool {
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// end reports whether only trailing whitespace remains (line-mode frames
// end in '\n').
func (s *jsonScan) end() bool {
	for ; s.i < len(s.b); s.i++ {
		switch s.b[s.i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// str parses a string with no escapes, returning the raw interior bytes.
func (s *jsonScan) str() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.i
	for ; s.i < len(s.b); s.i++ {
		c := s.b[s.i]
		if c == '"' {
			b := s.b[start:s.i]
			s.i++
			return b, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false // escapes and raw controls: fall back
		}
	}
	return nil, false
}

// u64 parses a non-negative integer. A following '.', 'e', or 'E' is not
// consumed; the caller's delimiter check rejects it, sending floats to
// the fallback.
func (s *jsonScan) u64() (uint64, bool) {
	start := s.i
	var n uint64
	for ; s.i < len(s.b); s.i++ {
		c := s.b[s.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if n > (math.MaxUint64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, s.i > start
}

// i64 parses an integer with an optional leading minus.
func (s *jsonScan) i64() (int64, bool) {
	neg := s.eat('-')
	n, ok := s.u64()
	if !ok || n > math.MaxInt64 {
		return 0, false
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// boolean parses true/false.
func (s *jsonScan) boolean() (bool, bool) {
	if s.i+4 <= len(s.b) && string(s.b[s.i:s.i+4]) == "true" {
		s.i += 4
		return true, true
	}
	if s.i+5 <= len(s.b) && string(s.b[s.i:s.i+5]) == "false" {
		s.i += 5
		return false, true
	}
	return false, false
}
