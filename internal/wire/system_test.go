package wire

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

// Full-system test: real TCP clients drive a skewed workload against a
// heterogeneous live cluster with the delegate ticking in the background;
// a server is crashed mid-load. This is the whole stack — hashing,
// interval, delegate, moves, flush/acquire, locks, wire protocol — under
// concurrency, run with the race detector in CI.
func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	disk := sharedisk.NewStore(0)
	const nFS = 16
	for i := 0; i < nFS; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = 100 * time.Millisecond
	cfg.OpCost = 1 * time.Millisecond
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 4, 2: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	// Records created on the crash victim after its last flush are lost —
	// that is the correct crash semantics (metaserver.Crash drops dirty
	// state). Count those instead of failing; they must stay a small
	// fraction bounded by the crash window.
	var lostToCrash, totalOps int64
	var lostMu sync.Mutex
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Skew: fs00 takes half of all traffic.
				fs := "fs00"
				if i%2 == 0 {
					fs = fmt.Sprintf("fs%02d", 1+(g*5+i)%(nFS-1))
				}
				path := fmt.Sprintf("/g%d/o%d", g, i)
				if err := c.Create(fs, path, sharedisk.Record{Size: int64(i)}); err != nil {
					errCh <- fmt.Errorf("create %s%s: %w", fs, path, err)
					return
				}
				if _, err := c.Stat(fs, path); err != nil {
					if strings.Contains(err.Error(), "no such path") {
						lostMu.Lock()
						lostToCrash++
						lostMu.Unlock()
					} else {
						errCh <- fmt.Errorf("stat %s%s: %w", fs, path, err)
						return
					}
				}
				lostMu.Lock()
				totalOps++
				lostMu.Unlock()
				i++
			}
		}(g)
	}

	// Let the system adapt under load, then crash a server mid-flight.
	time.Sleep(1200 * time.Millisecond)
	if err := cl.Kill(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Verify over the wire: two servers remain, half occupancy holds, and
	// the cluster moved file sets while serving.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats shows %d servers after kill, want 2", len(stats))
	}
	var share float64
	var served int64
	for _, st := range stats {
		share += st.ShareFrac
		served += st.Served
	}
	if share < 0.49 || share > 0.51 {
		t.Fatalf("half occupancy broken over the full stack: %v", share)
	}
	if served < 100 {
		t.Fatalf("cluster served only %d ops under load", served)
	}
	if cl.Moves() == 0 {
		t.Fatal("no file sets moved despite 16x speed skew and a failure")
	}
	lostMu.Lock()
	lost, total := lostToCrash, totalOps
	lostMu.Unlock()
	if total == 0 {
		t.Fatal("clients performed no operations")
	}
	if float64(lost) > 0.2*float64(total) {
		t.Fatalf("%d of %d writes lost — far more than one crash window's worth", lost, total)
	}
	// All file sets remain reachable after the crash.
	for i := 0; i < nFS; i++ {
		if _, err := c.List(fmt.Sprintf("fs%02d", i), "/"); err != nil {
			t.Fatalf("fs%02d unreachable after failure: %v", i, err)
		}
	}
}
