package wire

import (
	"fmt"
	"strings"
	"testing"

	"anufs/internal/sharedisk"
)

func TestNamespaceOpsOverWire(t *testing.T) {
	c, _ := startServer(t, 3)
	if err := c.Mount("/", "fs00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mount("/projects", "fs01"); err != nil {
		t.Fatal(err)
	}
	fs, rel, err := c.Resolve("/projects/alpha/main.go")
	if err != nil || fs != "fs01" || rel != "/alpha/main.go" {
		t.Fatalf("Resolve = (%s, %s, %v)", fs, rel, err)
	}
	fs, rel, err = c.Resolve("/top.txt")
	if err != nil || fs != "fs00" || rel != "/top.txt" {
		t.Fatalf("Resolve root = (%s, %s, %v)", fs, rel, err)
	}
}

func TestPathAddressedOps(t *testing.T) {
	c, _ := startServer(t, 3)
	if err := c.Mount("/vol", "fs02"); err != nil {
		t.Fatal(err)
	}
	if err := c.PCreate("/vol/data/file.bin", sharedisk.Record{Size: 99}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.PStat("/vol/data/file.bin")
	if err != nil || rec.Size != 99 {
		t.Fatalf("PStat = %+v, %v", rec, err)
	}
	// The record landed in the mounted file set under the relative path.
	direct, err := c.Stat("fs02", "/data/file.bin")
	if err != nil || direct.Size != 99 {
		t.Fatalf("direct Stat = %+v, %v", direct, err)
	}
	if err := c.PRemove("/vol/data/file.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PStat("/vol/data/file.bin"); err == nil {
		t.Fatal("PStat after PRemove succeeded")
	}
}

func TestNamespaceErrorsOverWire(t *testing.T) {
	c, _ := startServer(t, 1)
	if _, _, err := c.Resolve("/unmounted/x"); err == nil {
		t.Fatal("resolve with no mounts succeeded")
	}
	if err := c.Mount("relative", "fs00"); err == nil || !strings.Contains(err.Error(), "absolute") {
		t.Fatalf("relative mount: %v", err)
	}
	if err := c.Mount("/m", "fs00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mount("/m", "fs00"); err == nil {
		t.Fatal("double mount over wire succeeded")
	}
	if err := c.Unmount("/m"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unmount("/m"); err == nil {
		t.Fatal("double unmount over wire succeeded")
	}
	if err := c.PCreate("/m/x", sharedisk.Record{}); err == nil {
		t.Fatal("pcreate after unmount succeeded")
	}
}

func TestClientSideRoutingFromReplicatedMapping(t *testing.T) {
	c, cl := startServer(t, 10)
	router, err := c.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		want, err := c.Owner(fs)
		if err != nil {
			t.Fatal(err)
		}
		if got := router.Owner(fs); got != want {
			t.Fatalf("client-side route for %s = %d, server says %d", fs, got, want)
		}
	}
	// After a reconfiguration the client refetches and re-agrees.
	cl.TuneOnce()
	router2, err := c.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		want, _ := c.Owner(fs)
		if got := router2.Owner(fs); got != want {
			t.Fatalf("post-tune client-side route for %s = %d, server says %d", fs, got, want)
		}
	}
}
