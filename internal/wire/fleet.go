package wire

import (
	"errors"
	"fmt"
)

// This file is the wire surface of fleet mode (internal/fleet): the error
// vocabulary of the wrong-owner protocol and the hook a fleet member uses
// to fence file-set operations on its daemon.

// wrongOwnerMsg prefixes every wrong-owner rejection. The error crosses the
// wire as a string, so the client matches the prefix and rebuilds a typed
// *WrongOwnerError carrying Response.Epoch.
const wrongOwnerMsg = "wire: wrong owner"

// arrivingMsg prefixes rejections of operations on a file set this daemon
// owns but has not finished adopting — a transient state clients retry.
const arrivingMsg = "wire: file set arriving"

// WrongOwnerError rejects an operation on a file set this daemon does not
// own under the current cluster map. Epoch tells the client which epoch it
// must at least fetch before the retry can possibly land.
type WrongOwnerError struct {
	Epoch uint64
}

func (e *WrongOwnerError) Error() string {
	return fmt.Sprintf("%s (epoch %d): refetch the cluster map", wrongOwnerMsg, e.Epoch)
}

// IsWrongOwner reports whether err is a wrong-owner rejection (locally
// typed or reconstructed from the wire) and returns the rejecting daemon's
// epoch.
func IsWrongOwner(err error) (epoch uint64, ok bool) {
	var woe *WrongOwnerError
	if errors.As(err, &woe) {
		return woe.Epoch, true
	}
	return 0, false
}

// ErrArriving rejects an operation on a file set that is assigned to this
// daemon but whose adoption has not completed. Unlike wrong-owner, the map
// is not stale — the client just retries after a short backoff. It is a
// *CodedError so the dispatch layer stamps Response.Code = CodeArriving
// and clients rebuild the decision without reading the message.
var ErrArriving error = &CodedError{
	Code: CodeArriving,
	Err:  errors.New(arrivingMsg + ": adoption in progress, retry"),
}

// UnplacedMsg prefixes the fleet gate's rejection of an operation on a
// file set no daemon is assigned. Servers that predate CodeUnplaced send
// only this text, so ResponseError keeps a prefix fallback against it;
// internal/fleet builds the message from this constant so the two sides
// cannot drift.
const UnplacedMsg = "fleet: unplaced file set"

// Machine-readable codes for the fleet errors client control flow keys
// on. They ride Response.Code so the decision survives any rewording of
// the human-readable message (matching on message substrings silently
// broke when a message changed — or matched an unrelated error that
// happened to embed the phrase).
const (
	// CodeJoinFirst answers a heartbeat from a daemon the authority does
	// not know: the member must re-join before its lease can renew.
	CodeJoinFirst = "join-first"
	// CodeDialRecipient reports a handoff donor that could not reach its
	// recipient at all — the rebalance circuit breaker attributes this to
	// the recipient, not the donor.
	CodeDialRecipient = "dial-recipient"
	// CodeQuotaExceeded rejects an operation that would push a volume past
	// one of its tenant quotas (file-set count at the authority, op rate at
	// the owning daemon's gate). Clients back off or surface it; they must
	// NOT retry-loop, the quota will not clear on its own.
	CodeQuotaExceeded = "quota-exceeded"
	// CodeArriving marks an arriving rejection (ErrArriving): the file
	// set is assigned here but adoption has not completed. Clients retry
	// after a short backoff without refetching the map.
	CodeArriving = "arriving"
	// CodeUnplaced marks an operation on a file set the cluster map
	// assigns to no daemon. The router retries only when its own map
	// disagrees (the daemon's map is behind); otherwise the caller must
	// assign the file set first.
	CodeUnplaced = "unplaced"
)

// QuotaExceeded wraps err with CodeQuotaExceeded.
func QuotaExceeded(err error) error { return &CodedError{Code: CodeQuotaExceeded, Err: err} }

// IsQuotaExceeded reports whether err is a quota rejection, locally typed
// or rebuilt from Response.Code.
func IsQuotaExceeded(err error) bool { return ErrorCode(err) == CodeQuotaExceeded }

// CodedError is an error carrying one of the codes above. Server handlers
// return it so the dispatch layer can stamp Response.Code; clients get it
// rebuilt by ResponseError and branch via ErrorCode.
type CodedError struct {
	Code string
	Err  error
}

func (e *CodedError) Error() string { return e.Err.Error() }
func (e *CodedError) Unwrap() error { return e.Err }

// ErrorCode extracts the machine-readable code from an error chain; empty
// when the error carries none.
func ErrorCode(err error) string {
	var ce *CodedError
	if errors.As(err, &ce) {
		return ce.Code
	}
	return ""
}

// IsArriving reports whether err is an arriving rejection, locally typed
// or rebuilt from Response.Code by ResponseError. The old string match on
// err.Error() is gone — the errcode analyzer's first scalp — because it
// silently matched any error that embedded the phrase and broke when the
// message was reworded; responses from pre-code peers are normalized by
// ResponseError's prefix fallback before they ever reach this check.
func IsArriving(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrArriving) || ErrorCode(err) == CodeArriving
}

// Unplaced wraps err with CodeUnplaced.
func Unplaced(err error) error { return &CodedError{Code: CodeUnplaced, Err: err} }

// IsUnplaced reports whether err is an unplaced rejection, locally typed
// or rebuilt from Response.Code (with ResponseError's text fallback
// covering pre-code peers).
func IsUnplaced(err error) bool { return ErrorCode(err) == CodeUnplaced }

// FleetHandler is what the wire server needs from a fleet member
// (internal/fleet.Member implements it). It lives here as an interface so
// wire does not import fleet (fleet imports wire for the client).
type FleetHandler interface {
	// Gate admits or rejects one file-set-addressed operation under the
	// current cluster map. On nil error the operation may proceed and the
	// caller MUST call release() when it completes — the member counts
	// in-flight operations so a handoff can drain them before the donor
	// flushes. Rejections are *WrongOwnerError (not ours under this map),
	// ErrArriving (ours, adoption pending), or a plain error (unplaced).
	Gate(op Op, fileSet string) (release func(), err error)
	// Fleet serves the fleet ops (map, map-epoch, adopt, handoff, assign,
	// rebalance) and the membership/failover ops (join, leave, heartbeat,
	// takeover). The returned Response's ID is overwritten by the server.
	Fleet(req Request) Response
}

// gatedOp reports whether an op is addressed to a single file set and must
// pass the fleet gate. Namespace P-ops resolve through the per-daemon mount
// table and are not fleet-routed (documented out of scope in fleet mode);
// observability and replication ops are daemon-local by design.
func gatedOp(op Op) bool {
	switch op {
	case OpCreateFileSet, OpCreate, OpStat, OpUpdate, OpRemove, OpList, OpLock, OpUnlock:
		return true
	}
	return false
}
