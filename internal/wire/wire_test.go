package wire

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func startServer(t *testing.T, nFileSets int) (*Client, *live.Cluster) {
	t.Helper()
	disk := sharedisk.NewStore(0)
	for i := 0; i < nFileSets; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour // no background tuning in protocol tests
	cfg.OpCost = 0
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Stop()
	})
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, cl
}

func TestEndToEndMetadataOps(t *testing.T) {
	c, _ := startServer(t, 3)
	if err := c.Create("fs00", "/a", sharedisk.Record{Size: 11, Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Stat("fs00", "/a")
	if err != nil || rec.Size != 11 || rec.Owner != "alice" {
		t.Fatalf("Stat = %+v, %v", rec, err)
	}
	if err := c.Update("fs00", "/a", sharedisk.Record{Size: 12}); err != nil {
		t.Fatal(err)
	}
	paths, err := c.List("fs00", "/")
	if err != nil || len(paths) != 1 || paths[0] != "/a" {
		t.Fatalf("List = %v, %v", paths, err)
	}
	if err := c.Remove("fs00", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("fs00", "/a"); err == nil {
		t.Fatal("Stat after Remove succeeded")
	}
}

func TestErrorsPropagate(t *testing.T) {
	c, _ := startServer(t, 1)
	if _, err := c.Stat("fs00", "/missing"); err == nil || !strings.Contains(err.Error(), "no such path") {
		t.Fatalf("missing-path error: %v", err)
	}
	if err := c.CreateFileSet("fs00"); err == nil {
		t.Fatal("duplicate CreateFileSet succeeded over the wire")
	}
	if err := c.Create("fs00", "/dup", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("fs00", "/dup", sharedisk.Record{}); err == nil {
		t.Fatal("duplicate create succeeded over the wire")
	}
}

func TestCreateFileSetOverWire(t *testing.T) {
	c, _ := startServer(t, 0)
	if err := c.CreateFileSet("remote"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("remote", "/x", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	owner, err := c.Owner("remote")
	if err != nil {
		t.Fatal(err)
	}
	if owner < 0 || owner > 2 {
		t.Fatalf("Owner = %d", owner)
	}
}

func TestLockProtocol(t *testing.T) {
	c, _ := startServer(t, 1)
	alice, err := c.Register()
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.Register()
	if err != nil {
		t.Fatal(err)
	}
	if alice == bob {
		t.Fatal("session IDs collide")
	}
	if err := c.Lock(alice, "fs00", "/f", true); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(bob, "fs00", "/f", true); err == nil {
		t.Fatal("conflicting exclusive lock granted over the wire")
	}
	if err := c.Renew(alice); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlock(alice, "fs00", "/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(bob, "fs00", "/f", false); err != nil {
		t.Fatal(err)
	}
}

func TestStatsOverWire(t *testing.T) {
	c, _ := startServer(t, 4)
	if err := c.Create("fs00", "/s", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats for %d servers, want 3", len(stats))
	}
	var share float64
	for _, st := range stats {
		share += st.ShareFrac
	}
	if share < 0.49 || share > 0.51 {
		t.Fatalf("total share %v, want 0.5", share)
	}
}

func TestConcurrentClients(t *testing.T) {
	c1, cl := startServer(t, 6)
	// A second client on its own connection.
	srvAddr := c1.conn.RemoteAddr().String()
	c2, err := Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2*50)
	for g, cli := range []*Client{c1, c2} {
		wg.Add(1)
		go func(g int, cli *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fs := fmt.Sprintf("fs%02d", (g+i)%6)
				if err := cli.Create(fs, fmt.Sprintf("/c%d-%d", g, i), sharedisk.Record{}); err != nil {
					errs <- err
					return
				}
			}
		}(g, cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 100 creates total landed in the cluster.
	total := int64(0)
	for _, st := range cl.Stats() {
		total += st.Served
	}
	if total < 100 {
		t.Fatalf("cluster served %d ops, want >= 100", total)
	}
}

func TestPipelinedRequestsOnOneConnection(t *testing.T) {
	c, _ := startServer(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := fmt.Sprintf("fs%02d", i%4)
			if err := c.Create(fs, fmt.Sprintf("/p%d", i), sharedisk.Record{}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	paths, err := c.List("fs00", "/")
	if err != nil || len(paths) == 0 {
		t.Fatalf("List = %v, %v", paths, err)
	}
}

func TestClientFailsAfterServerClose(t *testing.T) {
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("fs"); err != nil {
		t.Fatal(err)
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Create("fs", "/a", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := client.Create("fs", "/b", sharedisk.Record{}); err != nil {
			return // failed cleanly, as expected
		}
	}
	t.Fatal("requests kept succeeding after server close")
}

func TestBadFrameGetsErrorResponse(t *testing.T) {
	// Drive the raw protocol without the typed client.
	c, _ := startServer(t, 1)
	_ = c // keep the standard fixture for the cluster lifecycle
	// The typed client validates unknown ops end-to-end instead:
	if _, err := c.call(Request{Op: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op: %v", err)
	}
}

func TestRawProtocolGarbage(t *testing.T) {
	// Drive the TCP protocol directly with malformed frames: the server
	// must answer each line (error responses) and survive.
	c, _ := startServer(t, 1)
	conn, err := net.Dial("tcp", c.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n{\"op\":\"bogus\",\"id\":7}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	var got []string
	for len(got) < 2 && sc.Scan() {
		got = append(got, sc.Text())
	}
	if len(got) != 2 {
		t.Fatalf("got %d responses, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0], "bad frame") {
		t.Fatalf("first response %q, want bad-frame error", got[0])
	}
	if !strings.Contains(got[1], "unknown op") || !strings.Contains(got[1], `"id":7`) {
		t.Fatalf("second response %q, want id-correlated unknown-op error", got[1])
	}
}
