package wire

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

// fastRequests are representative hot-path frames: every one must encode
// byte-identically to encoding/json and round-trip through the fast
// decoder.
func fastRequests() []Request {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	return []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpStat, FileSet: "fs00", Path: "/bench", Trace: 77, Parent: 3},
		{ID: 3, Op: OpCreate, FileSet: "fs01", Path: "/a/b/c",
			Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}},
		{ID: 4, Op: OpUpdate, FileSet: "fs01", Path: "/a/b/c",
			Record: &sharedisk.Record{Size: -1, Mode: 0, Owner: ""}},
		{ID: 5, Op: OpLock, FileSet: "fs02", Path: "/x", Client: 9, Exclusive: true},
		{ID: 6, Op: OpResolve, Prefix: "/mnt", Path: "/mnt/data/file"},
		{ID: 7, Op: OpHello, Caps: SupportedCaps, Proto: TaggedProtoV1},
		{ID: 8, Op: OpHeartbeat, Daemon: 3, Epoch: 12, Addr: "127.0.0.1:7070", JournalDir: "/var/anufs/wal"},
		{ID: 9, Op: OpTrace, Count: 100},
		{ID: 10, Op: OpSync, Durable: true},
		{},
	}
}

func fastResponses() []Response {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 500000000, time.UTC)
	return []Response{
		{ID: 1},
		{ID: 2, Record: &sharedisk.Record{Size: 1, Mode: 0o755, ModTime: mod, Owner: "bob"}, Trace: 77},
		{ID: 3, Err: "fleet: unplaced file set fs09", Code: CodeUnplaced},
		{ID: 4, Owner: 2, Epoch: 41},
		{ID: 5, Client: 12345},
		{ID: 6, FileSet: "fs03", Rel: "/data/file"},
		{ID: 7, Proto: TaggedProtoV1, Caps: SupportedCaps},
		{ID: 8, AckSeq: 99},
		{},
	}
}

func TestAppendRequestMatchesJSON(t *testing.T) {
	for i, req := range fastRequests() {
		want, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := AppendRequest(nil, &req)
		if !ok {
			t.Fatalf("request %d: fast encoder bailed", i)
		}
		if string(got) != string(want) {
			t.Errorf("request %d:\n fast %s\n json %s", i, got, want)
		}
	}
}

func TestAppendResponseMatchesJSON(t *testing.T) {
	for i, resp := range fastResponses() {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := AppendResponse(nil, &resp)
		if !ok {
			t.Fatalf("response %d: fast encoder bailed", i)
		}
		if string(got) != string(want) {
			t.Errorf("response %d:\n fast %s\n json %s", i, got, want)
		}
	}
}

func TestAppendBailsOnSlowFields(t *testing.T) {
	reqs := []Request{
		{ID: 1, Entries: []ShipEntry{{Seq: 1}}},
		{ID: 2, Snap: []byte("x")},
		{ID: 3, Speed: 1.5},
		{ID: 4, Batch: []BatchItem{{Op: OpCreate}}},
		{ID: 5, FileSets: []string{"a"}},
		{ID: 6, Volume: "tenant"},
		{ID: 7, Op: Op("weird\"op")}, // needs escaping
		{ID: 8, Path: "/päth"},       // non-ASCII
		{ID: 9, Record: &sharedisk.Record{ModTime: time.Time{}.AddDate(10001, 0, 0)}}, // year out of range
	}
	for i, req := range reqs {
		prefix := []byte("prefix")
		got, ok := AppendRequest(prefix, &req)
		if ok {
			t.Errorf("request %d: fast encoder should have bailed", i)
		}
		if string(got) != "prefix" {
			t.Errorf("request %d: bail did not restore dst: %q", i, got)
		}
	}
	resps := []Response{
		{ID: 1, Paths: []string{"/a"}},
		{ID: 2, Journal: map[string]int64{"x": 1}},
		{ID: 3, Node: "n1", Now: 5},
		{ID: 4, Results: []BatchResult{{}}},
		{ID: 5, Err: "line1\nline2"},
	}
	for i, resp := range resps {
		if _, ok := AppendResponse(nil, &resp); ok {
			t.Errorf("response %d: fast encoder should have bailed", i)
		}
	}
}

func TestDecodeRequestRoundTrip(t *testing.T) {
	var dec Decoder
	var got Request
	for i, req := range fastRequests() {
		payload, ok := AppendRequest(nil, &req)
		if !ok {
			t.Fatalf("request %d: encoder bailed", i)
		}
		if !dec.DecodeRequest(payload, &got) {
			t.Fatalf("request %d: decoder bailed on %s", i, payload)
		}
		want := req
		if !requestsEqual(&want, &got) {
			t.Errorf("request %d: round trip mismatch\n want %+v\n got  %+v", i, want, got)
		}
	}
}

func TestDecodeResponseRoundTrip(t *testing.T) {
	var dec Decoder
	var got Response
	for i, resp := range fastResponses() {
		payload, ok := AppendResponse(nil, &resp)
		if !ok {
			t.Fatalf("response %d: encoder bailed", i)
		}
		if !dec.DecodeResponse(payload, &got) {
			t.Fatalf("response %d: decoder bailed on %s", i, payload)
		}
		want := resp
		if !responsesEqual(&want, &got) {
			t.Errorf("response %d: round trip mismatch\n want %+v\n got  %+v", i, want, got)
		}
	}
}

// requestsEqual compares semantically: Record by value (the decoder's
// points into scratch).
func requestsEqual(a, b *Request) bool {
	ar, br := a.Record, b.Record
	if (ar == nil) != (br == nil) {
		return false
	}
	if ar != nil && !recordsEqual(*ar, *br) {
		return false
	}
	ac, bc := *a, *b
	ac.Record, bc.Record = nil, nil
	return reflect.DeepEqual(ac, bc)
}

func responsesEqual(a, b *Response) bool {
	ar, br := a.Record, b.Record
	if (ar == nil) != (br == nil) {
		return false
	}
	if ar != nil && !recordsEqual(*ar, *br) {
		return false
	}
	ac, bc := *a, *b
	ac.Record, bc.Record = nil, nil
	return reflect.DeepEqual(ac, bc)
}

func recordsEqual(a, b sharedisk.Record) bool {
	return a.Size == b.Size && a.Mode == b.Mode && a.Owner == b.Owner && a.ModTime.Equal(b.ModTime)
}

// TestDecodeAgreesWithJSON feeds handwritten payloads to both decoders:
// whenever the fast path accepts, its result must match encoding/json's.
func TestDecodeAgreesWithJSON(t *testing.T) {
	payloads := []string{
		`{"id":1,"op":"stat","fileset":"fs00","path":"/bench"}`,
		`{"id":2,"record":{"Size":10,"Mode":420,"ModTime":"2026-08-07T12:30:45.5Z","Owner":"x"}}`,
		`{"id":3,"exclusive":true,"durable":false}`,
		`{"id":4,"count":-7,"daemon":-1}`,
		`{}`,
		`{"id":18446744073709551615}`,
	}
	var dec Decoder
	var fast Request
	for _, p := range payloads {
		if !dec.DecodeRequest([]byte(p), &fast) {
			t.Fatalf("fast decoder bailed on %s", p)
		}
		var want Request
		if err := json.Unmarshal([]byte(p), &want); err != nil {
			t.Fatalf("json rejected %s: %v", p, err)
		}
		if !requestsEqual(&want, &fast) {
			t.Errorf("decode disagreement on %s\n json %+v\n fast %+v", p, want, fast)
		}
	}
}

// TestDecodeBails pins the payload shapes that must hit the fallback —
// each must still be accepted or cleanly rejected by encoding/json, never
// mis-decoded by the fast path.
func TestDecodeBails(t *testing.T) {
	payloads := []string{
		`{"id": 1}`,             // interior whitespace
		`{"id":1,"op":"a\"b"}`,  // escape
		`{"id":1.5}`,            // float
		`{"id":1,"speed":2.5}`,  // slow-path field
		`{"id":1,"entries":[]}`, // slow-path field
		`{"id":1,"bogus":3}`,    // unknown key
		`{"id":1}trailing`,      // trailing garbage
		`{"id":1,}`,             // trailing comma
		`{"record":null}`,       // null
		`{"record":{"ModTime":"2026-08-07T12:30:45+02:00"}}`, // non-UTC offset
		`[1,2]`, // not an object
		``,      // empty
	}
	var dec Decoder
	var r Request
	for _, p := range payloads {
		if dec.DecodeRequest([]byte(p), &r) {
			t.Errorf("fast decoder accepted %q; it must bail to encoding/json", p)
		}
	}
}

// TestDecodeZeroesReusedStruct: a struct reused across decodes must not
// leak fields from a previous (possibly fallback-decoded) frame.
func TestDecodeZeroesReusedStruct(t *testing.T) {
	var dec Decoder
	r := Request{
		Op: OpShip, Entries: []ShipEntry{{Seq: 9}}, Snap: []byte("s"),
		Volume: "t", Batch: []BatchItem{{}}, Speed: 2, FileSet: "old",
		Record: &sharedisk.Record{Size: 3},
	}
	if !dec.DecodeRequest([]byte(`{"id":42,"op":"ping"}`), &r) {
		t.Fatal("decoder bailed")
	}
	want := Request{ID: 42, Op: OpPing}
	if !requestsEqual(&want, &r) {
		t.Errorf("reused struct not zeroed: %+v", r)
	}
}

// TestEncodeDecodeAllocFree is the allocation contract behind the
// //anufs:hotpath markers: steady-state encode and decode of warmed
// buffers/structs perform zero heap allocations.
func TestEncodeDecodeAllocFree(t *testing.T) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	req := Request{ID: 7, Op: OpUpdate, FileSet: "fs00", Path: "/a/b/c", Trace: 9,
		Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}}
	resp := Response{ID: 7, Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}, Trace: 9}
	var encBuf []byte
	if n := testing.AllocsPerRun(100, func() {
		var ok bool
		encBuf, ok = AppendRequest(encBuf[:0], &req)
		if !ok {
			t.Fatal("encoder bailed")
		}
	}); n != 0 {
		t.Errorf("AppendRequest: %v allocs/op, want 0", n)
	}
	var respBuf []byte
	if n := testing.AllocsPerRun(100, func() {
		var ok bool
		respBuf, ok = AppendResponse(respBuf[:0], &resp)
		if !ok {
			t.Fatal("encoder bailed")
		}
	}); n != 0 {
		t.Errorf("AppendResponse: %v allocs/op, want 0", n)
	}
	var dec Decoder
	var dreq Request
	if n := testing.AllocsPerRun(100, func() {
		if !dec.DecodeRequest(encBuf, &dreq) {
			t.Fatal("decoder bailed")
		}
	}); n != 0 {
		t.Errorf("DecodeRequest: %v allocs/op, want 0", n)
	}
	var dresp Response
	if n := testing.AllocsPerRun(100, func() {
		if !dec.DecodeResponse(respBuf, &dresp) {
			t.Fatal("decoder bailed")
		}
	}); n != 0 {
		t.Errorf("DecodeResponse: %v allocs/op, want 0", n)
	}
}

// The BenchmarkEncode* family is CI's allocation regression guard:
// `go test -run=NONE -bench=BenchmarkEncode -benchmem` must report
// 0 allocs/op for every benchmark here (cmd/allocguard enforces it).

func BenchmarkEncodeRequestFast(b *testing.B) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	req := Request{ID: 7, Op: OpUpdate, FileSet: "fs00", Path: "/a/b/c", Trace: 9,
		Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ok bool
		if buf, ok = AppendRequest(buf[:0], &req); !ok {
			b.Fatal("encoder bailed")
		}
	}
}

func BenchmarkEncodeResponseFast(b *testing.B) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	resp := Response{ID: 7, Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}, Trace: 9}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ok bool
		if buf, ok = AppendResponse(buf[:0], &resp); !ok {
			b.Fatal("encoder bailed")
		}
	}
}

func BenchmarkEncodeDecodeRequest(b *testing.B) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	req := Request{ID: 7, Op: OpUpdate, FileSet: "fs00", Path: "/a/b/c", Trace: 9,
		Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}}
	payload, ok := AppendRequest(nil, &req)
	if !ok {
		b.Fatal("encoder bailed")
	}
	var dec Decoder
	var out Request
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !dec.DecodeRequest(payload, &out) {
			b.Fatal("decoder bailed")
		}
	}
}

func BenchmarkEncodeDecodeResponse(b *testing.B) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	resp := Response{ID: 7, Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}, Trace: 9}
	payload, ok := AppendResponse(nil, &resp)
	if !ok {
		b.Fatal("encoder bailed")
	}
	var dec Decoder
	var out Response
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !dec.DecodeResponse(payload, &out) {
			b.Fatal("decoder bailed")
		}
	}
}

// BenchmarkEncodeRequestJSON is the encoding/json baseline the fast path
// is measured against (not subject to the 0-alloc guard: allocguard only
// enforces benchmarks it is pointed at, and CI points it at this file's
// Fast/Decode benchmarks plus the journal's).
func BenchmarkEncodeRequestJSONBaseline(b *testing.B) {
	mod := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	req := Request{ID: 7, Op: OpUpdate, FileSet: "fs00", Path: "/a/b/c", Trace: 9,
		Record: &sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(req); err != nil {
			b.Fatal(err)
		}
	}
}
