package wire

import (
	"fmt"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

// TestConnChurnReapsAndAggregates closes many short-lived connections and
// requires both halves of the per-connection accounting contract: the live
// map shrinks back (no growth proportional to historical connections), and
// the closed connections' request/error totals survive in the retained
// aggregate instead of vanishing with the map entries.
func TestConnChurnReapsAndAggregates(t *testing.T) {
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("fs00"); err != nil {
		t.Fatal(err)
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Stop()
	})

	const churn = 50
	for i := 0; i < churn; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Owner("fs00"); err != nil { // one good request
			t.Fatal(err)
		}
		if _, err := c.Stat("fs00", fmt.Sprintf("/missing%d", i)); err == nil { // one failing request
			t.Fatal("stat of missing path succeeded")
		}
		c.Close()
	}

	// Teardown of each connection's handler is asynchronous; wait for the
	// live map to drain and the aggregate to catch up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		live, closed := len(srv.conns), srv.closedConns
		srv.mu.Unlock()
		if live == 0 && closed == churn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after churn: %d live conns, %d closed (want 0 live, %d closed)", live, closed, churn)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The aggregate is visible over the protocol and accounts for every
	// request the dead connections made.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agg, n, err := c.ClosedConnStats()
	if err != nil {
		t.Fatal(err)
	}
	if n != churn || agg == nil {
		t.Fatalf("closed aggregate covers %d conns (%+v), want %d", n, agg, churn)
	}
	if agg.Requests != churn*2 || agg.Errors != churn {
		t.Fatalf("closed aggregate %+v, want %d requests / %d errors", agg, churn*2, churn)
	}
	// Only the stats connection itself is still live.
	_, conns, err := c.WireStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 1 {
		t.Fatalf("live conn breakdown has %d entries, want 1: %+v", len(conns), conns)
	}
}
