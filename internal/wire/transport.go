package wire

import (
	"errors"
	"io"
	"net"
	"strings"
)

// Typed sentinels for the transport-level failures the fleet router and
// sdk pool key their retry discipline on. The texts are chosen so the
// wrapped errors read exactly as they did when they were bare strings —
// peers and logs see no change — while errors.Is works locally.
var (
	// ErrConnClosed fails calls on a wire.Client whose connection died.
	ErrConnClosed = errors.New("wire: connection closed")
	// ErrSendFailed wraps a write that failed mid-request; the message
	// composes as "wire: send: <cause>".
	ErrSendFailed = errors.New("wire: send")
	// ErrTimedOut wraps a call that outlived its deadline; the message
	// composes as "wire: <op> call timed out after <d>".
	ErrTimedOut = errors.New("timed out")
)

// transientFragments recognizes transport failures that reach us as bare
// text: errors that crossed the wire in Response.Err (the type does not
// survive serialization), OS dial errors, and errors from peers that
// predate the typed sentinels. Matching text here is the single
// sanctioned fallback; everything the current tree produces locally is
// typed and never reaches this list.
var transientFragments = []string{
	"connection closed", // wire + sdk conn teardown
	"timed out",         // call deadlines, net dial timeouts
	"wire: send:",       // mid-request write failures
	"connection refused",
	"connection reset",
	"sdk: no connection",
	// A pool the router just invalidated fails its in-flight callers
	// with "pool closed"; they must reconnect and retry like everyone
	// else, not surface a fatal error for a race they lost.
	"sdk: pool closed",
}

// TransientError reports connection-level failures worth a
// reconnect+retry, as opposed to application errors the caller must
// see. Typed checks run first; the text fallback only catches errors
// whose type was lost crossing the wire or minted by older peers.
func TransientError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrConnClosed) || errors.Is(err, ErrSendFailed) || errors.Is(err, ErrTimedOut) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	s := err.Error()
	for _, frag := range transientFragments {
		if strings.Contains(s, frag) { //anufs:allow errcode wire-crossed and pre-sentinel errors arrive as bare text; this loop is the single sanctioned fallback
			return true
		}
	}
	return false
}
