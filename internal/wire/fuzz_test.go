package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

// fuzzCluster builds one small cluster per fuzz process. The retry budget
// is tiny: fuzzed requests routinely target unknown file sets, and the
// point is frame handling, not move-retry patience.
func fuzzCluster(f *testing.F) *Server {
	f.Helper()
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("fs00"); err != nil {
		f.Fatal(err)
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cfg.RetryBudget = time.Millisecond
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(cl.Stop)
	return NewServer(cl)
}

// FuzzRequestDecode drives the server-side frame path — JSON decode plus
// dispatch — with arbitrary client bytes. A malformed or malicious frame
// must produce an error response (or be rejected), never a panic: one bad
// client must not take the daemon down.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		`{"id":1,"op":"stat","fileset":"fs00","path":"/a"}`,
		`{"id":2,"op":"create","fileset":"fs00","path":"/a","record":{"size":1}}`,
		`{"id":3,"op":"create-fileset","fileset":"other"}`,
		`{"id":4,"op":"list","fileset":"fs00","path":"/"}`,
		`{"id":5,"op":"lock","fileset":"fs00","path":"/a","client":1,"exclusive":true}`,
		`{"id":6,"op":"stats"}`,
		`{"id":7,"op":"sync"}`,
		`{"id":8,"op":"mount","prefix":"/mnt","fileset":"fs00"}`,
		`{"id":9,"op":"resolve","path":"/mnt/x"}`,
		`{"id":10,"op":"mapping"}`,
		`{"id":11,"op":"update","fileset":"fs00","path":"/a","record":null}`,
		`{"id":12,"op":"nope"}`,
		`{"id":13`,
		`not json at all`,
		`{"op":""}`,
		`{"id":18446744073709551615,"op":"stat","fileset":"` + strings.Repeat("x", 300) + `"}`,
		`[1,2,3]`,
		`{"id":1,"op":"pcreate","path":"` + strings.Repeat("/", 64) + `"}`,
		"\x00\x01\x02",
		`{"id":1,"op":"lock","client":-1}`,
	}
	srv := fuzzCluster(f)
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			return // bad frame: serveConn answers with an error response
		}
		resp := srv.serve(&connState{remote: "fuzz"}, req)
		if resp.ID != req.ID {
			t.Fatalf("response ID %d for request ID %d", resp.ID, req.ID)
		}
		// Whatever came back must be encodable, or the write path would die.
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unencodable response %+v: %v", resp, err)
		}
	})
}

// FuzzTaggedFrame drives the tagged-frame decoder with arbitrary bytes:
// framing must either parse cleanly or fail with a typed error — never
// panic, never return an out-of-range kind or an oversized payload. What
// does parse must survive a re-encode/re-parse round trip, so the reader
// and writer can never drift apart.
func FuzzTaggedFrame(f *testing.F) {
	frame := func(kind byte, tag uint64, payload string) []byte {
		buf := make([]byte, FrameHeaderSize+len(payload))
		PutFrameHeader(buf, kind, tag, len(payload))
		copy(buf[FrameHeaderSize:], payload)
		return buf
	}
	seeds := [][]byte{
		frame(FrameRequest, 1, `{"id":1,"op":"ping"}`),
		frame(FrameResponse, 42, `{"id":42}`),
		frame(FrameRequest, 7, ""),
		append(frame(FrameRequest, 1, `{"id":1}`), frame(FrameResponse, 2, `{"id":2}`)...),
		frame(FrameRequest, 1, `{"id":1}`)[:10],                          // truncated header
		{'x', 'F', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},             // bad magic
		{'a', 'F', 9, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},             // bad version
		{'a', 'F', 1, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},             // bad kind
		{'a', 'F', 1, 1, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, // oversized
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			kind, tag, payload, err := fr.ReadFrame()
			if err != nil {
				return // typed rejection or short read; both fine
			}
			if kind != FrameRequest && kind != FrameResponse {
				t.Fatalf("decoder returned invalid kind %d", kind)
			}
			if len(payload) > MaxFramePayload {
				t.Fatalf("decoder returned %d-byte payload over the cap", len(payload))
			}
			var hdr [FrameHeaderSize]byte
			PutFrameHeader(hdr[:], kind, tag, len(payload))
			k2, t2, n2, err := ParseFrameHeader(hdr[:])
			if err != nil || k2 != kind || t2 != tag || n2 != len(payload) {
				t.Fatalf("re-encode round trip: kind %d/%d tag %d/%d n %d/%d err %v",
					kind, k2, tag, t2, len(payload), n2, err)
			}
		}
	})
}

// TestGarbageFramesOverTCP feeds raw garbage through a real connection:
// the connection may be dropped, but the server must keep serving others.
func TestGarbageFramesOverTCP(t *testing.T) {
	c, _ := startServer(t, 1)
	addr := c.conn.RemoteAddr().String()

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	payloads := []string{
		"garbage\n",
		"{\"id\":1,\"op\":\"stat\"\n",
		strings.Repeat("A", 128<<10) + "\n", // over the scanner line cap
		"\x00\xff\xfe\n",
	}
	for _, p := range payloads {
		if _, err := bad.Write([]byte(p)); err != nil {
			break // server may hang up mid-way; that is acceptable
		}
	}
	// A healthy client still gets service afterwards.
	for i := 0; i < 3; i++ {
		if err := c.Create("fs00", fmt.Sprintf("/ok%d", i), sharedisk.Record{Size: 1}); err != nil {
			t.Fatalf("server unhealthy after garbage frames: %v", err)
		}
	}
}
