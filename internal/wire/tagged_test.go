package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	var hdr [FrameHeaderSize]byte
	PutFrameHeader(hdr[:], FrameResponse, 0xdeadbeefcafe, 12345)
	kind, tag, n, err := ParseFrameHeader(hdr[:])
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameResponse || tag != 0xdeadbeefcafe || n != 12345 {
		t.Fatalf("ParseFrameHeader = kind %d tag %#x n %d", kind, tag, n)
	}
}

func TestFrameHeaderRejections(t *testing.T) {
	good := func() []byte {
		var hdr [FrameHeaderSize]byte
		PutFrameHeader(hdr[:], FrameRequest, 7, 10)
		return hdr[:]
	}
	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"bad magic", func(h []byte) { h[0] = 'x' }, ErrBadFrameHeader},
		{"bad version", func(h []byte) { h[2] = 99 }, ErrBadFrameHeader},
		{"bad kind", func(h []byte) { h[3] = 9 }, ErrBadFrameKind},
		{"oversize", func(h []byte) { h[4], h[5], h[6], h[7] = 0xff, 0xff, 0xff, 0xff }, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		h := good()
		tc.mutate(h)
		if _, _, _, err := ParseFrameHeader(h); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, _, _, err := ParseFrameHeader(good()[:8]); !errors.Is(err, ErrBadFrameHeader) {
		t.Errorf("short header: err = %v", err)
	}
}

func TestFrameWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{[]byte(`{"id":1}`), []byte(``), bytes.Repeat([]byte("x"), 100000)}
	for i, p := range payloads {
		if err := fw.WriteFrame(FrameRequest, uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		kind, tag, got, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if kind != FrameRequest || tag != uint64(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: kind %d tag %d len %d", i, kind, tag, len(got))
		}
	}
	if err := fw.WriteFrame(FrameRequest, 1, make([]byte, MaxFramePayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write err = %v", err)
	}
}

// startTaggedServer is startServer, but it also exposes the listen
// address for tests that speak the protocol by hand.
func startTaggedServer(t *testing.T, nFileSets int) (*Client, string) {
	t.Helper()
	disk := sharedisk.NewStore(0)
	for i := 0; i < nFileSets; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := liveDefaultTestConfig()
	cl, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Stop()
	})
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, addr
}

func liveDefaultTestConfig() live.Config {
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour // no background tuning in protocol tests
	cfg.OpCost = 0
	return cfg
}

// taggedConn dials addr, performs the hello upgrade by hand, and returns
// the raw framing primitives — the lowest-level tagged client, so the
// test exercises the protocol rather than any sdk convenience.
func taggedConn(t *testing.T, addr string) (net.Conn, *FrameWriter, *FrameReader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := json.NewEncoder(conn).Encode(HelloRequest()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || resp.Proto != TaggedProtoV1 {
		t.Fatalf("hello reply = %+v", resp)
	}
	return conn, NewFrameWriter(conn), NewFrameReader(br)
}

func TestHelloUpgradeAndPipelining(t *testing.T) {
	c, addr := startTaggedServer(t, 1)
	c.Close()

	_, fw, fr := taggedConn(t, addr)
	// Send N requests back to back without reading a single response —
	// only a pipelined server can answer them all.
	const n = 32
	for i := 1; i <= n; i++ {
		req := Request{ID: uint64(i), Op: OpStat, FileSet: "fs00", Path: "/missing"}
		payload, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteFrame(FrameRequest, uint64(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		kind, tag, payload, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if kind != FrameResponse {
			t.Fatalf("frame kind = %d", kind)
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp.Err, "no such path") {
			t.Fatalf("tag %d: err = %q", tag, resp.Err)
		}
		if seen[tag] {
			t.Fatalf("tag %d answered twice", tag)
		}
		seen[tag] = true
	}
	if len(seen) != n {
		t.Fatalf("answered %d distinct tags, want %d", len(seen), n)
	}
}

func TestHelloMustBeFirst(t *testing.T) {
	c, addr := startTaggedServer(t, 1)
	c.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	br := bufio.NewReader(conn)
	readResp := func() Response {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if err := enc.Encode(Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(); resp.Err != "" {
		t.Fatalf("ping = %+v", resp)
	}
	if err := enc.Encode(Request{ID: 2, Op: OpHello, Proto: TaggedProtoV1}); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(); !strings.Contains(resp.Err, "first request") {
		t.Fatalf("late hello = %+v", resp)
	}
	// The rejected hello must leave the connection in working line mode.
	if err := enc.Encode(Request{ID: 3, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(); resp.Err != "" {
		t.Fatalf("ping after rejected hello = %+v", resp)
	}
}

func TestHelloRejectsUnknownVersion(t *testing.T) {
	c, addr := startTaggedServer(t, 1)
	c.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(Request{ID: 1, Op: OpHello, Proto: 42}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "unsupported") {
		t.Fatalf("hello v42 = %+v", resp)
	}
}

func TestGarbagePayloadAfterUpgradeKeepsConnection(t *testing.T) {
	c, addr := startTaggedServer(t, 1)
	c.Close()

	_, fw, fr := taggedConn(t, addr)
	// Intact framing, broken JSON: the server answers the tag with an
	// error and keeps serving.
	if err := fw.WriteFrame(FrameRequest, 7, []byte("{nonsense")); err != nil {
		t.Fatal(err)
	}
	kind, tag, payload, err := fr.ReadFrame()
	if err != nil || kind != FrameResponse || tag != 7 {
		t.Fatalf("ReadFrame = kind %d tag %d err %v", kind, tag, err)
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "bad frame") {
		t.Fatalf("garbage payload resp = %+v", resp)
	}
	// Healthy request still served on the same connection.
	good, err := json.Marshal(Request{ID: 8, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(FrameRequest, 8, good); err != nil {
		t.Fatal(err)
	}
	if _, tag, _, err := fr.ReadFrame(); err != nil || tag != 8 {
		t.Fatalf("ping after garbage: tag %d err %v", tag, err)
	}
}

func TestBatchOverWire(t *testing.T) {
	c, _ := startServer(t, 2)
	items := []BatchItem{
		{Op: OpCreate, Path: "/a", Record: &sharedisk.Record{Size: 1}},
		{Op: OpCreate, Path: "/b", Record: &sharedisk.Record{Size: 2}},
		{Op: OpStat, Path: "/a"},
		{Op: OpCreate, FileSet: "fs01", Path: "/c", Record: &sharedisk.Record{Size: 3}},
		{Op: OpStat, Path: "/missing"},
		{Op: OpRemove, Path: "/b"},
	}
	results, err := c.Batch("fs00", true, items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != "" || results[1].Err != "" || results[3].Err != "" || results[5].Err != "" {
		t.Fatalf("batch writes failed: %+v", results)
	}
	if results[2].Err != "" || results[2].Record == nil || results[2].Record.Size != 1 {
		t.Fatalf("batch stat = %+v", results[2])
	}
	if results[4].Err == "" || !strings.Contains(results[4].Err, "no such path") {
		t.Fatalf("batch stat-miss = %+v", results[4])
	}
	// Cross-file-set item landed in its own file set.
	if rec, err := c.Stat("fs01", "/c"); err != nil || rec.Size != 3 {
		t.Fatalf("cross-fs item: %+v, %v", rec, err)
	}
	// The removed record is gone.
	if _, err := c.Stat("fs00", "/b"); err == nil {
		t.Fatal("removed record still present")
	}
}

func TestBatchValidation(t *testing.T) {
	c, _ := startServer(t, 1)
	if _, err := c.Batch("fs00", false, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.Batch("fs00", false, []BatchItem{{Op: OpLock, Path: "/a"}}); err == nil ||
		!strings.Contains(err.Error(), "not batchable") {
		t.Fatalf("lock in batch = %v", err)
	}
	if _, err := c.Batch("", false, []BatchItem{{Op: OpStat, Path: "/a"}}); err == nil ||
		!strings.Contains(err.Error(), "file set") {
		t.Fatalf("file-set-less batch = %v", err)
	}
	over := make([]BatchItem, MaxBatchItems+1)
	for i := range over {
		over[i] = BatchItem{Op: OpStat, Path: "/a"}
	}
	if _, err := c.Batch("fs00", false, over); err == nil ||
		!strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("oversized batch = %v", err)
	}
}

func TestPingOp(t *testing.T) {
	c, _ := startServer(t, 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestTaggedConcurrentClients hammers the upgraded path with the race
// detector: several goroutines share one tagged connection's server side
// through separate connections while a line-mode client works alongside.
func TestTaggedAndLineClientsCoexist(t *testing.T) {
	c, addr := startTaggedServer(t, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, fw, fr := taggedConn(t, addr)
			for i := 1; i <= 20; i++ {
				payload, err := json.Marshal(Request{ID: uint64(i), Op: OpPing})
				if err != nil {
					t.Error(err)
					return
				}
				if err := fw.WriteFrame(FrameRequest, uint64(i), payload); err != nil {
					t.Error(err)
					return
				}
				if _, _, _, err := fr.ReadFrame(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
