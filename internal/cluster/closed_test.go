package cluster

import (
	"fmt"
	"math"
	"testing"

	"anufs/internal/core"
	"anufs/internal/placement"
	"anufs/internal/rng"
)

func closedWeights(n int, seed uint64) map[string]float64 {
	r := rng.NewStream(seed)
	w := map[string]float64{}
	for i := 0; i < n; i++ {
		w[fmt.Sprintf("cfs%02d", i)] = r.LogUniform10(3)
	}
	return w
}

func closedCfg() ClosedConfig {
	return ClosedConfig{
		Clients:   80,
		ThinkTime: 0.5,
		Duration:  1200,
		Weights:   closedWeights(40, 11),
		Work:      0.15,
	}
}

func TestRunClosedBasics(t *testing.T) {
	res, err := RunClosed(Defaults(), closedCfg(), placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 1000 {
		t.Fatalf("only %d requests from 80 clients over 1200 s", res.Requests)
	}
	if res.Series.Windows() < 10 {
		t.Fatalf("windows = %d", res.Series.Windows())
	}
	if res.LostRequests > res.Requests/10 {
		t.Fatalf("lost %d of %d without any failure", res.LostRequests, res.Requests)
	}
}

func TestRunClosedDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := RunClosed(Defaults(), closedCfg(), placement.NewANU(core.Defaults()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Requests != b.Requests || a.Moves != b.Moves {
		t.Fatalf("closed-loop runs differ: %d/%d requests, %d/%d moves",
			a.Requests, b.Requests, a.Moves, b.Moves)
	}
}

func TestRunClosedValidation(t *testing.T) {
	ok := closedCfg()
	for name, mutate := range map[string]func(*ClosedConfig){
		"no clients": func(c *ClosedConfig) { c.Clients = 0 },
		"no weights": func(c *ClosedConfig) { c.Weights = nil },
		"zero work":  func(c *ClosedConfig) { c.Work = 0 },
		"neg think":  func(c *ClosedConfig) { c.ThinkTime = -1 },
		"zero dur":   func(c *ClosedConfig) { c.Duration = 0 },
	} {
		bad := ok
		mutate(&bad)
		if _, err := RunClosed(Defaults(), bad, placement.NewRoundRobin()); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	allZero := ok
	allZero.Weights = map[string]float64{"a": 0}
	if _, err := RunClosed(Defaults(), allZero, placement.NewRoundRobin()); err == nil {
		t.Error("zero-sum weights accepted")
	}
	neg := ok
	neg.Weights = map[string]float64{"a": -1, "b": 2}
	if _, err := RunClosed(Defaults(), neg, placement.NewRoundRobin()); err == nil {
		t.Error("negative weight accepted")
	}
}

// Closed-loop steady state: once converged, ANU's per-window completion
// rate matches the static policies' — and the total-throughput gap it pays
// is the cost of its convergence moves, which stall closed-loop clients
// for the 5-10 s move time. This is exactly why the paper is "relatively
// conservative in moving data in response to short-term bursts" (§7): in a
// closed system, move stalls translate directly into lost throughput.
func TestClosedLoopSteadyThroughputConverges(t *testing.T) {
	ccfg := closedCfg()
	ccfg.ThinkTime = 0.05 // nearly saturating: throughput limited by service
	rr, err := RunClosed(Defaults(), ccfg, placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	anu, err := RunClosed(Defaults(), ccfg, placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	finalQuarter := func(r *Result) int {
		s := r.Series
		total := 0
		for w := s.Windows() * 3 / 4; w < s.Windows(); w++ {
			for _, id := range s.Servers() {
				total += s.Count(id, w)
			}
		}
		return total
	}
	fr, fa := finalQuarter(rr), finalQuarter(anu)
	if float64(fa) < 0.7*float64(fr) {
		t.Fatalf("closed loop steady state: ANU %d completions vs round-robin %d — did not converge", fa, fr)
	}
	// The total gap is move cost: ANU moved file sets, the statics did not.
	if anu.Moves == 0 {
		t.Fatal("ANU performed no moves")
	}
}

// Closed-loop latency stays bounded even under a static policy: blocked
// clients throttle the arrival rate (no unbounded queues, §2).
func TestClosedLoopLatencyBounded(t *testing.T) {
	ccfg := closedCfg()
	res, err := RunClosed(Defaults(), ccfg, placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	// Worst possible sojourn: all 80 clients queued on the slow server:
	// 80 × 0.15/1 = 12 s. Anything near the open-loop runaway (hundreds of
	// seconds) would mean the closed loop is broken.
	if res.Series.MaxMean() > 20 {
		t.Fatalf("closed-loop max window mean %.1fs — queue not bounded by population", res.Series.MaxMean())
	}
	if math.IsNaN(res.Series.SteadyStateCoV()) {
		t.Fatal("NaN CoV")
	}
}

func TestClosedLoopWithMembershipEvents(t *testing.T) {
	// Failure mid-run under the closed-loop driver: the run completes,
	// survivors serve, and requests routed to the dead server are lost
	// rather than wedging client loops.
	ccfg := closedCfg()
	cfg := Defaults()
	cfg.Events = []Event{{At: 600, ServerID: 4, Up: false}}
	res, err := RunClosed(cfg, ccfg, placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	lastWin := s.Windows() - 2
	if c := s.Count(4, lastWin); c != 0 {
		t.Fatalf("dead server completed %d in window %d", c, lastWin)
	}
	served := 0
	for _, id := range []int{0, 1, 2, 3} {
		served += s.Count(id, lastWin)
	}
	if served == 0 {
		t.Fatal("survivors served nothing after the failure")
	}
}
