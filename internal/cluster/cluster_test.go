package cluster

import (
	"math"
	"testing"

	"anufs/internal/core"
	"anufs/internal/placement"
	"anufs/internal/trace"
	"anufs/internal/workload"
)

// smallTrace builds a light synthetic trace: 40 file sets, ~6000 requests,
// 1200 s (10 windows), calibrated below peak for the 5-server cluster.
func smallTrace(seed uint64) *trace.Trace {
	cfg := workload.SyntheticConfig{
		Seed:       seed,
		FileSets:   40,
		Requests:   6000,
		Duration:   1200,
		WeightSpan: 3,
		Alpha:      1.25, // 6000*1.25/(1200*25) = 25% utilization
	}
	return workload.Generate(cfg)
}

func TestRunRoundRobinCompletes(t *testing.T) {
	res, err := Run(Defaults(), smallTrace(1), placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "round-robin" {
		t.Fatalf("policy %q", res.Policy)
	}
	if res.Requests < 5000 {
		t.Fatalf("only %d requests dispatched", res.Requests)
	}
	if res.Moves != 0 {
		t.Fatalf("static policy moved %d file sets", res.Moves)
	}
	if res.Series.Windows() < 10 {
		t.Fatalf("only %d windows", res.Series.Windows())
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Defaults(), smallTrace(3), placement.NewANU(core.Defaults()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Moves != b.Moves || a.Requests != b.Requests {
		t.Fatalf("runs differ: %d/%d moves, %d/%d requests", a.Moves, b.Moves, a.Requests, b.Requests)
	}
	for _, id := range a.Series.Servers() {
		for w := 0; w < a.Series.Windows(); w++ {
			if a.Series.Mean(id, w) != b.Series.Mean(id, w) {
				t.Fatalf("latency series differ at server %d window %d", id, w)
			}
		}
	}
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := Run(Defaults(), &trace.Trace{}, placement.NewRoundRobin()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunBadSpeed(t *testing.T) {
	cfg := Defaults()
	cfg.Speeds = map[int]float64{0: 0}
	if _, err := Run(cfg, smallTrace(1), placement.NewRoundRobin()); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestStaticPoliciesSkewOnHeterogeneousServers(t *testing.T) {
	// The paper's core observation (§7): static policies leave the slow
	// server drowning while fast servers idle.
	res, err := Run(Defaults(), smallTrace(2), placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	lastHalfSlow, lastHalfFast := 0.0, 0.0
	n := 0
	for w := s.Windows() / 2; w < s.Windows(); w++ {
		lastHalfSlow += s.Mean(0, w) // speed 1
		lastHalfFast += s.Mean(4, w) // speed 9
		n++
	}
	lastHalfSlow /= float64(n)
	lastHalfFast /= float64(n)
	if lastHalfSlow < 3*lastHalfFast {
		t.Fatalf("round-robin slow server %.3fs vs fast %.3fs — expected strong skew", lastHalfSlow, lastHalfFast)
	}
}

func TestANUOutperformsStaticSteadyState(t *testing.T) {
	tr := smallTrace(2)
	rrRes, err := Run(Defaults(), tr, placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	anuRes, err := Run(Defaults(), tr, placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	rr := rrRes.Series.SteadyStateCoV()
	anu := anuRes.Series.SteadyStateCoV()
	if anu >= rr {
		t.Fatalf("ANU steady CoV %.3f not below round-robin %.3f", anu, rr)
	}
	if anuRes.Moves == 0 {
		t.Fatal("ANU performed no moves — it cannot have adapted")
	}
}

func TestANUComparableToPrescient(t *testing.T) {
	tr := smallTrace(2)
	cfg := Defaults()
	pres, err := Run(cfg, tr, placement.NewPrescient(cfg.Speeds, tr, cfg.Window))
	if err != nil {
		t.Fatal(err)
	}
	anu, err := Run(cfg, tr, placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	p := pres.Series.SteadyOverallMean()
	a := anu.Series.SteadyOverallMean()
	// "ANU randomization performs comparably" (§7): within a small factor
	// of the prescient upper bound once converged.
	if a > 6*p {
		t.Fatalf("ANU steady mean %.4fs vs prescient %.4fs — not comparable", a, p)
	}
}

func TestMoveCostsDelayRequests(t *testing.T) {
	// A single file set moved at t=120 with a long move time: requests just
	// after the boundary must see inflated latency.
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			At: float64(i), FileSet: "only", Work: 0.1,
		})
	}
	cfg := Defaults()
	cfg.Speeds = map[int]float64{0: 1, 1: 1}
	cfg.MoveTimeMin, cfg.MoveTimeMax = 30, 30
	cfg.ColdCacheFactor = 1

	// A policy that flips ownership at the first reconfiguration.
	pol := &flipPolicy{}
	res, err := Run(cfg, tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 (t=120..240) contains the move at t=120: requests queued
	// behind the 30 s move drive the window mean well above baseline.
	w1 := math.Max(res.Series.Mean(0, 1), res.Series.Mean(1, 1))
	w0 := math.Max(res.Series.Mean(0, 0), res.Series.Mean(1, 0))
	if w1 < w0+2 {
		t.Fatalf("move cost invisible: window0 %.3fs window1 %.3fs", w0, w1)
	}
	if res.Moves != 1 {
		t.Fatalf("moves = %d, want 1", res.Moves)
	}
	if res.MovesByWindow[0] != 1 {
		t.Fatalf("MovesByWindow = %v", res.MovesByWindow)
	}
}

func TestColdCacheInflatesService(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Requests = append(tr.Requests, trace.Request{At: float64(i), FileSet: "only", Work: 0.5})
	}
	base := Defaults()
	base.Speeds = map[int]float64{0: 1, 1: 1}
	base.MoveTimeMin, base.MoveTimeMax = 0.001, 0.001
	base.FlushTime = 0

	cold := base
	cold.ColdCacheFactor = 10
	cold.ColdCacheRequests = 60

	warm := base
	warm.ColdCacheFactor = 1
	warm.ColdCacheRequests = 0

	coldRes, err := Run(cold, tr, &flipPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Run(warm, tr, &flipPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// The flip moves the file set to server 1 at t=120; window 1 on that
	// server shows the cold-cache inflation.
	cw := coldRes.Series.Mean(1, 1)
	ww := warmRes.Series.Mean(1, 1)
	if cw <= ww {
		t.Fatalf("cold-cache window mean %.4fs not above warm %.4fs", cw, ww)
	}
}

// flipPolicy sends everything to server 0, then flips to server 1 at the
// first reconfiguration and stays there.
type flipPolicy struct {
	flipped bool
}

func (f *flipPolicy) Name() string               { return "flip" }
func (f *flipPolicy) Init([]int, []string) error { return nil }
func (f *flipPolicy) Owner(string) int           { return boolToID(f.flipped) }
func (f *flipPolicy) Reconfigure(float64, []placement.Report) error {
	f.flipped = true
	return nil
}

func boolToID(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestFailureAndRecovery(t *testing.T) {
	tr := smallTrace(5)
	cfg := Defaults()
	cfg.Events = []Event{
		{At: 400, ServerID: 4, Up: false},
		{At: 800, ServerID: 4, Up: true},
	}
	res, err := Run(cfg, tr, placement.NewANU(core.Defaults()))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// During the outage (windows 4..6) server 4 must complete nothing new
	// shortly after failing; after recovery it serves again.
	deadWindow := 5 // 600..720 s, fully inside the outage
	if c := s.Count(4, deadWindow); c != 0 {
		t.Fatalf("dead server completed %d requests in window %d", c, deadWindow)
	}
	served := 0
	for w := 8; w < s.Windows(); w++ {
		served += s.Count(4, w)
	}
	if served == 0 {
		t.Fatal("recovered server never served again")
	}
	if res.Moves == 0 {
		t.Fatal("failure caused no file set movement")
	}
}

func TestFailureRequiresMembershipHandler(t *testing.T) {
	cfg := Defaults()
	cfg.Events = []Event{{At: 100, ServerID: 0, Up: false}}
	if _, err := Run(cfg, smallTrace(1), placement.NewRoundRobin()); err == nil {
		t.Fatal("membership events accepted for static policy")
	}
}

func TestDoubleFailureRejected(t *testing.T) {
	cfg := Defaults()
	cfg.Events = []Event{
		{At: 100, ServerID: 0, Up: false},
		{At: 200, ServerID: 0, Up: false},
	}
	if _, err := Run(cfg, smallTrace(1), placement.NewANU(core.Defaults())); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestEventOutsideTraceRejected(t *testing.T) {
	cfg := Defaults()
	cfg.Events = []Event{{At: 1e9, ServerID: 0, Up: false}}
	if _, err := Run(cfg, smallTrace(1), placement.NewANU(core.Defaults())); err == nil {
		t.Fatal("event beyond trace duration accepted")
	}
}

func TestLostRequestsCountedOnFailure(t *testing.T) {
	// Saturate the slow server, then kill it: queued requests are lost.
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		tr.Requests = append(tr.Requests, trace.Request{At: float64(i) * 0.1, FileSet: "hot", Work: 5})
	}
	tr.Requests = append(tr.Requests, trace.Request{At: 200, FileSet: "hot", Work: 0.1})
	cfg := Defaults()
	cfg.Speeds = map[int]float64{0: 1, 1: 1}
	cfg.Events = []Event{{At: 30, ServerID: 0, Up: false}}
	pol := placement.NewANU(core.Defaults())
	res, err := Run(cfg, tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	// "hot" may have started on either server; only assert when it was on 0.
	if res.LostRequests == 0 {
		t.Skip("file set hashed to the surviving server; nothing to lose")
	}
	if res.LostRequests > res.Requests {
		t.Fatalf("lost %d > dispatched %d", res.LostRequests, res.Requests)
	}
}

func TestWithDefaultsFillsGaps(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 120 || c.Speeds == nil || c.MoveTimeMin != 5 || c.MoveTimeMax != 10 {
		t.Fatalf("withDefaults: %+v", c)
	}
	c2 := Config{MoveTimeMin: 3, MoveTimeMax: 1}.withDefaults()
	if c2.MoveTimeMax != 3 {
		t.Fatalf("MoveTimeMax not clamped: %+v", c2)
	}
}

func BenchmarkRunANUSmall(b *testing.B) {
	tr := smallTrace(1)
	for i := 0; i < b.N; i++ {
		if _, err := Run(Defaults(), tr, placement.NewANU(core.Defaults())); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSpeedChangeEventTakesEffect(t *testing.T) {
	// One server, constant load; speed jumps 1 -> 10 at t=150. Latency in
	// later windows must collapse relative to the early ones.
	tr := &trace.Trace{}
	for i := 0; i < 580; i++ {
		tr.Requests = append(tr.Requests, trace.Request{At: float64(i) * 0.5, FileSet: "only", Work: 0.45})
	}
	cfg := Defaults()
	cfg.Speeds = map[int]float64{0: 1}
	cfg.Window = 60
	cfg.Events = []Event{{At: 150, ServerID: 0, NewSpeed: 10}}
	res, err := Run(cfg, tr, placement.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	early := res.Series.Mean(0, 1) // 60..120s: ρ=0.9 at speed 1
	late := res.Series.Mean(0, 4)  // 240..300s: ρ=0.09 at speed 10
	if late >= early/2 {
		t.Fatalf("speed change invisible: window1 %.3fs vs window4 %.3fs", early, late)
	}
}

func TestSpeedChangeForDeadServerRejected(t *testing.T) {
	cfg := Defaults()
	cfg.Events = []Event{
		{At: 100, ServerID: 4, Up: false},
		{At: 200, ServerID: 4, NewSpeed: 3},
	}
	if _, err := Run(cfg, smallTrace(1), placement.NewANU(core.Defaults())); err == nil {
		t.Fatal("speed change for dead server accepted")
	}
}

func TestSpeedChangeOnlyEventsWorkWithStaticPolicies(t *testing.T) {
	// Speed changes do not involve the policy, so static policies accept
	// them (unlike membership events).
	cfg := Defaults()
	cfg.Events = []Event{{At: 300, ServerID: 0, NewSpeed: 5}}
	if _, err := Run(cfg, smallTrace(1), placement.NewRoundRobin()); err != nil {
		t.Fatal(err)
	}
}
