// Package cluster simulates a shared-disk file system metadata-server
// cluster (paper §2, §7): heterogeneous servers with FIFO queues serve the
// metadata requests of a trace, a placement policy routes file sets to
// servers and reconfigures at a fixed interval, and file-set movement pays
// the costs the paper describes — the shedding server flushes its cache,
// the move takes five to ten seconds, and the acquiring server starts with
// a cold cache.
package cluster

import (
	"fmt"
	"sort"

	"anufs/internal/desim"
	"anufs/internal/metrics"
	"anufs/internal/placement"
	"anufs/internal/rng"
	"anufs/internal/trace"
)

// Event is a membership or hardware change at the given simulated time:
// a server going down (failure/decommission), coming up
// (recovery/commission), or — when NewSpeed > 0 — changing speed in place,
// the paper's "upgrading hardware while the system is on-line and taking
// full advantage of faster hardware" (§1). Speed changes apply to a live
// server and need no support from the placement policy: ANU discovers the
// new capability through latency alone.
type Event struct {
	At       float64
	ServerID int
	Up       bool
	NewSpeed float64
}

// Config parameterizes a simulation run.
type Config struct {
	// Speeds maps server ID to relative processing power (paper §7 uses
	// 1, 3, 5, 7, 9). All servers in the map start alive.
	Speeds map[int]float64
	// Window is the measurement/reconfiguration interval in seconds
	// (paper: two minutes).
	Window float64
	// MoveTimeMin/Max bound the per-file-set move duration, drawn uniformly
	// (paper: "it takes five to ten seconds to move a file set").
	MoveTimeMin, MoveTimeMax float64
	// FlushTime is how long the shedding server is busy flushing dirty
	// cache state per shed file set.
	FlushTime float64
	// ColdCacheFactor inflates the service work of the first
	// ColdCacheRequests requests a file set receives after moving.
	ColdCacheFactor   float64
	ColdCacheRequests int
	// Seed drives the simulation's random draws (move durations).
	Seed uint64
	// Events are membership changes, applied in time order. Policies must
	// implement placement.MembershipHandler if Events is non-empty.
	Events []Event
}

// Defaults returns the paper-calibrated configuration for the standard
// 5-server heterogeneous cluster.
func Defaults() Config {
	return Config{
		Speeds:            map[int]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9},
		Window:            120,
		MoveTimeMin:       5,
		MoveTimeMax:       10,
		FlushTime:         1,
		ColdCacheFactor:   2,
		ColdCacheRequests: 32,
		Seed:              1,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Speeds == nil {
		c.Speeds = d.Speeds
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MoveTimeMin <= 0 {
		c.MoveTimeMin = d.MoveTimeMin
	}
	if c.MoveTimeMax <= 0 {
		c.MoveTimeMax = d.MoveTimeMax
	}
	if c.MoveTimeMax < c.MoveTimeMin {
		c.MoveTimeMax = c.MoveTimeMin
	}
	if c.ColdCacheFactor < 1 {
		c.ColdCacheFactor = 1
	}
	if c.ColdCacheRequests < 0 {
		c.ColdCacheRequests = 0
	}
	if c.FlushTime < 0 {
		c.FlushTime = 0
	}
	return c
}

// Result is what one simulation run produces.
type Result struct {
	Policy string
	// Series holds the per-server, per-window mean latencies (seconds) —
	// the data behind the paper's figures.
	Series *metrics.Series
	// Moves is the total number of file-set movements.
	Moves int
	// MovesByWindow indexes movements by the window in which the
	// reconfiguration fired.
	MovesByWindow []int
	// LostRequests counts requests that were queued on a server when it
	// failed (clients would retry these).
	LostRequests int
	// Requests is the number of requests dispatched.
	Requests int
}

// setup builds the simulation state shared by the open-loop (Run) and
// closed-loop (RunClosed) drivers: stations, policy initialization, the
// reconfiguration schedule, and the membership events.
func setup(cfg Config, fileSets []string, pol placement.Policy, duration float64) (*state, error) {
	for _, ev := range cfg.Events {
		if ev.NewSpeed > 0 {
			continue // in-place speed changes do not involve the policy
		}
		if _, ok := pol.(placement.MembershipHandler); !ok {
			return nil, fmt.Errorf("cluster: policy %s does not support membership events", pol.Name())
		}
	}

	sim := desim.New()
	r := rng.NewStream(cfg.Seed)

	servers := make([]int, 0, len(cfg.Speeds))
	for id, sp := range cfg.Speeds {
		if sp <= 0 {
			return nil, fmt.Errorf("cluster: server %d has non-positive speed %v", id, sp)
		}
		servers = append(servers, id)
	}
	sort.Ints(servers)

	stations := make(map[int]*desim.Station, len(servers))
	for _, id := range servers {
		stations[id] = desim.NewStation(sim, cfg.Speeds[id])
	}

	if err := pol.Init(servers, fileSets); err != nil {
		return nil, err
	}

	st := &state{
		cfg:       cfg,
		sim:       sim,
		rng:       r,
		pol:       pol,
		stations:  stations,
		alive:     map[int]bool{},
		fileSets:  fileSets,
		owner:     map[string]int{},
		availAt:   map[string]float64{},
		coldLeft:  map[string]int{},
		collector: metrics.NewCollector(cfg.Window),
		winCount:  map[int]int{},
		winSum:    map[int]float64{},
		result:    &Result{Policy: pol.Name()},
	}
	for _, id := range servers {
		st.alive[id] = true
	}
	for _, fs := range fileSets {
		st.owner[fs] = pol.Owner(fs)
	}

	// Schedule reconfigurations at every window boundary within the run.
	windows := int(duration/cfg.Window) + 1
	for k := 1; k <= windows; k++ {
		at := float64(k) * cfg.Window
		win := k - 1
		sim.At(desim.Time(at), func() { st.reconfigure(at, win) })
	}
	st.windows = windows
	st.result.MovesByWindow = make([]int, windows)

	// Schedule membership events.
	evs := append([]Event(nil), cfg.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for i := range evs {
		ev := evs[i]
		if ev.At < 0 || ev.At > duration {
			return nil, fmt.Errorf("cluster: event at %v outside duration %v", ev.At, duration)
		}
		sim.At(desim.Time(ev.At), func() { st.membership(ev) })
	}
	return st, nil
}

// Run simulates the policy over the trace and returns the collected
// metrics. It is deterministic for fixed (cfg, trace, policy construction).
func Run(cfg Config, tr *trace.Trace, pol placement.Policy) (*Result, error) {
	cfg = cfg.withDefaults()
	if tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	st, err := setup(cfg, tr.FileSets(), pol, tr.Duration())
	if err != nil {
		return nil, err
	}

	// Schedule the workload.
	for i := range tr.Requests {
		req := tr.Requests[i]
		st.sim.At(desim.Time(req.At), func() { st.dispatch(req) })
	}

	st.sim.Run()
	if st.err != nil {
		return nil, st.err
	}
	st.result.Series = st.collector.Series(st.windows)
	return st.result, nil
}

// state is the mutable simulation state shared by event callbacks.
type state struct {
	cfg       Config
	sim       *desim.Sim
	rng       *rng.Stream
	pol       placement.Policy
	stations  map[int]*desim.Station
	alive     map[int]bool
	fileSets  []string
	owner     map[string]int
	availAt   map[string]float64 // file set unavailable until (mid-move)
	coldLeft  map[string]int     // cold-cache requests remaining
	collector *metrics.Collector
	winCount  map[int]int
	winSum    map[int]float64
	result    *Result
	windows   int
	err       error
}

func (st *state) dispatch(req trace.Request) {
	st.submit(req.FileSet, req.Work, req.At, nil)
}

// submit routes one request to the file set's current owner. A request for
// a file set that is mid-move waits until the move completes and then
// enqueues (it does not block the server's other file sets). onDone, if
// non-nil, fires at completion (the closed-loop driver's continuation) even
// when the serving server died mid-request.
func (st *state) submit(fileSet string, reqWork, arrival float64, onDone func(finish float64)) {
	if st.err != nil {
		return
	}
	st.result.Requests++
	if avail := st.availAt[fileSet]; avail > float64(st.sim.Now()) {
		st.sim.At(desim.Time(avail), func() { st.enqueue(fileSet, reqWork, arrival, onDone) })
		return
	}
	st.enqueue(fileSet, reqWork, arrival, onDone)
}

func (st *state) enqueue(fileSet string, reqWork, arrival float64, onDone func(finish float64)) {
	if st.err != nil {
		return
	}
	// The owner is resolved at enqueue time: a request that waited out a
	// move goes to the new owner.
	id := st.owner[fileSet]
	station, ok := st.stations[id]
	if !ok {
		st.err = fmt.Errorf("cluster: request for %q routed to unknown server %d", fileSet, id)
		return
	}
	work := reqWork
	if st.coldLeft[fileSet] > 0 {
		work *= st.cfg.ColdCacheFactor
		st.coldLeft[fileSet]--
	}
	station.Submit(0, desim.Time(work), func(_, finish desim.Time) {
		if st.alive[id] {
			lat := float64(finish) - arrival
			st.collector.Observe(id, float64(finish), lat)
			st.winCount[id]++
			st.winSum[id] += lat
		} else {
			st.result.LostRequests++
		}
		if onDone != nil {
			onDone(float64(finish))
		}
	})
}

// reports builds the per-server latency reports for the elapsed window.
// Every live server reports; idle servers report zero requests, which is
// how the delegate learns a server sat idle (paper §6 top-off discussion).
func (st *state) reports() []placement.Report {
	ids := make([]int, 0, len(st.alive))
	for id, up := range st.alive {
		if up {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	reps := make([]placement.Report, 0, len(ids))
	for _, id := range ids {
		rep := placement.Report{ServerID: id}
		if n := st.winCount[id]; n > 0 {
			rep.Requests = n
			rep.MeanLatency = st.winSum[id] / float64(n)
		}
		reps = append(reps, rep)
	}
	return reps
}

func (st *state) reconfigure(now float64, window int) {
	if st.err != nil {
		return
	}
	if err := st.pol.Reconfigure(now, st.reports()); err != nil {
		st.err = err
		return
	}
	st.winCount = map[int]int{}
	st.winSum = map[int]float64{}
	st.applyMoves(now, window)
}

func (st *state) membership(ev Event) {
	if st.err != nil {
		return
	}
	if ev.NewSpeed > 0 {
		// In-place hardware change: jobs already queued keep their finish
		// times; new arrivals see the new speed.
		s, ok := st.stations[ev.ServerID]
		if !ok || !st.alive[ev.ServerID] {
			st.err = fmt.Errorf("cluster: speed change for missing server %d at t=%v", ev.ServerID, ev.At)
			return
		}
		s.SetSpeed(ev.NewSpeed)
		return
	}
	h := st.pol.(placement.MembershipHandler)
	if ev.Up {
		if st.alive[ev.ServerID] {
			st.err = fmt.Errorf("cluster: server %d already up at t=%v", ev.ServerID, ev.At)
			return
		}
		if st.stations[ev.ServerID] == nil {
			st.stations[ev.ServerID] = desim.NewStation(st.sim, st.cfg.Speeds[ev.ServerID])
		}
		st.alive[ev.ServerID] = true
		if err := h.ServerUp(ev.ServerID); err != nil {
			st.err = err
			return
		}
	} else {
		if !st.alive[ev.ServerID] {
			st.err = fmt.Errorf("cluster: server %d already down at t=%v", ev.ServerID, ev.At)
			return
		}
		st.alive[ev.ServerID] = false
		if err := h.ServerDown(ev.ServerID); err != nil {
			st.err = err
			return
		}
	}
	win := int(ev.At / st.cfg.Window)
	if win >= len(st.result.MovesByWindow) {
		win = len(st.result.MovesByWindow) - 1
	}
	st.applyMoves(ev.At, win)
}

// applyMoves diffs the policy's ownership against the routing table and
// applies movement costs: the shedding server (if alive) blocks for the
// flush, the file set is unavailable for the move duration, and its next
// requests run against a cold cache.
func (st *state) applyMoves(now float64, window int) {
	for _, fs := range st.fileSets {
		newOwner := st.pol.Owner(fs)
		oldOwner := st.owner[fs]
		if newOwner == oldOwner {
			continue
		}
		st.owner[fs] = newOwner
		st.result.Moves++
		if window >= 0 && window < len(st.result.MovesByWindow) {
			st.result.MovesByWindow[window]++
		}
		if st.alive[oldOwner] {
			if s := st.stations[oldOwner]; s != nil && st.cfg.FlushTime > 0 {
				s.Block(desim.Time(st.cfg.FlushTime))
			}
		}
		moveTime := st.rng.Uniform(st.cfg.MoveTimeMin, st.cfg.MoveTimeMax)
		if until := now + moveTime; until > st.availAt[fs] {
			st.availAt[fs] = until
		}
		st.coldLeft[fs] = st.cfg.ColdCacheRequests
	}
}
