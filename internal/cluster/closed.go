package cluster

import (
	"fmt"
	"sort"

	"anufs/internal/desim"
	"anufs/internal/placement"
	"anufs/internal/rng"
)

// ClosedConfig parameterizes the closed-loop client driver. The paper's
// clients are closed-loop: they "acquire metadata prior to data", so a
// client blocked on a metadata request issues nothing else meanwhile —
// "clients blocked on metadata may leave the high bandwidth SAN
// underutilized" (§2). Under this model a slow metadata server does not
// build an unbounded queue; it throttles its clients, and imbalance shows
// up as lost *throughput* rather than runaway latency.
type ClosedConfig struct {
	// Clients is the closed-loop population size.
	Clients int
	// ThinkTime is the mean exponential pause between a response and the
	// client's next request (seconds).
	ThinkTime float64
	// Duration is the simulated run length (seconds).
	Duration float64
	// Weights selects which file set each request targets (relative
	// weights; the heavy-tailed access skew).
	Weights map[string]float64
	// Work is the per-request service time at speed 1 (seconds).
	Work float64
}

// RunClosed simulates a closed-loop client population against the cluster.
// Each client repeatedly: picks a file set by weight, issues one metadata
// request to its owner, waits for the response, thinks, repeats.
func RunClosed(cfg Config, ccfg ClosedConfig, pol placement.Policy) (*Result, error) {
	cfg = cfg.withDefaults()
	if ccfg.Clients < 1 || ccfg.Duration <= 0 || ccfg.Work <= 0 || ccfg.ThinkTime < 0 {
		return nil, fmt.Errorf("cluster: invalid ClosedConfig %+v", ccfg)
	}
	if len(ccfg.Weights) == 0 {
		return nil, fmt.Errorf("cluster: closed-loop run needs file-set weights")
	}
	fileSets := make([]string, 0, len(ccfg.Weights))
	for fs := range ccfg.Weights {
		fileSets = append(fileSets, fs)
	}
	sort.Strings(fileSets)
	cum := make([]float64, len(fileSets))
	var wsum float64
	for i, fs := range fileSets {
		w := ccfg.Weights[fs]
		if w < 0 {
			return nil, fmt.Errorf("cluster: negative weight for %q", fs)
		}
		wsum += w
		cum[i] = wsum
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("cluster: weights sum to zero")
	}

	st, err := setup(cfg, fileSets, pol, ccfg.Duration)
	if err != nil {
		return nil, err
	}

	pick := func(u float64) string {
		x := u * wsum
		i := sort.SearchFloat64s(cum, x)
		if i >= len(fileSets) {
			i = len(fileSets) - 1
		}
		return fileSets[i]
	}

	// Each client is a self-perpetuating event chain.
	var clientLoop func(cr *rng.Stream)
	clientLoop = func(cr *rng.Stream) {
		now := float64(st.sim.Now())
		if now >= ccfg.Duration || st.err != nil {
			return
		}
		fs := pick(cr.Float64())
		st.submit(fs, ccfg.Work, now, func(finish float64) {
			think := 0.0
			if ccfg.ThinkTime > 0 {
				think = cr.Exp(1 / ccfg.ThinkTime)
			}
			next := finish + think
			if next < ccfg.Duration {
				st.sim.At(desim.Time(next), func() { clientLoop(cr) })
			}
		})
	}
	for c := 0; c < ccfg.Clients; c++ {
		cr := st.rng.Split()
		// Stagger starts across the first think time to avoid a thundering
		// herd at t=0.
		start := cr.Float64() * ccfg.ThinkTime
		st.sim.At(desim.Time(start), func() { clientLoop(cr) })
	}

	st.sim.Run()
	if st.err != nil {
		return nil, st.err
	}
	st.result.Series = st.collector.Series(st.windows)
	return st.result, nil
}
