package namespace

import (
	"strings"
	"testing"
)

// FuzzClean hardens path canonicalization: no panic, and accepted paths are
// absolute, slash-normalized fixpoints of Clean.
func FuzzClean(f *testing.F) {
	f.Add("/")
	f.Add("/a//b/")
	f.Add("a/b")
	f.Add("/a/../b")
	f.Add("///")
	f.Add("/ / /")
	f.Fuzz(func(t *testing.T, in string) {
		out, err := Clean(in)
		if err != nil {
			return
		}
		if !strings.HasPrefix(out, "/") {
			t.Fatalf("Clean(%q) = %q not absolute", in, out)
		}
		if out != "/" && strings.HasSuffix(out, "/") {
			t.Fatalf("Clean(%q) = %q has trailing slash", in, out)
		}
		if strings.Contains(out, "//") {
			t.Fatalf("Clean(%q) = %q contains //", in, out)
		}
		again, err := Clean(out)
		if err != nil || again != out {
			t.Fatalf("Clean not a fixpoint: %q -> %q -> %q (%v)", in, out, again, err)
		}
	})
}

// FuzzResolve: resolution over an arbitrary mount table never panics and
// always returns a mounted file set with a rooted relative path.
func FuzzResolve(f *testing.F) {
	f.Add("/projects/alpha/x", "/projects", "fsP")
	f.Add("/x", "/", "fsRoot")
	f.Fuzz(func(t *testing.T, path, prefix, fs string) {
		tab := New()
		_ = tab.Mount(prefix, fs)
		got, rel, err := tab.Resolve(path)
		if err != nil {
			return
		}
		if got == "" || !strings.HasPrefix(rel, "/") {
			t.Fatalf("Resolve(%q) = (%q, %q)", path, got, rel)
		}
	})
}
