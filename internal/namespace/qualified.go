package namespace

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Volume-qualified file-set IDs. A multi-tenant fleet addresses file sets
// as "<volume>/<fileset>": the volume is the tenant, the file set is a
// subtree of that tenant's namespace, and the qualified ID is what flows
// through placement hashing, the wire protocol, and the journal. File-set
// IDs without a separator are legacy single-tenant names and belong to the
// implicit DefaultVolume, so every pre-volume deployment keeps working
// unchanged.

// DefaultVolume is the implicit tenant for unqualified file-set IDs.
const DefaultVolume = "default"

// VolumeSep separates the volume from the file set in a qualified ID.
const VolumeSep = "/"

// MaxVolumeName bounds volume names; they appear in metrics labels and on
// every wire frame, so keep them short.
const MaxVolumeName = 64

// ValidVolumeName rejects names that would break qualified-ID parsing or
// collide with system pseudo file sets: empty, containing the separator,
// leading "__" (reserved for system images like __fleet/map), control or
// space runes, invalid UTF-8, or over-long names.
func ValidVolumeName(vol string) error {
	if vol == "" {
		return fmt.Errorf("namespace: empty volume name")
	}
	if len(vol) > MaxVolumeName {
		return fmt.Errorf("namespace: volume name longer than %d bytes", MaxVolumeName)
	}
	if strings.Contains(vol, VolumeSep) {
		return fmt.Errorf("namespace: volume name %q contains %q", vol, VolumeSep)
	}
	if strings.HasPrefix(vol, "__") {
		return fmt.Errorf("namespace: volume name %q is reserved (leading __)", vol)
	}
	if !utf8.ValidString(vol) {
		return fmt.Errorf("namespace: volume name is not valid UTF-8")
	}
	for _, r := range vol {
		if unicode.IsControl(r) || unicode.IsSpace(r) {
			return fmt.Errorf("namespace: volume name %q contains control or space rune", vol)
		}
	}
	return nil
}

// QualifyFileSet builds the qualified ID "<vol>/<fs>". The volume must be
// a valid volume name and the file set must be a bare (separator-free,
// non-empty) name, so the result always splits back to its inputs.
func QualifyFileSet(vol, fs string) (string, error) {
	if err := ValidVolumeName(vol); err != nil {
		return "", err
	}
	if fs == "" {
		return "", fmt.Errorf("namespace: empty file set name")
	}
	if strings.Contains(fs, VolumeSep) {
		return "", fmt.Errorf("namespace: file set name %q contains %q", fs, VolumeSep)
	}
	return vol + VolumeSep + fs, nil
}

// SplitFileSet parses a possibly-qualified file-set ID. IDs without a
// separator belong to DefaultVolume; otherwise everything before the first
// separator is the volume (even when empty or reserved — callers that need
// validity run ValidVolumeName on the result).
func SplitFileSet(id string) (vol, fs string) {
	i := strings.Index(id, VolumeSep)
	if i < 0 {
		return DefaultVolume, id
	}
	return id[:i], id[i+len(VolumeSep):]
}

// VolumeOf reports the tenant a file-set ID belongs to.
func VolumeOf(id string) string {
	vol, _ := SplitFileSet(id)
	return vol
}

// SystemVolume reports whether vol is a reserved system namespace (the
// "__" prefix carried by pseudo file sets like __fleet/map): system
// volumes bypass registry admission, quotas, and placement policy.
func SystemVolume(vol string) bool {
	return strings.HasPrefix(vol, "__")
}
