package namespace

import (
	"strings"
	"testing"
)

func TestQualifyFileSetRoundTrip(t *testing.T) {
	id, err := QualifyFileSet("tenantA", "fs0")
	if err != nil {
		t.Fatal(err)
	}
	if id != "tenantA/fs0" {
		t.Fatalf("QualifyFileSet = %q", id)
	}
	vol, fs := SplitFileSet(id)
	if vol != "tenantA" || fs != "fs0" {
		t.Fatalf("SplitFileSet(%q) = (%q, %q)", id, vol, fs)
	}
}

func TestSplitFileSetUnqualified(t *testing.T) {
	vol, fs := SplitFileSet("vol00")
	if vol != DefaultVolume || fs != "vol00" {
		t.Fatalf("SplitFileSet(vol00) = (%q, %q)", vol, fs)
	}
	if VolumeOf("vol00") != DefaultVolume {
		t.Fatalf("VolumeOf(vol00) = %q", VolumeOf("vol00"))
	}
	if VolumeOf("a/b") != "a" {
		t.Fatalf("VolumeOf(a/b) = %q", VolumeOf("a/b"))
	}
}

func TestSplitFileSetSystemImage(t *testing.T) {
	// System pseudo file sets like __fleet/map split but never validate.
	vol, fs := SplitFileSet("__fleet/map")
	if vol != "__fleet" || fs != "map" {
		t.Fatalf("SplitFileSet(__fleet/map) = (%q, %q)", vol, fs)
	}
	if ValidVolumeName(vol) == nil {
		t.Fatal("reserved __fleet validated as a volume name")
	}
}

func TestValidVolumeName(t *testing.T) {
	bad := []string{
		"", "a/b", "/", "__sys", "has space", "tab\there", "ctl\x00",
		string([]byte{0xff, 0xfe}), strings.Repeat("x", MaxVolumeName+1),
	}
	for _, v := range bad {
		if ValidVolumeName(v) == nil {
			t.Errorf("ValidVolumeName(%q) accepted", v)
		}
	}
	good := []string{"a", "tenant-1", "τενant", "数据", strings.Repeat("x", MaxVolumeName)}
	for _, v := range good {
		if err := ValidVolumeName(v); err != nil {
			t.Errorf("ValidVolumeName(%q): %v", v, err)
		}
	}
}

func TestQualifyFileSetRejects(t *testing.T) {
	cases := [][2]string{
		{"", "fs"}, {"v/ol", "fs"}, {"__v", "fs"}, {"v", ""}, {"v", "a/b"},
	}
	for _, c := range cases {
		if _, err := QualifyFileSet(c[0], c[1]); err == nil {
			t.Errorf("QualifyFileSet(%q, %q) accepted", c[0], c[1])
		}
	}
}

// FuzzVolumeQualifiedName hardens qualified-ID construction and parsing:
// whatever bytes arrive (separator injection, empty volume, unicode),
// Qualify either rejects the pair or produces an ID that splits back to
// exactly its inputs, and Split never panics and is total.
func FuzzVolumeQualifiedName(f *testing.F) {
	f.Add("tenantA", "fs0")
	f.Add("", "fs0")          // empty volume
	f.Add("a/b", "fs")        // separator injection in the volume
	f.Add("a", "b/c")         // separator injection in the file set
	f.Add("__fleet", "map")   // reserved system prefix
	f.Add("τενant", "фс")     // unicode
	f.Add("default", "vol00") // explicit default volume
	f.Add("a b", "fs")        // space
	f.Add("\xff\xfe", "fs")   // invalid UTF-8
	f.Add("v", "")            // empty file set
	f.Fuzz(func(t *testing.T, vol, fs string) {
		id, err := QualifyFileSet(vol, fs)
		if err == nil {
			if ValidVolumeName(vol) != nil {
				t.Fatalf("Qualify(%q, %q) accepted an invalid volume", vol, fs)
			}
			if strings.Count(id, VolumeSep) != 1 {
				t.Fatalf("Qualify(%q, %q) = %q: want exactly one separator", vol, fs, id)
			}
			v2, f2 := SplitFileSet(id)
			if v2 != vol || f2 != fs {
				t.Fatalf("round trip broke: (%q, %q) -> %q -> (%q, %q)", vol, fs, id, v2, f2)
			}
		}
		// Split is total: no panic, the volume never contains the
		// separator, and re-qualifying a valid split is a fixpoint.
		v, rest := SplitFileSet(vol + VolumeSep + fs)
		if strings.Contains(v, VolumeSep) {
			t.Fatalf("SplitFileSet(%q) volume %q contains separator", vol+VolumeSep+fs, v)
		}
		if !strings.Contains(vol, VolumeSep) && v != vol {
			t.Fatalf("SplitFileSet(%q) volume = %q, want %q", vol+VolumeSep+fs, v, vol)
		}
		if ValidVolumeName(v) == nil && rest != "" && !strings.Contains(rest, VolumeSep) {
			again, err := QualifyFileSet(v, rest)
			if err != nil || again != vol+VolumeSep+fs {
				t.Fatalf("re-qualify of split (%q, %q) failed: %q, %v", v, rest, again, err)
			}
		}
	})
}
