package namespace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func mustMount(t *testing.T, tab *Table, prefix, fs string) {
	t.Helper()
	if err := tab.Mount(prefix, fs); err != nil {
		t.Fatalf("Mount(%s, %s): %v", prefix, fs, err)
	}
}

func TestResolveLongestPrefix(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/", "fs-root")
	mustMount(t, tab, "/projects", "fs-proj")
	mustMount(t, tab, "/projects/alpha", "fs-alpha")

	cases := []struct{ path, fs, rel string }{
		{"/readme.txt", "fs-root", "/readme.txt"},
		{"/progress/x", "fs-root", "/progress/x"}, // no component-boundary confusion
		{"/projects", "fs-proj", "/"},
		{"/projects/beta/doc", "fs-proj", "/beta/doc"},
		{"/projects/alpha", "fs-alpha", "/"},
		{"/projects/alpha/src/main.go", "fs-alpha", "/src/main.go"},
		{"/", "fs-root", "/"},
	}
	for _, c := range cases {
		fs, rel, err := tab.Resolve(c.path)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", c.path, err)
		}
		if fs != c.fs || rel != c.rel {
			t.Fatalf("Resolve(%s) = (%s, %s), want (%s, %s)", c.path, fs, rel, c.fs, c.rel)
		}
	}
}

func TestResolveNoMount(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/data", "fs-data")
	if _, _, err := tab.Resolve("/other/file"); err == nil {
		t.Fatal("resolved a path with no covering mount")
	}
}

func TestMountValidation(t *testing.T) {
	tab := New()
	if err := tab.Mount("relative/path", "fs"); err == nil {
		t.Fatal("relative mount accepted")
	}
	if err := tab.Mount("/x", ""); err == nil {
		t.Fatal("empty file set accepted")
	}
	if err := tab.Mount("/a/../b", "fs"); err == nil {
		t.Fatal("dot-dot path accepted")
	}
	mustMount(t, tab, "/x", "fs1")
	if err := tab.Mount("/x", "fs2"); err == nil {
		t.Fatal("double mount accepted")
	}
	if err := tab.Mount("/x/", "fs2"); err == nil {
		t.Fatal("double mount via trailing slash accepted")
	}
}

func TestUnmount(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/", "fs-root")
	mustMount(t, tab, "/p", "fs-p")
	if err := tab.Unmount("/p"); err != nil {
		t.Fatal(err)
	}
	fs, rel, err := tab.Resolve("/p/file")
	if err != nil || fs != "fs-root" || rel != "/p/file" {
		t.Fatalf("after unmount: (%s, %s, %v)", fs, rel, err)
	}
	if err := tab.Unmount("/p"); err == nil {
		t.Fatal("double unmount accepted")
	}
	if err := tab.Unmount("/nonexistent"); err == nil {
		t.Fatal("unmount of non-mount accepted")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestCleanNormalization(t *testing.T) {
	cases := map[string]string{
		"/":      "/",
		"/a//b/": "/a/b",
		"///x":   "/x",
		"/a/b/c": "/a/b/c",
	}
	for in, want := range cases {
		got, err := Clean(in)
		if err != nil || got != want {
			t.Fatalf("Clean(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "a/b", "/a/./b", "/../x"} {
		if _, err := Clean(bad); err == nil {
			t.Fatalf("Clean(%q) accepted", bad)
		}
	}
}

func TestMountsSorted(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/z", "fz")
	mustMount(t, tab, "/a", "fa")
	mustMount(t, tab, "/", "froot")
	ms := tab.Mounts()
	if len(ms) != 3 {
		t.Fatalf("Mounts = %v", ms)
	}
	if ms[0].Prefix != "/" || ms[1].Prefix != "/a" || ms[2].Prefix != "/z" {
		t.Fatalf("Mounts not sorted: %v", ms)
	}
	if ms[0].FileSet != "froot" {
		t.Fatalf("root mount = %+v", ms[0])
	}
}

func TestRootMountResolvesEverything(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/", "everything")
	for _, p := range []string{"/", "/a", "/a/b/c/d/e"} {
		fs, _, err := tab.Resolve(p)
		if err != nil || fs != "everything" {
			t.Fatalf("Resolve(%s) = %s, %v", p, fs, err)
		}
	}
}

func TestConcurrentResolve(t *testing.T) {
	tab := New()
	mustMount(t, tab, "/", "root")
	for i := 0; i < 20; i++ {
		mustMount(t, tab, fmt.Sprintf("/m%d", i), fmt.Sprintf("fs%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := fmt.Sprintf("/m%d/file%d", (g+i)%20, i)
				fs, _, err := tab.Resolve(p)
				if err != nil || !strings.HasPrefix(fs, "fs") {
					t.Errorf("Resolve(%s) = %s, %v", p, fs, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
