// Package namespace maps the global file-system namespace onto file sets.
// In the paper's architecture a file set "is a subtree of the global file
// system namespace" (§2), so clients address files by global path and the
// system resolves the path to (file set, relative path) before hashing the
// file-set name for placement. The mount table is tiny, changes rarely
// (an administrative operation), and is replicated like the server map.
package namespace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mount binds a namespace subtree to a file set.
type Mount struct {
	Prefix  string // absolute, cleaned, e.g. "/projects/alpha"
	FileSet string
}

// Table is the mount table. Safe for concurrent use. Resolution is
// longest-prefix match over whole path components, so nested mounts work:
// with "/" → fs-root and "/projects" → fs-proj, "/projects/x" resolves to
// fs-proj and "/progress" to fs-root.
type Table struct {
	mu   sync.RWMutex
	root *node
	n    int
}

type node struct {
	children map[string]*node
	fileSet  string // non-empty if a mount ends here
}

// New creates an empty table.
func New() *Table {
	return &Table{root: &node{children: map[string]*node{}}}
}

// Clean canonicalizes a path: ensures a leading slash, collapses repeated
// slashes, strips a trailing slash (except for the root).
func Clean(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("namespace: path %q must be absolute", path)
	}
	parts := split(path)
	for _, p := range parts {
		if p == "." || p == ".." {
			return "", fmt.Errorf("namespace: path %q must not contain . or ..", path)
		}
	}
	return "/" + strings.Join(parts, "/"), nil
}

func split(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// Mount binds prefix to fileSet. Mounting over an existing mount point is
// an error (unmount first); nesting under or above existing mounts is fine.
func (t *Table) Mount(prefix, fileSet string) error {
	if fileSet == "" {
		return fmt.Errorf("namespace: empty file set")
	}
	cleaned, err := Clean(prefix)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for _, part := range split(cleaned) {
		next, ok := cur.children[part]
		if !ok {
			next = &node{children: map[string]*node{}}
			cur.children[part] = next
		}
		cur = next
	}
	if cur.fileSet != "" {
		return fmt.Errorf("namespace: %s already mounts %s", cleaned, cur.fileSet)
	}
	cur.fileSet = fileSet
	t.n++
	return nil
}

// Unmount removes the mount at prefix.
func (t *Table) Unmount(prefix string) error {
	cleaned, err := Clean(prefix)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for _, part := range split(cleaned) {
		next, ok := cur.children[part]
		if !ok {
			return fmt.Errorf("namespace: %s is not a mount point", cleaned)
		}
		cur = next
	}
	if cur.fileSet == "" {
		return fmt.Errorf("namespace: %s is not a mount point", cleaned)
	}
	cur.fileSet = ""
	t.n--
	// Empty trie branches are left in place; the table is tiny and mounts
	// churn rarely, so pruning is not worth the code.
	return nil
}

// Resolve maps a global path to its file set and the path relative to the
// mount point (always beginning with "/"; the mount point itself resolves
// to "/").
func (t *Table) Resolve(path string) (fileSet, rel string, err error) {
	cleaned, err := Clean(path)
	if err != nil {
		return "", "", err
	}
	parts := split(cleaned)
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := t.root
	bestFS := cur.fileSet
	bestDepth := 0
	for i, part := range parts {
		next, ok := cur.children[part]
		if !ok {
			break
		}
		cur = next
		if cur.fileSet != "" {
			bestFS = cur.fileSet
			bestDepth = i + 1
		}
	}
	if bestFS == "" {
		return "", "", fmt.Errorf("namespace: no file set mounted above %s", cleaned)
	}
	return bestFS, "/" + strings.Join(parts[bestDepth:], "/"), nil
}

// Mounts lists the table's mounts sorted by prefix.
func (t *Table) Mounts() []Mount {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Mount
	var walk func(prefix string, n *node)
	walk = func(prefix string, n *node) {
		if n.fileSet != "" {
			p := prefix
			if p == "" {
				p = "/"
			}
			out = append(out, Mount{Prefix: p, FileSet: n.fileSet})
		}
		for part, child := range n.children {
			walk(prefix+"/"+part, child)
		}
	}
	walk("", t.root)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// Len reports the number of mounts.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}
