// Package analysistest runs one analyzer over a fixture module and
// compares its diagnostics against expectations embedded in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	total += v // want `map iteration order is nondeterministic`
//
// Each `// want` comment carries one or more quoted or backquoted
// regular expressions; every diagnostic on that line must match one of
// them, every expectation must be matched by a diagnostic, and any
// diagnostic on a line with no expectation fails the test. Fixtures are
// small self-contained modules (their own go.mod, conventionally
// `module anufs` so package paths mirror the real tree); the go tool
// ignores everything under testdata, so fixture code never leaks into
// builds of the repository.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"anufs/internal/analysis"
)

// wantRe pulls the expectation list out of a comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module rooted at dir and applies the analyzer
// to every package in it, checking diagnostics against the fixture's
// `// want` comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	store := analysis.NewFactStore()
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			analysis.ComputeFacts(pkg, []*analysis.Analyzer{a}, store, nil)
			continue
		}
		wants := collectWants(t, pkg)
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, store, nil)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			found := false
			for _, w := range wants {
				if w.file == pos.Filename && w.line == pos.Line && !w.matched && w.re.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("unexpected diagnostic at %s: %s (%s)", pos, d.Message, d.Analyzer)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
			}
		}
	}
}

// collectWants parses every `// want` expectation in the package's
// files.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitPatterns(m[1]) {
					pat, err := unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	return wants
}

// splitPatterns splits `"a" "b c"` or "`a` `b`" into raw quoted tokens.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[:end+2])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func unquote(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
