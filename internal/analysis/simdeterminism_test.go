package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/simdeterminism", analysis.SimDeterminism)
}
