package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/lockdiscipline", analysis.LockDiscipline)
}
