package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, "testdata/goroutinelife", analysis.GoroutineLife)
}
