package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one typechecked package ready for analysis.
type Package struct {
	Path      string // import path ("pkg" or "pkg [pkg.test]" for the merged test variant)
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// HasTestFiles reports whether the unit includes *_test.go files —
	// checks that require test coverage only fire on such units, which
	// matches how `go vet` builds its units.
	HasTestFiles bool
	// FactsOnly marks a package that is in the load only so analyzers
	// can export facts about it for its dependents: a module-internal
	// dependency outside the requested patterns, or the plain variant
	// of a package whose merged test variant is the analysis unit.
	// Drivers must not report diagnostics for FactsOnly packages.
	FactsOnly bool
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// loadCache memoizes Load results for the lifetime of the process,
// keyed by (absolute dir, patterns). One anufsvet run — and one test
// binary running many analyzers over the same fixtures — invokes
// `go list -e -export -deps -test -json` and typechecks each unit once;
// every subsequent Load for the same key reuses the packages, which are
// read-only after construction.
var loadCache = struct {
	sync.Mutex
	m map[string]*loadResult
}{m: map[string]*loadResult{}}

type loadResult struct {
	pkgs []*Package
	err  error
}

// Load typechecks the packages matching patterns in dir, test files
// included, the same way `go vet` builds its analysis units: for a
// package with in-package test files the merged package+test variant is
// analyzed; external _test packages and synthesized test mains are
// skipped (the suite's analyzers target package code and its in-package
// tests). Dependencies are imported from compiler export data produced
// by `go list -export`, so loading needs no network and shares the
// build cache.
//
// Module-internal dependencies that are not themselves analysis units
// come back marked FactsOnly, in dependency order before their
// dependents (`go list -deps` guarantees the order), so a driver that
// walks the slice front to back always has dependency facts in hand
// before it analyzes an importer.
func Load(dir string, patterns ...string) ([]*Package, error) {
	key := loadKey(dir, patterns)
	loadCache.Lock()
	defer loadCache.Unlock()
	if r, ok := loadCache.m[key]; ok {
		return r.pkgs, r.err
	}
	pkgs, err := load(dir, patterns)
	loadCache.m[key] = &loadResult{pkgs: pkgs, err: err}
	return pkgs, err
}

func loadKey(dir string, patterns []string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	return dir + "\x00" + strings.Join(patterns, "\x00")
}

func load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		entries = append(entries, e)
	}

	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	// Pick the analysis units: prefer the merged "pkg [pkg.test]"
	// variant; fall back to the plain package when it has no in-package
	// tests. Skip external test packages and the synthesized ".test"
	// mains. Standard-library entries are never typechecked from
	// source; module-internal entries that are not units (dep-only, or
	// superseded by a merged variant) are loaded FactsOnly so the
	// interprocedural analyzers can summarize them for dependents.
	merged := map[string]bool{} // base paths that have a merged variant
	for _, e := range entries {
		if e.ForTest != "" && e.ImportPath == e.ForTest+" ["+e.ForTest+".test]" {
			merged[e.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	imp := newCachedImporter(fset, exports)
	var pkgs []*Package
	for _, e := range entries {
		if e.Standard || strings.HasSuffix(e.ImportPath, ".test") ||
			strings.HasSuffix(e.Name, "_test") {
			continue
		}
		if e.ForTest != "" && e.ImportPath != e.ForTest+" ["+e.ForTest+".test]" {
			continue
		}
		factsOnly := e.DepOnly || e.ForTest == "" && merged[e.ImportPath]
		if len(e.CgoFiles) > 0 {
			if factsOnly {
				continue // degrade: no facts rather than a load failure
			}
			return nil, fmt.Errorf("%s: cgo packages are not supported", e.ImportPath)
		}
		pkg, err := typecheck(fset, e, imp)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = factsOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and typechecks one unit from source.
func typecheck(fset *token.FileSet, e *listEntry, imp types.Importer) (*Package, error) {
	var files []*ast.File
	hasTests := false
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			hasTests = true
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Per-unit import remapping (test variants import the bracketed
	// builds of their dependencies).
	unitImp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := e.ImportMap[path]; ok {
			path = mapped
		}
		return imp.Import(path)
	})
	conf := &types.Config{Importer: unitImp, Error: func(error) {}}
	basePath := e.ForTest
	if basePath == "" {
		basePath = e.ImportPath
	}
	tpkg, err := conf.Check(basePath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", e.ImportPath, err)
	}
	return &Package{
		Path:         e.ImportPath,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		HasTestFiles: hasTests,
	}, nil
}

// newCachedImporter imports packages from the export data files that
// `go list -export` reported, caching by path.
func newCachedImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
