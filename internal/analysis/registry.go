package analysis

// Registry returns every analyzer in the suite, in stable order. The
// //anufs:allow hygiene checks run implicitly with any of them.
func Registry() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		JournalKinds,
		WireOps,
		LockDiscipline,
		HotPathAlloc,
		GoroutineLife,
		ErrCode,
	}
}

// pathHasSuffix reports whether the import path ends with one of the
// given slash-separated suffixes. Matching by suffix rather than full
// path lets the analyzers apply equally to the real module and to the
// fixture modules the golden tests typecheck.
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || len(path) > len(s) && path[len(path)-len(s)-1] == '/' && path[len(path)-len(s):] == s {
			return true
		}
	}
	return false
}
