package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestErrCode(t *testing.T) {
	analysistest.Run(t, "testdata/errcode", analysis.ErrCode)
}
