package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//anufs:allow <analyzer> <reason...>
//
// An allow on line L suppresses diagnostics of the named analyzer on
// line L and line L+1, so it works both as a trailing comment on the
// offending line and as a standalone comment immediately above it.
const allowPrefix = "//anufs:allow"

// AllowHygiene is the pseudo-analyzer name under which malformed or
// unused allow annotations are reported. It cannot be suppressed.
const AllowHygiene = "allowhygiene"

// an allow is one parsed annotation.
type allow struct {
	pos      token.Pos
	line     int
	analyzer string
	reason   string
	used     bool
}

// parseAllows extracts every allow annotation from the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []*allow {
	var allows []*allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				// A nested "//" ends the annotation (the golden tests put
				// their expectations there).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				a := &allow{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					a.analyzer = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				allows = append(allows, a)
			}
		}
	}
	return allows
}

// applyAllows filters diags through the annotations and appends hygiene
// diagnostics for annotations that are malformed, name an unknown
// analyzer, or suppress nothing. registered maps every valid analyzer
// name; ran maps the analyzers that executed in this pass — the unused
// check only applies to those, so running a single analyzer (as the
// golden tests do) does not condemn allows for the others.
func applyAllows(fset *token.FileSet, allows []*allow, ran, registered map[string]bool, diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		file := fset.Position(d.Pos).Filename
		suppressed := false
		for _, a := range allows {
			if a.analyzer != d.Analyzer || a.reason == "" {
				continue
			}
			if fset.Position(a.pos).Filename != file {
				continue
			}
			if a.line == line || a.line == line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.analyzer == "" || a.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowHygiene,
				Message:  "anufs:allow needs an analyzer name and a reason: //anufs:allow <analyzer> <reason...>",
			})
		case !registered[a.analyzer]:
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowHygiene,
				Message:  "anufs:allow names unknown analyzer " + a.analyzer,
			})
		case !ran[a.analyzer]:
			// Not exercised in this run; nothing to say about it.
		case !a.used:
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowHygiene,
				Message:  "unused anufs:allow for " + a.analyzer + ": nothing on this or the next line triggers it",
			})
		}
	}
	return kept
}
