// Package consumer exercises the dialed-client deadline rule outside
// the wire package itself.
package consumer

import "anufs/internal/wire"

func deadlined() (*wire.Client, error) {
	c, err := wire.Dial("127.0.0.1:7460")
	if err != nil {
		return nil, err
	}
	c.SetTimeout(30)
	return c, nil
}

func undeadlined() (*wire.Client, error) {
	return wire.Dial("127.0.0.1:7460") // want `wire\.Dial without SetTimeout in undeadlined`
}

func allowed() (*wire.Client, error) {
	return wire.Dial("127.0.0.1:7460") //anufs:allow wireops interactive debugging helper; the operator interrupts it
}
