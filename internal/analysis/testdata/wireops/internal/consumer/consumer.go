// Package consumer exercises the dialed-client deadline rule outside
// the wire package itself.
package consumer

import (
	"anufs/internal/sdk"
	"anufs/internal/wire"
)

func deadlined() (*wire.Client, error) {
	c, err := wire.Dial("127.0.0.1:7460")
	if err != nil {
		return nil, err
	}
	c.SetTimeout(30)
	return c, nil
}

func undeadlined() (*wire.Client, error) {
	return wire.Dial("127.0.0.1:7460") // want `wire\.Dial without a deadline in undeadlined`
}

func allowed() (*wire.Client, error) {
	return wire.Dial("127.0.0.1:7460") //anufs:allow wireops interactive debugging helper; the operator interrupts it
}

func sdkDeadlined() (*sdk.Conn, error) {
	c, err := sdk.Dial("127.0.0.1:7470", sdk.Options{})
	if err != nil {
		return nil, err
	}
	c.SetTimeout(30)
	return c, nil
}

func sdkOptionsTimeout() *sdk.Pool {
	return sdk.NewPool("127.0.0.1:7470", sdk.Options{Timeout: 30})
}

func sdkUndeadlined() *sdk.Pool {
	return sdk.NewPool("127.0.0.1:7470", sdk.Options{}) // want `sdk\.NewPool without a deadline in sdkUndeadlined`
}
