// Package wire is a fixture for the wireops analyzer: every Op must be
// registered in both the client encode and server dispatch tables.
package wire

// Op enumerates protocol operations.
type Op string

const (
	// OpPing is registered on both ends: clean.
	OpPing Op = "ping"
	// OpOrphanServer is dispatched by the server but no client sends it.
	OpOrphanServer Op = "orphan-server" // want `OpOrphanServer is never sent by a client Request literal`
	// OpOrphanClient is sent by a client but the server never answers it.
	OpOrphanClient Op = "orphan-client" // want `OpOrphanClient is not dispatched by any server switch`
	// OpVestigial is reserved for a future epoch bump; the allow records that.
	OpVestigial Op = "vestigial" //anufs:allow wireops reserved opcode for the next protocol rev; neither end speaks it yet
	// Fleet ops: the forward clause in serve must name every one of
	// these, and the fleet package's Fleet method must case them all.
	OpMap      Op = "map"
	OpJoin     Op = "join"
	OpTakeover Op = "takeover"
	// Volume-administration ops ride the same fleet forward path.
	OpVolumeCreate Op = "volume-create"
	OpVolumeList   Op = "volume-list"
)

// Request is one client frame.
type Request struct {
	Op      Op
	FileSet string
}

// Client is the protocol client.
type Client struct{ timeout int }

// SetTimeout arms the per-call deadline.
func (c *Client) SetTimeout(d int) { c.timeout = d }

func (c *Client) call(req Request) Request { return req }

// Ping sends OpPing.
func (c *Client) Ping() { c.call(Request{Op: OpPing}) }

// Orphan sends the op the server never answers.
func (c *Client) Orphan() { c.call(Request{Op: OpOrphanClient}) }

// Map, Join, and Takeover send the fleet ops.
func (c *Client) Map() (Request, Request, Request) {
	return c.call(Request{Op: OpMap}), c.call(Request{Op: OpJoin}), c.call(Request{Op: OpTakeover})
}

// VolumeCreate and VolumeList send the volume-administration ops.
func (c *Client) VolumeCreate() (Request, Request) {
	return c.call(Request{Op: OpVolumeCreate}), c.call(Request{Op: OpVolumeList})
}

// Dial connects a client.
func Dial(addr string) (*Client, error) { return &Client{}, nil }

// DialTimeout connects a client whose deadline is armed at birth.
func DialTimeout(addr string, d int) (*Client, error) {
	c := &Client{}
	c.SetTimeout(d)
	return c, nil
}

func serve(req Request) int {
	switch req.Op {
	case OpPing:
		return 1
	case OpOrphanServer:
		return 2
	case OpMap, OpJoin, OpVolumeCreate: // want `fleet forward clause misses OpTakeover, OpVolumeList`
		return 3
	case OpTakeover, OpVolumeList: // dispatched, but outside the forward clause
		return 4
	}
	return 0
}
