// Package fleet is a fixture for the wireops fleet-dispatch rule: the
// Fleet method must case every fleet op the wire package defines.
package fleet

import "anufs/internal/wire"

// Member is the fixture fleet handler.
type Member struct{}

// Fleet dispatches fleet ops — but misses OpTakeover and OpVolumeList,
// which the server forwards here all the same.
func (m *Member) Fleet(req wire.Request) int { // want `Fleet dispatch misses OpTakeover, OpVolumeList`
	switch req.Op {
	case wire.OpMap:
		return 1
	case wire.OpJoin:
		return 2
	case wire.OpVolumeCreate:
		return 3
	}
	return 0
}

// probe holds a transport obtained via the self-armed constructor: no
// deadline diagnostic, because DialTimeout arms one at birth.
func probe() (*wire.Client, error) {
	return wire.DialTimeout("127.0.0.1:7460", 30)
}
