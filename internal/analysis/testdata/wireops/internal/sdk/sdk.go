// Package sdk is a fixture for the wireops analyzer's sdk rules: ops sent
// in Request literals without a file set must have a gateway demux case,
// and every transport construction must arm a deadline.
package sdk

import "anufs/internal/wire"

// Options configures transports; a Timeout key in a literal arms the
// deadline at construction.
type Options struct {
	Timeout int
}

// Conn is a pipelined connection.
type Conn struct{ timeout int }

// SetTimeout arms the per-call deadline.
func (c *Conn) SetTimeout(d int) { c.timeout = d }

// Dial opens a connection.
func Dial(addr string, opts Options) (*Conn, error) {
	return &Conn{timeout: opts.Timeout}, nil
}

// Pool is a connection pool.
type Pool struct{ opts Options }

// SetTimeout arms the deadline on pooled connections.
func (p *Pool) SetTimeout(d int) { p.opts.Timeout = d }

// NewPool builds a pool.
func NewPool(addr string, opts Options) *Pool { return &Pool{opts: opts} }

func send(req wire.Request) wire.Request { return req }

// route is the gateway demux: it special-cases OpPing only.
func route(req wire.Request) int {
	switch req.Op {
	case wire.OpPing:
		return 1
	}
	return 0
}

// sendsDemuxed emits an op the demux handles: clean.
func sendsDemuxed() { send(wire.Request{Op: wire.OpPing}) }

// sendsUnroutable emits an op with no file set and no demux case: a
// gateway has no way to route it.
func sendsUnroutable() {
	send(wire.Request{Op: wire.OpOrphanServer}) // want `OpOrphanServer is sent without a file set but has no gateway demux case`
}

// sendsWithFileSet rides the default forward-by-owner route: exempt.
func sendsWithFileSet() { send(wire.Request{Op: wire.OpOrphanServer, FileSet: "vol00"}) }

var _ = route
