// Package core is outside the goroutinelife scope (fleet, live,
// replica, sdk): the same leak pattern draws no diagnostic here.
package core

import "time"

// Spin would be flagged in a scoped package; here it is not.
func Spin() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
