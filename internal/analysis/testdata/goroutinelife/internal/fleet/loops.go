// Package fleet is a fixture for the goroutinelife analyzer: every
// goroutine must tie its unbounded loops to a shutdown path.
package fleet

import "time"

type member struct {
	stop   chan struct{}
	work   chan int
	events chan int
	flag   bool
}

// Leak launches a loop with no exit at all: flagged.
func (m *member) Leak() {
	go func() {
		for { // want `unbounded loop in goroutine has no shutdown path`
			time.Sleep(time.Second)
		}
	}()
}

// TickerLeak selects, but on nothing that stops: flagged.
func (m *member) TickerLeak() {
	t := time.NewTicker(time.Second)
	go func() {
		for { // want `unbounded loop in goroutine has no shutdown path`
			select {
			case <-t.C:
				m.flag = true
			}
		}
	}()
}

// runForever is launched by name below; the diagnostic lands on the
// loop inside the named body.
func (m *member) runForever() {
	for { // want `unbounded loop in goroutine has no shutdown path`
		time.Sleep(time.Second)
	}
}

// LaunchNamed launches a same-package method: resolved through the
// declaration.
func (m *member) LaunchNamed() {
	go m.runForever()
}

// SelectStop exits through a stop channel: clean.
func (m *member) SelectStop() {
	go func() {
		for {
			select {
			case <-m.stop:
				return
			case v := <-m.work:
				_ = v
			}
		}
	}()
}

// RecvStop receives the stop channel outside a select: clean.
func (m *member) RecvStop() {
	go func() {
		for {
			<-m.stop
			return
		}
	}()
}

// ErrGuard exits when the connection dies — teardown is the stop
// signal: clean.
func (m *member) ErrGuard(read func() (int, error)) {
	go func() {
		for {
			_, err := read()
			if err != nil {
				return
			}
		}
	}()
}

// OkGuard exits when the channel closes via the receive's ok: clean.
func (m *member) OkGuard() {
	go func() {
		for {
			v, ok := <-m.events
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// RangeChan ranges over a channel, which terminates on close: exempt by
// construction.
func (m *member) RangeChan() {
	go func() {
		for v := range m.events {
			_ = v
		}
	}()
}

// Bounded loops (a condition, or a range over a slice) are not suspect.
func (m *member) Bounded(xs []int) {
	go func() {
		for i := 0; i < 10; i++ {
		}
		for _, x := range xs {
			_ = x
		}
	}()
}

// Allowed carries a justified suppression.
func (m *member) Allowed() {
	go func() {
		//anufs:allow goroutinelife fixture: exercises the allow escape hatch
		for {
			time.Sleep(time.Second)
		}
	}()
}
