module anufs

go 1.22
