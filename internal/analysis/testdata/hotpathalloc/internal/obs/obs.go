// Package obs is a fixture for the hotpathalloc analyzer: functions
// marked //anufs:hotpath must not allocate.
package obs

import "fmt"

// Histogram is a stand-in for the real latency histogram.
type Histogram struct {
	counts [8]uint64
	labels string
}

// Observe records one sample; it runs on every request.
//
//anufs:hotpath
func (h *Histogram) Observe(bucket int, name string, raw []byte) {
	h.counts[bucket]++
	fmt.Sprintf("bucket=%d", bucket) // want `fmt\.Sprintf allocates and reflects in hot path Observe`
	key := "op:" + name              // want `string concatenation allocates in hot path Observe`
	h.labels += key                  // want `string concatenation allocates in hot path Observe`
	_ = string(raw)                  // want `string conversion copies in hot path Observe`
}

// Snapshot builds a scratch buffer; it is marked hot to exercise the
// builtin and literal rules.
//
//anufs:hotpath
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, 0, len(h.counts)) // want `make allocates in hot path Snapshot`
	for _, c := range h.counts {
		out = append(out, c) // want `append allocates in hot path Snapshot`
	}
	_ = map[string]uint64{} // want `map/slice literal allocates in hot path Snapshot`
	return out
}

// Reset is marked hot but every construct it uses is free.
//
//anufs:hotpath
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	const tag = "hist:" + "v1" // constant-folded, no allocation
	_ = tag
}

// Describe is NOT marked hot: the same constructs are fine here.
func (h *Histogram) Describe() string {
	return fmt.Sprintf("histogram with %d buckets", len(h.counts))
}

// Drain is marked hot but carries a justified allow for its one
// allocation.
//
//anufs:hotpath
func (h *Histogram) Drain() []uint64 {
	out := make([]uint64, len(h.counts)) //anufs:allow hotpathalloc Drain runs once per scrape, not per request
	for i, c := range h.counts {
		out[i] = c
	}
	return out
}
