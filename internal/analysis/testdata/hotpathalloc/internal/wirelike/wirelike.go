// Package wirelike is the consumer side of the interprocedural
// hotpathalloc fixture: hot functions here call same-package and
// cross-package callees whose allocation behavior arrives via the call
// graph and exported facts.
package wirelike

import "anufs/internal/bufenc"

type codec struct {
	scratch []byte
	name    string
}

// allocLocal allocates directly (same-package, depth 1 from callers).
func allocLocal() []byte {
	return make([]byte, 16)
}

// viaOne → allocLocal: depth 2 from a caller.
func viaOne() []byte { return allocLocal() }

// viaTwo → viaOne → allocLocal: depth 3 from a caller.
func viaTwo() []byte { return viaOne() }

// deep1..deep5 build a chain whose allocation is five calls away —
// beyond maxHotDepth, so a hot caller of deep1 is NOT flagged.
func deep5() []byte { return make([]byte, 1) }
func deep4() []byte { return deep5() }
func deep3() []byte { return deep4() }
func deep2() []byte { return deep3() }
func deep1() []byte { return deep2() }

// reuseAppend appends into its caller's buffer: clean.
func reuseAppend(dst []byte, b byte) []byte {
	return append(dst, b)
}

// Encode is the hot entry point.
//
//anufs:hotpath
func (c *codec) Encode(b []byte) {
	c.scratch = reuseAppend(c.scratch[:0], 1) // clean: caller-owned buffer all the way down
	c.scratch = bufenc.AppendTo(c.scratch, b) // clean: cross-package append-style encoder
	_ = allocLocal()                          // want `call to wirelike\.allocLocal allocates in hot path Encode: make allocates at wirelike\.go:\d+`
	_ = viaOne()                              // want `call to wirelike\.viaOne allocates in hot path Encode: calls wirelike\.allocLocal \(wirelike\.go:\d+\): make allocates at wirelike\.go:\d+`
	_ = viaTwo()                              // want `call to wirelike\.viaTwo allocates in hot path Encode`
	_ = deep1()                               // beyond maxHotDepth: not flagged
	_ = bufenc.Alloc(b)                       // want `call to bufenc\.Alloc allocates in hot path Encode: make allocates at bufenc\.go:\d+`
	_ = bufenc.Chain(b)                       // want `call to bufenc\.Chain allocates in hot path Encode: calls bufenc\.Alloc \(bufenc\.go:\d+\): make allocates at bufenc\.go:\d+`
	_ = bufenc.HotEncode(b)                   // not flagged here: the callee is marked hot and checked at its definition
	_ = viaTwo()                              //anufs:allow hotpathalloc exercised once per connection handshake, not per frame
}

// Grow exercises the amortized-growth exemption: the allocation is
// behind a cap() guard, so the hot path stays quiet.
//
//anufs:hotpath
func (c *codec) Grow(n int) {
	if n > cap(c.scratch) {
		c.scratch = make([]byte, n) // exempt: guarded growth
		_ = allocLocal()            // exempt: same guard
	}
	c.scratch = c.scratch[:n]
}

// SetName exercises the string-reuse idiom: the comparison does not
// allocate and the conversion runs only when the value changed.
//
//anufs:hotpath
func (c *codec) SetName(b []byte) {
	if c.name != string(b) {
		c.name = string(b)
	}
	_ = string(b) // want `string conversion copies in hot path SetName`
}

// Dispatch exercises the comparison/switch-tag exemption: gc compiles a
// string([]byte) conversion used as a comparison operand or switch tag
// without copying, so key-dispatch decoders stay quiet.
//
//anufs:hotpath
func (c *codec) Dispatch(key []byte) int {
	if string(key) == "id" { // exempt: comparison operand
		return 0
	}
	switch string(key) { // exempt: switch tag
	case "op":
		return 1
	case "fileset":
		return 2
	}
	s := string(key) // want `string conversion copies in hot path Dispatch`
	_ = s
	return -1
}
