// Package bufenc is the dependency side of the interprocedural
// hotpathalloc fixture: its allocation summaries are exported as facts
// and consumed by internal/wirelike.
package bufenc

// Alloc allocates directly; callers on a hot path inherit the taint.
func Alloc(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// AppendTo is an append-style encoder: the destination is caller-owned,
// so growth amortizes to zero against the reused buffer. Clean.
func AppendTo(dst []byte, b []byte) []byte {
	dst = append(dst, b...)
	return dst
}

// Chain allocates one call away (through Alloc).
func Chain(b []byte) []byte {
	return Alloc(b)
}

// HotEncode is marked hot and carries its own violation: it is checked
// here, at its definition, and callers in other packages must NOT
// re-report it.
//
//anufs:hotpath
func HotEncode(b []byte) string {
	return string(b) // want `string conversion copies in hot path HotEncode`
}
