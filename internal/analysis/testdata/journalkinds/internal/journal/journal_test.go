package journal

import "testing"

func TestApplyCreate(t *testing.T) {
	if apply(KindCreate) != 1 {
		t.Fatal("create must apply")
	}
}
