// Package journal is a fixture for the journalkinds analyzer: Kind*
// constants must be handled in an EntryKind switch and referenced by a
// test.
package journal

// EntryKind tags one journal record type.
type EntryKind uint8

const (
	// KindCreate is handled in apply and referenced by a test: clean.
	KindCreate EntryKind = 1
	// KindFlush is applied but no test exercises it.
	KindFlush EntryKind = 2 // want `KindFlush is not referenced by any _test\.go file`
	// KindGhost is journaled but silently skipped at recovery — the
	// classic corruption shape — and untested on top of it.
	KindGhost EntryKind = 3 // want `KindGhost has no case in any EntryKind switch` `KindGhost is not referenced by any _test\.go file`
	// KindLegacy is intentionally unhandled; the allow documents why.
	KindLegacy EntryKind = 4 //anufs:allow journalkinds retired record kind kept only so old logs still decode; replay ignores it by design
)

// notKind is not an EntryKind constant and is exempt from the rules.
const notKind = 99

func apply(k EntryKind) int {
	switch k {
	case KindCreate:
		return 1
	case KindFlush:
		return 2
	}
	return 0
}
