// Package desim is a fixture for the simdeterminism analyzer: it sits
// at a determinism-critical import path and exercises every rule plus
// the //anufs:allow escape hatch.
package desim

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func napTime() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func globalRand() int {
	return rand.Intn(4) // want `rand\.Intn draws from the process-global stream`
}

// seededRand is fine: the stream is explicit and reproducible.
func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(4)
}

// elapsed is fine: durations are values, not clock reads.
func elapsed(d time.Duration) time.Duration {
	return d * 2
}

func mapIteration(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

func allowedIteration(m map[string]int) int {
	total := 0
	for _, v := range m { //anufs:allow simdeterminism commutative integer sum; order cannot matter
		total += v
	}
	return total
}

func sliceIterationIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func bareAllow(m map[string]int) int {
	total := 0
	for _, v := range m { //anufs:allow simdeterminism // want `anufs:allow needs an analyzer name and a reason` `map iteration order is nondeterministic`
		total += v
	}
	return total
}

//anufs:allow nosuchanalyzer because reasons // want `anufs:allow names unknown analyzer nosuchanalyzer`
var one = 1

//anufs:allow simdeterminism overly cautious annotation // want `unused anufs:allow for simdeterminism`
var two = 2
