// Package other is the negative case: it is not a determinism-critical
// package, so wall-clock reads, global rand, and map iteration are all
// fine here and must produce no diagnostics.
package other

import (
	"math/rand"
	"time"
)

func now() time.Time { return time.Now() }

func roll() int { return rand.Intn(6) }

func iterate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
