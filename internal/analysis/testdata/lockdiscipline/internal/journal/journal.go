// Package journal is a stub dependency for the lockdiscipline fixture.
package journal

// Journal stands in for the real write-ahead log.
type Journal struct{}

// LogFlush appends a flush record and waits for the group commit.
func (j *Journal) LogFlush(fileSet string) error { return nil }

// DurableSeq is a cheap read, not a commit.
func (j *Journal) DurableSeq() uint64 { return 0 }
