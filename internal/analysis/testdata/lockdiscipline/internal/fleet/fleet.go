// Package fleet is a fixture for the lockdiscipline analyzer: no
// channel sends, wire.Client calls, or journal commits while holding a
// mutex.
package fleet

import (
	"sync"

	"anufs/internal/journal"
	"anufs/internal/wire"
)

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (n *node) sendWhileLocked() {
	n.mu.Lock()
	n.ch <- 1 // want `channel send while holding n\.mu`
	n.mu.Unlock()
}

func (n *node) sendAfterUnlock() {
	n.mu.Lock()
	n.mu.Unlock()
	n.ch <- 1
}

func (n *node) rpcUnderDefer(c *wire.Client) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return c.Call() // want `wire\.Client\.Call network round-trip while holding n\.mu`
}

func (n *node) rpcOutsideLock(c *wire.Client) error {
	n.mu.Lock()
	n.mu.Unlock()
	return c.Call()
}

func (n *node) commitUnderReadLock(j *journal.Journal) error {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return j.LogFlush("vol00") // want `journal commit \(LogFlush waits for group-commit fsync\)`
}

func (n *node) cheapReadUnderLockIsFine(j *journal.Journal) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return j.DurableSeq()
}

func (n *node) selectSendWhileLocked() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- 1: // want `channel send while holding n\.mu`
	default:
	}
}

func (n *node) goroutineRunsUnlocked() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.ch <- 1
	}()
}

func (n *node) allowedSend() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ch <- 1 //anufs:allow lockdiscipline ch is buffered with one reserved slot per holder; the send cannot block
}
