// Package wire is a stub dependency for the lockdiscipline fixture.
package wire

// Client stands in for the real wire client.
type Client struct{}

// Call performs a network round-trip.
func (c *Client) Call() error { return nil }

// Close tears the connection down.
func (c *Client) Close() error { return nil }
