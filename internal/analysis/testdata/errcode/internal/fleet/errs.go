// Package fleet is a fixture for the errcode analyzer: non-test code
// must not branch on err.Error() text.
package fleet

import (
	"errors"
	"strings"
)

var errGone = errors.New("fleet: daemon gone")

// response stands in for wire.Response: Err is a plain string field,
// not an error — matching on it is how pre-code peers are handled and
// is NOT a diagnostic.
type response struct {
	Err  string
	Code string
}

func direct(err error) bool {
	return strings.Contains(err.Error(), "gone") // want `branching on err\.Error\(\) text is fragile`
}

func prefixed(err error) bool {
	return strings.HasPrefix(err.Error(), "fleet:") // want `branching on err\.Error\(\) text is fragile`
}

func viaLocal(err error) bool {
	s := err.Error()
	return strings.Contains(s, "gone") // want `branching on err\.Error\(\) text is fragile`
}

func compared(err error) bool {
	return err.Error() == "fleet: daemon gone" // want `branching on err\.Error\(\) text is fragile`
}

func switched(err error) string {
	switch err.Error() { // want `branching on err\.Error\(\) text is fragile`
	case "fleet: daemon gone":
		return "gone"
	}
	return ""
}

// typed branches the right way: sentinel comparison survives rewording.
func typed(err error) bool {
	return errors.Is(err, errGone)
}

// wireField matches on a Response's string field — the legacy-peer
// fallback pattern — which is fine: no error value is involved.
func wireField(resp response) bool {
	return resp.Code == "gone" || strings.HasPrefix(resp.Err, "fleet:")
}

// logged may read the text for humans; only branching is the offense.
func logged(err error, sink func(string)) {
	sink("fleet: " + err.Error())
}

// allowed carries a justified suppression for a genuine fallback site.
func allowed(err error) bool {
	s := err.Error()
	return strings.Contains(s, "connection refused") //anufs:allow errcode OS dial errors have no exported sentinel across platforms
}
