package fleet

import (
	"errors"
	"strings"
	"testing"
)

// Tests may assert on error text — the analyzer skips _test.go files,
// so this draws no diagnostic.
func TestErrorText(t *testing.T) {
	err := errors.New("fleet: daemon gone")
	if !strings.Contains(err.Error(), "gone") {
		t.Fatal("unexpected message")
	}
}
