package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GoroutineLife requires every goroutine launched in the long-running
// subsystems (fleet, live, replica, sdk) to be tied to a shutdown path.
// PRs 7–9 grew these packages goroutine-heavy — failover pollers, WFQ
// owner queues, trace fan-out, connection health checks — and a loop
// with no stop signal outlives Close, keeps its daemon reachable from
// the scheduler forever, and turns tests and failover drills flaky.
//
// The check is lexical: a `go` statement whose body (a function literal
// or a same-package function) contains an unbounded `for` loop is a
// diagnostic unless the loop has a recognizable exit:
//
//   - a receive from a stop-named channel (done/stop/quit/close/
//     shutdown/cancel/ctx...), directly or in a select case;
//   - a return or break guarded by an if whose condition reads an
//     error-typed or bool-typed value or a stop-named identifier — the
//     io-loop idiom `if err != nil { return }` / `if !ok { return }`,
//     where connection teardown is the stop signal;
//   - ranging over a channel (terminates when the channel closes) is
//     exempt by construction: only `for { ... }` loops are suspect.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "goroutines in fleet/live/replica/sdk must tie unbounded loops to a " +
		"shutdown path (stop channel, ctx.Done, or error/ok-guarded exit)",
	Run: runGoroutineLife,
}

// stopNameRE matches identifiers that conventionally carry a shutdown
// signal. "clos" covers close/closed/closing; "shut" covers shutdown.
var stopNameRE = regexp.MustCompile(`(?i)done|stop|quit|clos|shut|ctx|cancel|exit`)

func runGoroutineLife(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(),
		"internal/fleet", "internal/live", "internal/replica", "internal/sdk") {
		return nil
	}
	// Map same-package functions to their declarations so `go m.run()`
	// is checked through the named body, wherever it lives.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	reported := map[token.Pos]bool{} // a decl launched from two sites reports once
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, gs)
			if body == nil {
				return true
			}
			for _, loop := range unboundedLoops(body) {
				if loopHasStop(pass, loop) || reported[loop.Pos()] {
					continue
				}
				reported[loop.Pos()] = true
				pass.Reportf(loop.Pos(),
					"unbounded loop in goroutine has no shutdown path; select on a stop/done channel or ctx.Done, or guard an exit on the connection error (or //anufs:allow goroutinelife <why>)")
			}
			return true
		})
	}
	return nil
}

// goBody resolves the body a go statement runs: a function literal's
// body, or the declaration of a same-package function or method.
// Cross-package and interface targets are not resolvable and are
// skipped — their loops are the defining package's responsibility.
func goBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if d, ok := decls[pass.TypesInfo.Uses[fun]]; ok {
			return d.Body
		}
	case *ast.SelectorExpr:
		if d, ok := decls[pass.TypesInfo.Uses[fun.Sel]]; ok {
			return d.Body
		}
	}
	return nil
}

// unboundedLoops collects `for { ... }` loops in body, not descending
// into nested function literals (a nested `go` launch is its own
// statement and is checked separately; a nested closure called
// synchronously inherits the caller's lifecycle and is out of scope for
// this lexical check).
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			loops = append(loops, fs)
		}
		return true
	})
	return loops
}

// loopHasStop reports whether the loop has a recognizable shutdown
// exit.
func loopHasStop(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			// A receive from a stop-named channel, anywhere: bare,
			// in a select case, or in an assignment.
			if n.Op == token.ARROW && mentionsStopName(n.X) {
				found = true
			}
		case *ast.IfStmt:
			if condSignalsExit(pass, n.Cond) && branchExits(n) {
				found = true
			}
		}
		return true
	})
	return found
}

// mentionsStopName reports whether the expression's identifiers include
// a stop-named one (covers c.stopCh, ctx.Done(), r.quit, t.closing).
func mentionsStopName(e ast.Expr) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && stopNameRE.MatchString(id.Name) {
			hit = true
		}
		return !hit
	})
	return hit
}

// condSignalsExit reports whether an if condition plausibly reacts to
// teardown: it reads an error-typed value, a bool-typed value (the
// `ok` of a receive or a closed flag), or a stop-named identifier.
// Pure arithmetic conditions do not count — a counter bound is not a
// shutdown path.
func condSignalsExit(pass *Pass, cond ast.Expr) bool {
	hit := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if hit {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if stopNameRE.MatchString(n.Name) {
				hit = true
				return false
			}
			hit = exitType(pass.TypesInfo.TypeOf(n))
		case *ast.SelectorExpr:
			if stopNameRE.MatchString(n.Sel.Name) {
				hit = true
				return false
			}
			hit = exitType(pass.TypesInfo.TypeOf(n))
			if !hit {
				return true // keep walking into X
			}
		case *ast.CallExpr:
			hit = exitType(pass.TypesInfo.TypeOf(n))
			if !hit {
				return true
			}
		}
		return !hit
	})
	return hit
}

func exitType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
		return true
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		// error is an interface; a comparison like err != nil types the
		// operand as the concrete error interface.
		return types.Implements(t, errorInterface())
	}
	return false
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

// branchExits reports whether either branch of the if leaves the loop:
// a return, a break, or a goto.
func branchExits(ifs *ast.IfStmt) bool {
	exits := false
	check := func(n ast.Node) bool {
		if exits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exits = true
			}
		}
		return !exits
	}
	ast.Inspect(ifs.Body, check)
	if ifs.Else != nil {
		ast.Inspect(ifs.Else, check)
	}
	return exits
}
