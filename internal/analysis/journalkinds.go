package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// JournalKinds enforces recovery exhaustiveness over the journal's
// record kinds: every Kind* constant of the journal's EntryKind type
// must be handled in at least one switch over an EntryKind value in the
// package's non-test code (the recovery/apply path), and — when the
// unit includes the package's tests — referenced by at least one
// _test.go file, so a new record kind cannot ship without a crash-path
// test exercising it. A kind with no recovery case is exactly the
// silent-corruption shape log-structured designs warn about: the record
// is written durably and then ignored at replay.
var JournalKinds = &Analyzer{
	Name: "journalkinds",
	Doc: "every journal Kind* constant must be handled in an EntryKind switch " +
		"and referenced by a test",
	Run: runJournalKinds,
}

func runJournalKinds(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/journal") {
		return nil
	}

	// The journal's kind type: a defined integer type named EntryKind.
	kindType := pass.Pkg.Scope().Lookup("EntryKind")
	if kindType == nil {
		return nil
	}

	type kindConst struct {
		obj      types.Object
		decl     ast.Node
		switched bool
		tested   bool
	}
	var kinds []*kindConst
	byObj := map[types.Object]*kindConst{}
	for ident, obj := range pass.TypesInfo.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(ident.Name, "Kind") || c.Type() != kindType.Type() {
			continue
		}
		k := &kindConst{obj: obj, decl: ident}
		kinds = append(kinds, k)
		byObj[obj] = k
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].decl.Pos() < kinds[j].decl.Pos() })

	hasTests := false
	for _, f := range pass.Files {
		inTest := isTestFile(pass, f)
		hasTests = hasTests || inTest
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if k, ok := byObj[pass.TypesInfo.Uses[n]]; ok && inTest {
					k.tested = true
				}
			case *ast.SwitchStmt:
				if inTest {
					return true
				}
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if id, ok := ast.Unparen(e).(*ast.Ident); ok {
							if k, ok := byObj[pass.TypesInfo.Uses[id]]; ok {
								k.switched = true
							}
						}
					}
				}
			}
			return true
		})
	}

	for _, k := range kinds {
		if !k.switched {
			pass.Reportf(k.decl.Pos(),
				"%s has no case in any EntryKind switch: records of this kind would be journaled but silently skipped at recovery", k.obj.Name())
		}
		if hasTests && !k.tested {
			pass.Reportf(k.decl.Pos(),
				"%s is not referenced by any _test.go file: add a crash/recovery test exercising this record kind", k.obj.Name())
		}
	}
	return nil
}
