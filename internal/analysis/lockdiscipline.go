package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// lockPkgs are the packages where a mutex held across a blocking
// operation deadlocks real traffic: the fleet router/authority, the
// live cluster's owner queues, and the shared-disk store.
var lockPkgs = []string{
	"internal/fleet",
	"internal/live",
	"internal/sharedisk",
}

// LockDiscipline flags blocking operations performed while a
// sync.Mutex/RWMutex is held: channel sends, wire.Client calls (network
// round-trips), and journal commit calls (group-commit fsync waits).
// The critical section is tracked lexically within one function: it
// opens at x.Lock()/x.RLock() and closes at the matching
// x.Unlock()/x.RUnlock() in the same statement list; `defer x.Unlock()`
// holds the lock to the end of the function. The analysis is
// deliberately intraprocedural — it catches the shape that has caused
// every real stall so far (a send or RPC slipped into an existing
// critical section), and intentional holds carry a justified
// //anufs:allow.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "no channel sends, wire.Client calls, or journal commits while " +
		"holding a mutex in fleet/live/sharedisk",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), lockPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				w := &lockWalker{pass: pass}
				w.stmtList(fn.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
}

// stmtList walks one statement list in order. held maps the printed
// receiver expression of each currently-held lock ("c.mu") to true; it
// is owned by the caller and mutated as Lock/Unlock pairs are crossed.
func (w *lockWalker) stmtList(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, kind := w.lockCall(s.X); kind == "lock" {
			held[recv] = true
			return
		} else if kind == "unlock" {
			delete(held, recv)
			return
		}
		w.check(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() pins the lock for the rest of the function;
		// the deferred call itself runs after everything we walk, so it
		// is never a violation.
		if _, kind := w.lockCall(s.Call); kind != "" {
			return
		}
		w.check(s.Call, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), held, "channel send")
		}
		w.check(s.Chan, held)
		w.check(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.check(e, held)
		}
		for _, e := range s.Lhs {
			w.check(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.check(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.check(s.Cond, held)
		w.stmtList(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.stmtList(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.check(s.Cond, held)
		}
		w.stmtList(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.check(s.X, held)
		w.stmtList(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.check(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			w.stmtList(cl.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			w.stmtList(cl.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok && len(held) > 0 {
				w.report(send.Pos(), held, "channel send")
			}
			w.stmtList(cc.Body, copyHeld(held))
		}
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks.
		w.check(s.Call, map[string]bool{})
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		// const/var declarations: check initializers.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.check(e, held)
					}
				}
			}
		}
	}
}

// lockCall classifies an expression as a Lock/RLock ("lock") or
// Unlock/RUnlock ("unlock") call on a sync.Mutex or sync.RWMutex, and
// returns the printed receiver expression.
func (w *lockWalker) lockCall(e ast.Expr) (recv string, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	return printExpr(w.pass.Fset, sel.X), kind
}

// check inspects an expression subtree for blocking calls while locks
// are held. Function literals are walked with a fresh held set only when
// invoked inline; deferred/stored literals run later, outside our
// lexical window, so they are walked lock-free too (their own Lock calls
// still get tracked).
func (w *lockWalker) check(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmtList(n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if what := w.blockingCall(n); what != "" {
				w.report(n.Pos(), held, what)
			}
		}
		return true
	})
}

// blockingCall reports what kind of blocking operation the call is, or
// "" if it is not one the analyzer tracks.
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	recvType := sig.Recv().Type()
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	pkgPath, typeName := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pathHasSuffix(pkgPath, "internal/wire") && typeName == "Client":
		return "wire.Client." + obj.Name() + " network round-trip"
	case pathHasSuffix(pkgPath, "internal/journal") && typeName == "Journal" &&
		(strings.HasPrefix(obj.Name(), "Log") || strings.HasPrefix(obj.Name(), "Append")):
		return "journal commit (" + obj.Name() + " waits for group-commit fsync)"
	}
	return ""
}

func (w *lockWalker) report(pos token.Pos, held map[string]bool, what string) {
	var names []string
	for k := range held {
		names = append(names, k)
	}
	// Sort for deterministic messages; held sets are tiny.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	w.pass.Reportf(pos, "%s while holding %s: blocking under a mutex stalls every waiter (unlock first or //anufs:allow lockdiscipline <why>)",
		what, strings.Join(names, ", "))
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func printExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
