package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismPkgs are the packages whose outputs the paper's results
// depend on being bit-reproducible: the discrete-event simulation
// kernel, the ANU placement algorithms, the adaptive mapper core, and
// the hash family. Any wall-clock read or process-global randomness in
// them silently breaks run-to-run reproducibility.
var determinismPkgs = []string{
	"internal/desim",
	"internal/placement",
	"internal/core",
	"internal/hashfam",
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Deterministic code takes its clock from the simulation kernel.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// SimDeterminism forbids nondeterminism sources inside the
// determinism-critical packages: wall-clock reads (time.Now and
// friends), the process-global math/rand stream (explicitly seeded
// *rand.Rand values via rand.New are fine), and iteration over maps,
// whose order varies run to run. Order-insensitive map loops carry a
// justified //anufs:allow.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock, global math/rand, and map iteration in the " +
		"simulation, placement, mapper-core, and hash packages, whose outputs " +
		"must be bit-reproducible",
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), determinismPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			// Tests may time themselves and shuffle inputs; the invariant
			// guards the package's own outputs.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic; range over sorted keys (or //anufs:allow simdeterminism <why order cannot matter>)")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded stream,
		// or the sim clock's own Now) are deterministic by construction.
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[obj.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; deterministic code must take time from the simulation clock", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(obj.Name(), "New") {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global stream; use an explicitly seeded *rand.Rand (internal/rng)", obj.Name())
		}
	}
}

// calleeObject resolves the object a call expression invokes, looking
// through selector and identifier callees.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	}
	return nil
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
