package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCode forbids branching on err.Error() text in non-test code:
// comparing the string, or feeding it to the strings matching
// functions. Error messages are documentation, not protocol — matching
// on a substring silently broke when a message was reworded (the
// internal/wire/fleet.go arriving check regressed exactly this way) or
// matched an unrelated error that happened to embed the phrase.
// Wire-visible decisions ride Response.Code via wire.CodedError /
// wire.ErrorCode; local decisions use typed sentinels with errors.Is /
// errors.As. Matching on a Response's Err *field* is fine — that is a
// string, not an error — as is logging or wrapping err.Error().
var ErrCode = &Analyzer{
	Name: "errcode",
	Doc: "no branching on err.Error() text in non-test code; use " +
		"wire.ErrorCode or typed sentinels (errors.Is/As)",
	Run: runErrCode,
}

// stringsMatchers are the strings functions whose use on error text
// constitutes a branch decision.
var stringsMatchers = map[string]bool{
	"Contains":     true,
	"ContainsAny":  true,
	"ContainsRune": true,
	"ContainsFunc": true,
	"HasPrefix":    true,
	"HasSuffix":    true,
	"EqualFold":    true,
	"Index":        true,
	"LastIndex":    true,
	"Count":        true,
}

func runErrCode(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkErrText(pass, fn.Body)
		}
	}
	return nil
}

func checkErrText(pass *Pass, body *ast.BlockStmt) {
	// Locals lexically assigned from err.Error() carry the taint:
	//	s := err.Error(); strings.Contains(s, ...)
	tainted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isErrorTextCall(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	isErrText := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isErrorTextCall(pass, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			return tainted[pass.TypesInfo.Uses[id]]
		}
		return false
	}
	report := func(pos token.Pos) {
		pass.Reportf(pos,
			"branching on err.Error() text is fragile; use wire.ErrorCode / a typed sentinel (errors.Is, errors.As) or //anufs:allow errcode <why>")
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !stringsMatchers[sel.Sel.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
				return true
			}
			for _, arg := range n.Args {
				if isErrText(arg) {
					report(n.Pos())
					break
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if isErrText(n.X) || isErrText(n.Y) {
				report(n.Pos())
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isErrText(n.Tag) {
				report(n.Pos())
			}
		}
		return true
	})
}

// isErrorTextCall reports whether e is a call of the Error() string
// method on an error value.
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	if !isStringType(sig.Results().At(0).Type()) {
		return false
	}
	// Anything with Error() string IS an error; no need to prove the
	// receiver's static type implements the interface.
	return true
}
