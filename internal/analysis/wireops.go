package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireOps enforces protocol symmetry and client hygiene:
//
//  1. Inside the wire package, every Op* constant of the protocol's Op
//     type must appear both in a server dispatch switch (a case clause)
//     and in a client Request{Op: ...} literal. An op registered on one
//     end only is a request that can be sent but never answered — or an
//     opcode squatting in the server that no client exercises.
//  2. Inside the sdk package, every wire op sent in a Request literal
//     without a FileSet must have a case in the gateway demux switch: an
//     op with no file set cannot ride the default forward-by-owner route,
//     so a missing case means the sdk client can emit a request no
//     gateway will ever route.
//  3. In every package, a function that obtains a wire transport —
//     wire.Dial, sdk.Dial, sdk.NewPool, or sdk.NewClient — must also arm
//     a deadline before returning: a SetTimeout call or an sdk.Options
//     literal with a Timeout key. An undeadlined client hangs forever on
//     a stalled peer. wire.DialTimeout is born with its deadline armed
//     and is exempt (but does not excuse other dials in the same
//     function). Justified exceptions carry //anufs:allow.
//  4. The fleet dispatch tables must stay complete end to end: the wire
//     server's forward clause (the case listing OpMap and friends) and
//     the fleet member's Fleet method must each handle every fleet op
//     the protocol defines — membership ops included. An op missing
//     from either table is forwarded into a default arm and dies with
//     "unknown op" at runtime, which is exactly how a join or takeover
//     silently stops working.
var WireOps = &Analyzer{
	Name: "wireops",
	Doc: "wire ops must be registered in both the client encode and server " +
		"dispatch tables (and, for the sdk, in the gateway demux), the " +
		"fleet forward clause and Fleet dispatch must cover every fleet op, " +
		"and dialed clients and pools must set a deadline",
	Run: runWireOps,
}

// fleetDispatchOps is the canonical list of ops the wire server forwards
// to FleetHandler.Fleet: the map/handoff ops, the membership/failover
// ops (join, leave, heartbeat, takeover), and the volume-administration
// ops. Both dispatch tables — the server's forward clause and the fleet
// member's Fleet switch — must case every one of these that the wire
// package defines. Adding a fleet op means adding it HERE as well as to
// both tables.
var fleetDispatchOps = []string{
	"OpMap", "OpMapEpoch", "OpAdopt", "OpHandoff", "OpAssign",
	"OpRebalance", "OpJoin", "OpLeave", "OpHeartbeat", "OpTakeover",
	"OpVolumeCreate", "OpVolumeDelete", "OpVolumeList",
	"OpVolumeSetQuota", "OpVolumeSetPolicy",
}

func runWireOps(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/wire") {
		checkOpSymmetry(pass)
		checkFleetForwardClause(pass)
	}
	if pathHasSuffix(pass.Pkg.Path(), "internal/sdk") {
		checkGatewayDemux(pass)
	}
	if pathHasSuffix(pass.Pkg.Path(), "internal/fleet") {
		checkFleetDispatch(pass)
	}
	checkDialDeadlines(pass)
	return nil
}

func checkOpSymmetry(pass *Pass) {
	opType := pass.Pkg.Scope().Lookup("Op")
	if opType == nil {
		return
	}
	type opConst struct {
		obj      types.Object
		decl     ast.Node
		inClient bool // used in a Request{Op: ...} composite literal
		inServer bool // used in a switch case clause
	}
	var ops []*opConst
	byObj := map[types.Object]*opConst{}
	for ident, obj := range pass.TypesInfo.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(ident.Name, "Op") || c.Type() != opType.Type() {
			continue
		}
		o := &opConst{obj: obj, decl: ident}
		ops = append(ops, o)
		byObj[obj] = o
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].decl.Pos() < ops[j].decl.Pos() })

	opOf := func(e ast.Expr) *opConst {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return byObj[pass.TypesInfo.Uses[id]]
		}
		return nil
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := opOf(e); o != nil {
							o.inServer = true
						}
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !strings.HasSuffix(t.String(), ".Request") {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Op" {
						if o := opOf(kv.Value); o != nil {
							o.inClient = true
						}
					}
				}
			}
			return true
		})
	}

	for _, o := range ops {
		if !o.inServer {
			pass.Reportf(o.decl.Pos(),
				"%s is not dispatched by any server switch: clients can send it but the server will never answer it", o.obj.Name())
		}
		if !o.inClient {
			pass.Reportf(o.decl.Pos(),
				"%s is never sent by a client Request literal: dead opcode or missing client method", o.obj.Name())
		}
	}
}

// wireOpOf resolves an expression to a constant of the wire package's Op
// type (referenced directly or as a wire.OpX selector); nil otherwise.
func wireOpOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok {
		return nil
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Op" {
		return nil
	}
	if named.Obj().Pkg() == nil || !pathHasSuffix(named.Obj().Pkg().Path(), "internal/wire") {
		return nil
	}
	return obj
}

// fleetOpsDefined filters fleetDispatchOps down to the names the wire
// package actually defines, so fixtures (and protocol subsets) are held
// to the ops they declare rather than the full canonical list.
func fleetOpsDefined(wireScope *types.Scope) []string {
	var out []string
	for _, name := range fleetDispatchOps {
		if _, ok := wireScope.Lookup(name).(*types.Const); ok {
			out = append(out, name)
		}
	}
	return out
}

// checkFleetForwardClause verifies the wire server's fleet forward
// clause — the case listing OpMap alongside the other fleet ops — names
// every fleet op the package defines. An op left out of this clause
// falls through to the file-set dispatch path and fails with "unknown
// op" even though both protocol ends implement it.
func checkFleetForwardClause(pass *Pass) {
	want := fleetOpsDefined(pass.Pkg.Scope())
	if len(want) == 0 {
		return
	}
	anchor := pass.Pkg.Scope().Lookup("OpMap")
	if anchor == nil {
		return
	}
	// The forward clauses are the case clauses that contain OpMap; the
	// union of their ops must cover every defined fleet op.
	covered := map[string]bool{}
	var clausePos ast.Node
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, cl := range sw.Body.List {
				cc := cl.(*ast.CaseClause)
				hasAnchor := false
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == anchor {
						hasAnchor = true
					}
				}
				if !hasAnchor {
					continue
				}
				if clausePos == nil {
					clausePos = cc
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							covered[obj.Name()] = true
						}
					}
				}
			}
			return true
		})
	}
	if clausePos == nil {
		return
	}
	var missing []string
	for _, name := range want {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(clausePos.Pos(),
			"fleet forward clause misses %s: the server will answer \"unknown op\" for ops both ends implement",
			strings.Join(missing, ", "))
	}
}

// checkFleetDispatch verifies the fleet member's Fleet method cases
// every fleet op the wire package defines. The wire server forwards the
// whole fleet op set to Fleet; an op missing here reaches the method's
// default arm and dies at runtime — the failure mode that would silently
// break join, leave, heartbeat, or takeover.
func checkFleetDispatch(pass *Pass) {
	var wirePkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if pathHasSuffix(imp.Path(), "internal/wire") {
			wirePkg = imp
		}
	}
	if wirePkg == nil {
		return
	}
	want := fleetOpsDefined(wirePkg.Scope())
	if len(want) == 0 {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Fleet" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			handled := map[string]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				for _, cl := range sw.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := wireOpOf(pass, e); o != nil {
							handled[o.Name()] = true
						}
					}
				}
				return true
			})
			var missing []string
			for _, name := range want {
				if !handled[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(fn.Pos(),
					"Fleet dispatch misses %s: the wire server forwards every fleet op here, so these die in the default arm",
					strings.Join(missing, ", "))
			}
		}
	}
}

// checkGatewayDemux enforces sdk/gateway symmetry: a Request literal built
// in the sdk with an Op but no FileSet must use an op the gateway demux
// (some switch case clause in the package) handles, because the default
// route — forward to the file set's owner — cannot carry it.
func checkGatewayDemux(pass *Pass) {
	demuxed := map[types.Object]bool{}
	type sent struct {
		obj types.Object
		pos ast.Node
	}
	var sends []sent
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := wireOpOf(pass, e); o != nil {
							demuxed[o] = true
						}
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !strings.HasSuffix(t.String(), ".Request") {
					return true
				}
				var op types.Object
				var opNode ast.Node
				hasFileSet := false
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Op":
						op = wireOpOf(pass, kv.Value)
						opNode = kv.Value
					case "FileSet":
						hasFileSet = true
					}
				}
				if op != nil && !hasFileSet {
					sends = append(sends, sent{obj: op, pos: opNode})
				}
			}
			return true
		})
	}
	for _, s := range sends {
		if !demuxed[s.obj] {
			pass.Reportf(s.pos.Pos(),
				"%s is sent without a file set but has no gateway demux case: a gateway cannot route it (add a case to the route switch or set FileSet)", s.obj.Name())
		}
	}
}

// checkDialDeadlines flags functions that obtain a wire transport — a
// wire.Dial'ed client, an sdk Conn, Pool, or Client — but never arm a
// deadline before the function ends: no SetTimeout call and no sdk.Options
// literal carrying a Timeout key.
func checkDialDeadlines(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			type dial struct {
				call *ast.CallExpr
				name string
			}
			var dials []dial
			armed := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					obj := calleeObject(pass, n)
					if obj == nil {
						return true
					}
					if obj.Pkg() != nil {
						switch {
						case obj.Name() == "DialTimeout" && pathHasSuffix(obj.Pkg().Path(), "internal/wire"):
							// Born with its deadline armed: neither a dial to
							// flag nor an arm that would excuse other dials
							// in this function.
						case obj.Name() == "Dial" && pathHasSuffix(obj.Pkg().Path(), "internal/wire"):
							dials = append(dials, dial{n, "wire.Dial"})
						case pathHasSuffix(obj.Pkg().Path(), "internal/sdk") &&
							(obj.Name() == "Dial" || obj.Name() == "NewPool" || obj.Name() == "NewClient"):
							dials = append(dials, dial{n, "sdk." + obj.Name()})
						}
					}
					if obj.Name() == "SetTimeout" {
						armed = true
					}
				case *ast.CompositeLit:
					// An sdk.Options{Timeout: ...} literal counts: the
					// transport it configures is born with the deadline.
					t := pass.TypesInfo.TypeOf(n)
					if t == nil || !strings.HasSuffix(t.String(), ".Options") {
						return true
					}
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
								armed = true
							}
						}
					}
				}
				return true
			})
			if !armed {
				for _, d := range dials {
					pass.Reportf(d.call.Pos(),
						"%s without a deadline in %s: an undeadlined client blocks forever on a stalled peer (call SetTimeout, set Options.Timeout, or //anufs:allow wireops <why>)", d.name, fn.Name.Name)
				}
			}
		}
	}
}
