package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireOps enforces protocol symmetry and client hygiene:
//
//  1. Inside the wire package, every Op* constant of the protocol's Op
//     type must appear both in a server dispatch switch (a case clause)
//     and in a client Request{Op: ...} literal. An op registered on one
//     end only is a request that can be sent but never answered — or an
//     opcode squatting in the server that no client exercises.
//  2. Inside the sdk package, every wire op sent in a Request literal
//     without a FileSet must have a case in the gateway demux switch: an
//     op with no file set cannot ride the default forward-by-owner route,
//     so a missing case means the sdk client can emit a request no
//     gateway will ever route.
//  3. In every package, a function that obtains a wire transport —
//     wire.Dial, sdk.Dial, sdk.NewPool, or sdk.NewClient — must also arm
//     a deadline before returning: a SetTimeout call or an sdk.Options
//     literal with a Timeout key. An undeadlined client hangs forever on
//     a stalled peer. Justified exceptions carry //anufs:allow.
var WireOps = &Analyzer{
	Name: "wireops",
	Doc: "wire ops must be registered in both the client encode and server " +
		"dispatch tables (and, for the sdk, in the gateway demux), and " +
		"dialed clients and pools must set a deadline",
	Run: runWireOps,
}

func runWireOps(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/wire") {
		checkOpSymmetry(pass)
	}
	if pathHasSuffix(pass.Pkg.Path(), "internal/sdk") {
		checkGatewayDemux(pass)
	}
	checkDialDeadlines(pass)
	return nil
}

func checkOpSymmetry(pass *Pass) {
	opType := pass.Pkg.Scope().Lookup("Op")
	if opType == nil {
		return
	}
	type opConst struct {
		obj      types.Object
		decl     ast.Node
		inClient bool // used in a Request{Op: ...} composite literal
		inServer bool // used in a switch case clause
	}
	var ops []*opConst
	byObj := map[types.Object]*opConst{}
	for ident, obj := range pass.TypesInfo.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(ident.Name, "Op") || c.Type() != opType.Type() {
			continue
		}
		o := &opConst{obj: obj, decl: ident}
		ops = append(ops, o)
		byObj[obj] = o
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].decl.Pos() < ops[j].decl.Pos() })

	opOf := func(e ast.Expr) *opConst {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return byObj[pass.TypesInfo.Uses[id]]
		}
		return nil
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := opOf(e); o != nil {
							o.inServer = true
						}
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !strings.HasSuffix(t.String(), ".Request") {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Op" {
						if o := opOf(kv.Value); o != nil {
							o.inClient = true
						}
					}
				}
			}
			return true
		})
	}

	for _, o := range ops {
		if !o.inServer {
			pass.Reportf(o.decl.Pos(),
				"%s is not dispatched by any server switch: clients can send it but the server will never answer it", o.obj.Name())
		}
		if !o.inClient {
			pass.Reportf(o.decl.Pos(),
				"%s is never sent by a client Request literal: dead opcode or missing client method", o.obj.Name())
		}
	}
}

// wireOpOf resolves an expression to a constant of the wire package's Op
// type (referenced directly or as a wire.OpX selector); nil otherwise.
func wireOpOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok {
		return nil
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Op" {
		return nil
	}
	if named.Obj().Pkg() == nil || !pathHasSuffix(named.Obj().Pkg().Path(), "internal/wire") {
		return nil
	}
	return obj
}

// checkGatewayDemux enforces sdk/gateway symmetry: a Request literal built
// in the sdk with an Op but no FileSet must use an op the gateway demux
// (some switch case clause in the package) handles, because the default
// route — forward to the file set's owner — cannot carry it.
func checkGatewayDemux(pass *Pass) {
	demuxed := map[types.Object]bool{}
	type sent struct {
		obj types.Object
		pos ast.Node
	}
	var sends []sent
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := wireOpOf(pass, e); o != nil {
							demuxed[o] = true
						}
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !strings.HasSuffix(t.String(), ".Request") {
					return true
				}
				var op types.Object
				var opNode ast.Node
				hasFileSet := false
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Op":
						op = wireOpOf(pass, kv.Value)
						opNode = kv.Value
					case "FileSet":
						hasFileSet = true
					}
				}
				if op != nil && !hasFileSet {
					sends = append(sends, sent{obj: op, pos: opNode})
				}
			}
			return true
		})
	}
	for _, s := range sends {
		if !demuxed[s.obj] {
			pass.Reportf(s.pos.Pos(),
				"%s is sent without a file set but has no gateway demux case: a gateway cannot route it (add a case to the route switch or set FileSet)", s.obj.Name())
		}
	}
}

// checkDialDeadlines flags functions that obtain a wire transport — a
// wire.Dial'ed client, an sdk Conn, Pool, or Client — but never arm a
// deadline before the function ends: no SetTimeout call and no sdk.Options
// literal carrying a Timeout key.
func checkDialDeadlines(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			type dial struct {
				call *ast.CallExpr
				name string
			}
			var dials []dial
			armed := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					obj := calleeObject(pass, n)
					if obj == nil {
						return true
					}
					if obj.Pkg() != nil {
						switch {
						case obj.Name() == "Dial" && pathHasSuffix(obj.Pkg().Path(), "internal/wire"):
							dials = append(dials, dial{n, "wire.Dial"})
						case pathHasSuffix(obj.Pkg().Path(), "internal/sdk") &&
							(obj.Name() == "Dial" || obj.Name() == "NewPool" || obj.Name() == "NewClient"):
							dials = append(dials, dial{n, "sdk." + obj.Name()})
						}
					}
					if obj.Name() == "SetTimeout" {
						armed = true
					}
				case *ast.CompositeLit:
					// An sdk.Options{Timeout: ...} literal counts: the
					// transport it configures is born with the deadline.
					t := pass.TypesInfo.TypeOf(n)
					if t == nil || !strings.HasSuffix(t.String(), ".Options") {
						return true
					}
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
								armed = true
							}
						}
					}
				}
				return true
			})
			if !armed {
				for _, d := range dials {
					pass.Reportf(d.call.Pos(),
						"%s without a deadline in %s: an undeadlined client blocks forever on a stalled peer (call SetTimeout, set Options.Timeout, or //anufs:allow wireops <why>)", d.name, fn.Name.Name)
				}
			}
		}
	}
}
