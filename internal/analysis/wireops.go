package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireOps enforces protocol symmetry and client hygiene:
//
//  1. Inside the wire package, every Op* constant of the protocol's Op
//     type must appear both in a server dispatch switch (a case clause)
//     and in a client Request{Op: ...} literal. An op registered on one
//     end only is a request that can be sent but never answered — or an
//     opcode squatting in the server that no client exercises.
//  2. In every package, a function that dials a wire client
//     (wire.Dial) must also arm a deadline on it (SetTimeout) before
//     returning, or carry a justified //anufs:allow: an undeadlined
//     client hangs forever on a stalled peer.
var WireOps = &Analyzer{
	Name: "wireops",
	Doc: "wire ops must be registered in both the client encode and server " +
		"dispatch tables, and dialed clients must set a deadline",
	Run: runWireOps,
}

func runWireOps(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/wire") {
		checkOpSymmetry(pass)
	}
	checkDialDeadlines(pass)
	return nil
}

func checkOpSymmetry(pass *Pass) {
	opType := pass.Pkg.Scope().Lookup("Op")
	if opType == nil {
		return
	}
	type opConst struct {
		obj      types.Object
		decl     ast.Node
		inClient bool // used in a Request{Op: ...} composite literal
		inServer bool // used in a switch case clause
	}
	var ops []*opConst
	byObj := map[types.Object]*opConst{}
	for ident, obj := range pass.TypesInfo.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !strings.HasPrefix(ident.Name, "Op") || c.Type() != opType.Type() {
			continue
		}
		o := &opConst{obj: obj, decl: ident}
		ops = append(ops, o)
		byObj[obj] = o
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].decl.Pos() < ops[j].decl.Pos() })

	opOf := func(e ast.Expr) *opConst {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return byObj[pass.TypesInfo.Uses[id]]
		}
		return nil
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				for _, cl := range n.Body.List {
					for _, e := range cl.(*ast.CaseClause).List {
						if o := opOf(e); o != nil {
							o.inServer = true
						}
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !strings.HasSuffix(t.String(), ".Request") {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Op" {
						if o := opOf(kv.Value); o != nil {
							o.inClient = true
						}
					}
				}
			}
			return true
		})
	}

	for _, o := range ops {
		if !o.inServer {
			pass.Reportf(o.decl.Pos(),
				"%s is not dispatched by any server switch: clients can send it but the server will never answer it", o.obj.Name())
		}
		if !o.inClient {
			pass.Reportf(o.decl.Pos(),
				"%s is never sent by a client Request literal: dead opcode or missing client method", o.obj.Name())
		}
	}
}

// checkDialDeadlines flags functions that obtain a wire client via Dial
// but never call SetTimeout on anything before the function ends.
func checkDialDeadlines(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var dials []*ast.CallExpr
			setsTimeout := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(pass, call)
				if obj == nil {
					return true
				}
				if obj.Name() == "Dial" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/wire") {
					dials = append(dials, call)
				}
				if obj.Name() == "SetTimeout" {
					setsTimeout = true
				}
				return true
			})
			if !setsTimeout {
				for _, call := range dials {
					pass.Reportf(call.Pos(),
						"wire.Dial without SetTimeout in %s: an undeadlined client blocks forever on a stalled peer (call SetTimeout or //anufs:allow wireops <why>)", fn.Name.Name)
				}
			}
		}
	}
}
