package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// hotPathMarker tags a function whose body must stay allocation-free.
// It goes in the function's doc comment:
//
//	// Observe records one latency sample.
//	//anufs:hotpath
//	func (h *Histogram) Observe(d time.Duration) { ... }
const hotPathMarker = "//anufs:hotpath"

// maxHotDepth bounds the interprocedural search: an allocation more
// than this many calls away from a hot function does not taint it. The
// bound keeps fact blobs finite under recursion and keeps diagnostics
// explainable — a four-deep chain is still a chain a reviewer can
// follow; deeper than that, the callee should carry its own
// //anufs:hotpath marker and be checked at its own definition.
const maxHotDepth = 4

// HotPathAlloc forbids allocation inside functions marked
// //anufs:hotpath — directly (any fmt call, non-constant string
// concatenation, append to a fresh slice, make, map/slice composite
// literals, string([]byte) conversions) and transitively: a hot
// function calling an unmarked callee that allocates within
// maxHotDepth calls is a diagnostic at the call site. Cross-package
// callees are resolved through per-package allocation summaries
// exported as facts, since gc export data carries no function bodies.
//
// A few amortized-reuse idioms are recognized and exempt, so zero-alloc
// codecs are expressible without suppression:
//
//   - append whose destination is caller-owned (a parameter, a field of
//     the receiver, or a local derived from one): growth amortizes to
//     zero against the reused buffer, as in append-style encoders
//     `func AppendX(dst []byte, ...) []byte`.
//   - constructs inside an if whose condition reads cap(...): the
//     guarded-growth idiom — the allocation runs only while the buffer
//     warms up.
//   - string([]byte) conversions used directly as ==/!= operands or as a
//     switch tag (`switch string(key)`): gc compares in place, no copy.
//   - `if v != string(b) { v = string(b) }`: the string-reuse idiom —
//     the body's conversion runs only when the value actually changed.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "no allocation inside functions marked //anufs:hotpath, including " +
		"transitively through unmarked callees (bounded depth, cross-package via facts)",
	Run:         runHotPathAlloc,
	ExportFacts: exportHotPathFacts,
}

// hotFact is the per-function allocation summary exported for
// dependents. Dist is the number of calls between the function and the
// nearest allocation (0 = allocates in its own body); -1 means clean
// within maxHotDepth. Why is a human-readable explanation ending at the
// allocation site.
type hotFact struct {
	Hot  bool   `json:"h,omitempty"`
	Dist int    `json:"d"`
	Why  string `json:"w,omitempty"`
}

// hotState carries the per-package call-graph walk.
type hotState struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	sums     map[*types.Func]hotFact
	visiting map[*types.Func]bool
	imported map[string]map[string]hotFact // dep pkg path → FullName → fact
}

func newHotState(pass *Pass) *hotState {
	st := &hotState{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]hotFact{},
		visiting: map[*types.Func]bool{},
		imported: map[string]map[string]hotFact{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					st.decls[obj] = fn
				}
			}
		}
	}
	return st
}

func runHotPathAlloc(pass *Pass) error {
	st := newHotState(pass)
	for obj, fn := range st.decls {
		if !isHotPath(fn) {
			continue
		}
		name := fn.Name.Name
		st.scanBody(fn,
			func(pos token.Pos, what string) {
				if strings.HasPrefix(what, "fmt.") {
					pass.Reportf(pos, "%s in hot path %s (format off the hot path or //anufs:allow hotpathalloc <why>)", what, name)
					return
				}
				pass.Reportf(pos, "%s in hot path %s", what, name)
			},
			func(pos token.Pos, callee *types.Func) {
				if callee == obj {
					return // self-recursion: checked as its own body
				}
				if d, ok := st.decls[callee]; ok && isHotPath(d) {
					return // marked callees are checked at their definition
				}
				if f, ok := st.crossFact(callee); ok && f.Hot {
					return
				}
				sum := st.summary(callee)
				if sum.Dist < 0 || sum.Dist+1 > maxHotDepth {
					return
				}
				pass.Reportf(pos, "call to %s allocates in hot path %s: %s",
					funcLabel(callee), name, sum.Why)
			})
	}
	return nil
}

// exportHotPathFacts summarizes every declared function for dependents.
func exportHotPathFacts(pass *Pass) []byte {
	st := newHotState(pass)
	facts := map[string]hotFact{}
	for obj, fn := range st.decls {
		sum := st.summary(obj)
		sum.Hot = isHotPath(fn)
		if !sum.Hot && sum.Dist < 0 {
			continue // the default assumption; no need to ship it
		}
		facts[obj.FullName()] = sum
	}
	if len(facts) == 0 {
		return nil
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return nil
	}
	return data
}

// summary computes the allocation summary of a function: the shortest
// call distance to an allocation, bounded by maxHotDepth. Same-package
// callees are walked from source; cross-package callees resolve through
// imported facts; stdlib callees are assumed clean except fmt.
func (st *hotState) summary(fn *types.Func) hotFact {
	if sum, ok := st.sums[fn]; ok {
		return sum
	}
	decl, ok := st.decls[fn]
	if !ok {
		if f, ok := st.crossFact(fn); ok {
			return f
		}
		return hotFact{Dist: -1}
	}
	if st.visiting[fn] {
		return hotFact{Dist: -1} // break recursion cycles: assume clean
	}
	st.visiting[fn] = true
	sum := hotFact{Dist: -1}
	st.scanBody(decl,
		func(pos token.Pos, what string) {
			if sum.Dist != 0 {
				sum = hotFact{Dist: 0, Why: what + " at " + st.shortPos(pos)}
			}
		},
		func(pos token.Pos, callee *types.Func) {
			if callee == fn {
				return
			}
			cs := st.summary(callee)
			if cs.Dist < 0 {
				return
			}
			d := cs.Dist + 1
			if d > maxHotDepth {
				return
			}
			if sum.Dist < 0 || d < sum.Dist {
				sum = hotFact{Dist: d, Why: "calls " + funcLabel(callee) + " (" + st.shortPos(pos) + "): " + cs.Why}
			}
		})
	delete(st.visiting, fn)
	st.sums[fn] = sum
	return sum
}

// crossFact looks up the fact exported for a function defined in
// another package. The second result distinguishes "known clean" from
// "no fact at all" only in that both return a clean summary — absence
// of facts degrades to assuming the callee does not allocate, which
// keeps the analyzer quiet rather than noisy when summaries are
// unavailable (stdlib, or a driver without fact plumbing).
func (st *hotState) crossFact(fn *types.Func) (hotFact, bool) {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() == st.pass.Pkg.Path() {
		return hotFact{Dist: -1}, false
	}
	if pkg.Path() == "fmt" {
		return hotFact{Dist: 0, Why: "fmt." + fn.Name() + " allocates and reflects"}, true
	}
	facts, ok := st.imported[pkg.Path()]
	if !ok {
		facts = map[string]hotFact{}
		if st.pass.ImportFact != nil {
			if blob := st.pass.ImportFact(pkg.Path()); blob != nil {
				_ = json.Unmarshal(blob, &facts)
			}
		}
		st.imported[pkg.Path()] = facts
	}
	if f, ok := facts[fn.FullName()]; ok {
		return f, true
	}
	return hotFact{Dist: -1}, true
}

// scanBody walks one function body, invoking alloc for every allocating
// construct not excused by a reuse idiom, and call for every resolved
// non-builtin callee. go and defer statements are walked like any call;
// function literals are walked too (they run on the same path unless
// launched via go, and a `go` statement's own allocation is reported
// separately).
func (st *hotState) scanBody(fn *ast.FuncDecl, alloc func(token.Pos, string), call func(token.Pos, *types.Func)) {
	info := st.pass.TypesInfo
	reuse := reuseRooted(info, fn)
	exemptRanges := growthGuards(info, fn.Body)
	exemptConv := stringReuseConversions(info, fn.Body)
	exempt := func(n ast.Node) bool {
		for _, r := range exemptRanges {
			if n.Pos() >= r[0] && n.Pos() < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !exempt(n) {
				alloc(n.Pos(), "go statement allocates")
			}
		case *ast.CallExpr:
			st.scanCall(n, reuse, exempt, exemptConv, alloc, call)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && !exempt(n) {
				if t := info.TypeOf(n.Lhs[0]); t != nil && isStringType(t) {
					alloc(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			t := info.TypeOf(n)
			if t == nil || !isStringType(t) {
				return true
			}
			if tv, ok := info.Types[n]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			if !exempt(n) {
				alloc(n.Pos(), "string concatenation allocates")
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				if !exempt(n) {
					alloc(n.Pos(), "map/slice literal allocates")
				}
			}
		}
		return true
	})
}

func (st *hotState) scanCall(callExpr *ast.CallExpr, reuse map[types.Object]bool,
	exempt func(ast.Node) bool, exemptConv map[*ast.CallExpr]bool,
	alloc func(token.Pos, string), call func(token.Pos, *types.Func)) {
	info := st.pass.TypesInfo
	// Builtins: make always allocates; append allocates unless the
	// destination is a caller-owned buffer (amortized reuse).
	if id, ok := ast.Unparen(callExpr.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !exempt(callExpr) {
					alloc(callExpr.Pos(), "make allocates")
				}
			case "append":
				if !exempt(callExpr) && len(callExpr.Args) > 0 &&
					!rootedExpr(info, reuse, callExpr.Args[0]) {
					alloc(callExpr.Pos(), "append allocates")
				}
			}
			return
		}
	}
	// string([]byte) / string([]rune) conversions copy, unless part of
	// the string-reuse idiom.
	if tv, ok := info.Types[callExpr.Fun]; ok && tv.IsType() {
		if isStringType(tv.Type) && len(callExpr.Args) == 1 && !exemptConv[callExpr] && !exempt(callExpr) {
			if at := info.TypeOf(callExpr.Args[0]); at != nil {
				if _, isSlice := at.Underlying().(*types.Slice); isSlice {
					alloc(callExpr.Pos(), "string conversion copies")
				}
			}
		}
		return
	}
	fn, ok := calleeObject(st.pass, callExpr).(*types.Func)
	if !ok {
		return // function value or unresolvable callee
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if !exempt(callExpr) {
			alloc(callExpr.Pos(), "fmt."+fn.Name()+" allocates and reflects")
		}
		return
	}
	if !exempt(callExpr) {
		call(callExpr.Pos(), fn)
	}
}

// reuseRooted computes the set of variables that denote caller-owned
// storage in fn: parameters, the receiver, and locals lexically derived
// from them (`buf := j.scratch[:0]`, `dst = append(dst, ...)`).
// Package-level variables count too — they outlive every call.
func reuseRooted(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	rooted := map[types.Object]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	addField(fn.Recv)
	if fn.Type.Params != nil {
		addField(fn.Type.Params)
	}
	// One forward pass over assignments grows the set; the analyzer is
	// lexical, so a later re-rooting of the same name still counts.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !rootedExpr(info, rooted, as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				rooted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				rooted[obj] = true
			}
		}
		return true
	})
	return rooted
}

// rootedExpr reports whether the expression denotes (or derives from)
// caller-owned storage: a rooted identifier, a slice/index of one, a
// field selected from one, or an append to one.
func rootedExpr(info *types.Info, rooted map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if rooted[obj] {
			return true
		}
		// Package-level variables are persistent storage.
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return true
		}
		return false
	case *ast.SliceExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.IndexExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.SelectorExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.StarExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.CallExpr:
		// append(rooted, ...) returns storage aliasing the rooted buffer.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return rootedExpr(info, rooted, e.Args[0])
			}
		}
		return false
	}
	return false
}

// growthGuards returns the position ranges of if-bodies guarded by a
// condition that reads cap(...) — the amortized-growth idiom
// `if n > cap(buf) { buf = grow(n) }`. Constructs inside are exempt.
func growthGuards(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		usesCap := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if ce, ok := c.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
						usesCap = true
					}
				}
			}
			return !usesCap
		})
		if usesCap {
			ranges = append(ranges, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return ranges
}

// stringReuseConversions collects the string([]byte) conversions the
// gc compiler compiles without a copy, so hot decoders are expressible:
//
//   - a conversion used directly as a ==/!= operand or as a switch tag
//     (`switch string(key) { ... }`): the compiler compares the bytes in
//     place;
//   - the reuse-on-equality idiom `if v != string(b) { v = string(b) }`:
//     the body's conversion does allocate, but only when the value
//     actually changed, so steady state allocates nothing.
func stringReuseConversions(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	isConv := func(e ast.Expr) *ast.CallExpr {
		ce, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(ce.Args) != 1 {
			return nil
		}
		tv, ok := info.Types[ce.Fun]
		if !ok || !tv.IsType() || !isStringType(tv.Type) {
			return nil
		}
		if at := info.TypeOf(ce.Args[0]); at != nil {
			if _, isSlice := at.Underlying().(*types.Slice); isSlice {
				return ce
			}
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// Comparison operands convert without copying.
			if n.Op == token.EQL || n.Op == token.NEQ {
				if ce := isConv(n.X); ce != nil {
					exempt[ce] = true
				}
				if ce := isConv(n.Y); ce != nil {
					exempt[ce] = true
				}
			}
		case *ast.SwitchStmt:
			// A switch tag compiles to a chain of comparisons.
			if n.Tag != nil {
				if ce := isConv(n.Tag); ce != nil {
					exempt[ce] = true
				}
			}
		case *ast.IfStmt:
			// The reuse-on-equality idiom additionally excuses the
			// assignment conversions inside the guarded body.
			cond, ok := n.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.NEQ && cond.Op != token.EQL {
				return true
			}
			if isConv(cond.X) == nil && isConv(cond.Y) == nil {
				return true
			}
			ast.Inspect(n.Body, func(b ast.Node) bool {
				if as, ok := b.(*ast.AssignStmt); ok {
					for _, rhs := range as.Rhs {
						if ce := isConv(rhs); ce != nil {
							exempt[ce] = true
						}
					}
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// funcLabel renders a callee for diagnostics: pkg.Func for functions,
// Type.Method for methods.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func (st *hotState) shortPos(pos token.Pos) string {
	p := st.pass.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotPathMarker) {
			return true
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
