package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathMarker tags a function whose body must stay allocation-free.
// It goes in the function's doc comment:
//
//	// Observe records one latency sample.
//	//anufs:hotpath
//	func (h *Histogram) Observe(d time.Duration) { ... }
const hotPathMarker = "//anufs:hotpath"

// HotPathAlloc forbids allocation-heavy constructs inside functions
// marked //anufs:hotpath — the obs Observe/histogram path sits on every
// request, and a single fmt.Sprintf there costs more than the entire
// measurement (~23ns budget). Forbidden: any fmt call, non-constant
// string concatenation, append, make, map/slice composite literals, and
// string([]byte) conversions.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "no fmt calls, string building, append/make, or map/slice literals " +
		"inside functions marked //anufs:hotpath",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkHotPathBody(pass, fn)
		}
	}
	return nil
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotPathMarker) {
			return true
		}
	}
	return false
}

func checkHotPathBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotPathCall(pass, name, n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil && isStringType(t) {
					pass.Reportf(n.Pos(), "string concatenation allocates in hot path %s", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() != "+" {
				return true
			}
			t := pass.TypesInfo.TypeOf(n)
			if t == nil || !isStringType(t) {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			pass.Reportf(n.Pos(), "string concatenation allocates in hot path %s", name)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(n.Pos(), "map/slice literal allocates in hot path %s", name)
			}
		}
		return true
	})
}

func checkHotPathCall(pass *Pass, name string, call *ast.CallExpr) {
	// Builtins: append and make always allocate or risk it.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" || b.Name() == "make" {
				pass.Reportf(call.Pos(), "%s allocates in hot path %s", b.Name(), name)
			}
			return
		}
	}
	// string([]byte) / string([]rune) conversions copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isStringType(tv.Type) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil {
				if _, isSlice := at.Underlying().(*types.Slice); isSlice {
					pass.Reportf(call.Pos(), "string conversion copies in hot path %s", name)
				}
			}
		}
		return
	}
	obj := calleeObject(pass, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates and reflects in hot path %s (format off the hot path or //anufs:allow hotpathalloc <why>)",
			obj.Name(), name)
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
