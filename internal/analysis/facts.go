package analysis

import (
	"encoding/json"
	"strings"
)

// A FactStore accumulates the serialized fact blobs analyzers export
// about packages, keyed by base import path (the " [pkg.test]" suffix of
// merged test variants is stripped, so a dependent's lookup by the path
// it imports always lands). Facts are how the suite crosses package
// boundaries: export data carries types but no function bodies, so an
// interprocedural analyzer summarizes each package once and dependents
// consume the summary instead of re-deriving it.
//
// Two drivers fill a store. The Load driver processes packages in the
// dependency order `go list -deps` guarantees, exporting facts as it
// goes; the vet driver reads the .vetx files `go vet` hands it for the
// unit's dependencies and writes this unit's facts to VetxOutput.
type FactStore struct {
	m map[string]map[string][]byte // base path → analyzer name → blob
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string][]byte{}}
}

// Get returns the blob analyzer exported for pkgPath, nil if none.
func (s *FactStore) Get(pkgPath, analyzer string) []byte {
	if s == nil {
		return nil
	}
	return s.m[basePath(pkgPath)][analyzer]
}

// Set records the blob analyzer exported for pkgPath.
func (s *FactStore) Set(pkgPath, analyzer string, data []byte) {
	if s == nil || len(data) == 0 {
		return
	}
	base := basePath(pkgPath)
	if s.m[base] == nil {
		s.m[base] = map[string][]byte{}
	}
	s.m[base][analyzer] = data
}

// EncodePackage serializes every analyzer's blob for pkgPath into one
// .vetx payload (JSON map of analyzer name to blob). An empty payload is
// valid: it means no analyzer had anything to say about the package.
func (s *FactStore) EncodePackage(pkgPath string) []byte {
	if s == nil {
		return nil
	}
	blobs := s.m[basePath(pkgPath)]
	if len(blobs) == 0 {
		return nil
	}
	data, err := json.Marshal(blobs)
	if err != nil {
		return nil
	}
	return data
}

// DecodePackage loads a .vetx payload produced by EncodePackage into the
// store under pkgPath. Empty and malformed payloads are ignored — a
// missing fact only widens what the consumer must assume, it is never an
// error.
func (s *FactStore) DecodePackage(pkgPath string, data []byte) {
	if s == nil || len(data) == 0 {
		return
	}
	blobs := map[string][]byte{}
	if err := json.Unmarshal(data, &blobs); err != nil {
		return
	}
	base := basePath(pkgPath)
	if s.m[base] == nil {
		s.m[base] = map[string][]byte{}
	}
	for name, blob := range blobs {
		s.m[base][name] = blob
	}
}

// basePath strips the " [pkg.test]" suffix from a merged test variant's
// import path.
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
