package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestJournalKinds(t *testing.T) {
	analysistest.Run(t, "testdata/journalkinds", analysis.JournalKinds)
}
