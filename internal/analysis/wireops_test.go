package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestWireOps(t *testing.T) {
	analysistest.Run(t, "testdata/wireops", analysis.WireOps)
}
