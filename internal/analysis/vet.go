package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON config `go vet` hands a -vettool for each
// compilation unit (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` command-line protocol:
//
//	anufsvet -V=full     describe the executable for build caching
//	anufsvet -flags      describe analyzer flags in JSON
//	anufsvet unit.cfg    analyze one compilation unit
//
// It returns only for arguments it does not handle (so the caller can
// layer a standalone mode on top); protocol requests exit the process.
func VetMain(args []string, analyzers []*Analyzer) {
	if len(args) == 0 {
		return
	}
	switch {
	case args[0] == "-V=full" || args[0] == "-V":
		// The whole line is the tool ID `go vet` caches against, so it
		// embeds a content hash of this binary: rebuilding the tool
		// invalidates prior vet results.
		fmt.Printf("anufsvet version anufs-%s\n", selfHash())
		os.Exit(0)
	case args[0] == "-flags":
		// No analyzer flags; `go vet` requires valid JSON.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		if err := vetUnit(args[0], analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// selfHash hashes the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// vetUnit analyzes one compilation unit described by a vet config file.
// Diagnostics go to stderr in vet's file:line:col format and flip the
// exit code via the returned error.
//
// `go vet` runs the tool over a unit's dependencies first (VetxOnly)
// and hands each later unit its dependencies' fact files in
// PackageVetx. Module-internal VetxOnly units are typechecked so the
// interprocedural analyzers can export facts; everything else gets an
// empty facts file — stdlib bodies are not summarized (the analyzers
// hard-code the little stdlib policy they need, e.g. "fmt allocates").
func vetUnit(cfgFile string, analyzers []*Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("decoding %s: %v", cfgFile, err)
	}

	store := NewFactStore()
	for path, file := range cfg.PackageVetx {
		blob, err := os.ReadFile(file)
		if err != nil {
			continue // a missing fact is not an error, just less precision
		}
		store.DecodePackage(path, blob)
	}

	if cfg.VetxOnly && !moduleInternal(cfg.ImportPath, cfg.Standard) {
		// Dependency-only run over a package we do not summarize:
		// leave an empty facts file so the go command can cache the unit.
		return writeVetx(cfg, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	hasTests := false
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, nil)
			}
			return err
		}
		if strings.HasSuffix(name, "_test.go") {
			hasTests = true
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// The merged test unit is named "pkg [pkg.test]"; typecheck it under
	// the plain path so the analyzers' package matching sees through it.
	basePath := cfg.ImportPath
	if i := strings.Index(basePath, " ["); i >= 0 {
		basePath = basePath[:i]
	}
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(basePath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, nil)
		}
		return fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{
		Path:         cfg.ID,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		HasTestFiles: hasTests,
	}
	if cfg.VetxOnly {
		ComputeFacts(pkg, analyzers, store, nil)
		return writeVetx(cfg, store.EncodePackage(cfg.ImportPath))
	}
	diags, err := Run(pkg, analyzers, store, nil)
	if err != nil {
		return err
	}
	if err := writeVetx(cfg, store.EncodePackage(cfg.ImportPath)); err != nil {
		return err
	}
	if len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, Format(fset, d))
	}
	return fmt.Errorf("%d invariant violation(s) in %s", len(diags), cfg.ImportPath)
}

// moduleInternal reports whether the unit's import path belongs to the
// module under analysis rather than the standard library. The module is
// `anufs` in both the real tree and the fixture modules, so a prefix
// check suffices and keeps VetxOnly runs over stdlib dependencies down
// to a config read and an empty write.
func moduleInternal(importPath string, standard map[string]bool) bool {
	base := basePath(importPath)
	if standard[base] {
		return false
	}
	return base == "anufs" || strings.HasPrefix(base, "anufs/")
}

// writeVetx leaves the unit's facts file (possibly empty) so the go
// command can cache the unit.
func writeVetx(cfg *vetConfig, data []byte) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if data == nil {
		data = []byte{}
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}
