package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON config `go vet` hands a -vettool for each
// compilation unit (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` command-line protocol:
//
//	anufsvet -V=full     describe the executable for build caching
//	anufsvet -flags      describe analyzer flags in JSON
//	anufsvet unit.cfg    analyze one compilation unit
//
// It returns only for arguments it does not handle (so the caller can
// layer a standalone mode on top); protocol requests exit the process.
func VetMain(args []string, analyzers []*Analyzer) {
	if len(args) == 0 {
		return
	}
	switch {
	case args[0] == "-V=full" || args[0] == "-V":
		// The whole line is the tool ID `go vet` caches against, so it
		// embeds a content hash of this binary: rebuilding the tool
		// invalidates prior vet results.
		fmt.Printf("anufsvet version anufs-%s\n", selfHash())
		os.Exit(0)
	case args[0] == "-flags":
		// No analyzer flags; `go vet` requires valid JSON.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		if err := vetUnit(args[0], analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "anufsvet: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// selfHash hashes the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// vetUnit analyzes one compilation unit described by a vet config file.
// Diagnostics go to stderr in vet's file:line:col format and flip the
// exit code via the returned error.
func vetUnit(cfgFile string, analyzers []*Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("decoding %s: %v", cfgFile, err)
	}

	// Always leave a (possibly empty) facts file so the go command can
	// cache the unit; the suite's analyzers carry no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: nothing to diagnose, no facts to compute.
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	hasTests := false
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		if strings.HasSuffix(name, "_test.go") {
			hasTests = true
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// The merged test unit is named "pkg [pkg.test]"; typecheck it under
	// the plain path so the analyzers' package matching sees through it.
	basePath := cfg.ImportPath
	if i := strings.Index(basePath, " ["); i >= 0 {
		basePath = basePath[:i]
	}
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(basePath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{
		Path:         cfg.ID,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		HasTestFiles: hasTests,
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return err
	}
	if len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, Format(fset, d))
	}
	return fmt.Errorf("%d invariant violation(s) in %s", len(diags), cfg.ImportPath)
}
