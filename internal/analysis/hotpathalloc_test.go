package analysis_test

import (
	"testing"

	"anufs/internal/analysis"
	"anufs/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotpathalloc", analysis.HotPathAlloc)
}
