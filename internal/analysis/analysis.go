// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, built so the repository can
// enforce its own invariants (determinism of the simulation kernel,
// journal-recovery exhaustiveness, wire-protocol symmetry, lock
// discipline, hot-path allocation hygiene) with machine-checked analyzers
// even in environments without network access to x/tools.
//
// The shape mirrors x/tools on purpose — an Analyzer has a Name, a Doc
// string and a Run function over a Pass — so the analyzers would port to
// the upstream framework with only an import change. Three drivers exist:
//
//   - Load (load.go) shells out to `go list -export` and typechecks
//     packages from source against compiler export data, for standalone
//     runs and tests.
//   - Vet (vet.go) speaks the `go vet -vettool` JSON config protocol, so
//     cmd/anufsvet plugs into the build cache like any vet tool.
//   - analysistest (subpackage) runs one analyzer over a fixture module
//     and compares diagnostics against `// want` comments.
//
// Every diagnostic can be suppressed at the site with a justified
// annotation:
//
//	//anufs:allow <analyzer> <reason...>
//
// placed on the offending line or the line above. The reason is
// mandatory; a bare allow, an allow naming an unknown analyzer, and an
// allow that suppresses nothing are themselves diagnostics, so the
// escape hatch cannot silently rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //anufs:allow annotations. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// ExportFacts, when set, summarizes the package for dependents: it
	// returns an opaque blob (conventionally JSON) that a later pass
	// over an importing package reads back through Pass.ImportFact.
	// Export data carries no function bodies, so this is the only
	// channel an interprocedural analyzer has across package
	// boundaries. ExportFacts must not report diagnostics; the driver
	// may call it on dependency-only units where Run never executes.
	ExportFacts func(*Pass) []byte
}

// A Pass provides one analyzer with one typechecked package, a sink for
// diagnostics, and read access to the facts this analyzer exported for
// the package's dependencies.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver applies //anufs:allow
	// suppression after the analyzer runs, so Run should report every
	// violation unconditionally.
	Report func(Diagnostic)
	// ImportFact returns the blob this analyzer exported for an
	// imported package (by its base import path), or nil when the
	// driver has none — analyzers must degrade soundly (assume nothing)
	// on a nil fact.
	ImportFact func(pkgPath string) []byte
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}
