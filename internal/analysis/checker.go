package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics: every violation the analyzers reported, minus
// those suppressed by a justified //anufs:allow, plus hygiene
// diagnostics for annotations that are malformed or suppress nothing.
// Diagnostics come back sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	registered := map[string]bool{}
	for _, a := range Registry() {
		registered[a.Name] = true
	}
	allows := parseAllows(pkg.Fset, pkg.Files)
	diags = applyAllows(pkg.Fset, allows, ran, registered, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Format renders one diagnostic the way vet does: file:line:col: message.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
