package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"time"
)

// RunStats accumulates per-analyzer wall time across Run and
// ComputeFacts calls (anufsvet -debug=t reports it). May be nil.
type RunStats struct {
	Elapsed map[string]time.Duration
}

func (s *RunStats) add(name string, d time.Duration) {
	if s == nil {
		return
	}
	if s.Elapsed == nil {
		s.Elapsed = map[string]time.Duration{}
	}
	s.Elapsed[name] += d
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics: every violation the analyzers reported, minus
// those suppressed by a justified //anufs:allow, plus hygiene
// diagnostics for annotations that are malformed or suppress nothing.
// Diagnostics come back sorted by position.
//
// store, when non-nil, supplies the facts previously exported for the
// package's dependencies and receives the facts the analyzers export
// for this package. stats, when non-nil, accumulates per-analyzer wall
// time. Both may be nil.
func Run(pkg *Package, analyzers []*Analyzer, store *FactStore, stats *RunStats) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		start := time.Now()
		pass := newPass(a, pkg, store)
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		exportFacts(a, pass, pkg, store)
		stats.add(a.Name, time.Since(start))
	}
	registered := map[string]bool{}
	for _, a := range Registry() {
		registered[a.Name] = true
	}
	allows := parseAllows(pkg.Fset, pkg.Files)
	diags = applyAllows(pkg.Fset, allows, ran, registered, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ComputeFacts runs only the fact-exporting half of the analyzers over a
// dependency package: no diagnostics, no allow processing. The Load
// driver uses it for packages that are in the dependency graph but not
// themselves analysis units (narrow patterns, or the plain variant of a
// package whose merged test variant is the unit).
func ComputeFacts(pkg *Package, analyzers []*Analyzer, store *FactStore, stats *RunStats) {
	for _, a := range analyzers {
		if a.ExportFacts == nil {
			continue
		}
		start := time.Now()
		pass := newPass(a, pkg, store)
		pass.Report = func(Diagnostic) {}
		exportFacts(a, pass, pkg, store)
		stats.add(a.Name, time.Since(start))
	}
}

func newPass(a *Analyzer, pkg *Package, store *FactStore) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		ImportFact: func(path string) []byte {
			return store.Get(path, a.Name)
		},
	}
}

func exportFacts(a *Analyzer, pass *Pass, pkg *Package, store *FactStore) {
	if a.ExportFacts == nil || store == nil {
		return
	}
	store.Set(pkg.Path, a.Name, a.ExportFacts(pass))
}

// Format renders one diagnostic the way vet does: file:line:col: message.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
