package metrics

import (
	"sort"
	"sync"
)

// CounterSet is a small named-counter registry for subsystem observability
// (journal appends, fsyncs, recovery time, ...). Unlike Collector it has no
// notion of time windows: counters are monotonic (Add) or last-value gauges
// (Set), and Snapshot freezes them for export over the wire stats RPC.
// Safe for concurrent use.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterSet creates an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: map[string]int64{}}
}

// Add increments the named counter by d (creating it at zero first).
func (c *CounterSet) Add(name string, d int64) {
	c.mu.Lock()
	c.m[name] += d
	c.mu.Unlock()
}

// Set overwrites the named counter — for gauges like "last recovery time".
func (c *CounterSet) Set(name string, v int64) {
	c.mu.Lock()
	c.m[name] = v
	c.mu.Unlock()
}

// Max raises the named counter to v if v is larger — for high-water marks
// like "largest group-commit batch".
func (c *CounterSet) Max(name string, v int64) {
	c.mu.Lock()
	if v > c.m[name] {
		c.m[name] = v
	}
	c.mu.Unlock()
}

// Get returns the named counter's current value (zero if never touched).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot copies every counter into a fresh map.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns the counter names, sorted — handy for stable CLI output.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
