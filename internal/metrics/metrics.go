// Package metrics collects the per-server latency time series the paper's
// figures plot, and derives the balance statistics (latency skew,
// convergence time, movement counts) that EXPERIMENTS.md reports.
//
// The paper's instrumentation: "the latency of each server is collected
// over a specified interval of time and written into a log file" (§7). A
// Collector does exactly that — observations are bucketed into fixed
// windows by completion time and summarized as per-window means.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Collector accumulates request observations into fixed windows.
// Not safe for concurrent use (the simulator is single-threaded; the live
// cluster wraps it in a mutex).
type Collector struct {
	window  float64
	servers map[int]*serverAcc
}

type serverAcc struct {
	counts []int
	sums   []float64 // summed latency per window
}

// NewCollector creates a collector with the given window length in seconds
// (the paper samples every 2 minutes).
func NewCollector(window float64) *Collector {
	if window <= 0 {
		panic("metrics: window must be positive")
	}
	return &Collector{window: window, servers: map[int]*serverAcc{}}
}

// Observe records a request that completed at time `at` on the given server
// with the given latency (seconds).
func (c *Collector) Observe(server int, at, latency float64) {
	if at < 0 || latency < 0 {
		panic(fmt.Sprintf("metrics: negative observation at=%v latency=%v", at, latency))
	}
	acc := c.servers[server]
	if acc == nil {
		acc = &serverAcc{}
		c.servers[server] = acc
	}
	w := int(at / c.window)
	for len(acc.counts) <= w {
		acc.counts = append(acc.counts, 0)
		acc.sums = append(acc.sums, 0)
	}
	acc.counts[w]++
	acc.sums[w] += latency
}

// Series freezes the collector into an immutable series covering exactly
// `windows` windows — observations beyond the horizon are dropped, matching
// the paper's fixed-duration plots. Pass 0 to size the series to the data.
func (c *Collector) Series(windows int) *Series {
	if windows <= 0 {
		for _, acc := range c.servers {
			if len(acc.counts) > windows {
				windows = len(acc.counts)
			}
		}
	}
	s := &Series{window: c.window, windows: windows, mean: map[int][]float64{}, count: map[int][]int{}}
	for id, acc := range c.servers {
		means := make([]float64, windows)
		counts := make([]int, windows)
		for w := 0; w < windows && w < len(acc.counts); w++ {
			counts[w] = acc.counts[w]
			if acc.counts[w] > 0 {
				means[w] = acc.sums[w] / float64(acc.counts[w])
			}
		}
		s.mean[id] = means
		s.count[id] = counts
	}
	return s
}

// Series is a frozen per-server, per-window latency series.
type Series struct {
	window  float64
	windows int
	mean    map[int][]float64
	count   map[int][]int
}

// Window returns the window length in seconds.
func (s *Series) Window() float64 { return s.window }

// Windows returns the number of windows.
func (s *Series) Windows() int { return s.windows }

// Servers returns the observed server IDs, ascending.
func (s *Series) Servers() []int {
	ids := make([]int, 0, len(s.mean))
	for id := range s.mean {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Mean returns the mean latency (seconds) of requests completed by the
// server in window w; 0 when the server was idle.
func (s *Series) Mean(server, w int) float64 {
	m, ok := s.mean[server]
	if !ok || w < 0 || w >= len(m) {
		return 0
	}
	return m[w]
}

// Count returns the number of requests the server completed in window w.
func (s *Series) Count(server, w int) int {
	c, ok := s.count[server]
	if !ok || w < 0 || w >= len(c) {
		return 0
	}
	return c[w]
}

// OverallMean returns a server's request-weighted mean latency across all
// windows.
func (s *Series) OverallMean(server int) float64 {
	var sum float64
	var n int
	for w := 0; w < s.windows; w++ {
		c := s.Count(server, w)
		sum += s.Mean(server, w) * float64(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxMean returns the largest per-window mean latency any server recorded —
// the worst point on the paper's latency plots.
func (s *Series) MaxMean() float64 {
	var max float64
	for _, means := range s.mean {
		for _, m := range means {
			if m > max {
				max = m
			}
		}
	}
	return max
}

// CoV returns the coefficient of variation of per-server mean latencies in
// window w, considering only servers that completed requests. A perfectly
// balanced window has CoV 0. Returns 0 when fewer than two servers were
// active.
func (s *Series) CoV(w int) float64 {
	var ls []float64
	for id := range s.mean {
		if s.Count(id, w) > 0 {
			ls = append(ls, s.Mean(id, w))
		}
	}
	if len(ls) < 2 {
		return 0
	}
	mean := 0.0
	for _, l := range ls {
		mean += l
	}
	mean /= float64(len(ls))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, l := range ls {
		sq += (l - mean) * (l - mean)
	}
	return math.Sqrt(sq/float64(len(ls))) / mean
}

// SteadyStateCoV averages CoV over the second half of the run, after any
// adaptive policy has had time to converge.
func (s *Series) SteadyStateCoV() float64 {
	if s.windows == 0 {
		return 0
	}
	start := s.windows / 2
	var sum float64
	n := 0
	for w := start; w < s.windows; w++ {
		sum += s.CoV(w)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SteadyOverallMean returns the request-weighted mean latency across all
// servers over the second half of the run — the post-convergence regime the
// paper's "performs comparably" claims are about.
func (s *Series) SteadyOverallMean() float64 {
	var sum float64
	var n int
	for id := range s.mean {
		for w := s.windows / 2; w < s.windows; w++ {
			c := s.Count(id, w)
			sum += s.Mean(id, w) * float64(c)
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ConvergenceWindow returns the first window after which CoV stays at or
// below the threshold for the rest of the run, or -1 if it never does.
func (s *Series) ConvergenceWindow(threshold float64) int {
	conv := -1
	for w := 0; w < s.windows; w++ {
		if s.CoV(w) <= threshold {
			if conv == -1 {
				conv = w
			}
		} else {
			conv = -1
		}
	}
	return conv
}

// OscillationScore measures over-tuning for one server: the number of
// window-to-window direction reversals of its latency whose amplitude
// exceeds ampl (seconds). The paper's Figure 10(a) server 0 scores high;
// with the three heuristics it drops to near zero.
func (s *Series) OscillationScore(server int, ampl float64) int {
	m, ok := s.mean[server]
	if !ok || len(m) < 3 {
		return 0
	}
	score := 0
	prevDelta := 0.0
	for w := 1; w < len(m); w++ {
		d := m[w] - m[w-1]
		if math.Abs(d) >= ampl && math.Abs(prevDelta) >= ampl && (d > 0) != (prevDelta > 0) {
			score++
		}
		if math.Abs(d) >= ampl {
			prevDelta = d
		}
	}
	return score
}

// Summary condenses a series into the scalar row EXPERIMENTS.md tabulates.
type Summary struct {
	SteadyCoV      float64
	MaxMean        float64
	OverallMeanAll float64 // request-weighted mean latency across servers
	SteadyMean     float64 // same, over the second half of the run
}

// Summarize computes the Summary.
func (s *Series) Summarize() Summary {
	var sum float64
	var n int
	for id := range s.mean {
		for w := 0; w < s.windows; w++ {
			c := s.Count(id, w)
			sum += s.Mean(id, w) * float64(c)
			n += c
		}
	}
	overall := 0.0
	if n > 0 {
		overall = sum / float64(n)
	}
	return Summary{
		SteadyCoV:      s.SteadyStateCoV(),
		MaxMean:        s.MaxMean(),
		OverallMeanAll: overall,
		SteadyMean:     s.SteadyOverallMean(),
	}
}
