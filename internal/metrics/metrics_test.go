package metrics

import (
	"math"
	"testing"
)

func TestObserveBucketsByWindow(t *testing.T) {
	c := NewCollector(60)
	c.Observe(0, 10, 0.5)
	c.Observe(0, 59.9, 1.5)
	c.Observe(0, 60, 3.0)
	s := c.Series(0)
	if got := s.Mean(0, 0); got != 1.0 {
		t.Fatalf("window 0 mean %v, want 1.0", got)
	}
	if got := s.Mean(0, 1); got != 3.0 {
		t.Fatalf("window 1 mean %v, want 3.0", got)
	}
	if s.Count(0, 0) != 2 || s.Count(0, 1) != 1 {
		t.Fatalf("counts %d/%d, want 2/1", s.Count(0, 0), s.Count(0, 1))
	}
}

func TestSeriesPadsToRequestedWindows(t *testing.T) {
	c := NewCollector(1)
	c.Observe(0, 0.5, 1)
	s := c.Series(10)
	if s.Windows() != 10 {
		t.Fatalf("Windows = %d, want 10", s.Windows())
	}
	if s.Mean(0, 7) != 0 || s.Count(0, 7) != 0 {
		t.Fatal("padded windows must read as idle")
	}
}

func TestIdleServerReadsZero(t *testing.T) {
	c := NewCollector(1)
	c.Observe(3, 0.1, 2)
	s := c.Series(0)
	if s.Mean(99, 0) != 0 || s.Count(99, 0) != 0 {
		t.Fatal("unknown server must read zero")
	}
	if s.Mean(3, -1) != 0 || s.Mean(3, 100) != 0 {
		t.Fatal("out-of-range window must read zero")
	}
}

func TestServersSorted(t *testing.T) {
	c := NewCollector(1)
	for _, id := range []int{4, 0, 2} {
		c.Observe(id, 0.1, 1)
	}
	s := c.Series(0)
	got := s.Servers()
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("Servers = %v", got)
	}
}

func TestNegativeObservationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation accepted")
		}
	}()
	NewCollector(1).Observe(0, -1, 1)
}

func TestBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	NewCollector(0)
}

func TestOverallMean(t *testing.T) {
	c := NewCollector(1)
	c.Observe(0, 0.5, 1) // window 0: one request at 1s
	c.Observe(0, 1.5, 2) // window 1: three requests at 2s
	c.Observe(0, 1.6, 2)
	c.Observe(0, 1.7, 2)
	s := c.Series(0)
	want := (1.0 + 6.0) / 4
	if got := s.OverallMean(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("OverallMean %v, want %v", got, want)
	}
	if s.OverallMean(42) != 0 {
		t.Fatal("OverallMean of unknown server should be 0")
	}
}

func TestCoVBalancedVsSkewed(t *testing.T) {
	c := NewCollector(1)
	for id := 0; id < 4; id++ {
		c.Observe(id, 0.1, 10) // balanced window 0
	}
	c.Observe(0, 1.1, 100) // skewed window 1
	c.Observe(1, 1.1, 1)
	c.Observe(2, 1.1, 1)
	c.Observe(3, 1.1, 1)
	s := c.Series(0)
	if got := s.CoV(0); got != 0 {
		t.Fatalf("balanced CoV %v, want 0", got)
	}
	if got := s.CoV(1); got < 1 {
		t.Fatalf("skewed CoV %v, want > 1", got)
	}
}

func TestCoVFewActiveServers(t *testing.T) {
	c := NewCollector(1)
	c.Observe(0, 0.1, 5)
	s := c.Series(0)
	if got := s.CoV(0); got != 0 {
		t.Fatalf("single-server CoV %v, want 0", got)
	}
}

func TestSteadyStateCoV(t *testing.T) {
	c := NewCollector(1)
	// First half wildly skewed, second half balanced.
	for w := 0; w < 10; w++ {
		at := float64(w) + 0.5
		if w < 5 {
			c.Observe(0, at, 100)
			c.Observe(1, at, 1)
		} else {
			c.Observe(0, at, 10)
			c.Observe(1, at, 10)
		}
	}
	s := c.Series(0)
	if got := s.SteadyStateCoV(); got != 0 {
		t.Fatalf("steady CoV %v, want 0 (second half balanced)", got)
	}
}

func TestConvergenceWindow(t *testing.T) {
	c := NewCollector(1)
	for w := 0; w < 8; w++ {
		at := float64(w) + 0.5
		if w < 3 {
			c.Observe(0, at, 100)
			c.Observe(1, at, 1)
		} else {
			c.Observe(0, at, 10)
			c.Observe(1, at, 10.1)
		}
	}
	s := c.Series(0)
	if got := s.ConvergenceWindow(0.1); got != 3 {
		t.Fatalf("ConvergenceWindow %d, want 3", got)
	}
	// CoV of {10, 10.1} ≈ 0.005: a tighter threshold is never met.
	if got := s.ConvergenceWindow(0.001); got != -1 {
		t.Fatalf("tight ConvergenceWindow %d, want -1", got)
	}
}

func TestConvergenceNever(t *testing.T) {
	c := NewCollector(1)
	for w := 0; w < 4; w++ {
		at := float64(w) + 0.5
		c.Observe(0, at, 100)
		c.Observe(1, at, 1)
	}
	s := c.Series(0)
	if got := s.ConvergenceWindow(0.1); got != -1 {
		t.Fatalf("ConvergenceWindow %d, want -1", got)
	}
}

func TestOscillationScore(t *testing.T) {
	c := NewCollector(1)
	// Server 0 flaps between 0 and 50 every window — the paper's
	// over-tuning signature.
	for w := 0; w < 10; w++ {
		at := float64(w) + 0.5
		if w%2 == 0 {
			c.Observe(0, at, 50)
		} else {
			c.Observe(0, at, 0.001)
		}
		c.Observe(1, at, 10) // stable server
	}
	s := c.Series(0)
	if got := s.OscillationScore(0, 10); got < 5 {
		t.Fatalf("flapping server oscillation %d, want >= 5", got)
	}
	if got := s.OscillationScore(1, 10); got != 0 {
		t.Fatalf("stable server oscillation %d, want 0", got)
	}
	if got := s.OscillationScore(99, 10); got != 0 {
		t.Fatalf("unknown server oscillation %d, want 0", got)
	}
}

func TestMaxMeanAndSummary(t *testing.T) {
	c := NewCollector(1)
	c.Observe(0, 0.5, 5)
	c.Observe(1, 0.5, 1)
	c.Observe(0, 1.5, 2)
	c.Observe(1, 1.5, 2)
	s := c.Series(0)
	if got := s.MaxMean(); got != 5 {
		t.Fatalf("MaxMean %v, want 5", got)
	}
	sum := s.Summarize()
	if sum.MaxMean != 5 {
		t.Fatalf("Summary.MaxMean %v", sum.MaxMean)
	}
	want := (5.0 + 1 + 2 + 2) / 4
	if math.Abs(sum.OverallMeanAll-want) > 1e-12 {
		t.Fatalf("Summary.OverallMeanAll %v, want %v", sum.OverallMeanAll, want)
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewCollector(1).Series(0)
	if s.Windows() != 0 || s.SteadyStateCoV() != 0 || s.MaxMean() != 0 {
		t.Fatal("empty series misreports")
	}
	sum := s.Summarize()
	if sum.OverallMeanAll != 0 {
		t.Fatal("empty summary misreports")
	}
}
