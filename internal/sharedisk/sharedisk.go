// Package sharedisk models the shared-disk substrate of the paper's
// architecture (§2, Figure 1): network-attached storage that every server
// in the cluster can read and write. Metadata for each file set lives in a
// per-file-set image on the shared disk; a file server serves a file set
// out of its in-memory cache and flushes the image back before the file set
// moves to another server ("the releasing server needs to flush its cache,
// writing all dirty data back to stable storage", §7).
//
// The store is deliberately simple — a versioned key-value image per file
// set — because the paper's load-management layer only relies on two
// properties of shared disk: any server can load any file set's image, and
// a flushed image is a consistent cut another server can adopt.
package sharedisk

import (
	"fmt"
	"sync"
	"time"
)

// Image is a consistent snapshot of one file set's metadata: a flat map of
// metadata records keyed by path. Images are value types: Store hands out
// copies, never aliases.
type Image struct {
	// Version increments on every flush, so stale writers are detectable.
	Version uint64
	Records map[string]Record
}

// Record is one file's metadata (the paper's workload is small metadata
// reads and writes — stat-like records, not file data, which goes straight
// from clients to disk over the SAN).
type Record struct {
	Size    int64
	Mode    uint32
	ModTime time.Time
	Owner   string
}

// Disk is the shared-disk contract the rest of the stack (metaserver, live
// cluster) programs against. *Store implements it in memory; *Durable adds
// a write-ahead log underneath so images survive process crashes.
type Disk interface {
	CreateFileSet(fileSet string) error
	FileSets() []string
	Load(fileSet string) (Image, error)
	Flush(fileSet string, im Image) (newVersion uint64, err error)
	Version(fileSet string) (uint64, error)
}

// clone deep-copies an image.
func (im Image) clone() Image {
	cp := Image{Version: im.Version, Records: make(map[string]Record, len(im.Records))}
	for k, v := range im.Records {
		cp.Records[k] = v
	}
	return cp
}

// Store is the shared disk: a set of file-set images reachable from every
// server. It is safe for concurrent use — the SAN serializes block access;
// here a mutex does.
type Store struct {
	mu     sync.RWMutex
	images map[string]Image
	// latency simulates the disk round trip for load/flush; zero for tests.
	latency time.Duration
}

// NewStore creates an empty shared disk. latency, if positive, is applied
// to every Load and Flush to model the I/O cost that makes file-set moves
// expensive (part of the paper's 5–10 s move time).
func NewStore(latency time.Duration) *Store {
	return &Store{images: map[string]Image{}, latency: latency}
}

// NewStoreFromImages creates a store seeded with the given images — the
// journal recovery path uses it to materialize the replayed state. The
// images are deep-copied; the caller keeps ownership of its map.
func NewStoreFromImages(images map[string]Image, latency time.Duration) *Store {
	s := &Store{images: make(map[string]Image, len(images)), latency: latency}
	for fs, im := range images {
		s.images[fs] = im.clone()
	}
	return s
}

// Images deep-copies every file-set image — the consistent cut a journal
// snapshot persists.
func (s *Store) Images() map[string]Image {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Image, len(s.images))
	for fs, im := range s.images {
		out[fs] = im.clone()
	}
	return out
}

// CreateFileSet initializes an empty image for a new file set.
func (s *Store) CreateFileSet(fileSet string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.images[fileSet]; dup {
		return fmt.Errorf("sharedisk: file set %q already exists", fileSet)
	}
	s.images[fileSet] = Image{Version: 1, Records: map[string]Record{}}
	return nil
}

// Install places a complete image for a file set, creating it if absent or
// replacing an existing one — the adopting half of a fleet handoff, where
// the image arrives from the donor daemon rather than this store's own
// flush cycle. A version downgrade is rejected: the donor's image must be
// at least as new as whatever copy this store holds.
func (s *Store) Install(fileSet string, im Image) error {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.images[fileSet]; ok && im.Version < cur.Version {
		return fmt.Errorf("sharedisk: install of %q would downgrade version %d to %d",
			fileSet, cur.Version, im.Version)
	}
	if im.Records == nil {
		im.Records = map[string]Record{}
	}
	if im.Version == 0 {
		im.Version = 1
	}
	s.images[fileSet] = im.clone()
	return nil
}

// DropFileSet removes a file set's image — the fencing half of a fleet
// handoff: after the recipient adopts, the donor drops its copy so a stale
// restart cannot serve it. Dropping an unknown file set is an error (it
// would indicate a double donate).
func (s *Store) DropFileSet(fileSet string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.images[fileSet]; !ok {
		return fmt.Errorf("sharedisk: unknown file set %q", fileSet)
	}
	delete(s.images, fileSet)
	return nil
}

// FileSets lists the stored file sets (unordered).
func (s *Store) FileSets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.images))
	for fs := range s.images {
		out = append(out, fs)
	}
	return out
}

// Load reads a file set's image — what an acquiring server does when a file
// set moves to it (with a cold cache: the image is all it has).
func (s *Store) Load(fileSet string) (Image, error) {
	s.sleep()
	s.mu.RLock()
	defer s.mu.RUnlock()
	im, ok := s.images[fileSet]
	if !ok {
		return Image{}, fmt.Errorf("sharedisk: unknown file set %q", fileSet)
	}
	return im.clone(), nil
}

// Flush writes a file set's image back. The caller passes the version it
// loaded; a mismatch means another server flushed in between, which the
// ownership protocol is supposed to prevent — it is reported as an error
// rather than silently lost.
func (s *Store) Flush(fileSet string, im Image) (newVersion uint64, err error) {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.images[fileSet]
	if !ok {
		return 0, fmt.Errorf("sharedisk: unknown file set %q", fileSet)
	}
	if im.Version != cur.Version {
		return 0, fmt.Errorf("sharedisk: stale flush of %q: have version %d, disk at %d",
			fileSet, im.Version, cur.Version)
	}
	next := im.clone()
	next.Version = cur.Version + 1
	s.images[fileSet] = next
	return next.Version, nil
}

// Version reports a file set's current image version.
func (s *Store) Version(fileSet string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	im, ok := s.images[fileSet]
	if !ok {
		return 0, fmt.Errorf("sharedisk: unknown file set %q", fileSet)
	}
	return im.Version, nil
}

func (s *Store) sleep() {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
}
