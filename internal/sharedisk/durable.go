package sharedisk

import (
	"fmt"
	"sync"
)

// WAL is what Durable needs from a write-ahead log. internal/journal
// implements it; it lives here as an interface so sharedisk does not import
// journal (journal already imports sharedisk for the image types and the
// Recover constructor).
//
// Log* calls must not return until the entry is durable (fsynced) — Durable
// acknowledges a flush to its caller only after the WAL has.
type WAL interface {
	// LogCreateFileSet records the birth of an empty file set.
	LogCreateFileSet(fileSet string) error
	// LogFlush records a flushed image, including the version the store
	// assigned it.
	LogFlush(fileSet string, im Image) error
	// Snapshot persists a full consistent cut of the store and lets the log
	// compact everything the cut covers. It takes a closure so the log can
	// capture the cut at a sequence of its choosing (with commits paused).
	Snapshot(images func() map[string]Image) error
	// Close flushes and closes the log.
	Close() error
}

// TracedWAL is optionally implemented by WALs (internal/journal) that can
// attribute a logged flush to the client request trace that forced it, so
// the journal's group-commit wait and fsync show up as spans under that
// request's trace ID.
type TracedWAL interface {
	LogFlushTraced(trace uint64, fileSet string, im Image) error
}

// DropWAL is optionally implemented by WALs (internal/journal) that can
// journal a file-set removal. It is separate from WAL so existing WAL
// implementations keep compiling; Durable.DropFileSet requires it.
type DropWAL interface {
	LogDrop(fileSet string) error
}

// Installer is optionally implemented by disks that can adopt a complete
// image from elsewhere (fleet handoff). *Store and *Durable implement it.
type Installer interface {
	Install(fileSet string, im Image) error
}

// Dropper is optionally implemented by disks that can remove a file set
// (fleet handoff fencing). *Store and *Durable implement it.
type Dropper interface {
	DropFileSet(fileSet string) error
}

// Durable is a Store variant that write-ahead-logs every mutation, so the
// shared disk's images survive a daemon crash: CreateFileSet and Flush
// return only once the journal has fsynced the entry, and journal.Recover
// rebuilds an equivalent Store on restart. Reads are served from the
// embedded in-memory Store as before.
//
// Ordering note: the in-memory store applies first (it assigns the image
// version), then the entry is journaled. A crash between the two loses an
// un-acknowledged flush, which is exactly the contract callers already
// have — a flush is durable when (and only when) Flush returns nil.
type Durable struct {
	*Store
	wal WAL

	// snapshotEvery triggers a snapshot + log compaction after that many
	// journaled entries; <= 0 disables automatic snapshots.
	snapshotEvery int
	mu            sync.Mutex
	sinceSnapshot int
}

// NewDurable wraps a store with a write-ahead log. The store is typically
// the one journal recovery just rebuilt, so log and memory start aligned.
func NewDurable(st *Store, wal WAL, snapshotEvery int) *Durable {
	return &Durable{Store: st, wal: wal, snapshotEvery: snapshotEvery}
}

// CreateFileSet initializes an empty image and journals the creation.
func (d *Durable) CreateFileSet(fileSet string) error {
	if err := d.Store.CreateFileSet(fileSet); err != nil {
		return err
	}
	if err := d.wal.LogCreateFileSet(fileSet); err != nil {
		return fmt.Errorf("sharedisk: journal create of %q: %w", fileSet, err)
	}
	return d.maybeSnapshot()
}

// Flush writes the image back and journals the flushed state. The journaled
// entry carries the post-flush version, so replay installs exactly what the
// store held.
func (d *Durable) Flush(fileSet string, im Image) (uint64, error) {
	return d.FlushTraced(0, fileSet, im)
}

// FlushTraced is Flush attributed to a client request trace (0 = untraced):
// when the WAL supports tracing, the journal entry carries the trace ID so
// the commit path's spans join the request's timeline.
func (d *Durable) FlushTraced(trace uint64, fileSet string, im Image) (uint64, error) {
	v, err := d.Store.Flush(fileSet, im)
	if err != nil {
		return 0, err
	}
	flushed := im.clone()
	flushed.Version = v
	if tw, ok := d.wal.(TracedWAL); ok && trace != 0 {
		err = tw.LogFlushTraced(trace, fileSet, flushed)
	} else {
		err = d.wal.LogFlush(fileSet, flushed)
	}
	if err != nil {
		return v, fmt.Errorf("sharedisk: journal flush of %q: %w", fileSet, err)
	}
	return v, d.maybeSnapshot()
}

// Install adopts a complete image (fleet handoff) and journals it as a
// flush, so replay after a crash re-installs exactly the adopted state —
// KindFlush replay creates the file set if absent, so no separate create
// entry is needed.
func (d *Durable) Install(fileSet string, im Image) error {
	if err := d.Store.Install(fileSet, im); err != nil {
		return err
	}
	// Journal what the store now holds (Install may have defaulted the
	// version), not the caller's argument.
	installed, err := d.Store.Load(fileSet)
	if err != nil {
		return err
	}
	if err := d.wal.LogFlush(fileSet, installed); err != nil {
		return fmt.Errorf("sharedisk: journal install of %q: %w", fileSet, err)
	}
	return d.maybeSnapshot()
}

// DropFileSet removes the file set and journals the drop, so a restarted
// donor cannot resurrect a copy it already donated. The WAL must implement
// DropWAL.
func (d *Durable) DropFileSet(fileSet string) error {
	dw, ok := d.wal.(DropWAL)
	if !ok {
		return fmt.Errorf("sharedisk: WAL %T cannot journal drops", d.wal)
	}
	if err := d.Store.DropFileSet(fileSet); err != nil {
		return err
	}
	if err := dw.LogDrop(fileSet); err != nil {
		return fmt.Errorf("sharedisk: journal drop of %q: %w", fileSet, err)
	}
	return d.maybeSnapshot()
}

// maybeSnapshot counts journaled entries and cuts a snapshot (compacting
// the log) every snapshotEvery of them.
func (d *Durable) maybeSnapshot() error {
	if d.snapshotEvery <= 0 {
		return nil
	}
	d.mu.Lock()
	d.sinceSnapshot++
	due := d.sinceSnapshot >= d.snapshotEvery
	if due {
		d.sinceSnapshot = 0
	}
	d.mu.Unlock()
	if !due {
		return nil
	}
	if err := d.wal.Snapshot(d.Store.Images); err != nil {
		return fmt.Errorf("sharedisk: snapshot: %w", err)
	}
	return nil
}

// Snapshot forces a snapshot + compaction now (shutdown path).
func (d *Durable) Snapshot() error {
	return d.wal.Snapshot(d.Store.Images)
}

// Close closes the underlying journal.
func (d *Durable) Close() error { return d.wal.Close() }
