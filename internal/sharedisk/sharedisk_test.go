package sharedisk

import (
	"sync"
	"testing"
	"time"
)

func TestCreateAndLoad(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs1"); err != nil {
		t.Fatal(err)
	}
	im, err := s.Load("fs1")
	if err != nil {
		t.Fatal(err)
	}
	if im.Version != 1 || len(im.Records) != 0 {
		t.Fatalf("fresh image %+v", im)
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs1"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateFileSet("fs1"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestLoadUnknown(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Load("nope"); err == nil {
		t.Fatal("load of unknown file set succeeded")
	}
	if _, err := s.Version("nope"); err == nil {
		t.Fatal("version of unknown file set succeeded")
	}
	if _, err := s.Flush("nope", Image{}); err == nil {
		t.Fatal("flush of unknown file set succeeded")
	}
}

func TestFlushRoundTrip(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs1"); err != nil {
		t.Fatal(err)
	}
	im, _ := s.Load("fs1")
	im.Records["/a"] = Record{Size: 42, Mode: 0644, ModTime: time.Unix(1000, 0), Owner: "alice"}
	v2, err := s.Flush("fs1", im)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("version after flush %d, want 2", v2)
	}
	back, _ := s.Load("fs1")
	if back.Version != 2 || back.Records["/a"].Size != 42 {
		t.Fatalf("reloaded image %+v", back)
	}
}

func TestStaleFlushRejected(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs1"); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Load("fs1")
	b, _ := s.Load("fs1")
	a.Records["/x"] = Record{Size: 1}
	if _, err := s.Flush("fs1", a); err != nil {
		t.Fatal(err)
	}
	b.Records["/y"] = Record{Size: 2}
	if _, err := s.Flush("fs1", b); err == nil {
		t.Fatal("stale flush succeeded — lost update")
	}
	// The first flush's contents survive.
	im, _ := s.Load("fs1")
	if _, ok := im.Records["/x"]; !ok {
		t.Fatal("first flush lost")
	}
	if _, ok := im.Records["/y"]; ok {
		t.Fatal("stale flush partially applied")
	}
}

// TestStaleWritersRaceNeverRegress: two writers holding the SAME stale
// version race their flushes against a store that has already moved on.
// Both must get a version error, in either interleaving, and the store must
// never regress to an older image — the invariant the ownership protocol's
// error reporting rests on.
func TestStaleWritersRaceNeverRegress(t *testing.T) {
	for round := 0; round < 50; round++ {
		s := NewStore(0)
		if err := s.CreateFileSet("fs"); err != nil {
			t.Fatal(err)
		}
		// Two writers each load version 1.
		w1, _ := s.Load("fs")
		w2, _ := s.Load("fs")
		// A third party flushes first: disk moves to version 2.
		cur, _ := s.Load("fs")
		cur.Records["/current"] = Record{Size: 777}
		if _, err := s.Flush("fs", cur); err != nil {
			t.Fatal(err)
		}
		w1.Records["/stale1"] = Record{Size: 1}
		w2.Records["/stale2"] = Record{Size: 2}
		start := make(chan struct{})
		errs := make(chan error, 2)
		var wg sync.WaitGroup
		for _, im := range []Image{w1, w2} {
			wg.Add(1)
			go func(im Image) {
				defer wg.Done()
				<-start
				_, err := s.Flush("fs", im)
				errs <- err
			}(im)
		}
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			if err == nil {
				t.Fatal("a stale writer's flush succeeded — lost update")
			}
		}
		v, err := s.Version("fs")
		if err != nil {
			t.Fatal(err)
		}
		if v != 2 {
			t.Fatalf("store regressed or advanced wrongly: version %d, want 2", v)
		}
		im, _ := s.Load("fs")
		if im.Records["/current"].Size != 777 {
			t.Fatal("winning image lost")
		}
		if len(im.Records) != 1 {
			t.Fatalf("stale records leaked in: %+v", im.Records)
		}
	}
}

func TestImagesAreCopies(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs1"); err != nil {
		t.Fatal(err)
	}
	im, _ := s.Load("fs1")
	im.Records["/mutate"] = Record{Size: 9}
	fresh, _ := s.Load("fs1")
	if _, leaked := fresh.Records["/mutate"]; leaked {
		t.Fatal("mutating a loaded image affected the store")
	}
}

func TestFileSetsListing(t *testing.T) {
	s := NewStore(0)
	for _, fs := range []string{"a", "b", "c"} {
		if err := s.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.FileSets(); len(got) != 3 {
		t.Fatalf("FileSets = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("fs"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				im, err := s.Load("fs")
				if err != nil {
					t.Error(err)
					return
				}
				im.Records["/k"] = Record{Size: int64(j)}
				// Flushes race; stale ones must fail cleanly, not corrupt.
				_, _ = s.Flush("fs", im)
			}
		}()
	}
	wg.Wait()
	v, err := s.Version("fs")
	if err != nil {
		t.Fatal(err)
	}
	if v < 2 {
		t.Fatalf("no flush ever succeeded (version %d)", v)
	}
}

func TestLatencyApplied(t *testing.T) {
	s := NewStore(20 * time.Millisecond)
	if err := s.CreateFileSet("fs"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Load("fs"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("load returned in %v, want >= ~20ms disk latency", el)
	}
}
