package sharedisk

import (
	"strings"
	"testing"
)

func TestInstallCreatesAndReplaces(t *testing.T) {
	s := NewStore(0)
	im := Image{Version: 4, Records: map[string]Record{"/a": {Size: 1}}}
	if err := s.Install("vol00", im); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("vol00")
	if err != nil || got.Version != 4 || got.Records["/a"].Size != 1 {
		t.Fatalf("Load after install = %+v, %v", got, err)
	}
	// Same-version reinstall (idempotent retry) and upgrades are fine.
	if err := s.Install("vol00", im); err != nil {
		t.Fatal(err)
	}
	im.Version = 9
	if err := s.Install("vol00", im); err != nil {
		t.Fatal(err)
	}
	// Downgrades are not.
	im.Version = 2
	if err := s.Install("vol00", im); err == nil || !strings.Contains(err.Error(), "downgrade") {
		t.Fatalf("downgrade install err = %v", err)
	}
	// Zero-value images get the same defaults CreateFileSet would.
	if err := s.Install("vol01", Image{}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("vol01")
	if err != nil || got.Version != 1 || got.Records == nil {
		t.Fatalf("zero-value install = %+v, %v", got, err)
	}
}

func TestDropFileSet(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("vol00"); err == nil {
		t.Fatal("dropped file set still loads")
	}
	if err := s.DropFileSet("vol00"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

// fakeWAL records calls and implements only the base WAL; fakeDropWAL adds
// LogDrop, so the Durable paths with and without a DropWAL are both
// testable.
type fakeWAL struct {
	creates, flushes, drops []string
}

func (w *fakeWAL) LogCreateFileSet(fs string) error { w.creates = append(w.creates, fs); return nil }
func (w *fakeWAL) LogFlush(fs string, im Image) error {
	w.flushes = append(w.flushes, fs)
	return nil
}
func (w *fakeWAL) Snapshot(func() map[string]Image) error { return nil }
func (w *fakeWAL) Close() error                           { return nil }

type fakeDropWAL struct{ fakeWAL }

func (w *fakeDropWAL) LogDrop(fs string) error { w.drops = append(w.drops, fs); return nil }

func TestDurableInstallJournalsFlush(t *testing.T) {
	wal := &fakeDropWAL{}
	d := NewDurable(NewStore(0), wal, 0)
	if err := d.Install("vol00", Image{Version: 3, Records: map[string]Record{"/x": {}}}); err != nil {
		t.Fatal(err)
	}
	if len(wal.flushes) != 1 || wal.flushes[0] != "vol00" {
		t.Fatalf("install journaled %v, want one vol00 flush", wal.flushes)
	}
	if err := d.DropFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if len(wal.drops) != 1 || wal.drops[0] != "vol00" {
		t.Fatalf("drop journaled %v", wal.drops)
	}
}

func TestDurableDropRequiresDropWAL(t *testing.T) {
	d := NewDurable(NewStore(0), &fakeWAL{}, 0)
	if err := d.Store.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := d.DropFileSet("vol00"); err == nil {
		t.Fatal("drop without DropWAL succeeded")
	}
	// The store copy must be untouched when the WAL cannot fence the drop.
	if _, err := d.Load("vol00"); err != nil {
		t.Fatalf("file set lost despite failed drop: %v", err)
	}
}

// Interface conformance the fleet layer relies on.
var (
	_ Installer = (*Store)(nil)
	_ Installer = (*Durable)(nil)
	_ Dropper   = (*Store)(nil)
	_ Dropper   = (*Durable)(nil)
)
