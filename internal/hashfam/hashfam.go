// Package hashfam implements the "agreed upon family of hash functions" the
// ANU algorithm uses to place file sets into the unit interval (paper §4).
//
// A Family maps (name, round) pairs to points in [0, 1). Round 0 is the
// first placement probe; when a point lands in an unmapped region of the
// interval the caller re-hashes with round 1, 2, … until the point lands in
// a mapped region. After MaxRounds unsuccessful probes the caller falls back
// to Fallback, which hashes the name directly onto one of n servers; at half
// occupancy this path triggers with probability 2^-MaxRounds and so
// introduces no measurable skew (paper §4).
//
// All members of the family are deterministic: every node that shares the
// family seed computes identical placements, which is what lets ANU locate a
// file set with no I/O and no shared fileset→server table (paper §5).
package hashfam

// Family is an indexed family of hash functions onto the unit interval.
// The zero value is not useful; construct with New. Family is immutable
// after construction and safe for concurrent use.
type Family struct {
	seed uint64
	// maxRounds bounds the number of re-hash probes before Fallback.
	maxRounds int
}

// DefaultMaxRounds bounds re-hash probes; the fallback path then occurs with
// probability 2^-20 per file set at half occupancy.
const DefaultMaxRounds = 20

// New constructs a hash family from a shared seed. maxRounds <= 0 selects
// DefaultMaxRounds.
func New(seed uint64, maxRounds int) *Family {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	return &Family{seed: seed, maxRounds: maxRounds}
}

// MaxRounds reports the number of probe rounds before the fallback applies.
func (f *Family) MaxRounds() int { return f.maxRounds }

// Seed reports the family seed (all cluster nodes must agree on it).
func (f *Family) Seed() uint64 { return f.seed }

// fnvOffset64 and fnvPrime64 are the FNV-1a constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// raw computes the 64-bit hash of name under round r of the family.
// FNV-1a over the bytes gives good avalanche on short names; the splitmix
// finalizer mixes in the seed and round so family members are independent.
func (f *Family) raw(name string, round int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	// Finalize: fold in seed and round through two splitmix64 steps.
	x := h ^ f.seed
	x += 0x9e3779b97f4a7c15 * (uint64(round) + 1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Point maps (name, round) to the unit interval [0, 1).
func (f *Family) Point(name string, round int) float64 {
	return float64(f.raw(name, round)>>11) / (1 << 53)
}

// Point64 maps (name, round) to a 64-bit fixed-point offset in the unit
// interval: the interval [0,1) scaled to [0, 2^64). The interval package
// works in these units so that region arithmetic is exact.
func (f *Family) Point64(name string, round int) uint64 {
	return f.raw(name, round)
}

// Fallback deterministically maps a name onto one of n server slots
// (0-based) when MaxRounds probes all landed in unmapped space.
func (f *Family) Fallback(name string, n int) int {
	if n <= 0 {
		panic("hashfam: Fallback with non-positive n")
	}
	// A round index past maxRounds keeps the fallback independent of the
	// probe sequence.
	h := f.raw(name, f.maxRounds+1)
	// Multiply-shift to [0, n) without modulo bias.
	hi, _ := mul128(h, uint64(n))
	return int(hi)
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	hi = aHi*bHi + w2 + (t >> 32)
	lo |= (t & mask) << 32
	return hi, lo
}
