package hashfam

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := New(99, 0)
	b := New(99, 0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("fileset-%d", i)
			if a.Point64(name, round) != b.Point64(name, round) {
				t.Fatalf("same seed disagrees for %q round %d", name, round)
			}
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("fs%d", i)
		if a.Point64(name, 0) == b.Point64(name, 0) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestRoundsIndependent(t *testing.T) {
	f := New(7, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("fs%d", i)
		if f.Point64(name, 0) == f.Point64(name, 1) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between rounds 0 and 1", same)
	}
}

func TestPointRange(t *testing.T) {
	f := New(3, 0)
	for i := 0; i < 10000; i++ {
		p := f.Point(fmt.Sprintf("n%d", i), i%4)
		if p < 0 || p >= 1 {
			t.Fatalf("Point out of [0,1): %v", p)
		}
	}
}

func TestPointUniformity(t *testing.T) {
	f := New(5, 0)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		p := f.Point(fmt.Sprintf("fileset/%d", i), 0)
		counts[int(p*buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestPoint64MatchesPoint(t *testing.T) {
	f := New(11, 0)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("x%d", i)
		p := f.Point(name, 2)
		p64 := float64(f.Point64(name, 2)>>11) / (1 << 53)
		if p != p64 {
			t.Fatalf("Point and Point64 disagree for %q: %v vs %v", name, p, p64)
		}
	}
}

func TestFallbackRange(t *testing.T) {
	f := New(13, 0)
	for _, n := range []int{1, 2, 5, 97} {
		for i := 0; i < 2000; i++ {
			v := f.Fallback(fmt.Sprintf("f%d", i), n)
			if v < 0 || v >= n {
				t.Fatalf("Fallback(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestFallbackBalanced(t *testing.T) {
	f := New(17, 0)
	const n, draws = 5, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[f.Fallback(fmt.Sprintf("fs-%d", i), n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("fallback slot %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFallbackPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fallback(n=0) did not panic")
		}
	}()
	New(1, 0).Fallback("x", 0)
}

func TestDefaultMaxRounds(t *testing.T) {
	if got := New(1, 0).MaxRounds(); got != DefaultMaxRounds {
		t.Fatalf("MaxRounds = %d, want %d", got, DefaultMaxRounds)
	}
	if got := New(1, 7).MaxRounds(); got != 7 {
		t.Fatalf("MaxRounds = %d, want 7", got)
	}
	if got := New(1, -3).MaxRounds(); got != DefaultMaxRounds {
		t.Fatalf("MaxRounds(-3) = %d, want default", got)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(12345, 0).Seed(); got != 12345 {
		t.Fatalf("Seed = %d, want 12345", got)
	}
}

// Property: at half occupancy (mapped region = any half of the interval),
// the expected number of probes to land inside is ~2 and the chance that all
// MaxRounds probes miss is ~2^-MaxRounds. We verify the probe-count mean on
// a fixed half-interval.
func TestProbeCountAtHalfOccupancy(t *testing.T) {
	f := New(23, 0)
	const names = 50000
	totalProbes := 0
	fellBack := 0
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("probe-test-%d", i)
		placed := false
		for r := 0; r < f.MaxRounds(); r++ {
			totalProbes++
			if f.Point(name, r) < 0.5 { // mapped half
				placed = true
				break
			}
		}
		if !placed {
			fellBack++
		}
	}
	mean := float64(totalProbes) / names
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("mean probes at half occupancy %v, want ~2", mean)
	}
	// P(all 20 probes miss) = 2^-20; with 50k names expect ~0.05 fallbacks.
	if fellBack > 3 {
		t.Fatalf("%d names fell back, want ~0", fellBack)
	}
}

func TestAvalancheOnSimilarNames(t *testing.T) {
	// Property: names differing in one trailing character land far apart on
	// average — no clustering of related file-set names.
	f := New(29, 0)
	check := func(i uint16) bool {
		a := f.Point(fmt.Sprintf("fs-%d-a", i), 0)
		b := f.Point(fmt.Sprintf("fs-%d-b", i), 0)
		return a != b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyName(t *testing.T) {
	f := New(31, 0)
	p := f.Point("", 0)
	if p < 0 || p >= 1 {
		t.Fatalf("empty-name point %v out of range", p)
	}
	if f.Point("", 0) == f.Point("", 1) {
		t.Fatal("rounds collide for empty name")
	}
}

func BenchmarkPoint(b *testing.B) {
	f := New(1, 0)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Point("filesets/projects/alpha", i&3)
	}
	_ = sink
}

func BenchmarkFallback(b *testing.B) {
	f := New(1, 0)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += f.Fallback("filesets/projects/alpha", 16)
	}
	_ = sink
}
