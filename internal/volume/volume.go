// Package volume is the multi-tenant registry: named volumes (tenants)
// that own private file-set namespaces, quotas (file-set count, op rate),
// a weighted-fair-queueing weight, and a placement policy. The paper's
// ANU mapper balances one flat namespace of 21 file sets; a production
// shared-disk system serves tenants, so every file-set ID is
// volume-qualified ("vol/fileset", see internal/namespace) and this
// registry is the authority's source of truth for what each tenant may do.
package volume

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"anufs/internal/namespace"
)

// Placement policies. Spread hashes a volume's file sets across the whole
// fleet (the paper's interval placement — right for hot tenants that need
// aggregate throughput); Pack co-locates a volume's file sets on as few
// daemons as possible (right for cold tenants, and it keeps their working
// set in one journal).
const (
	PolicySpread = "spread"
	PolicyPack   = "pack"
)

// ValidPolicy reports whether p names a placement policy.
func ValidPolicy(p string) bool { return p == PolicySpread || p == PolicyPack }

// Quota bounds one tenant. Zero values mean unlimited.
type Quota struct {
	// MaxFileSets caps how many file sets the volume may own.
	MaxFileSets int `json:"max_filesets,omitempty"`
	// OpRate caps the volume's sustained operations per second at each
	// owning daemon (enforced by a token bucket in the fleet gate).
	OpRate float64 `json:"op_rate,omitempty"`
}

// Info is one volume's durable configuration.
type Info struct {
	Name   string  `json:"name"`
	Quota  Quota   `json:"quota"`
	Policy string  `json:"policy"`
	Weight float64 `json:"weight"` // weighted-fair-queueing share; >= 0, default 1
}

// Default is the implicit volume every unqualified file-set ID belongs
// to: unlimited quota, spread placement, unit weight. It always exists.
func Default() Info {
	return Info{Name: namespace.DefaultVolume, Policy: PolicySpread, Weight: 1}
}

// Registry is the volume table. The authority owns the only mutable
// instance; members and standbys hold read-only installed copies. Safe
// for concurrent use.
type Registry struct {
	mu      sync.Mutex
	version uint64
	vols    map[string]Info
}

// NewRegistry creates a registry holding only the default volume, at
// version 1 (versions are monotone and survive re-encoding; version 0 is
// "never persisted").
func NewRegistry() *Registry {
	return &Registry{version: 1, vols: map[string]Info{namespace.DefaultVolume: Default()}}
}

// Version returns the registry's monotone version.
func (r *Registry) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Get returns a volume's config. Unknown volumes return ok=false.
func (r *Registry) Get(name string) (Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vols[name]
	return v, ok
}

// List returns every volume sorted by name, plus the registry version.
func (r *Registry) List() ([]Info, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sortedLocked(), r.version
}

func (r *Registry) sortedLocked() []Info {
	out := make([]Info, 0, len(r.vols))
	for _, v := range r.vols {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Create adds a volume with default config (unlimited quota, spread,
// unit weight) and returns the new registry version.
func (r *Registry) Create(name string) (uint64, error) {
	if err := namespace.ValidVolumeName(name); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vols[name]; ok {
		return 0, fmt.Errorf("volume: %q already exists", name)
	}
	r.vols[name] = Info{Name: name, Policy: PolicySpread, Weight: 1}
	r.version++
	return r.version, nil
}

// Delete removes a volume. The default volume is permanent, and inUse
// (when non-nil) lets the caller refuse deleting a volume that still owns
// file sets — quota state must not silently vanish under live data.
func (r *Registry) Delete(name string, inUse func(vol string) int) (uint64, error) {
	if name == namespace.DefaultVolume {
		return 0, fmt.Errorf("volume: the default volume cannot be deleted")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vols[name]; !ok {
		return 0, fmt.Errorf("volume: %q does not exist", name)
	}
	if inUse != nil {
		if n := inUse(name); n > 0 {
			return 0, fmt.Errorf("volume: %q still owns %d file sets", name, n)
		}
	}
	delete(r.vols, name)
	r.version++
	return r.version, nil
}

// SetQuota updates a volume's quota and WFQ weight.
func (r *Registry) SetQuota(name string, q Quota, weight float64) (uint64, error) {
	if q.MaxFileSets < 0 || q.OpRate < 0 || weight < 0 {
		return 0, fmt.Errorf("volume: negative quota or weight")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vols[name]
	if !ok {
		return 0, fmt.Errorf("volume: %q does not exist", name)
	}
	v.Quota = q
	if weight > 0 {
		v.Weight = weight
	}
	r.vols[name] = v
	r.version++
	return r.version, nil
}

// SetPolicy updates a volume's placement policy.
func (r *Registry) SetPolicy(name, policy string) (uint64, error) {
	if !ValidPolicy(policy) {
		return 0, fmt.Errorf("volume: unknown policy %q (want %s or %s)", policy, PolicySpread, PolicyPack)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vols[name]
	if !ok {
		return 0, fmt.Errorf("volume: %q does not exist", name)
	}
	v.Policy = policy
	r.vols[name] = v
	r.version++
	return r.version, nil
}

// Install replaces the registry contents with a newer snapshot (adopted
// from the authority, or replayed from the journal on promotion). Stale
// versions are ignored, so replays and reordered pushes cannot roll
// quotas back. Returns whether the snapshot was applied.
func (r *Registry) Install(vols []Info, version uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if version <= r.version {
		// A fresh registry starts at version 1 holding only the default
		// volume, and any other version-1 snapshot is that same content —
		// so equal versions never carry news.
		return false
	}
	m := make(map[string]Info, len(vols)+1)
	for _, v := range vols {
		m[v.Name] = v
	}
	if _, ok := m[namespace.DefaultVolume]; !ok {
		m[namespace.DefaultVolume] = Default()
	}
	r.vols = m
	r.version = version
	return true
}

// Encode serializes a volume list for the wire or the durable image.
func Encode(vols []Info, version uint64) ([]byte, error) {
	return json.Marshal(struct {
		Version uint64 `json:"version"`
		Volumes []Info `json:"volumes"`
	}{version, vols})
}

// Decode parses what Encode produced.
func Decode(data []byte) ([]Info, uint64, error) {
	var payload struct {
		Version uint64 `json:"version"`
		Volumes []Info `json:"volumes"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, 0, fmt.Errorf("volume: decode: %w", err)
	}
	for _, v := range payload.Volumes {
		if v.Name == "" {
			return nil, 0, fmt.Errorf("volume: decode: volume with empty name")
		}
		if v.Weight < 0 || v.Quota.MaxFileSets < 0 || v.Quota.OpRate < 0 {
			return nil, 0, fmt.Errorf("volume: decode: %q has negative quota or weight", v.Name)
		}
	}
	return payload.Volumes, payload.Version, nil
}
