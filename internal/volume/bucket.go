package volume

import (
	"sync"
	"time"
)

// Bucket is a token bucket enforcing a volume's op-rate quota on one
// daemon. Tokens accrue at rate per second up to one second's burst (at
// least 1), so a tenant can spend a short burst but sustains only its
// configured rate. The zero rate is rejected by the constructor — callers
// simply keep no bucket for unlimited volumes.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket builds a bucket admitting rate ops per second; nil when
// rate <= 0 (unlimited).
func NewBucket(rate float64) *Bucket {
	if !(rate > 0) {
		return nil
	}
	burst := rate
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// Rate reports the configured rate (for change detection on quota
// updates).
func (b *Bucket) Rate() float64 { return b.rate }

// Allow consumes one token if available.
func (b *Bucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
