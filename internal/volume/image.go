package volume

import (
	"fmt"
	"time"

	"anufs/internal/sharedisk"
)

// VolumesFileSet is the pseudo file set the authority persists the volume
// registry under — the same trick as fleet's "__fleet/map": writing it
// through the daemon's Durable disk makes quotas and weights journaled,
// snapshot-surviving records that the log shipper carries to the standby
// for free, so a promoted authority still knows every tenant's limits.
// The "/" keeps it out of the flat client namespace and the "__" volume
// prefix is reserved, so no tenant can collide with it.
const VolumesFileSet = "__volumes/registry"

// volumesRecordKey is the single record inside the image; the encoded
// registry rides in the record's Owner field, like the cluster map.
const volumesRecordKey = "volumes"

// EncodeImage wraps a registry snapshot in a shared-disk image whose
// Version is the registry version — Install's downgrade check then
// enforces monotonicity, and a standby replaying shipped segments always
// ends at the newest registry it received.
func EncodeImage(vols []Info, version uint64) (sharedisk.Image, error) {
	encoded, err := Encode(vols, version)
	if err != nil {
		return sharedisk.Image{}, err
	}
	return sharedisk.Image{
		Version: version,
		Records: map[string]sharedisk.Record{
			volumesRecordKey: {
				Size:    int64(len(encoded)),
				ModTime: time.Now(),
				Owner:   string(encoded),
			},
		},
	}, nil
}

// DecodeImage recovers a registry snapshot from a persisted image — the
// promoted standby's route back to every tenant's quotas.
func DecodeImage(im sharedisk.Image) ([]Info, uint64, error) {
	rec, ok := im.Records[volumesRecordKey]
	if !ok {
		return nil, 0, fmt.Errorf("volume: image %q carries no %s record", VolumesFileSet, volumesRecordKey)
	}
	return Decode([]byte(rec.Owner))
}
