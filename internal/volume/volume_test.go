package volume

import (
	"testing"

	"anufs/internal/namespace"
	"anufs/internal/sharedisk"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get(namespace.DefaultVolume); !ok {
		t.Fatal("default volume missing from fresh registry")
	}
	v0 := r.Version()
	ver, err := r.Create("tenantA")
	if err != nil || ver <= v0 {
		t.Fatalf("Create: ver=%d err=%v", ver, err)
	}
	if _, err := r.Create("tenantA"); err == nil {
		t.Fatal("duplicate Create accepted")
	}
	if _, err := r.Create("bad/name"); err == nil {
		t.Fatal("separator in volume name accepted")
	}
	if _, err := r.Create("__sys"); err == nil {
		t.Fatal("reserved volume name accepted")
	}
	if _, err := r.SetQuota("tenantA", Quota{MaxFileSets: 2, OpRate: 100}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SetPolicy("tenantA", PolicyPack); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SetPolicy("tenantA", "sideways"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	got, ok := r.Get("tenantA")
	if !ok || got.Quota.MaxFileSets != 2 || got.Quota.OpRate != 100 || got.Weight != 4 || got.Policy != PolicyPack {
		t.Fatalf("Get(tenantA) = %+v", got)
	}
	if _, err := r.Delete("tenantA", func(string) int { return 3 }); err == nil {
		t.Fatal("Delete of in-use volume accepted")
	}
	if _, err := r.Delete("tenantA", func(string) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Delete(namespace.DefaultVolume, nil); err == nil {
		t.Fatal("Delete of default volume accepted")
	}
}

func TestRegistryInstallMonotone(t *testing.T) {
	r := NewRegistry()
	newer := []Info{{Name: "t", Weight: 2, Policy: PolicySpread, Quota: Quota{MaxFileSets: 1}}}
	if !r.Install(newer, 5) {
		t.Fatal("newer snapshot rejected")
	}
	if got, ok := r.Get("t"); !ok || got.Weight != 2 {
		t.Fatalf("installed volume missing: %+v ok=%v", got, ok)
	}
	if _, ok := r.Get(namespace.DefaultVolume); !ok {
		t.Fatal("Install dropped the default volume")
	}
	if r.Install([]Info{{Name: "stale"}}, 4) {
		t.Fatal("stale snapshot applied")
	}
	if r.Install([]Info{{Name: "same"}}, 5) {
		t.Fatal("equal-version snapshot applied")
	}
	if r.Version() != 5 {
		t.Fatalf("version = %d, want 5", r.Version())
	}
}

func TestImageRoundTrip(t *testing.T) {
	vols := []Info{
		{Name: "default", Policy: PolicySpread, Weight: 1},
		{Name: "tenantA", Policy: PolicyPack, Weight: 3, Quota: Quota{MaxFileSets: 7, OpRate: 50}},
	}
	im, err := EncodeImage(vols, 9)
	if err != nil {
		t.Fatal(err)
	}
	if im.Version != 9 {
		t.Fatalf("image version = %d", im.Version)
	}
	got, ver, err := DecodeImage(im)
	if err != nil || ver != 9 || len(got) != 2 {
		t.Fatalf("DecodeImage: %v %d %v", got, ver, err)
	}
	if got[1].Quota.MaxFileSets != 7 || got[1].Policy != PolicyPack {
		t.Fatalf("round trip lost config: %+v", got[1])
	}
}

// TestImageThroughDurableDisk proves the registry image rides the same
// journaled Install path as file-set metadata: install, reload, decode.
func TestImageThroughDurableDisk(t *testing.T) {
	st := sharedisk.NewStore(0)
	im, err := EncodeImage([]Info{{Name: "t", Weight: 1, Policy: PolicySpread}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Install(VolumesFileSet, im); err != nil {
		t.Fatal(err)
	}
	// A stale re-install (journal replay of an older segment) must not
	// roll the registry back.
	old, _ := EncodeImage(nil, 2)
	if err := st.Install(VolumesFileSet, old); err == nil {
		t.Fatal("stale registry image installed over newer one")
	}
	loaded, err := st.Load(VolumesFileSet)
	if err != nil {
		t.Fatal(err)
	}
	vols, ver, err := DecodeImage(loaded)
	if err != nil || ver != 3 || len(vols) != 1 || vols[0].Name != "t" {
		t.Fatalf("reload: %+v %d %v", vols, ver, err)
	}
}

func TestEncodeDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, _, err := Decode([]byte(`{"version":1,"volumes":[{"name":""}]}`)); err == nil {
		t.Fatal("empty volume name accepted")
	}
	if _, _, err := Decode([]byte(`{"version":1,"volumes":[{"name":"a","weight":-1}]}`)); err == nil {
		t.Fatal("negative weight accepted")
	}
}
