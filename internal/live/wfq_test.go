package live

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

func mkTask(fileSet string) task {
	return task{enq: time.Now(), reply: make(chan taskResult, 1), fileSet: fileSet}
}

// TestTaskQueueWeightedShare: with backlogs on two volumes, pops divide
// by weight — volume A at weight 3 gets ~3x volume B's service.
func TestTaskQueueWeightedShare(t *testing.T) {
	q := newTaskQueue(true, 64)
	q.setWeights(map[string]float64{"a": 3, "b": 1})
	for i := 0; i < 60; i++ {
		if err := q.push(mkTask("a/fs")); err != nil {
			t.Fatal(err)
		}
		if err := q.push(mkTask("b/fs")); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		tk, ok := q.pop()
		if !ok {
			t.Fatal("pop returned closed")
		}
		vol := tk.fileSet[:1]
		counts[vol]++
	}
	// Stride scheduling at 3:1 over 40 pops: 30 a's, 10 b's (±1 for the
	// arbitrary tie-break at start).
	if counts["a"] < 28 || counts["a"] > 32 {
		t.Fatalf("weight-3 volume got %d of 40 pops, want ~30 (counts %v)", counts["a"], counts)
	}
}

// TestTaskQueueFIFOWithinVolume: a volume's own tasks are served in
// arrival order regardless of interleaved tenants.
func TestTaskQueueFIFOWithinVolume(t *testing.T) {
	q := newTaskQueue(true, 64)
	for i := 0; i < 10; i++ {
		tk := mkTask("a/fs")
		tk.op = fmt.Sprintf("%d", i)
		if err := q.push(tk); err != nil {
			t.Fatal(err)
		}
		if err := q.push(mkTask("b/fs")); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	for {
		tk, ok := q.pop()
		if !ok || next == 10 {
			break
		}
		if tk.fileSet != "a/fs" {
			continue
		}
		if tk.op != fmt.Sprintf("%d", next) {
			t.Fatalf("volume a served %q, want %d", tk.op, next)
		}
		next++
	}
	if next != 10 {
		t.Fatalf("served %d of volume a's 10 tasks", next)
	}
}

// TestTaskQueuePerVolumeBackpressure: a full tenant queue blocks only
// that tenant's pushers; other tenants submit unimpeded, and close wakes
// the blocked pusher with ErrStopped.
func TestTaskQueuePerVolumeBackpressure(t *testing.T) {
	q := newTaskQueue(true, 4)
	for i := 0; i < 4; i++ {
		if err := q.push(mkTask("hot/fs")); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- q.push(mkTask("hot/fs")) }()
	select {
	case err := <-blocked:
		t.Fatalf("push into a full tenant queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	coldDone := make(chan error, 1)
	go func() { coldDone <- q.push(mkTask("cold/fs")) }()
	select {
	case err := <-coldDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("cold tenant's push blocked behind the hot tenant's full queue")
	}
	q.close()
	if err := <-blocked; err != ErrStopped {
		t.Fatalf("blocked pusher got %v after close, want ErrStopped", err)
	}
}

// TestTaskQueueGlobalFIFOMode: fair off = the legacy single queue — one
// tenant's backlog blocks everyone's pushers once the global bound fills.
func TestTaskQueueGlobalFIFOMode(t *testing.T) {
	q := newTaskQueue(false, 4)
	for i := 0; i < 4; i++ {
		if err := q.push(mkTask("hot/fs")); err != nil {
			t.Fatal(err)
		}
	}
	coldBlocked := make(chan error, 1)
	go func() { coldBlocked <- q.push(mkTask("cold/fs")) }()
	select {
	case err := <-coldBlocked:
		t.Fatalf("FIFO-mode push did not share the global bound: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if tk, ok := q.pop(); !ok || tk.fileSet != "hot/fs" {
		t.Fatalf("pop = (%q, %v)", tk.fileSet, ok)
	}
	if err := <-coldBlocked; err != nil {
		t.Fatal(err)
	}
	q.close()
}

// TestTaskQueueDrainOnClose: close rejects new pushes but already-queued
// tasks still pop.
func TestTaskQueueDrainOnClose(t *testing.T) {
	q := newTaskQueue(true, 8)
	for i := 0; i < 3; i++ {
		if err := q.push(mkTask("a/fs")); err != nil {
			t.Fatal(err)
		}
	}
	q.close()
	if err := q.push(mkTask("a/fs")); err != ErrStopped {
		t.Fatalf("push after close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d returned closed with tasks still queued", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a task from a drained closed queue")
	}
}

// twoTenantCluster boots a single-server cluster holding one file set per
// tenant, with fair queueing switchable.
func twoTenantCluster(t testing.TB, fair bool, opCost time.Duration, depth int) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Window = time.Hour // no background tuning mid-measurement
	cfg.OpCost = opCost
	cfg.QueueDepth = depth
	cfg.FairQueue = fair
	c, err := NewCluster(cfg, sharedisk.NewStore(0), map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	for _, fs := range []string{"hot/a", "cold/a"} {
		if err := c.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// coldP99 issues n sequential cold-tenant ops and returns their p99.
// phase keeps paths distinct across calls on the same cluster.
func coldP99(t testing.TB, c *Cluster, phase string, n int) time.Duration {
	t.Helper()
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := c.Create("cold/a", fmt.Sprintf("/%s-%d", phase, i), sharedisk.Record{Size: 1}); err != nil {
			t.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (99*len(lats) + 99) / 100
	if idx > 0 {
		idx--
	}
	return lats[idx]
}

// saturateHot floods the hot tenant from workers goroutines until the
// returned stop function is called, and blocks until the hot tenant's
// queue is actually full — the measurement must start under saturation.
func saturateHot(t testing.TB, c *Cluster, workers, depth int) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				_ = c.Create("hot/a", fmt.Sprintf("/w%d-%d", w, i), sharedisk.Record{Size: 1})
			}
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		srv := c.servers[0]
		c.mu.Unlock()
		key := "hot"
		if !srv.q.fair {
			key = ""
		}
		if srv.q.depthOf(key) >= depth {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot tenant never saturated its queue")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { close(done); wg.Wait() }
}

// TestTwoTenantIsolationWFQ is the acceptance scenario: tenant A
// saturates its owner queue while tenant B runs a light sequential load.
// With weighted fair queueing, B's p99 stays within 3x its solo baseline;
// with the legacy FIFO, B's p99 blows past that bound (unbounded
// starvation) — both halves are asserted, so the test fails if WFQ stops
// isolating OR if the FIFO baseline quietly stops starving (which would
// mean the comparison no longer demonstrates anything).
func TestTwoTenantIsolationWFQ(t *testing.T) {
	const (
		opCost = 2 * time.Millisecond
		depth  = 8
		// Each worker issues sequential ops, so saturating a depth-8 queue
		// needs comfortably more than 8 of them.
		workers = 24
	)
	// WFQ on: solo baseline, then contended.
	fair := twoTenantCluster(t, true, opCost, depth)
	soloFair := coldP99(t, fair, "solo", 60)
	stop := saturateHot(t, fair, workers, depth)
	contendedFair := coldP99(t, fair, "contended", 60)
	stop()
	t.Logf("fair: solo p99=%v contended p99=%v (bound 3x=%v)", soloFair, contendedFair, 3*soloFair)
	if contendedFair > 3*soloFair {
		t.Fatalf("WFQ failed to isolate: cold p99 %v > 3x solo %v", contendedFair, soloFair)
	}

	// WFQ off: same scenario starves the cold tenant.
	fifo := twoTenantCluster(t, false, opCost, depth)
	soloFifo := coldP99(t, fifo, "solo", 10)
	stop = saturateHot(t, fifo, workers, depth)
	contendedFifo := coldP99(t, fifo, "contended", 10)
	stop()
	t.Logf("fifo: solo p99=%v contended p99=%v", soloFifo, contendedFifo)
	if contendedFifo <= 3*soloFifo {
		t.Fatalf("FIFO baseline no longer starves (cold p99 %v <= 3x solo %v): the WFQ comparison is vacuous", contendedFifo, soloFifo)
	}
}
