package live

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anufs/internal/core"
	"anufs/internal/sharedisk"
)

// testConfig returns a config with the periodic tuner effectively disabled
// (long window) so tests drive TuneOnce deterministically, and zero op cost
// so they run fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cfg.RetryBudget = 2 * time.Second
	return cfg
}

func newTestCluster(t *testing.T, nFileSets int) (*Cluster, *sharedisk.Store) {
	t.Helper()
	disk := sharedisk.NewStore(0)
	for i := 0; i < nFileSets; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCluster(testConfig(), disk, map[int]float64{0: 1, 1: 3, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, disk
}

func TestBasicOps(t *testing.T) {
	c, _ := newTestCluster(t, 4)
	if err := c.Create("fs00", "/a", sharedisk.Record{Size: 5}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Stat("fs00", "/a")
	if err != nil || rec.Size != 5 {
		t.Fatalf("Stat = %+v, %v", rec, err)
	}
	if err := c.Update("fs00", "/a", sharedisk.Record{Size: 6}); err != nil {
		t.Fatal(err)
	}
	ls, err := c.List("fs00", "/")
	if err != nil || len(ls) != 1 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if err := c.Remove("fs00", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("fs00", "/a"); err == nil {
		t.Fatal("Stat after Remove succeeded")
	}
}

func TestOwnershipMatchesMapper(t *testing.T) {
	c, disk := newTestCluster(t, 8)
	for _, fs := range disk.FileSets() {
		owner := c.Owner(fs)
		found := false
		for _, st := range c.Stats() {
			for _, o := range st.Owned {
				if o == fs {
					if st.ID != owner {
						t.Fatalf("%s owned by server %d but mapped to %d", fs, st.ID, owner)
					}
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%s not owned by any server", fs)
		}
	}
}

func TestCreateFileSetRoutedToOwner(t *testing.T) {
	c, _ := newTestCluster(t, 0)
	if err := c.CreateFileSet("brand-new"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("brand-new", "/x", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFileSet("brand-new"); err == nil {
		t.Fatal("duplicate CreateFileSet succeeded")
	}
}

func TestTuningShiftsLoadOffSlowServer(t *testing.T) {
	disk := sharedisk.NewStore(0)
	for i := 0; i < 24; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig()
	cfg.OpCost = 2 * time.Millisecond
	coreCfg := core.Defaults()
	coreCfg.Threshold = 0.3
	cfg.Core = coreCfg
	// Server 0 is 20x slower.
	c, err := NewCluster(cfg, disk, map[int]float64{0: 1, 1: 10, 2: 10, 3: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	load := func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < 120; j++ {
					fs := fmt.Sprintf("fs%02d", (g*7+j)%24)
					_ = c.Create(fs, fmt.Sprintf("/g%d/f%d", g, j), sharedisk.Record{})
				}
			}(i)
		}
		wg.Wait()
	}
	before, _ := c.snapshot.Load().(*core.Mapper).ShareFrac(0)
	for round := 0; round < 6; round++ {
		load()
		c.TuneOnce()
	}
	after, _ := c.snapshot.Load().(*core.Mapper).ShareFrac(0)
	if after >= before {
		t.Fatalf("slow server share did not shrink: %.4f -> %.4f", before, after)
	}
	if c.Moves() == 0 {
		t.Fatal("tuning moved no file sets")
	}
	// No metadata was lost across the moves.
	for i := 0; i < 24; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		if _, err := c.List(fs, "/"); err != nil {
			t.Fatalf("List(%s) after tuning: %v", fs, err)
		}
	}
}

func TestKillPreservesFlushedState(t *testing.T) {
	c, _ := newTestCluster(t, 6)
	// Write a record into every file set, then checkpoint via move: first
	// find a file set owned by server 1 and flush it by killing 1 AFTER the
	// cluster has released... Simpler: write, then gracefully tune (no-op),
	// then kill and verify flushed-at-acquire state survives where it was
	// flushed. Since live servers flush only on Release, records on the
	// victim are lost — exactly the crash semantics — while other servers'
	// records survive.
	for i := 0; i < 6; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		if err := c.Create(fs, "/survivor", sharedisk.Record{Size: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	victim := 2
	victimSets := map[string]bool{}
	for _, st := range c.Stats() {
		if st.ID == victim {
			for _, fs := range st.Owned {
				victimSets[fs] = true
			}
		}
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(victim); err == nil {
		t.Fatal("double kill succeeded")
	}
	for i := 0; i < 6; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		_, err := c.Stat(fs, "/survivor")
		if victimSets[fs] {
			if err == nil {
				t.Fatalf("unflushed record on crashed server survived (%s)", fs)
			}
		} else if err != nil {
			t.Fatalf("record on surviving server lost (%s): %v", fs, err)
		}
	}
	// Every file set is still served by someone.
	for i := 0; i < 6; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		if _, err := c.List(fs, "/"); err != nil {
			t.Fatalf("List(%s) after kill: %v", fs, err)
		}
	}
	if len(c.Servers()) != 2 {
		t.Fatalf("Servers = %v after kill", c.Servers())
	}
}

func TestMovePreservesFlushedRecords(t *testing.T) {
	// Records written before a *graceful* move survive it: Release flushes.
	c, _ := newTestCluster(t, 8)
	for i := 0; i < 8; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		if err := c.Create(fs, "/keep", sharedisk.Record{Size: 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddServer(9, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.AddServer(9, 5); err == nil {
		t.Fatal("duplicate AddServer succeeded")
	}
	for i := 0; i < 8; i++ {
		fs := fmt.Sprintf("fs%02d", i)
		rec, err := c.Stat(fs, "/keep")
		if err != nil || rec.Size != 9 {
			t.Fatalf("record lost across graceful move (%s): %+v, %v", fs, rec, err)
		}
	}
	if len(c.Servers()) != 4 {
		t.Fatalf("Servers = %v after add", c.Servers())
	}
}

func TestKillLastServerFails(t *testing.T) {
	disk := sharedisk.NewStore(0)
	c, err := NewCluster(testConfig(), disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Kill(0); err == nil {
		t.Fatal("killed the last server")
	}
	if err := c.Kill(42); err == nil {
		t.Fatal("killed unknown server")
	}
}

func TestStoppedClusterRejectsOps(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	c.Stop()
	c.Stop() // idempotent
	if err := c.Create("fs00", "/x", sharedisk.Record{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Create after Stop: %v", err)
	}
	if err := c.AddServer(7, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("AddServer after Stop: %v", err)
	}
	if err := c.Kill(0); !errors.Is(err, ErrStopped) {
		t.Fatalf("Kill after Stop: %v", err)
	}
}

func TestConcurrentOpsDuringTuningAndMembership(t *testing.T) {
	c, _ := newTestCluster(t, 12)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				fs := fmt.Sprintf("fs%02d", (g+j)%12)
				_ = c.Create(fs, fmt.Sprintf("/c%d-%d", g, j), sharedisk.Record{})
				_, _ = c.Stat(fs, fmt.Sprintf("/c%d-%d", g, j))
				j++
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		c.TuneOnce()
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.AddServer(8, 4); err != nil {
		t.Fatal(err)
	}
	c.TuneOnce()
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	c.TuneOnce()
	close(stop)
	wg.Wait()
	// All file sets remain reachable.
	for i := 0; i < 12; i++ {
		if _, err := c.List(fmt.Sprintf("fs%02d", i), "/"); err != nil {
			t.Fatalf("fs%02d unreachable: %v", i, err)
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	disk := sharedisk.NewStore(0)
	if _, err := NewCluster(Config{}, disk, map[int]float64{0: 1}); err == nil {
		t.Fatal("zero-value config accepted")
	}
	if _, err := NewCluster(testConfig(), disk, map[int]float64{0: -1}); err == nil {
		t.Fatal("negative speed accepted")
	}
	if _, err := NewCluster(testConfig(), disk, nil); err == nil {
		t.Fatal("no servers accepted")
	}
}

func TestStatsShape(t *testing.T) {
	c, _ := newTestCluster(t, 4)
	if err := c.Create("fs00", "/s", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if len(stats) != 3 {
		t.Fatalf("Stats len = %d", len(stats))
	}
	var totalShare float64
	var served int64
	for i, st := range stats {
		if i > 0 && stats[i-1].ID >= st.ID {
			t.Fatal("Stats not sorted by ID")
		}
		totalShare += st.ShareFrac
		served += st.Served
	}
	if totalShare < 0.49 || totalShare > 0.51 {
		t.Fatalf("total share %.3f, want 0.5 (half occupancy)", totalShare)
	}
	if served == 0 {
		t.Fatal("no server recorded served requests")
	}
}

func TestPeriodicTunerRuns(t *testing.T) {
	disk := sharedisk.NewStore(0)
	for i := 0; i < 6; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig()
	cfg.Window = 20 * time.Millisecond
	cfg.OpCost = 4 * time.Millisecond
	c, err := NewCluster(cfg, disk, map[int]float64{0: 1, 1: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Create(fmt.Sprintf("p%d", (g+j)%6), fmt.Sprintf("/t%d-%d", g, j), sharedisk.Record{})
				j++
			}
		}(g)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Moves() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if c.Moves() == 0 {
		t.Fatal("periodic tuner never moved a file set despite 40x speed skew")
	}
}

func TestDelegateFailoverKeepsTuning(t *testing.T) {
	// Kill the lowest-ID server — the implicit delegate. Divergent-tuning
	// state resets (stateless failover, §4) and tuning must keep working.
	disk := sharedisk.NewStore(0)
	for i := 0; i < 12; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("d%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig()
	cfg.OpCost = 2 * time.Millisecond
	c, err := NewCluster(cfg, disk, map[int]float64{0: 1, 1: 1, 2: 20, 3: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	load := func() {
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < 80; j++ {
					_ = c.Create(fmt.Sprintf("d%02d", (g+j)%12), fmt.Sprintf("/f%d-%d", g, j), sharedisk.Record{})
				}
			}(g)
		}
		wg.Wait()
	}
	// Kill the delegate BEFORE any tuning: the survivors start with equal
	// shares, so the slow server 1 is guaranteed overloaded and the
	// failover delegate must shed it.
	if err := c.Kill(0); err != nil { // the delegate dies
		t.Fatal(err)
	}
	movesAfterKill := c.Moves()
	for round := 0; round < 8 && c.Moves() <= movesAfterKill; round++ {
		load()
		c.TuneOnce()
	}
	if c.Moves() <= movesAfterKill {
		t.Fatal("tuning stopped after delegate failover")
	}
	for i := 0; i < 12; i++ {
		if _, err := c.List(fmt.Sprintf("d%02d", i), "/"); err != nil {
			t.Fatalf("d%02d unreachable after failover: %v", i, err)
		}
	}
}

func TestLatencySeriesCollected(t *testing.T) {
	c, _ := newTestCluster(t, 4)
	for i := 0; i < 40; i++ {
		if err := c.Create("fs00", fmt.Sprintf("/ls%d", i), sharedisk.Record{}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.LatencySeries()
	if s.Windows() == 0 {
		t.Fatal("no windows collected")
	}
	total := 0
	for _, id := range s.Servers() {
		for w := 0; w < s.Windows(); w++ {
			total += s.Count(id, w)
		}
	}
	if total < 40 {
		t.Fatalf("series recorded %d completions, want >= 40", total)
	}
	if s.Summarize().OverallMeanAll < 0 {
		t.Fatal("negative mean latency")
	}
}
