package live

import (
	"sync/atomic"

	"anufs/internal/lockmgr"
	"anufs/internal/metaserver"
)

// Client lock API. The cluster allocates cluster-wide client IDs; each
// server's lock manager lazily materializes the client's session on first
// contact (paper §2: clients hold sessions with the file servers; a client
// that stops renewing is declared failed and its locks are reaped).
//
// Locks do not follow a file set when it moves — the shedding server drops
// them with its cache, and clients re-acquire against the new owner. The
// cluster routes Lock/Unlock by the same hash lookup as metadata requests.

// nextClient allocates cluster-wide client session IDs.
var nextClient uint64

// RegisterClient returns a new cluster-wide client ID for the lock service.
func (c *Cluster) RegisterClient() lockmgr.SessionID {
	return lockmgr.SessionID(atomic.AddUint64(&nextClient, 1))
}

// Lock acquires (non-blocking) a lock on (fileSet, path) at the file set's
// current owner.
func (c *Cluster) Lock(client lockmgr.SessionID, fileSet, path string, mode lockmgr.Mode) error {
	return c.do(fileSet, func(s *server) error {
		if !s.ms.Owns(fileSet) {
			// Route-time owner and serve-time owner can disagree mid-move;
			// surface the retryable error the router understands.
			return errNotOwnerForLocks
		}
		s.locks.EnsureSession(client)
		return s.locks.Lock(client, fileSet, path, mode)
	})
}

// Unlock releases a lock at the file set's current owner.
func (c *Cluster) Unlock(client lockmgr.SessionID, fileSet, path string) error {
	return c.do(fileSet, func(s *server) error {
		if !s.ms.Owns(fileSet) {
			return errNotOwnerForLocks
		}
		s.locks.EnsureSession(client)
		return s.locks.Unlock(client, fileSet, path)
	})
}

// RenewClient renews the client's lease at every live server (the client
// heartbeat). Servers the client never contacted are skipped.
func (c *Cluster) RenewClient(client lockmgr.SessionID) {
	c.mu.Lock()
	servers := make([]*server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.Unlock()
	for _, s := range servers {
		_ = s.locks.Renew(client) // unknown-session here just means "never contacted"
	}
}

// ExpireClients runs the failed-client sweep on every live server and
// returns the total sessions reaped.
func (c *Cluster) ExpireClients() int {
	c.mu.Lock()
	servers := make([]*server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.Unlock()
	total := 0
	for _, s := range servers {
		total += s.locks.ExpireSessions()
	}
	return total
}

// errNotOwnerForLocks aliases the metaserver sentinel so do()'s retry logic
// treats lock requests to a stale owner exactly like metadata requests.
var errNotOwnerForLocks = metaserver.ErrNotOwner
