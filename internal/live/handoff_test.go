package live

import (
	"strings"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

func handoffCluster(t *testing.T, disk sharedisk.Disk) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Window = time.Hour // no background tuning during the test
	cfg.OpCost = 0
	cfg.RetryBudget = 100 * time.Millisecond
	c, err := NewCluster(cfg, disk, map[int]float64{0: 1, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestReleaseAdoptRoundTrip walks a file set through the two cluster-side
// halves of a fleet handoff: release flushes the dirty cache to shared
// disk, and a later adopt (as the recipient daemon would do after install)
// resumes serving the flushed state.
func TestReleaseAdoptRoundTrip(t *testing.T) {
	disk := sharedisk.NewStore(0)
	c := handoffCluster(t, disk)
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("vol00", "/a", sharedisk.Record{Size: 7}); err != nil {
		t.Fatal(err)
	}

	if err := c.ReleaseFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	// The release flushed: shared disk has the record.
	im, err := disk.Load("vol00")
	if err != nil {
		t.Fatal(err)
	}
	if im.Records["/a"].Size != 7 {
		t.Fatalf("release did not flush: %+v", im)
	}
	// Released file sets are not served: ops burn the retry budget.
	if err := c.Create("vol00", "/b", sharedisk.Record{}); err == nil ||
		!strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("op on released file set = %v", err)
	}

	if err := c.AdoptFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Stat("vol00", "/a")
	if err != nil || rec.Size != 7 {
		t.Fatalf("Stat after adopt = %+v, %v", rec, err)
	}
}

// TestAdoptUnknownFileSetFails ensures adopt surfaces a missing image
// instead of serving an empty file set.
func TestAdoptUnknownFileSetFails(t *testing.T) {
	c := handoffCluster(t, sharedisk.NewStore(0))
	if err := c.AdoptFileSet("nope"); err == nil {
		t.Fatal("adopt of unknown file set succeeded")
	}
}

// TestDoubleAdoptFails ensures a second adopt reports the double
// assignment instead of silently double-serving.
func TestDoubleAdoptFails(t *testing.T) {
	disk := sharedisk.NewStore(0)
	c := handoffCluster(t, disk)
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptFileSet("vol00"); err == nil {
		t.Fatal("adopt of an already-served file set succeeded")
	}
}
