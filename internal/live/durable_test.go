package live

import (
	"fmt"
	"testing"
	"time"

	"anufs/internal/journal"
	"anufs/internal/sharedisk"
)

// durableConfig returns a fast test config (no tuner surprises needed).
func durableConfig() Config {
	cfg := DefaultConfig()
	cfg.Window = 50 * time.Millisecond
	cfg.OpCost = 0
	cfg.RetryBudget = 2 * time.Second
	return cfg
}

// TestClusterJournalRecovery runs a cluster over a Durable store,
// checkpoints, tears everything down as a crash would (no release flushes
// beyond the checkpoint), and verifies a second cluster over the recovered
// store serves the same metadata.
func TestClusterJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	jnl, st, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk := sharedisk.NewDurable(st, jnl, 0)
	c, err := NewCluster(durableConfig(), disk, map[int]float64{0: 1, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	const nfs = 4
	for i := 0; i < nfs; i++ {
		if err := c.CreateFileSet(fmt.Sprintf("vol%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nfs; i++ {
		fs := fmt.Sprintf("vol%d", i)
		for k := 0; k < 5; k++ {
			path := fmt.Sprintf("/f%d", k)
			if err := c.Create(fs, path, sharedisk.Record{Size: int64(10*i + k), Owner: "t"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The durability barrier: everything above must survive from here on.
	if err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Writes after the checkpoint are allowed to be lost on a crash.
	if err := c.Create("vol0", "/after-sync", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover from the journal alone and serve again.
	recovered, info, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.FileSets != nfs {
		t.Fatalf("recovered %d file sets, want %d", info.FileSets, nfs)
	}
	c2, err := NewCluster(durableConfig(), recovered, map[int]float64{0: 1, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	for i := 0; i < nfs; i++ {
		fs := fmt.Sprintf("vol%d", i)
		for k := 0; k < 5; k++ {
			rec, err := c2.Stat(fs, fmt.Sprintf("/f%d", k))
			if err != nil {
				t.Fatalf("stat %s /f%d after recovery: %v", fs, k, err)
			}
			if rec.Size != int64(10*i+k) {
				t.Fatalf("%s /f%d recovered size %d, want %d", fs, k, rec.Size, 10*i+k)
			}
		}
	}
}

// TestCheckpointAllFlushesDirtyState: after CheckpointAll, the shared disk
// images (not just server caches) hold every record.
func TestCheckpointAllFlushesDirtyState(t *testing.T) {
	disk := sharedisk.NewStore(0)
	if err := disk.CreateFileSet("vol"); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(durableConfig(), disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Create("vol", "/a", sharedisk.Record{Size: 42}); err != nil {
		t.Fatal(err)
	}
	im, err := disk.Load("vol")
	if err != nil {
		t.Fatal(err)
	}
	if _, onDisk := im.Records["/a"]; onDisk {
		t.Fatal("record hit shared disk before any checkpoint — cache write-through?")
	}
	if err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	im, err = disk.Load("vol")
	if err != nil {
		t.Fatal(err)
	}
	if rec, onDisk := im.Records["/a"]; !onDisk || rec.Size != 42 {
		t.Fatalf("checkpoint did not flush: %+v", im.Records)
	}
	// Idempotent: a second checkpoint with nothing dirty is a no-op.
	v1, _ := disk.Version("vol")
	if err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	v2, _ := disk.Version("vol")
	if v1 != v2 {
		t.Fatalf("clean checkpoint bumped version %d -> %d", v1, v2)
	}
}
