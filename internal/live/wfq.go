package live

import (
	"sync"

	"anufs/internal/namespace"
)

// taskQueue is a server's request queue. In fair mode it is a
// weighted-fair scheduler over per-volume FIFO queues (stride
// scheduling): each tenant volume gets its own bounded queue and a pass
// value that advances by 1/weight per served task, and the dispatcher
// always serves the non-empty volume with the smallest pass. A hot tenant
// that saturates its own queue therefore only delays itself — a cold
// tenant's next request waits behind at most a weighted handful of the
// hot tenant's tasks, never behind its whole backlog. With fair mode off
// the queue degrades to the pre-volume single FIFO, where one tenant's
// backlog head-of-line-blocks everyone (kept for comparison benchmarks
// and strict arrival-order use).
//
// Backpressure is per volume in fair mode: push blocks only when the
// TARGET tenant's queue is full, so a saturated tenant cannot block other
// tenants' submitters either.
type taskQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// fair selects weighted-fair scheduling; false = one global FIFO.
	fair bool
	// depth bounds each per-volume queue (the whole queue when not fair).
	depth   int
	vols    map[string]*volQueue
	weights map[string]float64
	// vtime is the pass of the most recently served volume: the scheduler's
	// virtual clock. A volume going from idle to busy starts at the clock,
	// not at its stale pass, so sleeping does not bank an unfair burst.
	vtime  float64
	size   int
	closed bool
}

// volQueue is one volume's FIFO within a taskQueue.
type volQueue struct {
	tasks  []task
	head   int // index of the next task to pop; slice compacts when drained
	pass   float64
	weight float64
}

func newTaskQueue(fair bool, depth int) *taskQueue {
	q := &taskQueue{fair: fair, depth: depth, vols: map[string]*volQueue{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// setWeights replaces the per-volume weights (volumes absent from w keep
// weight 1). Existing backlogs keep their pass — only the rate of future
// pass advancement changes.
func (q *taskQueue) setWeights(w map[string]float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.weights = w
	for vol, vq := range q.vols {
		vq.weight = q.weightOfLocked(vol)
	}
}

func (q *taskQueue) weightOfLocked(vol string) float64 {
	if w, ok := q.weights[vol]; ok && w > 0 {
		return w
	}
	return 1
}

// volKey maps a task to its scheduling bucket.
func (q *taskQueue) volKey(t task) string {
	if !q.fair {
		return ""
	}
	return namespace.VolumeOf(t.fileSet)
}

// push enqueues one task, blocking while the target volume's queue is
// full. Returns ErrStopped once the queue is closed.
func (q *taskQueue) push(t task) error {
	vol := q.volKey(t)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrStopped
		}
		vq := q.vols[vol]
		if vq == nil || len(vq.tasks)-vq.head < q.depth {
			break
		}
		q.cond.Wait()
	}
	vq := q.vols[vol]
	if vq == nil {
		vq = &volQueue{pass: q.vtime, weight: q.weightOfLocked(vol)}
		q.vols[vol] = vq
	} else if vq.head == len(vq.tasks) && vq.pass < q.vtime {
		// Re-activating after idle: join at the virtual clock.
		vq.pass = q.vtime
	}
	vq.tasks = append(vq.tasks, t)
	q.size++
	q.cond.Broadcast()
	return nil
}

// pop dequeues the next task by weighted-fair order, blocking while the
// queue is empty. Returns ok=false once the queue is closed AND drained —
// close does not drop queued work, matching the channel-drain semantics
// this queue replaced.
func (q *taskQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return task{}, false
	}
	var best *volQueue
	for _, vq := range q.vols {
		if vq.head == len(vq.tasks) {
			continue
		}
		if best == nil || vq.pass < best.pass {
			best = vq
		}
	}
	t := best.tasks[best.head]
	best.tasks[best.head] = task{} // release references for GC
	best.head++
	if best.head == len(best.tasks) {
		best.tasks = best.tasks[:0]
		best.head = 0
	}
	q.size--
	q.vtime = best.pass
	best.pass += 1 / best.weight
	q.cond.Broadcast()
	return t, true
}

// depthOf reports a volume's current backlog (the global backlog when not
// fair), for gauges and tests.
func (q *taskQueue) depthOf(vol string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.fair {
		vol = ""
	}
	if vq, ok := q.vols[vol]; ok {
		return len(vq.tasks) - vq.head
	}
	return 0
}

// close rejects future pushes (they return ErrStopped), wakes every
// blocked pusher, and lets pop drain what is already queued.
func (q *taskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
