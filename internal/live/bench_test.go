package live

import (
	"fmt"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

func benchLiveCluster(b *testing.B) (*Cluster, func()) {
	b.Helper()
	disk := sharedisk.NewStore(0)
	for i := 0; i < 8; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("fs%02d", i)); err != nil {
			b.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	c, err := NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 5})
	if err != nil {
		b.Fatal(err)
	}
	return c, c.Stop
}

// BenchmarkLiveStat measures one routed metadata read through the live
// cluster (hash lookup, queue hop, metaserver op).
func BenchmarkLiveStat(b *testing.B) {
	c, cleanup := benchLiveCluster(b)
	defer cleanup()
	if err := c.Create("fs00", "/b", sharedisk.Record{Size: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat("fs00", "/b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveStatParallel measures the same under client concurrency.
func BenchmarkLiveStatParallel(b *testing.B) {
	c, cleanup := benchLiveCluster(b)
	defer cleanup()
	for i := 0; i < 8; i++ {
		if err := c.Create(fmt.Sprintf("fs%02d", i), "/b", sharedisk.Record{Size: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Stat(fmt.Sprintf("fs%02d", i%8), "/b"); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkLiveTuneOnce measures one full delegate round on a live cluster.
func BenchmarkLiveTuneOnce(b *testing.B) {
	c, cleanup := benchLiveCluster(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TuneOnce()
	}
}
