package live

import (
	"errors"
	"fmt"

	"anufs/internal/metaserver"
	"anufs/internal/sharedisk"
)

// BatchOp is one operation inside a Batch: Kind is the wire op name
// ("create", "stat", "update", "remove"), Path the record path, Rec the
// record for create/update.
type BatchOp struct {
	Kind string
	Path string
	Rec  sharedisk.Record
}

// BatchOutcome is the per-op result of a Batch, index-aligned with the
// ops. Rec answers stat ops.
type BatchOutcome struct {
	Err error
	Rec *sharedisk.Record
}

// Batch applies many operations against one file set as a single queued
// task: the batch pays one queue wait and one OpCost service time instead
// of one per op — the server-side half of the sdk's client batching.
// Per-op failures land in the outcomes; err reports whole-batch failures
// (stopped cluster, retry budget exhausted mid-move). The error return is
// what doT's ownership retry loop keys on: ErrNotOwner can only surface
// on the first op (ownership is checked per file set and the whole batch
// runs on one server), so re-running the entire batch after a move is
// safe — nothing was applied.
func (v Traced) Batch(fileSet string, ops []BatchOp) ([]BatchOutcome, error) {
	out := make([]BatchOutcome, len(ops))
	err := v.c.doT(v.trace, "batch", fileSet, func(s *server) error {
		for i, op := range ops {
			switch op.Kind {
			case "create":
				out[i].Err = s.ms.Create(fileSet, op.Path, op.Rec)
			case "stat":
				r, e := s.ms.Stat(fileSet, op.Path)
				if e == nil {
					out[i].Rec = &r
				}
				out[i].Err = e
			case "update":
				out[i].Err = s.ms.Update(fileSet, op.Path, op.Rec)
			case "remove":
				out[i].Err = s.ms.Remove(fileSet, op.Path)
			default:
				out[i].Err = fmt.Errorf("live: unknown batch op %q", op.Kind)
			}
			if errors.Is(out[i].Err, metaserver.ErrNotOwner) {
				// Mid-move: surface as the task error so doT retries the
				// whole batch against the new owner.
				return out[i].Err
			}
		}
		return nil
	})
	return out, err
}

// Batch is Traced.Batch without trace attribution.
func (c *Cluster) Batch(fileSet string, ops []BatchOp) ([]BatchOutcome, error) {
	return c.WithTrace(0).Batch(fileSet, ops)
}
