package live

import (
	"strings"
	"testing"

	"anufs/internal/sharedisk"
)

func TestBatchAppliesInOrder(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	outs, err := c.Batch("fs00", []BatchOp{
		{Kind: "create", Path: "/a", Rec: sharedisk.Record{Size: 1}},
		{Kind: "update", Path: "/a", Rec: sharedisk.Record{Size: 2}},
		{Kind: "stat", Path: "/a"},
		{Kind: "create", Path: "/b", Rec: sharedisk.Record{Size: 3}},
		{Kind: "remove", Path: "/b"},
		{Kind: "stat", Path: "/b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if outs[i].Err != nil {
			t.Fatalf("op %d: %v", i, outs[i].Err)
		}
	}
	if outs[2].Rec == nil || outs[2].Rec.Size != 2 {
		t.Fatalf("stat after update = %+v", outs[2])
	}
	if outs[5].Err == nil {
		t.Fatal("stat of removed path succeeded")
	}
}

func TestBatchPerOpErrorsDoNotAbort(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	outs, err := c.Batch("fs00", []BatchOp{
		{Kind: "stat", Path: "/missing"},
		{Kind: "create", Path: "/a", Rec: sharedisk.Record{Size: 1}},
		{Kind: "bogus", Path: "/a"},
		{Kind: "stat", Path: "/a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil {
		t.Fatal("stat of missing path succeeded")
	}
	if outs[1].Err != nil {
		t.Fatalf("create after failed stat: %v", outs[1].Err)
	}
	if outs[2].Err == nil || !strings.Contains(outs[2].Err.Error(), "unknown batch op") {
		t.Fatalf("bogus op = %v", outs[2].Err)
	}
	if outs[3].Err != nil || outs[3].Rec == nil || outs[3].Rec.Size != 1 {
		t.Fatalf("stat after bogus op = %+v", outs[3])
	}
}

func TestBatchIsOneQueuedTask(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	owner := c.Owner("fs00")
	before := serverServed(c, owner)
	ops := make([]BatchOp, 50)
	for i := range ops {
		ops[i] = BatchOp{Kind: "create", Path: "/p" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Rec: sharedisk.Record{Size: 1}}
	}
	if _, err := c.Batch("fs00", ops); err != nil {
		t.Fatal(err)
	}
	after := serverServed(c, owner)
	if got := after - before; got != 1 {
		t.Fatalf("batch of 50 consumed %d queue slots, want 1", got)
	}
}

func serverServed(c *Cluster, id int) int64 {
	for _, st := range c.Stats() {
		if st.ID == id {
			return st.Served
		}
	}
	return 0
}

func TestBatchUnknownFileSet(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	if _, err := c.Batch("nope", []BatchOp{{Kind: "stat", Path: "/a"}}); err == nil {
		t.Fatal("batch against unknown file set succeeded")
	}
}
