// Package live runs a real, concurrent ANU-managed metadata cluster inside
// one process: goroutine servers with FIFO queues serve metadata operations
// against the shared disk, a router hashes file sets to servers through a
// published core.Mapper snapshot, and a tuner goroutine plays the elected
// delegate — collecting per-window latencies, rescaling mapped regions, and
// driving the file-set move protocol (release on the shedding server, then
// acquire on the gaining one).
//
// The simulator (internal/cluster) is what reproduces the paper's figures;
// this package is what a downstream user embeds to get the paper's
// self-managing behaviour in a running system. It is exercised with the
// race detector in its tests and by examples/webcluster.
package live

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/core"
	"anufs/internal/election"
	"anufs/internal/lockmgr"
	"anufs/internal/metaserver"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
)

// Config parameterizes a live cluster.
type Config struct {
	// Core is the ANU configuration shared by the mapper and delegate.
	Core core.Config
	// Window is the delegate's measurement/tuning interval.
	Window time.Duration
	// OpCost is the service time of one metadata operation on a speed-1
	// server; a server with speed s serves in OpCost/s.
	OpCost time.Duration
	// QueueDepth bounds each server's request queue; Submit blocks when the
	// queue is full (clients experience backpressure, not drops). With
	// FairQueue on, the bound applies per tenant volume, so one tenant's
	// backlog cannot exert backpressure on another tenant's submitters.
	QueueDepth int
	// FairQueue turns each server queue into a weighted-fair scheduler
	// over tenant volumes (see taskQueue): a hot volume saturating its own
	// queue no longer starves a cold one. Off = the pre-volume global
	// FIFO. DefaultConfig enables it.
	FairQueue bool
	// RetryBudget bounds how long a request keeps retrying while the file
	// set it targets is mid-move.
	RetryBudget time.Duration
	// LockLease is the client-session lease duration for the lock service;
	// sessions not renewed within it are declared failed and their locks
	// reaped (paper §2).
	LockLease time.Duration
	// Obs is the shared observability registry (histograms, trace spans,
	// tuner decision log). Nil makes the cluster create a private one —
	// instrumentation is always on; share a registry across the wire server
	// and journal (as anufsd does) to get one unified surface.
	Obs *obs.Registry
}

// DefaultConfig returns demo-friendly defaults (fast windows so examples
// converge in seconds).
func DefaultConfig() Config {
	return Config{
		Core:        core.Defaults(),
		Window:      250 * time.Millisecond,
		OpCost:      2 * time.Millisecond,
		QueueDepth:  1024,
		FairQueue:   true,
		RetryBudget: 5 * time.Second,
		LockLease:   30 * time.Second,
	}
}

// ErrStopped is returned for operations on a stopped cluster.
var ErrStopped = errors.New("live: cluster stopped")

// Cluster counter names, exported through the obs registry.
const (
	CtrMoves      = "live_moves"
	CtrTuneRounds = "live_tune_rounds"
)

// task is one queued server operation (metadata or lock).
type task struct {
	fn    func(*server) error
	enq   time.Time
	reply chan taskResult
	// trace/op/fileSet annotate the task for span emission; trace 0 means
	// untraced (histograms still record).
	trace   uint64
	op      string
	fileSet string
}

type taskResult struct {
	err     error
	latency time.Duration
}

// server is one running metadata server.
type server struct {
	id    int
	speed float64
	ms    *metaserver.Server
	locks *lockmgr.Manager
	q     *taskQueue
	done  chan struct{}
	// observe, if non-nil, records each completion into the cluster's
	// latency series.
	observe func(id int, lat time.Duration)
	// spans receives queue-wait/apply spans for traced tasks; histLat and
	// histWait are this server's latency and queue-wait histograms
	// (resolved once at construction to keep the hot path to plain atomic
	// adds).
	spans    *obs.SpanRing
	histLat  *obs.Histogram
	histWait *obs.Histogram

	mu     sync.Mutex
	count  int
	sumLat time.Duration
	served int64
}

func (s *server) run(opCost time.Duration) {
	defer close(s.done)
	for {
		t, ok := s.q.pop()
		if !ok {
			return
		}
		deq := time.Now()
		wait := deq.Sub(t.enq)
		if d := time.Duration(float64(opCost) / s.speed); d > 0 {
			time.Sleep(d)
		}
		err := t.fn(s)
		lat := time.Since(t.enq)
		s.mu.Lock()
		s.count++
		s.sumLat += lat
		s.served++
		s.mu.Unlock()
		if s.observe != nil {
			s.observe(s.id, lat)
		}
		s.histLat.Observe(lat)
		s.histWait.Observe(wait)
		if t.trace != 0 {
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			s.spans.Add(obs.Span{
				Trace: t.trace, Name: "queue-wait", Op: t.op, FileSet: t.fileSet,
				Server: s.id, Start: t.enq, Dur: wait,
			})
			s.spans.Add(obs.Span{
				Trace: t.trace, Name: "apply", Op: t.op, FileSet: t.fileSet,
				Server: s.id, Start: deq, Dur: lat - wait, Err: errStr,
			})
		}
		t.reply <- taskResult{err: err, latency: lat}
	}
}

// takeWindow returns and resets the window counters.
func (s *server) takeWindow() (count int, mean float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	count = s.count
	if count > 0 {
		mean = s.sumLat.Seconds() / float64(count)
	}
	s.count, s.sumLat = 0, 0
	return count, mean
}

// Cluster is the live ANU-managed metadata cluster.
type Cluster struct {
	cfg  Config
	disk sharedisk.Disk

	// obs is the observability registry (never nil after NewCluster);
	// counters holds the cluster's own counters (moves, tune rounds),
	// registered into obs.
	obs      *obs.Registry
	counters *metrics.CounterSet

	// snapshot holds an immutable *core.Mapper for lock-free routing.
	snapshot atomic.Value

	mu       sync.Mutex
	mapper   *core.Mapper // authoritative; mutated under mu
	delegate *core.Delegate
	// elector picks which server is the delegate (paper §4). In this
	// in-process cluster every live server heartbeats implicitly at each
	// tuning round; the epoch detects failovers so divergent-tuning state
	// is reset exactly when the paper says the policy must be skipped.
	elector       *election.Elector
	delegateEpoch uint64
	servers       map[int]*server
	// collector accumulates the per-window latency series the paper's
	// figures plot, for live observability (LatencySeries). Guarded by
	// collectorMu, not mu, to keep the completion path off the big lock.
	collectorMu sync.Mutex
	collector   *metrics.Collector
	startedAt   time.Time
	// graveyard holds killed servers: their goroutines keep draining their
	// queues (replying ErrNotOwner after the crash) until Stop closes them.
	graveyard []*server
	// volWeights is the current per-volume WFQ weight table, applied to
	// every server queue (and to servers commissioned later).
	volWeights map[string]float64
	moves      int64
	stopped    bool
	tunerWG    sync.WaitGroup
	// submitters tracks in-flight queue sends so Stop can close the server
	// channels only once no sender can touch them.
	submitters sync.WaitGroup
	stopCh     chan struct{}
}

// NewCluster creates a cluster over the shared disk with the given server
// speeds (id → relative power). Every file set already on the disk is
// acquired by its hash-designated owner before NewCluster returns. Pass a
// sharedisk.Durable to make every flush survive a daemon crash.
func NewCluster(cfg Config, disk sharedisk.Disk, speeds map[int]float64) (*Cluster, error) {
	if cfg.Window <= 0 || cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("live: invalid config %+v", cfg)
	}
	ids := make([]int, 0, len(speeds))
	for id, sp := range speeds {
		if sp <= 0 {
			return nil, fmt.Errorf("live: server %d has non-positive speed", id)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	m, err := core.NewMapper(cfg.Core, ids)
	if err != nil {
		return nil, err
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	c := &Cluster{
		cfg:       cfg,
		disk:      disk,
		obs:       cfg.Obs,
		counters:  metrics.NewCounterSet(),
		mapper:    m,
		delegate:  core.NewDelegate(cfg.Core),
		elector:   election.New(3*cfg.Window+time.Second, nil),
		servers:   map[int]*server{},
		collector: metrics.NewCollector(cfg.Window.Seconds()),
		startedAt: time.Now(),
		stopCh:    make(chan struct{}),
	}
	c.obs.AddCounters(c.counters.Snapshot)
	c.obs.AddGauges(c.gauges)
	for _, id := range ids {
		c.servers[id] = c.newServer(id, speeds[id])
		c.elector.Heartbeat(id)
	}
	if _, epoch, ok := c.elector.Delegate(); ok {
		c.delegateEpoch = epoch
	}
	c.snapshot.Store(m.Clone())
	// Initial ownership: each file set is acquired by its mapped owner.
	for _, fs := range disk.FileSets() {
		owner := m.Owner(fs)
		if err := c.servers[owner].ms.Acquire(fs); err != nil {
			return nil, err
		}
	}
	c.tunerWG.Add(1)
	go c.tuneLoop()
	return c, nil
}

func (c *Cluster) newServer(id int, speed float64) *server {
	label := fmt.Sprintf("server=%q", strconv.Itoa(id))
	s := &server{
		id:       id,
		speed:    speed,
		ms:       metaserver.New(id, c.disk),
		locks:    lockmgr.New(c.cfg.LockLease, nil),
		q:        newTaskQueue(c.cfg.FairQueue, c.cfg.QueueDepth),
		done:     make(chan struct{}),
		observe:  c.observe,
		spans:    c.obs.Spans,
		histLat:  c.obs.Hist.Get("live_latency_seconds", label),
		histWait: c.obs.Hist.Get("live_queue_wait_seconds", label),
	}
	if c.volWeights != nil {
		s.q.setWeights(c.volWeights)
	}
	go s.run(c.cfg.OpCost)
	return s
}

// SetVolumeWeights installs the per-volume WFQ weight table on every
// server queue (volumes not listed get weight 1). In fleet mode the
// member calls this whenever it adopts a newer volume registry, so quota
// changes published by the authority reshape scheduling fleet-wide.
func (c *Cluster) SetVolumeWeights(w map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.volWeights = w
	for _, s := range c.servers {
		s.q.setWeights(w)
	}
	for _, s := range c.graveyard {
		s.q.setWeights(w)
	}
}

// Stop shuts the cluster down: the tuner exits, in-flight submissions
// finish, and the server queues drain.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.stopCh)
	servers := make([]*server, 0, len(c.servers)+len(c.graveyard))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	servers = append(servers, c.graveyard...)
	c.mu.Unlock()
	// Close the queues first: blocked pushers (including the tuner mid-
	// reconfig) wake with ErrStopped, while already-queued tasks still
	// drain and get their replies.
	for _, s := range servers {
		s.q.close()
	}
	c.tunerWG.Wait()
	c.submitters.Wait()
	for _, s := range servers {
		<-s.done
	}
}

// CreateFileSet initializes a new file set on shared disk and assigns it to
// its hash-designated owner.
func (c *Cluster) CreateFileSet(fileSet string) error {
	if err := c.disk.CreateFileSet(fileSet); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return ErrStopped
	}
	owner := c.mapper.Owner(fileSet)
	return c.servers[owner].ms.Acquire(fileSet)
}

// ReleaseFileSet flushes a file set (if dirty) and stops serving it — the
// donor half of a fleet handoff. The release runs through the owner's
// queue, so it serializes behind every operation the fleet gate already
// admitted; when it returns nil, the shared-disk image is the consistent
// cut the recipient adopts. Client locks on the file set are dropped, not
// transferred (same semantics as an intra-cluster move).
func (c *Cluster) ReleaseFileSet(fileSet string) error {
	return c.do(fileSet, func(s *server) error {
		s.locks.DropFileSet(fileSet)
		return s.ms.Release(fileSet)
	})
}

// AdoptFileSet starts serving a file set whose image already exists on this
// cluster's shared disk — the recipient half of a fleet handoff (the fleet
// layer installs the image first, then adopts). The mapper-designated owner
// acquires it, exactly as CreateFileSet assigns new file sets.
func (c *Cluster) AdoptFileSet(fileSet string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return ErrStopped
	}
	owner := c.mapper.Owner(fileSet)
	return c.servers[owner].ms.Acquire(fileSet)
}

// Obs returns the cluster's observability registry (never nil): the one
// passed in Config.Obs, or the private one NewCluster created.
func (c *Cluster) Obs() *obs.Registry { return c.obs }

// gauges snapshots the per-server gauges exported on /metrics.
func (c *Cluster) gauges() []obs.Gauge {
	stats := c.Stats()
	out := make([]obs.Gauge, 0, 4*len(stats))
	for _, st := range stats {
		label := fmt.Sprintf("server=%q", strconv.Itoa(st.ID))
		out = append(out,
			obs.Gauge{Name: "server_speed", Labels: label, Value: st.Speed},
			obs.Gauge{Name: "server_share_frac", Labels: label, Value: st.ShareFrac},
			obs.Gauge{Name: "server_served_total", Labels: label, Value: float64(st.Served)},
			obs.Gauge{Name: "server_owned_filesets", Labels: label, Value: float64(len(st.Owned))},
		)
	}
	return out
}

// routeOnce submits one operation to the current owner of the file set.
func (c *Cluster) routeOnce(trace uint64, op, fileSet string, fn func(*server) error) (taskResult, error) {
	snap := c.snapshot.Load().(*core.Mapper)
	owner := snap.Owner(fileSet)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return taskResult{}, ErrStopped
	}
	srv, ok := c.servers[owner]
	if !ok {
		c.mu.Unlock()
		return taskResult{err: metaserver.ErrNotOwner}, nil
	}
	c.submitters.Add(1)
	c.mu.Unlock()
	defer c.submitters.Done()
	t := task{fn: fn, enq: time.Now(), reply: make(chan taskResult, 1), trace: trace, op: op, fileSet: fileSet}
	if err := srv.q.push(t); err != nil {
		return taskResult{}, err
	}
	return <-t.reply, nil
}

// do routes an operation to the file set's owner, retrying while the file
// set is mid-move (the new owner has not finished acquiring it yet) — the
// client-visible cost of a move, which the paper bounds at 5–10 s.
func (c *Cluster) do(fileSet string, fn func(*server) error) error {
	return c.doT(0, "", fileSet, fn)
}

// doT is do carrying trace annotations: trace is the request trace ID (0 =
// untraced) and op names the operation for span labels.
func (c *Cluster) doT(trace uint64, op, fileSet string, fn func(*server) error) error {
	deadline := time.Now().Add(c.cfg.RetryBudget)
	backoff := time.Millisecond
	for {
		res, err := c.routeOnce(trace, op, fileSet, fn)
		if err != nil {
			return err
		}
		if !errors.Is(res.err, metaserver.ErrNotOwner) {
			return res.err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("live: file set %q unavailable past retry budget: %w", fileSet, res.err)
		}
		select {
		case <-time.After(backoff):
		case <-c.stopCh:
			return ErrStopped
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// Create adds a metadata record.
func (c *Cluster) Create(fileSet, path string, rec sharedisk.Record) error {
	return c.do(fileSet, func(s *server) error { return s.ms.Create(fileSet, path, rec) })
}

// Stat reads a metadata record.
func (c *Cluster) Stat(fileSet, path string) (sharedisk.Record, error) {
	var rec sharedisk.Record
	err := c.do(fileSet, func(s *server) error {
		r, e := s.ms.Stat(fileSet, path)
		rec = r
		return e
	})
	return rec, err
}

// Update overwrites a metadata record.
func (c *Cluster) Update(fileSet, path string, rec sharedisk.Record) error {
	return c.do(fileSet, func(s *server) error { return s.ms.Update(fileSet, path, rec) })
}

// Remove deletes a metadata record.
func (c *Cluster) Remove(fileSet, path string) error {
	return c.do(fileSet, func(s *server) error { return s.ms.Remove(fileSet, path) })
}

// List returns paths under a prefix.
func (c *Cluster) List(fileSet, prefix string) ([]string, error) {
	var out []string
	err := c.do(fileSet, func(s *server) error {
		l, e := s.ms.List(fileSet, prefix)
		out = l
		return e
	})
	return out, err
}

// Checkpoint flushes one file set's dirty state to shared disk without
// releasing ownership, through the owner's queue (so it serializes with
// that server's metadata operations and release-time flushes).
func (c *Cluster) Checkpoint(fileSet string) error {
	return c.do(fileSet, func(s *server) error { return s.ms.Checkpoint(fileSet) })
}

// CheckpointAll checkpoints every file set — the durability barrier behind
// the wire "sync" op: when it returns nil, everything created or updated
// before the call is on shared disk (and, with a Durable store, in the
// journal). Clean file sets are no-ops.
func (c *Cluster) CheckpointAll() error {
	var firstErr error
	for _, fs := range c.disk.FileSets() {
		if err := c.Checkpoint(fs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Traced is a view of the cluster whose operations are attributed to one
// request trace: each queued task emits queue-wait/apply spans under the
// trace ID, and a traced Checkpoint threads the ID down to the journal so
// its group-commit wait and fsync join the same timeline. Obtain one with
// WithTrace; the zero trace ID is the untraced sentinel.
type Traced struct {
	c     *Cluster
	trace uint64
}

// WithTrace returns a view of the cluster attributing operations to trace.
func (c *Cluster) WithTrace(trace uint64) Traced { return Traced{c: c, trace: trace} }

// Create is Cluster.Create under the view's trace.
func (v Traced) Create(fileSet, path string, rec sharedisk.Record) error {
	return v.c.doT(v.trace, "create", fileSet, func(s *server) error { return s.ms.Create(fileSet, path, rec) })
}

// Stat is Cluster.Stat under the view's trace.
func (v Traced) Stat(fileSet, path string) (sharedisk.Record, error) {
	var rec sharedisk.Record
	err := v.c.doT(v.trace, "stat", fileSet, func(s *server) error {
		r, e := s.ms.Stat(fileSet, path)
		rec = r
		return e
	})
	return rec, err
}

// Update is Cluster.Update under the view's trace.
func (v Traced) Update(fileSet, path string, rec sharedisk.Record) error {
	return v.c.doT(v.trace, "update", fileSet, func(s *server) error { return s.ms.Update(fileSet, path, rec) })
}

// Remove is Cluster.Remove under the view's trace.
func (v Traced) Remove(fileSet, path string) error {
	return v.c.doT(v.trace, "remove", fileSet, func(s *server) error { return s.ms.Remove(fileSet, path) })
}

// List is Cluster.List under the view's trace.
func (v Traced) List(fileSet, prefix string) ([]string, error) {
	var out []string
	err := v.c.doT(v.trace, "list", fileSet, func(s *server) error {
		l, e := s.ms.List(fileSet, prefix)
		out = l
		return e
	})
	return out, err
}

// Checkpoint is Cluster.Checkpoint under the view's trace: the flush is
// journaled under the trace ID, so the request's span timeline includes the
// group-commit wait and fsync it rode.
func (v Traced) Checkpoint(fileSet string) error {
	trace := v.trace
	return v.c.doT(trace, "checkpoint", fileSet, func(s *server) error {
		return s.ms.CheckpointTraced(trace, fileSet)
	})
}

// CheckpointAll is Cluster.CheckpointAll under the view's trace.
func (v Traced) CheckpointAll() error {
	var firstErr error
	for _, fs := range v.c.disk.FileSets() {
		if err := v.Checkpoint(fs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Owner reports which server currently serves the file set.
func (c *Cluster) Owner(fileSet string) int {
	return c.snapshot.Load().(*core.Mapper).Owner(fileSet)
}

// MappingConfig serializes the current routing configuration — the
// replicated state of §4/§5. A client holding it routes identically to the
// cluster (see core.RouterFromConfig) until the next reconfiguration.
func (c *Cluster) MappingConfig() ([]byte, error) {
	return c.snapshot.Load().(*core.Mapper).MarshalConfig()
}

// Servers returns the live server IDs.
func (c *Cluster) Servers() []int {
	return c.snapshot.Load().(*core.Mapper).Servers()
}

// Moves reports the total number of file-set movements performed.
func (c *Cluster) Moves() int64 { return atomic.LoadInt64(&c.moves) }

// ServerStats is an observability snapshot for one server.
type ServerStats struct {
	ID        int
	Speed     float64
	ShareFrac float64
	Served    int64
	Owned     []string
}

// Stats snapshots per-server state, sorted by ID.
func (c *Cluster) Stats() []ServerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ServerStats, 0, len(c.servers))
	for id, s := range c.servers {
		s.mu.Lock()
		served := s.served
		s.mu.Unlock()
		frac, _ := c.mapper.ShareFrac(id)
		out = append(out, ServerStats{
			ID:        id,
			Speed:     s.speed,
			ShareFrac: frac,
			Served:    served,
			Owned:     s.ms.Owned(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// observe records one completion into the live latency series.
func (c *Cluster) observe(id int, lat time.Duration) {
	at := time.Since(c.startedAt).Seconds()
	c.collectorMu.Lock()
	c.collector.Observe(id, at, lat.Seconds())
	c.collectorMu.Unlock()
}

// LatencySeries snapshots the per-server, per-window latency series
// collected since the cluster started — the live analogue of the
// simulator's figure data. Window length equals the tuning Window.
func (c *Cluster) LatencySeries() *metrics.Series {
	c.collectorMu.Lock()
	defer c.collectorMu.Unlock()
	return c.collector.Series(0)
}

// tuneLoop is the delegate: every Window it collects latency reports, runs
// one ANU round, publishes the new mapping, and applies the moves.
func (c *Cluster) tuneLoop() {
	defer c.tunerWG.Done()
	ticker := time.NewTicker(c.cfg.Window)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.TuneOnce()
		}
	}
}

// TuneOnce runs a single delegate round immediately (also used by tests to
// make tuning deterministic).
func (c *Cluster) TuneOnce() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	reports := make([]core.LatencyReport, 0, len(c.servers))
	for id, s := range c.servers {
		n, mean := s.takeWindow()
		reports = append(reports, core.LatencyReport{ServerID: id, MeanLatency: mean, Requests: n})
		c.elector.Heartbeat(id)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ServerID < reports[j].ServerID })
	// Run the election: a new delegate has no memory of the previous
	// interval, so divergent tuning is skipped for one round (paper §6).
	if _, epoch, ok := c.elector.Delegate(); ok && epoch != c.delegateEpoch {
		c.delegateEpoch = epoch
		c.delegate.ResetState()
	}
	before := c.mapper.Clone()
	res, err := c.delegate.Update(c.mapper, reports)
	if err != nil {
		// A failed round leaves the previous configuration in place; the
		// next window retries with fresh reports.
		c.mu.Unlock()
		return
	}
	c.counters.Add(CtrTuneRounds, 1)
	// Record the decision when the round saw traffic or acted; idle rounds
	// would only flood the ring.
	if res.Aggregate > 0 || res.Tuned {
		ev := obs.EventFromUpdate(res)
		ev.At = time.Now()
		ev.Policy = "anu"
		c.obs.Tuner.Add(ev)
	}
	c.finishReconfigLocked(before)
}

// finishReconfigLocked publishes the new mapping and applies the move
// protocol. Called with mu held; releases it.
func (c *Cluster) finishReconfigLocked(before *core.Mapper) {
	after := c.mapper.Clone()
	moves := core.Moves(before, after, c.disk.FileSets())
	servers := make(map[int]*server, len(c.servers))
	for id, s := range c.servers {
		servers[id] = s
	}
	c.submitters.Add(1)
	c.mu.Unlock()
	defer c.submitters.Done()

	// Publish first: new requests route to the new owners and wait out the
	// move; then release/acquire per moved file set.
	c.snapshot.Store(after)
	for _, mv := range moves {
		atomic.AddInt64(&c.moves, 1)
		c.counters.Add(CtrMoves, 1)
		if from, ok := servers[mv.From]; ok {
			// Serialize the release behind the old owner's queued work by
			// routing it through the queue like any other task.
			t := task{
				fn: func(s *server) error {
					// Locks do not travel with the file set: clients
					// re-acquire against the new owner (paper §2 semantics
					// mirror the cache flush).
					s.locks.DropFileSet(mv.Name)
					return s.ms.Release(mv.Name)
				},
				enq:     time.Now(),
				reply:   make(chan taskResult, 1),
				fileSet: mv.Name,
			}
			if err := from.q.push(t); err != nil {
				return
			}
			<-t.reply
		}
		if to, ok := servers[mv.To]; ok {
			// Acquire directly: the gaining server can load the image
			// concurrently with serving its other file sets.
			_ = to.ms.Acquire(mv.Name)
		}
	}
}

// AddServer commissions a new server with the given speed. Existing servers
// shed proportionally; only the moved file sets change owners.
func (c *Cluster) AddServer(id int, speed float64) error {
	if speed <= 0 {
		return fmt.Errorf("live: non-positive speed")
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return ErrStopped
	}
	if _, dup := c.servers[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("live: server %d already present", id)
	}
	before := c.mapper.Clone()
	if err := c.mapper.AddServer(id, 0); err != nil {
		c.mu.Unlock()
		return err
	}
	c.servers[id] = c.newServer(id, speed)
	c.elector.Heartbeat(id)
	c.finishReconfigLocked(before)
	return nil
}

// Kill crashes a server: unflushed state is lost, survivors take over from
// the last flushed images, and — per the paper — only the victim's file
// sets move. If the killed server was the delegate (lowest ID), the next
// delegate starts without divergent-tuning history, exactly the stateless
// failover of §4.
func (c *Cluster) Kill(id int) error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return ErrStopped
	}
	victim, ok := c.servers[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("live: unknown server %d", id)
	}
	if len(c.servers) == 1 {
		c.mu.Unlock()
		return fmt.Errorf("live: cannot kill the last server")
	}
	before := c.mapper.Clone()
	if err := c.mapper.RemoveServer(id); err != nil {
		c.mu.Unlock()
		return err
	}
	delete(c.servers, id)
	c.graveyard = append(c.graveyard, victim)
	// Crash drops ownership without flushing; anything still queued on the
	// victim replies ErrNotOwner and clients retry against the survivors.
	victim.ms.Crash()
	c.elector.Leave(id)
	// If the victim was the delegate, the next elected delegate starts
	// without divergent-tuning history (stateless failover, §4).
	if _, epoch, ok := c.elector.Delegate(); ok && epoch != c.delegateEpoch {
		c.delegateEpoch = epoch
		c.delegate.ResetState()
	}
	c.finishReconfigLocked(before)
	return nil
}
