package live

import (
	"errors"
	"testing"

	"anufs/internal/lockmgr"
)

func TestClusterLockBasics(t *testing.T) {
	c, _ := newTestCluster(t, 4)
	alice := c.RegisterClient()
	bob := c.RegisterClient()
	if alice == bob {
		t.Fatal("client IDs collide")
	}
	if err := c.Lock(alice, "fs00", "/f", lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(bob, "fs00", "/f", lockmgr.Exclusive); !errors.Is(err, lockmgr.ErrConflict) {
		t.Fatalf("conflicting lock: %v", err)
	}
	if err := c.Unlock(alice, "fs00", "/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(bob, "fs00", "/f", lockmgr.Exclusive); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
}

func TestClusterSharedLocks(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	a, b := c.RegisterClient(), c.RegisterClient()
	if err := c.Lock(a, "fs01", "/doc", lockmgr.Shared); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(b, "fs01", "/doc", lockmgr.Shared); err != nil {
		t.Fatalf("second shared lock: %v", err)
	}
}

func TestLocksDroppedOnMove(t *testing.T) {
	c, _ := newTestCluster(t, 8)
	client := c.RegisterClient()
	// Lock a record in every file set, then force moves by adding a server.
	for i := 0; i < 8; i++ {
		fs := testFS(i)
		if err := c.Lock(client, fs, "/locked", lockmgr.Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddServer(7, 4); err != nil {
		t.Fatal(err)
	}
	if c.Moves() == 0 {
		t.Skip("join moved nothing at this seed")
	}
	// Every lock is re-acquirable (either it survived on an unmoved file
	// set and this is an idempotent re-acquire, or it was dropped by the
	// move and this is a fresh grant). A second client must still conflict.
	other := c.RegisterClient()
	for i := 0; i < 8; i++ {
		fs := testFS(i)
		if err := c.Lock(client, fs, "/locked", lockmgr.Exclusive); err != nil {
			t.Fatalf("re-acquire %s: %v", fs, err)
		}
		if err := c.Lock(other, fs, "/locked", lockmgr.Exclusive); !errors.Is(err, lockmgr.ErrConflict) {
			t.Fatalf("%s: conflicting client got %v", fs, err)
		}
	}
}

func TestRenewAndExpire(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	client := c.RegisterClient()
	if err := c.Lock(client, "fs00", "/f", lockmgr.Shared); err != nil {
		t.Fatal(err)
	}
	c.RenewClient(client) // heartbeat: no error paths, just coverage
	if n := c.ExpireClients(); n != 0 {
		t.Fatalf("ExpireClients reaped %d live sessions", n)
	}
}

func testFS(i int) string { return fsName(i) }

func fsName(i int) string {
	return string([]byte{'f', 's', byte('0' + i/10), byte('0' + i%10)})
}
