package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"anufs/internal/interval"
)

func newMapper(t testing.TB, n int) *Mapper {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	m, err := NewMapper(Defaults(), ids)
	if err != nil {
		t.Fatalf("NewMapper: %v", err)
	}
	return m
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fileset-%04d", i)
	}
	return out
}

func TestNewMapperRequiresServers(t *testing.T) {
	if _, err := NewMapper(Defaults(), nil); err == nil {
		t.Fatal("NewMapper with no servers succeeded")
	}
}

func TestLocateDeterministic(t *testing.T) {
	a := newMapper(t, 5)
	b := newMapper(t, 5)
	for _, n := range names(500) {
		sa, pa := a.Locate(n)
		sb, pb := b.Locate(n)
		if sa != sb || pa != pb {
			t.Fatalf("mappers with same config disagree on %q: (%d,%d) vs (%d,%d)", n, sa, pa, sb, pb)
		}
	}
}

func TestLocateTotalAndValid(t *testing.T) {
	m := newMapper(t, 5)
	valid := map[int]bool{}
	for _, id := range m.Servers() {
		valid[id] = true
	}
	for _, n := range names(2000) {
		id, probes := m.Locate(n)
		if !valid[id] {
			t.Fatalf("Locate(%q) = %d, not a live server", n, id)
		}
		if probes < 1 || probes > m.Config().withDefaults().MaxRounds+22 {
			t.Fatalf("Locate(%q) probes = %d", n, probes)
		}
	}
}

func TestLocateMeanProbesNearTwo(t *testing.T) {
	m := newMapper(t, 5)
	total := 0
	const count = 20000
	for i := 0; i < count; i++ {
		_, p := m.Locate(fmt.Sprintf("probe-%d", i))
		total += p
	}
	mean := float64(total) / count
	// Half occupancy: geometric with p=1/2, mean 2 (paper §4).
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("mean probes %v, want ~2", mean)
	}
}

func TestInitialPlacementRoughlyUniform(t *testing.T) {
	m := newMapper(t, 5)
	counts := map[int]int{}
	const count = 50000
	for i := 0; i < count; i++ {
		counts[m.Owner(fmt.Sprintf("u-%d", i))]++
	}
	want := float64(count) / 5
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("server %d got %d file sets, want ~%.0f (equal shares ⇒ uniform)", id, c, want)
		}
	}
}

func TestShareFrac(t *testing.T) {
	m := newMapper(t, 4)
	for _, id := range m.Servers() {
		f, ok := m.ShareFrac(id)
		if !ok {
			t.Fatalf("ShareFrac(%d) not ok", id)
		}
		if math.Abs(f-1.0/8) > 1e-9 {
			t.Fatalf("ShareFrac(%d) = %v, want 1/8", id, f)
		}
	}
	if _, ok := m.ShareFrac(99); ok {
		t.Fatal("ShareFrac(99) ok for unknown server")
	}
}

func TestRescaleMovesLookups(t *testing.T) {
	m := newMapper(t, 2)
	before := m.Clone()
	// Give everything to server 0.
	if err := m.Rescale(map[int]uint64{0: interval.Half, 1: 0}); err != nil {
		t.Fatal(err)
	}
	ns := names(1000)
	for _, n := range ns {
		if got := m.Owner(n); got != 0 {
			t.Fatalf("after rescale to server 0, Owner(%q) = %d", n, got)
		}
	}
	moves := Moves(before, m, ns)
	// Roughly half the names were on server 1 before.
	if len(moves) < 400 || len(moves) > 600 {
		t.Fatalf("%d moves, want ~500", len(moves))
	}
	for _, mv := range moves {
		if mv.From != 1 || mv.To != 0 {
			t.Fatalf("unexpected move %+v", mv)
		}
	}
}

func TestRemoveServerMinimalFileSetMovement(t *testing.T) {
	m := newMapper(t, 5)
	ns := names(5000)
	before := m.Clone()
	ownedByVictim := 0
	for _, n := range ns {
		if before.Owner(n) == 2 {
			ownedByVictim++
		}
	}
	if err := m.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	moves := Moves(before, m, ns)
	// Paper §4: only file sets served by the failed server re-hash, plus the
	// small growth deltas the survivors claim. Allow modest slack for sets
	// whose probe sequence crosses a grown boundary.
	if len(moves) > ownedByVictim+len(ns)/10 {
		t.Fatalf("failure moved %d file sets; victim owned %d — movement not minimal", len(moves), ownedByVictim)
	}
	fromVictim := 0
	for _, mv := range moves {
		if mv.To == 2 {
			t.Fatalf("file set %q moved TO removed server", mv.Name)
		}
		if mv.From == 2 {
			fromVictim++
		}
	}
	if fromVictim != ownedByVictim {
		t.Fatalf("%d of the victim's %d file sets moved; all must", fromVictim, ownedByVictim)
	}
}

func TestAddServerMinimalFileSetMovement(t *testing.T) {
	m := newMapper(t, 4)
	ns := names(5000)
	before := m.Clone()
	if err := m.AddServer(4, 0); err != nil { // default seed share
		t.Fatal(err)
	}
	moves := Moves(before, m, ns)
	newShare, _ := m.ShareFrac(4)
	// Expected fraction moved ≈ mass that changed hands / mapped half.
	expected := float64(len(ns)) * (2 * newShare) / 0.5
	if float64(len(moves)) > 3*expected+50 {
		t.Fatalf("add moved %d file sets, want ≲ %.0f", len(moves), expected)
	}
	for _, mv := range moves {
		if mv.From == 4 {
			t.Fatalf("file set %q moved FROM the brand-new server", mv.Name)
		}
	}
}

func TestAddServerGrowsUnderTuning(t *testing.T) {
	// A recovered server starts with a sliver and must be able to grow.
	m := newMapper(t, 3)
	if err := m.AddServer(3, 0); err != nil {
		t.Fatal(err)
	}
	f, _ := m.ShareFrac(3)
	if f <= 0 || f > 0.5 {
		t.Fatalf("join share %v out of (0, 0.5]", f)
	}
}

func TestAddServerRejectsHugeShare(t *testing.T) {
	m := newMapper(t, 2)
	if err := m.AddServer(9, 0.6); err == nil {
		t.Fatal("AddServer with share > 0.5 succeeded")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := newMapper(t, 3)
	cp := m.Clone()
	if err := m.RemoveServer(1); err != nil {
		t.Fatal(err)
	}
	if cp.NumServers() != 3 {
		t.Fatal("clone affected by original's RemoveServer")
	}
	if m.NumServers() != 2 {
		t.Fatal("RemoveServer did not apply")
	}
}

func TestShedSets(t *testing.T) {
	m := newMapper(t, 2)
	before := m.Clone()
	if err := m.Rescale(map[int]uint64{0: interval.Half, 1: 0}); err != nil {
		t.Fatal(err)
	}
	shed := ShedSets(before, m, names(200))
	if len(shed[0]) != 0 {
		t.Fatalf("server 0 shed %d sets; it only gained", len(shed[0]))
	}
	if len(shed[1]) == 0 {
		t.Fatal("server 1 shed nothing despite losing its whole region")
	}
	for i := 1; i < len(shed[1]); i++ {
		if shed[1][i-1] >= shed[1][i] {
			t.Fatal("shed list not sorted")
		}
	}
}

// Property: membership churn never leaves the mapper unable to locate a
// file set, and the fallback path stays rare.
func TestChurnLocateTotal(t *testing.T) {
	f := func(seed uint8) bool {
		m := newMapper(t, 3)
		next := 3
		ops := int(seed%5) + 3
		for i := 0; i < ops; i++ {
			if i%2 == 0 {
				if err := m.AddServer(next, 0); err != nil {
					return false
				}
				next++
			} else if m.NumServers() > 2 {
				if err := m.RemoveServer(m.Servers()[0]); err != nil {
					return false
				}
			}
		}
		for j := 0; j < 200; j++ {
			id, _ := m.Locate(fmt.Sprintf("churn-%d-%d", seed, j))
			found := false
			for _, s := range m.Servers() {
				if s == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLocate(b *testing.B) {
	m := newMapper(b, 16)
	ns := names(1024)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += m.Owner(ns[i&1023])
	}
	_ = sink
}

func BenchmarkMoves(b *testing.B) {
	m := newMapper(b, 8)
	before := m.Clone()
	if err := m.RemoveServer(3); err != nil {
		b.Fatal(err)
	}
	ns := names(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Moves(before, m, ns)
	}
}
