package core

import (
	"math"
	"testing"

	"anufs/internal/interval"
)

func TestExchangeMovesMassToFaster(t *testing.T) {
	m := newMapper(t, 2)
	p := NewPairwiseTuner(Defaults(), 1)
	moved, err := p.Exchange(m, 0, 1, 100, 10) // server 0 slow
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no mass moved despite 10x latency gap")
	}
	s0, _ := m.ShareFrac(0)
	s1, _ := m.ShareFrac(1)
	if s0 >= s1 {
		t.Fatalf("slow server share %v not below fast server %v", s0, s1)
	}
	if math.Abs(s0+s1-0.5) > 1e-9 {
		t.Fatalf("pair mass not conserved: %v", s0+s1)
	}
}

func TestExchangeSymmetric(t *testing.T) {
	m1 := newMapper(t, 2)
	m2 := newMapper(t, 2)
	p1 := NewPairwiseTuner(Defaults(), 1)
	p2 := NewPairwiseTuner(Defaults(), 1)
	if _, err := p1.Exchange(m1, 0, 1, 100, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Exchange(m2, 1, 0, 10, 100); err != nil {
		t.Fatal(err)
	}
	for id, s := range m1.Shares() {
		if m2.Shares()[id] != s {
			t.Fatalf("exchange not symmetric for server %d", id)
		}
	}
}

func TestExchangeDeadBand(t *testing.T) {
	m := newMapper(t, 2)
	p := NewPairwiseTuner(Defaults(), 1) // thresholding on by default
	moved, err := p.Exchange(m, 0, 1, 100, 95)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("moved %d within the dead band", moved)
	}
}

func TestExchangeIdlePair(t *testing.T) {
	m := newMapper(t, 2)
	p := NewPairwiseTuner(Defaults(), 1)
	moved, err := p.Exchange(m, 0, 1, 0, 0)
	if err != nil || moved != 0 {
		t.Fatalf("idle pair moved %d, err %v", moved, err)
	}
}

func TestExchangeUnknownServer(t *testing.T) {
	m := newMapper(t, 2)
	p := NewPairwiseTuner(Defaults(), 1)
	if _, err := p.Exchange(m, 0, 42, 10, 20); err == nil {
		t.Fatal("exchange with unknown server succeeded")
	}
}

func TestExchangeGammaClamp(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning.Thresholding = false
	cfg.Gamma = 2
	m := newMapper(t, 2)
	before, _ := m.ShareFrac(0)
	p := NewPairwiseTuner(cfg, 1)
	p.Kappa = 1
	if _, err := p.Exchange(m, 0, 1, 1e9, 1); err != nil {
		t.Fatal(err)
	}
	after, _ := m.ShareFrac(0)
	// Shed fraction must not exceed 1 - 1/Gamma = 0.5.
	if after < before*0.5-1e-9 {
		t.Fatalf("shed beyond Gamma clamp: %v -> %v", before, after)
	}
}

func TestRoundConservesHalfOccupancy(t *testing.T) {
	m := newMapper(t, 5)
	p := NewPairwiseTuner(Defaults(), 7)
	rep := reports([]float64{400, 200, 100, 50, 10}, []int{10, 10, 10, 10, 10})
	for i := 0; i < 20; i++ {
		if _, err := p.Round(m, rep); err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, s := range m.Shares() {
			sum += s
		}
		if sum != interval.Half {
			t.Fatalf("round %d: mass %d != Half", i, sum)
		}
	}
}

func TestPairwiseConvergesOnFluidModel(t *testing.T) {
	speeds := []float64{1, 3, 5, 7, 9}
	m := newMapper(t, len(speeds))
	cfg := Defaults()
	cfg.Threshold = 0.05
	p := NewPairwiseTuner(cfg, 3)
	for round := 0; round < 300; round++ {
		rep := make([]LatencyReport, len(speeds))
		for i := range speeds {
			f, _ := m.ShareFrac(i)
			rep[i] = LatencyReport{ServerID: i, MeanLatency: f / speeds[i] * 1000, Requests: 10}
		}
		if _, err := p.Round(m, rep); err != nil {
			t.Fatal(err)
		}
	}
	var speedSum float64
	for _, s := range speeds {
		speedSum += s
	}
	for i, s := range speeds {
		f, _ := m.ShareFrac(i)
		want := 0.5 * s / speedSum
		if math.Abs(f-want) > 0.4*want {
			t.Fatalf("server %d share %v, want ~%v", i, f, want)
		}
	}
}

func TestRoundOddServerCount(t *testing.T) {
	// With an odd count one server sits out each round; must not error.
	m := newMapper(t, 3)
	p := NewPairwiseTuner(Defaults(), 11)
	if _, err := p.Round(m, reports([]float64{100, 50, 10}, []int{5, 5, 5})); err != nil {
		t.Fatal(err)
	}
}
