package core

import (
	"fmt"
	"math"
	"sort"

	"anufs/internal/interval"
)

// LatencyReport is one server's measurement for the elapsed interval: the
// mean latency of the requests it completed and how many there were. A
// server that completed nothing reports {Requests: 0}, which the delegate
// treats as an idle (zero-latency) server.
type LatencyReport struct {
	ServerID    int
	MeanLatency float64 // in any consistent time unit; the delegate only compares
	Requests    int
}

// Decision explains what the delegate did to one server in an update.
type Decision struct {
	ServerID int
	Latency  float64
	Factor   float64 // applied scale factor before renormalization (1 = untouched)
	Reason   string  // which rule produced the factor
}

// UpdateResult summarizes one delegate round.
type UpdateResult struct {
	Aggregate float64
	Decisions []Decision
	// Before is the share vector the round started from (fixed-point units,
	// Σ = Half) — old region widths for the tuner decision log.
	Before map[int]uint64
	// Targets is the share vector installed (fixed-point units, Σ = Half).
	Targets map[int]uint64
	// ChangedMass is the interval measure that changed owner — the load-
	// movement cost of this round in interval terms.
	ChangedMass uint64
	// Tuned reports whether any region was actually rescaled.
	Tuned bool
}

// Delegate implements the elected delegate server's rescaling protocol
// (paper §4, §6). The protocol is stateless — a failover delegate computes
// the same update from the same reports — except for divergent tuning,
// which compares against the previous interval's latencies; NewDelegate or
// ResetState models a delegate crash, after which divergent tuning is
// skipped for one interval exactly as the paper prescribes.
type Delegate struct {
	cfg  Config
	prev map[int]float64 // last interval's latency per server (divergent tuning)
}

// NewDelegate creates a delegate with the given configuration.
func NewDelegate(cfg Config) *Delegate {
	return &Delegate{cfg: cfg.withDefaults()}
}

// ResetState models delegate failover: the replacement has no memory of the
// previous interval, so divergent tuning cannot be evaluated next round.
func (d *Delegate) ResetState() { d.prev = nil }

// Aggregate condenses the reports into the system "average" latency per the
// configured aggregator. Servers that completed no requests are excluded —
// an idle server's zero would drag a weighted mean to meaninglessness.
func (d *Delegate) Aggregate(reports []LatencyReport) float64 {
	switch d.cfg.Aggregator {
	case Median:
		var ls []float64
		for _, r := range reports {
			if r.Requests > 0 {
				ls = append(ls, r.MeanLatency)
			}
		}
		if len(ls) == 0 {
			return 0
		}
		sort.Float64s(ls)
		mid := len(ls) / 2
		if len(ls)%2 == 1 {
			return ls[mid]
		}
		return (ls[mid-1] + ls[mid]) / 2
	case Mean:
		var sum float64
		n := 0
		for _, r := range reports {
			if r.Requests > 0 {
				sum += r.MeanLatency
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	default: // WeightedMean
		var num, den float64
		for _, r := range reports {
			if r.Requests > 0 {
				num += r.MeanLatency * float64(r.Requests)
				den += float64(r.Requests)
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
}

// Update runs one delegate round: aggregate the reports, choose per-server
// scale factors under the enabled heuristics, renormalize to half occupancy
// and install the new mapping into m. It returns the decisions for
// observability. Reports must cover a subset of m's live servers; servers
// without a report are treated as idle.
func (d *Delegate) Update(m *Mapper, reports []LatencyReport) (UpdateResult, error) {
	res := UpdateResult{}

	lat := make(map[int]float64, len(reports))
	reqs := make(map[int]int, len(reports))
	for _, r := range reports {
		if _, ok := m.iv.Share(r.ServerID); !ok {
			return res, fmt.Errorf("core: report from unknown server %d", r.ServerID)
		}
		lat[r.ServerID] = r.MeanLatency
		reqs[r.ServerID] = r.Requests
	}

	a := d.Aggregate(reports)
	res.Aggregate = a

	servers := m.Servers()
	cur := m.Shares()
	res.Before = cur
	factors := make(map[int]float64, len(servers))
	for _, id := range servers {
		dec := Decision{ServerID: id, Latency: lat[id], Factor: 1, Reason: "untouched"}
		factors[id] = 1
		if a > 0 {
			f, reason := d.factorFor(id, lat[id], reqs[id], a)
			dec.Factor, dec.Reason = f, reason
			factors[id] = f
		} else {
			dec.Reason = "no-traffic"
		}
		res.Decisions = append(res.Decisions, dec)
	}

	// Remember this interval's latencies for divergent tuning next round.
	d.prev = lat

	tuned := false
	for _, f := range factors { //anufs:allow simdeterminism any-order scan for a factor != 1; result is order-free
		if f != 1 {
			tuned = true
			break
		}
	}
	if !tuned {
		res.Targets = cur
		return res, nil
	}

	// Desired masses before renormalization. A zero-share server that wants
	// to grow is seeded (multiplying zero would pin it at zero forever).
	seed := d.seedShare(m)
	desired := make([]float64, len(servers))
	for i, id := range servers {
		w := float64(cur[id]) * factors[id]
		if cur[id] == 0 && factors[id] > 1 {
			w = float64(seed)
		}
		desired[i] = w
	}
	// Renormalize to exactly Half: this is the implicit growth mechanism —
	// shrinking one region proportionally inflates all others (paper §6).
	q := interval.QuantizeShares(desired, interval.Half)
	target := make(map[int]uint64, len(servers))
	for i, id := range servers {
		target[id] = q[i]
	}

	before := m.iv.Clone()
	if err := m.Rescale(target); err != nil {
		return res, err
	}
	res.Targets = target
	res.ChangedMass = interval.ChangedMass(before, m.iv)
	res.Tuned = res.ChangedMass > 0
	return res, nil
}

// factorFor applies the tuning heuristics to one server and returns the
// scale factor plus the rule that produced it.
func (d *Delegate) factorFor(id int, l float64, requests int, a float64) (float64, string) {
	cfg := d.cfg
	t := 0.0
	if cfg.Tuning.Thresholding || cfg.Tuning.TopOff {
		t = cfg.Threshold
	}
	hi := (1 + t) * a
	lo := (1 - t) * a

	overloaded := l > hi
	underloaded := l < lo

	if cfg.Tuning.TopOff {
		// Top-off tuning: only cut latency peaks; never explicitly grow.
		// The threshold interval becomes (-inf, (1+t)·A] (paper §6).
		underloaded = false
	}
	if !overloaded && !underloaded {
		return 1, "within-threshold"
	}

	if cfg.Tuning.Divergent {
		prev, known := d.prev[id]
		if !known {
			// Delegate failover or first interval: the paper ignores the
			// policy when divergence cannot be evaluated — i.e. the other
			// rules proceed unconstrained.
		} else {
			divergingUp := l > a && l >= prev
			divergingDown := l < a && l <= prev
			if !divergingUp && !divergingDown {
				return 1, "convergent"
			}
		}
	}

	var f float64
	if l <= 0 {
		// Idle server below the average: grows at the clamp.
		f = cfg.Gamma
	} else {
		f = a / l
		f = math.Max(1/cfg.Gamma, math.Min(cfg.Gamma, f))
	}
	if overloaded {
		return f, "shed-overload"
	}
	return f, "grow-underload"
}

// seedShare is the mass granted to a zero-share server that should grow.
func (d *Delegate) seedShare(m *Mapper) uint64 {
	if d.cfg.SeedShareFrac > 0 {
		return uint64(d.cfg.SeedShareFrac * float64(interval.Whole))
	}
	return interval.Whole / uint64(m.Partitions())
}
